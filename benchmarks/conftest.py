"""Shared configuration for the Table I benchmark suite.

Every benchmark compares the two configurations of the paper's Table I:

- ``baseline``  -- unmodified kernel + X server;
- ``overhaul``  -- full Overhaul stack in the Section V-A measurement mode
  (``force_grant=True``: the complete decision path executes, then grants).

Methodology mirrors the paper: five timed rounds per configuration
(``benchmark.pedantic(..., rounds=5)``), means compared.  Absolute times are
simulator times, not patched-C-kernel times; see EXPERIMENTS.md for the
shape discussion.
"""

import pytest

#: Operations per timed round, per row.  Scaled-down versions of the
#: paper's counts (10 M opens, 100 k pastes, 1 k captures, 10 G writes,
#: 102 400 files) chosen so the suite completes in tens of seconds.
DEVICE_OPS = 1_000
CLIPBOARD_OPS = 300
SCREEN_OPS = 300
SHM_OPS = 5_000
FILE_OPS = 1_000

CONFIGS = [False, True]
CONFIG_IDS = ["baseline", "overhaul"]


@pytest.fixture(params=CONFIGS, ids=CONFIG_IDS)
def protected(request):
    return request.param


def attach_counters(benchmark, machine):
    """Store the machine's cross-layer operation counts on the benchmark.

    The counts land in ``benchmark.extra_info`` (serialised into
    ``--benchmark-json`` output), so a round that got faster by silently
    doing less work is visible in the saved results.
    """
    from repro.obs.counters import collect_counters

    for name, value in collect_counters(machine):
        benchmark.extra_info[name] = value
