"""The zero-cost-when-disabled guard for the tracing layer.

The observability design contract (``repro.obs.tracer``): with tracing
disabled -- the default for every benchmark and experiment configuration --
an instrumented hot path pays at most one attribute load and a branch per
site.  This suite pins that down two ways:

- ``test_device_access_tracing_*``: the device-access micro-bench in all
  three configurations (untraced, trace-enabled, trace-disabled explicitly),
  so ``--benchmark-compare`` shows the disabled-mode delta directly;
- ``test_disabled_mode_records_nothing``: the structural half -- disabled
  runs allocate no spans at all, which is *why* the cost stays flat.
"""

import pytest

from benchmarks.conftest import DEVICE_OPS, attach_counters
from repro.analysis.benchops import DeviceAccessRig


def traced_rig(trace):
    """A protected device rig whose machine has tracing on/off."""
    from repro.apps.base import SimApp
    from repro.core.config import benchmark_config
    from repro.core.system import Machine

    machine = Machine.with_overhaul(benchmark_config(), trace=trace)
    app = SimApp(machine, "/usr/bin/devbench", comm="devbench")
    machine.settle()
    rig = DeviceAccessRig.__new__(DeviceAccessRig)
    rig.machine = machine
    rig.app = app
    rig._path = machine.kernel.device_path("mic0")
    rig._kernel = machine.kernel
    rig._task = app.task
    return rig


@pytest.mark.benchmark(group="tracer-overhead")
def test_device_access_tracing_disabled(benchmark):
    """The default configuration: instrumented sites, tracer off."""
    rig = traced_rig(trace=False)
    benchmark.pedantic(rig.run, args=(DEVICE_OPS,), rounds=5, warmup_rounds=1)
    attach_counters(benchmark, rig.machine)
    assert rig.machine.tracer.total_spans == 0


@pytest.mark.benchmark(group="tracer-overhead")
def test_device_access_tracing_enabled(benchmark):
    """The traced configuration, for comparison (expected measurably slower)."""
    rig = traced_rig(trace=True)
    benchmark.pedantic(rig.run, args=(DEVICE_OPS,), rounds=5, warmup_rounds=1)
    attach_counters(benchmark, rig.machine)
    assert rig.machine.tracer.total_spans > 0


class TestDisabledModeThreshold:
    def test_disabled_tracer_added_cost_under_threshold(self):
        """The CI smoke assertion: with the tracer off, the instrumented
        device-access path adds at most a few microseconds per operation
        over an unprotected machine -- same bound as the Table I shape
        guard, so the instrumentation cannot regress the hot path."""
        import time

        def best_us_per_op(rig, ops=800, repeats=3):
            best = float("inf")
            rig.run(ops)  # warmup
            for _ in range(repeats):
                start = time.perf_counter()
                rig.run(ops)
                best = min(best, time.perf_counter() - start)
            return best / ops * 1e6

        baseline = best_us_per_op(DeviceAccessRig(protected=False))
        disabled = best_us_per_op(traced_rig(trace=False))
        assert disabled - baseline < 60.0  # measured ~7-10 us, 3x+ headroom


class TestDisabledModeIsStructurallyFree:
    def test_disabled_mode_records_nothing(self):
        rig = traced_rig(trace=False)
        rig.run(500)
        tracer = rig.machine.tracer
        assert tracer.total_spans == 0
        assert tracer.spans == []
        assert tracer._stack == []

    def test_disabled_start_allocates_no_span(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        assert tracer.start("x", "bench", pid=1) is None
        assert tracer.event("x", "bench") is None
        assert tracer._next_span_id == 1  # the id counter never moved
