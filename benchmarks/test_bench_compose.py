"""Display-pipeline benchmark: damage-tracked screen composition.

Not a Table I row.  Screen capture cost is dominated by composition --
walking the stacking order and concatenating every mapped window's
content.  The damage-tracked pipeline makes that walk conditional: a
capture of an *unchanged* screen is a cache hit and costs O(1) regardless
of how many windows are mapped.  This suite measures both sides of that
trade at three stack sizes:

- **warm**: repeated captures over an unchanged stack.  On the fast path
  every capture after the first hits the composition cache; throughput
  should be flat in the window count.
- **damaged**: one window is redrawn before every capture, so every
  composition is a miss.  This bounds the bookkeeping the damage tracking
  adds on top of the unavoidable recomposition.

Counter assertions pin the mechanism: a round that got fast by serving
stale frames (or by not caching at all) fails the test rather than
polluting the numbers.
"""

import pytest

from repro.analysis.benchops import ComposeRig

#: Captures per timed round.
COMPOSE_OPS = 1_000
DAMAGED_OPS = 200

#: Stack sizes: a lone window, the baseline.py default, and a desktop's
#: worth -- enough spread to expose O(windows) behaviour in the warm mode.
WINDOW_COUNTS = [1, 16, 128]


@pytest.fixture(params=WINDOW_COUNTS, ids=lambda n: f"{n}w")
def window_count(request):
    return request.param


@pytest.mark.benchmark(group="display-compose-warm")
def test_compose_warm(benchmark, protected, window_count):
    """Repeat captures, unchanged stack: the cache-hit path."""
    rig = ComposeRig(protected, windows=window_count)
    benchmark.pedantic(rig.run, args=(COMPOSE_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["windows"] = window_count
    benchmark.extra_info["compose_cache_hits"] = xserver.compose_cache_hits
    benchmark.extra_info["compose_cache_misses"] = xserver.compose_cache_misses
    # Every capture but the very first must have been served from the
    # composition cache, however many rounds ran (--benchmark-disable runs
    # one).  The damage pipeline is a simulator-level optimisation, so it
    # is active in both Table I configurations.
    assert xserver.compose_cache_hits >= COMPOSE_OPS - 1
    assert xserver.compose_cache_misses <= 1


@pytest.mark.benchmark(group="display-compose-damaged")
def test_compose_damaged(benchmark, protected, window_count):
    """One window redrawn before every capture: the recomposition path."""
    rig = ComposeRig(protected, windows=window_count, damaged=True)
    benchmark.pedantic(rig.run, args=(DAMAGED_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["windows"] = window_count
    benchmark.extra_info["compose_cache_hits"] = xserver.compose_cache_hits
    benchmark.extra_info["compose_cache_misses"] = xserver.compose_cache_misses
    # Every damaged capture must recompose -- a hit here would mean a
    # stale frame was served after a draw.
    assert xserver.compose_cache_misses >= DAMAGED_OPS
    assert xserver.compose_cache_hits == 0
