"""Display-pipeline benchmark: damage-tracked screen composition.

Not a Table I row.  Screen capture cost is dominated by composition --
walking the stacking order and concatenating every mapped window's
content.  The damage-tracked pipeline makes that walk conditional: a
capture of an *unchanged* screen is a cache hit and costs O(1) regardless
of how many windows are mapped.  This suite measures both sides of that
trade at three stack sizes:

- **warm**: repeated captures over an unchanged stack.  On the fast path
  every capture after the first hits the composition cache; throughput
  should be flat in the window count.
- **damaged**: one window is fully redrawn before every capture, so every
  composition must fold that window's new bytes into the frame.  Under
  the damage-rect pipeline this is an incremental patch of the cached
  frame, not a full recomposition -- the assertions pin exactly that.
- **partial**: the *bottom* window of a 128-window stack takes a region
  draw before every composition.  On the 2D screen that window is fully
  occluded, so the composer culls its first rect, flags the drawable,
  and the steady state is a memo-lane draw plus a pure cache hit --
  the cheapest honest answer for a dirty-but-invisible window.
  ``test_compose_partial_speedup`` additionally races the incremental
  path against the full-recompose fallback on the same workload and
  requires a >=5x win with byte-identical output.

Counter assertions pin the mechanism: a round that got fast by serving
stale frames (or by not caching at all) fails the test rather than
polluting the numbers.
"""

import time

import pytest

from repro.analysis.benchops import ComposeRig

#: Captures per timed round.
COMPOSE_OPS = 1_000
DAMAGED_OPS = 200
PARTIAL_OPS = 2_000
SCROLL_OPS = 500
DRAG_OPS = 500
ANIM_OPS = 200

#: Stack sizes: a lone window, the baseline.py default, and a desktop's
#: worth -- enough spread to expose O(windows) behaviour in the warm mode.
WINDOW_COUNTS = [1, 16, 128]


@pytest.fixture(params=WINDOW_COUNTS, ids=lambda n: f"{n}w")
def window_count(request):
    return request.param


@pytest.mark.benchmark(group="display-compose-warm")
def test_compose_warm(benchmark, protected, window_count):
    """Repeat captures, unchanged stack: the cache-hit path."""
    rig = ComposeRig(protected, windows=window_count)
    benchmark.pedantic(rig.run, args=(COMPOSE_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["windows"] = window_count
    benchmark.extra_info["compose_cache_hits"] = xserver.compose_cache_hits
    benchmark.extra_info["compose_cache_misses"] = xserver.compose_cache_misses
    # Every capture but the very first must have been served from the
    # composition cache, however many rounds ran (--benchmark-disable runs
    # one).  The damage pipeline is a simulator-level optimisation, so it
    # is active in both Table I configurations.
    assert xserver.compose_cache_hits >= COMPOSE_OPS - 1
    assert xserver.compose_cache_misses <= 1


@pytest.mark.benchmark(group="display-compose-damaged")
def test_compose_damaged(benchmark, protected, window_count):
    """One window redrawn before every capture: the damage-refresh path."""
    rig = ComposeRig(protected, windows=window_count, damaged=True)
    benchmark.pedantic(rig.run, args=(DAMAGED_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["windows"] = window_count
    benchmark.extra_info["compose_cache_hits"] = xserver.compose_cache_hits
    benchmark.extra_info["compose_cache_misses"] = xserver.compose_cache_misses
    benchmark.extra_info["compose_partial_hits"] = xserver.compose_partial_hits
    # Every damaged capture must fold the redraw into the frame: none may
    # be a clean cache hit (that would be a stale frame served after a
    # draw), and under the damage-rect pipeline each one is an in-place
    # patch of the cached frame, not a full recomposition miss.
    assert xserver.compose_cache_hits == 0
    assert xserver.compose_partial_hits >= DAMAGED_OPS - 1
    assert xserver.compose_cache_misses <= 1


@pytest.mark.benchmark(group="display-compose-partial")
def test_compose_partial(benchmark, protected):
    """One dirty region over a 128-window stack: the incremental path."""
    rig = ComposeRig(protected, windows=128, partial=True)
    benchmark.pedantic(rig.run, args=(PARTIAL_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["windows"] = 128
    benchmark.extra_info["compose_cache_hits"] = xserver.compose_cache_hits
    benchmark.extra_info["compose_cache_misses"] = xserver.compose_cache_misses
    benchmark.extra_info["compose_partial_hits"] = xserver.compose_partial_hits
    benchmark.extra_info["compose_rects_culled"] = xserver.compose_rects_culled
    # The dirty window is fully occluded on the 2D screen: its first rect
    # is culled (one partial pass proves it invisible), the drawable is
    # flagged, and every later composition is a pure cache hit -- while
    # the coalescer still accounts every draw (no stale frames: the
    # framebuffer genuinely doesn't change).
    assert xserver.compose_cache_misses <= 1
    assert xserver.compose_rects_culled >= 1
    assert xserver.compose_partial_hits <= 2
    assert xserver.compose_cache_hits >= PARTIAL_OPS - 2
    assert xserver.damage_rects_coalesced >= PARTIAL_OPS - 2


@pytest.mark.benchmark(group="display-compose-scroll")
def test_compose_scroll(benchmark, protected):
    """A full-width row redrawn at a walking offset: the scroll workload."""
    rig = ComposeRig(protected, windows=4, mode="scroll")
    benchmark.pedantic(rig.run, args=(SCROLL_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["compose_partial_hits"] = xserver.compose_partial_hits
    # The scrolling window is on top (visible), so every frame is an
    # in-place one-row patch -- never a stale cache hit, never a full
    # recomposition miss.
    assert xserver.compose_partial_hits >= SCROLL_OPS - 1
    assert xserver.compose_cache_hits == 0
    assert xserver.compose_cache_misses <= 1


@pytest.mark.benchmark(group="display-compose-drag")
def test_compose_drag(benchmark, protected):
    """A 1px-wide full-height column at a moving x: the drag workload."""
    rig = ComposeRig(protected, windows=4, mode="drag")
    benchmark.pedantic(rig.run, args=(DRAG_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["compose_partial_hits"] = xserver.compose_partial_hits
    # Narrow multi-row rects stay narrow under the 2D blitter (the old 1D
    # spans inflated them into full-width bands); each frame is a patch.
    assert xserver.compose_partial_hits >= DRAG_OPS - 1
    assert xserver.compose_cache_hits == 0
    assert xserver.compose_cache_misses <= 1


@pytest.mark.benchmark(group="display-compose-anim")
def test_compose_multi_window_animation(benchmark, protected):
    """Every window of a tiled stack animates each frame."""
    rig = ComposeRig(protected, windows=8, mode="anim")
    benchmark.pedantic(rig.run, args=(ANIM_OPS,), rounds=5, warmup_rounds=1)
    xserver = rig.machine.xserver
    benchmark.extra_info["compose_partial_hits"] = xserver.compose_partial_hits
    # All eight tiled windows are visible, so each frame drains a
    # multi-entry journal in one partial pass; nothing is culled.
    assert xserver.compose_partial_hits >= ANIM_OPS - 1
    assert xserver.compose_cache_hits == 0
    assert xserver.compose_rects_culled == 0
    assert xserver.compose_cache_misses <= 1


def test_compose_partial_speedup(protected):
    """The incremental path beats full recomposition >=5x, byte for byte.

    Not a pytest-benchmark case: this is the acceptance gate for the
    damage-rect pipeline, so it must run (and fail loudly) even under
    ``--benchmark-disable``.  Two identically built 128-window rigs run
    the same single-dirty-region workload; one composes incrementally,
    the other through the full-recompose fallback
    (``incremental_compose = False``).  Their frames must stay
    byte-identical, and the incremental rounds must be at least 5x
    faster (measured best-of to shrug off scheduler noise; the gap is
    ~7x on a quiet machine).
    """
    fast = ComposeRig(protected, windows=128, partial=True)
    reference = ComposeRig(protected, windows=128, partial=True)
    reference.machine.xserver.incremental_compose = False

    # Correctness first: identical draw sequences produce identical
    # frames on both paths, composition by composition.
    payloads = ComposeRig._RECT_PAYLOADS
    for i in range(32):
        for rig in (fast, reference):
            rig.painters[0].window.draw_rect(16, 0, 32, 1, payloads[i & 1])
        assert (
            fast.machine.xserver.compose_screen()
            == reference.machine.xserver.compose_screen()
        )

    # Then the race: interleaved best-of rounds on the same workload.
    ops = 1_500
    fast.run(ops)  # warmup both rigs
    reference.run(ops)
    best_fast = best_reference = float("inf")
    for _ in range(5):
        start = time.perf_counter()
        fast.run(ops)
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        reference.run(ops)
        best_reference = min(best_reference, time.perf_counter() - start)

    # The mechanism pins: the fast rig culled the occluded window once and
    # then served cache hits; the reference recomposed every time.
    fast_x = fast.machine.xserver
    reference_x = reference.machine.xserver
    assert fast_x.compose_rects_culled >= 1
    assert fast_x.compose_cache_hits >= 6 * ops
    assert fast_x.compose_cache_misses <= 2
    assert reference_x.compose_partial_hits == 0
    assert reference_x.compose_cache_misses >= 6 * ops + 32

    speedup = best_reference / best_fast
    assert speedup >= 5.0, (
        f"incremental compose only {speedup:.2f}x faster than full "
        f"recompose ({best_fast * 1e6 / ops:.2f} vs "
        f"{best_reference * 1e6 / ops:.2f} us/op)"
    )
