"""Table I row 3: Screen Capture (paper: 68.26 s -> 69.86 s, +2.34 %).

"This benchmark takes 1,000 screen captures using the imlib2 library...
The time to save the image files to disk is not included."  Each operation
is a root-window GetImage compositing real window content; under Overhaul
it additionally runs the permission query and the capture alert.
"""

import pytest

from benchmarks.conftest import SCREEN_OPS
from repro.analysis.benchops import ScreenCaptureRig


@pytest.mark.benchmark(group="table1-row3-screen-capture")
def test_screen_capture(benchmark, protected):
    rig = ScreenCaptureRig(protected)
    benchmark.pedantic(rig.run, args=(SCREEN_OPS,), rounds=5, warmup_rounds=1)
    assert rig.machine.xserver.screen_captures_served >= SCREEN_OPS
