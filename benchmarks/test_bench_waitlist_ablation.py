"""Ablation: the shared-memory wait-list duration (Section IV-B).

"Clearly, repeating this process for every memory access could lead to
severe performance overhead; therefore... we put the corresponding
vm_area_struct on a wait list... We configured this duration to 500 ms,
which yielded a good performance-usability trade-off."

The sweep quantifies both sides of the trade-off: shorter wait lists fault
more often (slower, but a narrower propagation-miss window); longer wait
lists are faster but blind to IPC for longer.  The fault counts per
configuration are attached to the benchmark's ``extra_info``.
"""

import pytest

from repro.analysis.benchops import SharedMemoryRig
from repro.sim.time import from_millis

OPS = 3_000


@pytest.mark.benchmark(group="ablation-shm-waitlist")
@pytest.mark.parametrize(
    "waitlist_ms", [10, 100, 500, 1500], ids=["10ms", "100ms", "500ms-paper", "1500ms"]
)
def test_waitlist_duration_sweep(benchmark, waitlist_ms):
    rig = SharedMemoryRig(protected=True, pages=1_000)
    rig.machine.kernel.shm.waitlist_duration = from_millis(waitlist_ms)
    benchmark.pedantic(rig.run, args=(OPS,), rounds=3, warmup_rounds=1)
    benchmark.extra_info["faults"] = rig.faults
    benchmark.extra_info["waitlist_ms"] = waitlist_ms
    # Sanity: shorter windows must re-arm (and therefore fault) at least
    # as often as the paper configuration does.
    assert rig.faults >= 1
