"""Regeneration benches for the Section V studies (B, C, D).

These are not latency micro-benchmarks; they are the harnesses that rerun
the paper's studies end to end, timed so regressions in simulation
throughput are visible.  Result shapes are asserted inside each bench, and
key tallies land in ``extra_info`` so a saved benchmark JSON doubles as an
experiment record.
"""

import pytest

from repro.workloads.app_catalog import build_device_app_pool, run_applicability_sweep
from repro.workloads.longterm import run_longterm_study
from repro.workloads.usability import run_usability_study


@pytest.mark.benchmark(group="study-vb-usability")
def test_usability_study_regeneration(benchmark):
    """Section V-B: 46 participants, both tasks, fresh machines."""

    def run():
        return run_usability_study(seed=2016)

    results = benchmark.pedantic(run, rounds=3, warmup_rounds=0)
    assert results.participants == 46
    assert results.identical_experience_count == 46
    benchmark.extra_info["interrupted"] = results.interrupted
    benchmark.extra_info["noticed"] = results.noticed
    benchmark.extra_info["missed"] = results.missed


@pytest.mark.benchmark(group="study-vc-applicability")
def test_applicability_sweep_regeneration(benchmark):
    """Section V-C: the 58-app device/screen pool."""

    def run():
        return run_applicability_sweep(build_device_app_pool())

    summary = benchmark.pedantic(run, rounds=3, warmup_rounds=0)
    assert summary.total == 58
    assert not summary.false_positives
    benchmark.extra_info["spurious_alerts"] = [
        r.spec.name for r in summary.spurious_alerts
    ]
    benchmark.extra_info["limitations"] = [r.spec.name for r in summary.limitations]


@pytest.mark.benchmark(group="study-vd-longterm")
@pytest.mark.parametrize("protected", [True, False], ids=["overhaul", "unprotected"])
def test_longterm_study_regeneration(benchmark, protected):
    """Section V-D at reduced length (3 days per round; the example script
    runs the full 21)."""

    def run():
        return run_longterm_study(protected, seed=2016, days=3)

    results = benchmark.pedantic(run, rounds=2, warmup_rounds=0)
    if protected:
        assert results.total_stolen == 0
        assert results.legit_failures == 0
    else:
        assert results.total_stolen > 0
    benchmark.extra_info["stolen"] = results.stolen_counts
    benchmark.extra_info["blocked"] = results.blocked_counts
