"""Table I row 2: Clipboard (paper: 116.48 s -> 119.93 s, +2.96 %).

"we configured our benchmark to only perform pastes for this test, and
report the worst-case results" -- each operation is one full ICCCM paste
round trip; under Overhaul it additionally carries the netlink permission
query of Figure 2.
"""

import pytest

from benchmarks.conftest import CLIPBOARD_OPS
from repro.analysis.benchops import ClipboardRig


@pytest.mark.benchmark(group="table1-row2-clipboard")
def test_clipboard_paste(benchmark, protected):
    rig = ClipboardRig(protected)
    benchmark.pedantic(rig.run, args=(CLIPBOARD_OPS,), rounds=5, warmup_rounds=1)
    # The paste genuinely moved the data every time.
    assert rig.target.pasted[-1] == b"benchmark-clipboard-payload"
    if protected:
        assert rig.machine.overhaul.extension.queries_sent >= CLIPBOARD_OPS
