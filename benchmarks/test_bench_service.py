"""Service daemon benchmark: the >= 10k queries/s SLO from 100 clients.

One :class:`ServiceRig` (a real asyncio daemon on a background thread, a
real UNIX socket) is driven by 100 concurrent pipelined client
connections.  The sustained-throughput assertion is gated on
``os.cpu_count()`` like the fleet speedup benchmark -- the daemon and the
load generator share the host -- but the measured qps and p50/p99
latencies are always recorded in ``extra_info`` for the saved benchmark
JSON.
"""

import os
import time

import pytest

from repro.service.bench import ServiceRig

#: The SLO this repo commits to in BENCH_baseline.json.
QPS_TARGET = 10_000
CLIENT_FLOOR = 100
OPS = 20_000
MIN_CORES = 4


@pytest.mark.benchmark(group="service-query-throughput")
def test_service_daemon_sustains_query_slo(benchmark):
    rig = ServiceRig(clients=CLIENT_FLOOR)
    try:
        rig.run(2_000)  # warmup: connections established once, caches hot

        start = time.perf_counter()
        answered = rig.run(OPS)
        elapsed = time.perf_counter() - start
        qps = answered / elapsed

        assert answered == OPS
        assert rig.bench_extra["clients"] == CLIENT_FLOOR
        assert rig.bench_extra["p50_us"] > 0
        assert rig.bench_extra["p99_us"] >= rig.bench_extra["p50_us"]

        benchmark.extra_info["clients"] = CLIENT_FLOOR
        benchmark.extra_info["queries_per_second"] = round(qps, 1)
        benchmark.extra_info["p50_us"] = rig.bench_extra["p50_us"]
        benchmark.extra_info["p99_us"] = rig.bench_extra["p99_us"]
        benchmark.extra_info["cpu_count"] = os.cpu_count()

        def run():
            # The timed body re-reports the measurement above; a full
            # 20k-query round per pytest-benchmark iteration would turn
            # one SLO check into minutes of wall-clock.
            return qps

        benchmark.pedantic(run, rounds=1, warmup_rounds=0)

        if (os.cpu_count() or 1) >= MIN_CORES:
            assert qps >= QPS_TARGET, (
                f"expected >= {QPS_TARGET} queries/s from {CLIENT_FLOOR} "
                f"clients, measured {qps:,.0f}"
            )
        else:
            pytest.skip(
                f"throughput assertion needs >= {MIN_CORES} cores, host has "
                f"{os.cpu_count()}; measured {qps:,.0f} qps (in extra_info)"
            )
    finally:
        rig.close()


#: Sharding must at least double the committed single-process number on a
#: host with enough cores for 4 workers + router + load generators.
SHARD_WORKERS = 4
SHARDED_QPS_MULTIPLE = 2.0
COMMITTED_SINGLE_PROCESS_QPS = 18_000  # service_query in BENCH_baseline.json


@pytest.mark.benchmark(group="service-query-throughput")
def test_sharded_daemon_doubles_single_process_throughput(benchmark):
    rig = ServiceRig(
        clients=CLIENT_FLOOR,
        shard_workers=SHARD_WORKERS,
        packed=True,
        client_procs=SHARD_WORKERS,
    )
    try:
        rig.run(2_000)  # warmup: workers forked, connections up, caches hot

        start = time.perf_counter()
        answered = rig.run(OPS)
        elapsed = time.perf_counter() - start
        qps = answered / elapsed

        assert answered == OPS
        assert rig.bench_extra["clients"] == CLIENT_FLOOR
        assert rig.bench_extra["shard_workers"] == SHARD_WORKERS
        assert rig.bench_extra["packed"] is True

        benchmark.extra_info["clients"] = CLIENT_FLOOR
        benchmark.extra_info["shard_workers"] = SHARD_WORKERS
        benchmark.extra_info["client_procs"] = SHARD_WORKERS
        benchmark.extra_info["queries_per_second"] = round(qps, 1)
        benchmark.extra_info["p50_us"] = rig.bench_extra["p50_us"]
        benchmark.extra_info["p99_us"] = rig.bench_extra["p99_us"]
        benchmark.extra_info["cpu_count"] = os.cpu_count()

        def run():
            # Re-report: a full 20k-query round per pytest-benchmark
            # iteration would turn one scaling check into minutes.
            return qps

        benchmark.pedantic(run, rounds=1, warmup_rounds=0)

        if (os.cpu_count() or 1) >= MIN_CORES:
            floor = COMMITTED_SINGLE_PROCESS_QPS * SHARDED_QPS_MULTIPLE
            assert qps >= floor, (
                f"expected {SHARD_WORKERS}-worker sharded daemon to sustain "
                f">= {floor:,.0f} queries/s ({SHARDED_QPS_MULTIPLE}x the "
                f"committed single-process {COMMITTED_SINGLE_PROCESS_QPS:,}), "
                f"measured {qps:,.0f}"
            )
        else:
            pytest.skip(
                f"scaling assertion needs >= {MIN_CORES} cores, host has "
                f"{os.cpu_count()}; measured {qps:,.0f} qps (in extra_info)"
            )
    finally:
        rig.close()
