"""Table I row 1: Device Access (paper: 45.20 s -> 46.18 s, +2.17 %).

The paper's benchmark "measured the time to open the filesystem device node
corresponding to the microphone... 10 million times"; each round here is a
scaled open/close loop through the identical syscall path.
"""

import pytest

from benchmarks.conftest import DEVICE_OPS, attach_counters
from repro.analysis.benchops import DeviceAccessRig


@pytest.mark.benchmark(group="table1-row1-device-access")
def test_device_access(benchmark, protected):
    rig = DeviceAccessRig(protected)
    benchmark.pedantic(rig.run, args=(DEVICE_OPS,), rounds=5, warmup_rounds=1)
    attach_counters(benchmark, rig.machine)
    if protected:
        # The measurement mode must have exercised the full decision path.
        assert rig.machine.overhaul.monitor.grant_count >= DEVICE_OPS
