"""Table I row 4: Shared Memory (paper: 234.86 s -> 236.33 s, +0.63 %).

The paper wrote 10 billion times to mapped segments of 1-10 000 pages with
sequential and random patterns and "found no correlation between these
parameters and the performance impact"; it reports 10 000 pages / random
writes.  The benches below reproduce the headline configuration *and* the
no-correlation sweep.
"""

import pytest

from benchmarks.conftest import SHM_OPS
from repro.analysis.benchops import SharedMemoryRig


@pytest.mark.benchmark(group="table1-row4-shared-memory")
def test_shared_memory_random_10000_pages(benchmark, protected):
    """The headline configuration of the table row."""
    rig = SharedMemoryRig(protected, pages=10_000, random_offsets=True)
    benchmark.pedantic(rig.run, args=(SHM_OPS,), rounds=5, warmup_rounds=1)
    if protected:
        assert rig.faults >= 1  # interception genuinely engaged
    else:
        assert rig.faults == 0


@pytest.mark.benchmark(group="table1-row4-shm-size-sweep")
@pytest.mark.parametrize("pages", [1, 100, 10_000], ids=["1p", "100p", "10000p"])
def test_shared_memory_size_sweep(benchmark, pages):
    """Overhaul-enabled runs across segment sizes: the paper found the
    overhead 'near-identical in all runs'."""
    rig = SharedMemoryRig(protected=True, pages=pages)
    benchmark.pedantic(rig.run, args=(SHM_OPS // 2,), rounds=3, warmup_rounds=1)


@pytest.mark.benchmark(group="table1-row4-shm-pattern-sweep")
@pytest.mark.parametrize("random_offsets", [False, True], ids=["sequential", "random"])
def test_shared_memory_pattern_sweep(benchmark, random_offsets):
    rig = SharedMemoryRig(protected=True, pages=1_000, random_offsets=random_offsets)
    benchmark.pedantic(rig.run, args=(SHM_OPS // 2,), rounds=3, warmup_rounds=1)
