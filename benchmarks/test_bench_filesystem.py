"""Table I row 5: Bonnie++ (paper: 47319 -> 47265 files/s, +0.11 %).

"we ran Bonnie++, configured to create, stat and delete 102,400 empty files
in a single directory.  Since OVERHAUL does not interpose on stat or unlink
system calls, we were unable to reliably measure any overhead for stat and
delete operations... we only report the runtime overhead for file creation."
Each operation below is one create/stat/delete triple; only the create leg
crosses the augmented open().
"""

import pytest

from benchmarks.conftest import FILE_OPS
from repro.analysis.benchops import FilesystemRig


@pytest.mark.benchmark(group="table1-row5-filesystem")
def test_filesystem_churn(benchmark, protected):
    rig = FilesystemRig(protected)
    benchmark.pedantic(rig.run, args=(FILE_OPS,), rounds=5, warmup_rounds=1)
    # The bench directory must end every round empty (Bonnie++ semantics).
    assert rig.machine.kernel.filesystem.listdir("/home/user/bench") == []
