"""Perf-baseline harness: measure, record, and regression-check hot paths.

The Table I pytest-benchmark suite answers "what is Overhaul's relative
overhead"; this harness answers a different question the ROADMAP cares
about: *is the mediation hot path itself getting faster or slower over
time?*  It measures absolute mediated-path throughput (operations per
second of host time) for the four mediated Table I workloads plus the
isolated decision path, and keeps the numbers in ``BENCH_baseline.json``:

- ``pre``     -- the throughput recorded *before* the hot-path overhaul
  landed (written once, never overwritten by ``--write``);
- ``current`` -- the most recent committed measurement.

Workflows
---------

Record a fresh baseline (updates the ``current`` section)::

    PYTHONPATH=src python benchmarks/baseline.py --write

Check the working tree against the committed baseline (the CI perf gate;
fails when any benchmark regresses by more than ``--threshold``)::

    PYTHONPATH=src python benchmarks/baseline.py --check

Compare the committed ``current`` numbers against ``pre``::

    PYTHONPATH=src python benchmarks/baseline.py --compare

``--check`` exits 0 with a notice when the baseline file (or the section
being compared against) is absent, so first runs and fresh clones never
fail; CI caches the measured artifact across runs for a same-machine
comparison (see ``.github/workflows/ci.yml``).

Numbers are host-specific: ``--check`` only ever compares measurements
from the same file/cache, and the committed numbers document the
development machine (see the ``meta`` section).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_baseline.json"
SCHEMA_VERSION = 1

sys.path.insert(0, str(REPO_ROOT / "src"))


def _rig_factories() -> Dict[str, Callable[[], object]]:
    from repro.analysis.benchops import (
        ClipboardRig,
        ComposeRig,
        DecisionPathRig,
        DeviceAccessRig,
        ScreenCaptureRig,
        SharedMemoryRig,
    )
    from repro.fleet.bench import FleetMergeRig, FleetStealRig
    from repro.service.bench import ServiceRig

    # Every rig runs in the protected configuration: this harness tracks
    # the *mediated* path.  Ops counts are sized so one round takes
    # ~0.1-1 s on a development machine.
    return {
        "device_access": lambda: (DeviceAccessRig(True), 2_000),
        "clipboard": lambda: (ClipboardRig(True), 600),
        "screen_capture": lambda: (ScreenCaptureRig(True), 600),
        "shared_memory": lambda: (SharedMemoryRig(True), 8_000),
        "mediated_decision_path": lambda: (DecisionPathRig(True), 5_000),
        # Display pipeline: warm composition over an unchanged 16-window
        # stack (the cache-hit path), the same stack with one window
        # redrawn before every capture (the recomposition path), and a
        # 128-window stack with a single dirty region per composition
        # (the incremental damage-rect patch path).
        "compose": lambda: (ComposeRig(True, windows=16), 2_000),
        "compose_damaged": lambda: (ComposeRig(True, windows=16, damaged=True), 400),
        "compose_partial": lambda: (ComposeRig(True, windows=128, partial=True), 10_000),
        # 2D interaction workloads: a scrolling row, a dragged 1px column,
        # and a tiled stack where every window animates each frame.
        "scroll": lambda: (ComposeRig(True, windows=4, mode="scroll"), 4_000),
        "drag": lambda: (ComposeRig(True, windows=4, mode="drag"), 4_000),
        "multi_window_animation": lambda: (ComposeRig(True, windows=8, mode="anim"), 1_000),
        # Service daemon over a real UNIX socket: 100 concurrent pipelined
        # clients against one asyncio daemon.  The SLO this repo commits
        # to: >= 10k queries/s sustained, p50/p99 recorded alongside.
        "service_query": lambda: (ServiceRig(), 20_000),
        # The same SLO shape through the multi-process front door: tenants
        # sharded across 4 worker daemons, wire-v2 packed frames, and the
        # load generator split over 4 processes so the clients are not the
        # bottleneck.  On a >= 4-core host this must sustain >= 2x the
        # committed single-process service_query number.
        "service_query_sharded": lambda: (
            ServiceRig(shard_workers=4, packed=True, client_procs=4),
            20_000,
        ),
        # Fleet hot path: packed-record merges through a shared-memory
        # ring (ops = shard records absorbed by the parent), and the
        # lease/steal scheduler under a virtual-time straggler workload
        # (ops = shards scheduled; bench_extra carries the steal-vs-static
        # makespan speedup on the acceptance-shaped scenario).
        "fleet_merge": lambda: (FleetMergeRig(), 10_000),
        "fleet_steal": lambda: (FleetStealRig(), 20_000),
    }


def measure_all(
    repeats: int = 5,
    ops_scale: float = 1.0,
    quiet: bool = False,
    scenarios: Optional[list] = None,
) -> Dict[str, dict]:
    """Run every benchmark; return name -> {ops_per_sec, ops, rounds}.

    Methodology matches the Table I suite: one warmup round, then
    *repeats* timed rounds on the same rig; throughput is taken from the
    fastest round (least scheduler noise), like pytest-benchmark's
    ``min``.  *scenarios* restricts the run to the named subset (the CI
    perf gate measures an explicit scenario list to keep runs bounded).
    """
    factories = _rig_factories()
    if scenarios is not None:
        unknown = [name for name in scenarios if name not in factories]
        if unknown:
            raise SystemExit(
                f"unknown scenario(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(factories))})"
            )
        factories = {name: factories[name] for name in scenarios}
    results: Dict[str, dict] = {}
    for name, factory in factories.items():
        rig, base_ops = factory()
        ops = max(1, int(base_ops * ops_scale))
        rig.run(ops)  # warmup: caches populated, allocator steady
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            rig.run(ops)
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
        ops_per_sec = ops / best
        results[name] = {
            "ops_per_sec": round(ops_per_sec, 1),
            "ops": ops,
            "rounds": repeats,
        }
        # Rigs may report extra facts about the measured round (the
        # service rig records client count and p50/p99 latency).
        extra = getattr(rig, "bench_extra", None)
        if extra:
            results[name].update(extra)
        close = getattr(rig, "close", None)
        if close is not None:
            close()
        if not quiet:
            print(f"  {name:<24s} {ops_per_sec:>12,.0f} ops/s  ({ops} ops, best of {repeats})")
    return results


def load_baseline(path: Path) -> Optional[dict]:
    if not path.exists():
        return None
    with path.open() as handle:
        return json.load(handle)


def write_baseline(path: Path, results: Dict[str, dict], section: str) -> None:
    """Write *results* into *section*, preserving the other sections.

    Results merge into the section rather than replacing it, so a
    ``--scenarios`` subset run updates only the benchmarks it measured.
    """
    data = load_baseline(path) or {"schema": SCHEMA_VERSION, "unit": "ops_per_sec"}
    if section == "pre" and "pre" in data:
        raise SystemExit(
            "refusing to overwrite the 'pre' section: it records the "
            "pre-overhaul numbers and is written exactly once"
        )
    merged = dict(data.get(section, {}).get("results", {}))
    merged.update(results)
    data[section] = {"results": merged}
    data["meta"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "platform": platform.platform(),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {section!r} section of {path}")


def check_regression(
    path: Path,
    threshold: float,
    repeats: int,
    ops_scale: float,
    scenarios: Optional[list] = None,
) -> int:
    """Measure now and compare to the committed ``current`` section.

    Returns the process exit code: 0 when within threshold (or no
    baseline to compare against), 1 on regression.  With *scenarios*,
    only the named benchmarks are measured and gated.
    """
    data = load_baseline(path)
    if data is None or "current" not in data:
        print(f"no baseline at {path}; skipping perf gate (run --write first)")
        return 0
    committed = data["current"]["results"]
    print(f"measuring against {path} (threshold {threshold:.0%})")
    measured = measure_all(repeats=repeats, ops_scale=ops_scale, scenarios=scenarios)
    failures = []
    for name, record in sorted(committed.items()):
        if scenarios is not None and name not in scenarios:
            continue
        if name not in measured:
            print(f"  {name:<24s} missing from this build; skipped")
            continue
        base = record["ops_per_sec"]
        now = measured[name]["ops_per_sec"]
        ratio = now / base if base else float("inf")
        verdict = "ok" if ratio >= (1.0 - threshold) else "REGRESSION"
        print(f"  {name:<24s} {now:>12,.0f} vs {base:>12,.0f} ops/s  x{ratio:.2f}  {verdict}")
        if verdict != "ok":
            failures.append(name)
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)} regressed more than {threshold:.0%}")
        return 1
    print("perf gate passed")
    return 0


def compare_sections(path: Path) -> int:
    """Print current-vs-pre speedups from the committed file.

    Scenarios present in only one section (added or retired after the
    other section was recorded) are reported with a warning rather than
    silently dropped or crashed on: a one-sided row has no speedup, but
    hiding it would make the comparison look more complete than it is.
    """
    data = load_baseline(path)
    if data is None or "pre" not in data or "current" not in data:
        print(f"{path} needs both 'pre' and 'current' sections to compare")
        return 1
    pre = data["pre"]["results"]
    current = data["current"]["results"]
    print(f"{'benchmark':<24s} {'pre':>12s} {'current':>12s} {'speedup':>8s}")
    for name in sorted(set(pre) | set(current)):
        before = pre.get(name, {}).get("ops_per_sec")
        after = current.get(name, {}).get("ops_per_sec")
        if before is None or after is None:
            missing = "pre" if before is None else "current"
            print(f"{name:<24s} warning: no {missing!r} measurement; skipped")
            continue
        if not before:
            print(f"{name:<24s} warning: zero 'pre' throughput; skipped")
            continue
        print(f"{name:<24s} {before:>12,.0f} {after:>12,.0f} {after / before:>7.2f}x")
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true", help="measure and record")
    mode.add_argument("--check", action="store_true", help="measure and regression-check")
    mode.add_argument("--compare", action="store_true", help="print current-vs-pre speedups")
    parser.add_argument(
        "--section", choices=["pre", "current"], default="current",
        help="which section --write records (pre is write-once)",
    )
    parser.add_argument("--file", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional slowdown before --check fails")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--ops-scale", type=float, default=1.0,
                        help="scale every benchmark's op count (CI uses < 1)")
    parser.add_argument("--scenarios", type=str, default=None,
                        help="comma-separated benchmark subset to run "
                             "(default: all; CI passes an explicit list)")
    args = parser.parse_args(argv)
    scenarios = (
        [name.strip() for name in args.scenarios.split(",") if name.strip()]
        if args.scenarios
        else None
    )

    if args.check:
        return check_regression(
            args.file, args.threshold, args.repeats, args.ops_scale, scenarios
        )
    if args.compare:
        return compare_sections(args.file)
    print(f"measuring ({args.repeats} rounds per benchmark)")
    results = measure_all(repeats=args.repeats, ops_scale=args.ops_scale, scenarios=scenarios)
    write_baseline(args.file, results, args.section)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
