"""Fleet engine benchmarks: population throughput and parallel speedup.

Two questions:

1. How fast does one core chew through a population (machine-pairs per
   second), so regressions in per-shard cost are visible?
2. Does the worker pool actually buy wall-clock time?  The acceptance
   target is a >= 3x speedup at 8 workers on a 64-machine fleet, which is
   only physically observable on a machine with enough cores -- the
   assertion is gated on ``os.cpu_count()``, but the measured speedup is
   always recorded in ``extra_info`` for the saved benchmark JSON.
"""

import os
import time

import pytest

from repro.fleet import run_fleet

#: The acceptance-criterion fleet shape.
FLEET_MACHINES = 64
FLEET_WORKERS = 8
FLEET_DAYS = 2
SPEEDUP_TARGET = 3.0


@pytest.mark.benchmark(group="fleet-serial-throughput")
def test_fleet_serial_population_throughput(benchmark):
    """Inline (workers=1) shard throughput over a small population."""

    def run():
        return run_fleet("longterm", population=8, seed=2016, params={"days": 1})

    report = benchmark.pedantic(run, rounds=3, warmup_rounds=0)
    assert len(report.executed) == 8
    assert report.quarantined == []
    assert report.aggregate["protected"]["legit_failures"] == 0
    benchmark.extra_info["machines"] = 8
    benchmark.extra_info["machine_pairs_per_second"] = round(
        8.0 / report.wall_seconds, 3
    )


@pytest.mark.benchmark(group="fleet-parallel-speedup")
def test_fleet_parallel_speedup_64_machines(benchmark):
    """The acceptance benchmark: 64 machines, 8 workers vs 1 worker.

    Runs each configuration once (a fleet run is itself an aggregate of 64
    timed shards; repeating it 5x buys nothing but wall-clock).  Records
    serial seconds, parallel seconds, and the speedup; asserts the >= 3x
    target only where the hardware can express it.
    """
    serial_start = time.perf_counter()
    serial = run_fleet(
        "longterm", population=FLEET_MACHINES, seed=2016,
        workers=1, params={"days": FLEET_DAYS},
    )
    serial_seconds = time.perf_counter() - serial_start

    parallel_start = time.perf_counter()
    parallel = run_fleet(
        "longterm", population=FLEET_MACHINES, seed=2016,
        workers=FLEET_WORKERS, params={"days": FLEET_DAYS},
    )
    parallel_seconds = time.perf_counter() - parallel_start

    # Determinism holds at benchmark scale too.
    assert serial.aggregate_json() == parallel.aggregate_json()
    assert len(serial.executed) == FLEET_MACHINES

    speedup = serial_seconds / parallel_seconds
    benchmark.extra_info["machines"] = FLEET_MACHINES
    benchmark.extra_info["workers"] = FLEET_WORKERS
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 3)
    benchmark.extra_info["parallel_seconds"] = round(parallel_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["cpu_count"] = os.cpu_count()

    def run():
        # The timed body is a no-op re-report; the real measurement above
        # ran each configuration exactly once.
        return speedup

    benchmark.pedantic(run, rounds=1, warmup_rounds=0)

    if (os.cpu_count() or 1) >= FLEET_WORKERS:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x speedup at {FLEET_WORKERS} workers, "
            f"measured {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= {FLEET_WORKERS} cores, host has "
            f"{os.cpu_count()}; measured {speedup:.2f}x (recorded in extra_info)"
        )


#: The straggler-heavy acceptance scenario: 32 shards, the first 8 each
#: sleep STRAGGLER_MS -- all of worker 0's opening lease.  Sleeps overlap
#: across processes, so the measured speedup is valid on any core count.
STEAL_SHARDS = 32
STEAL_WORKERS = 4
STEAL_LEASE = 8
STRAGGLER_FIRST = 8
STRAGGLER_MS = 400.0
STEAL_SPEEDUP_TARGET = 3.0

_STRAGGLER_PARAMS = {
    "shard_size": 4,
    "work": 2,
    "straggler_first": STRAGGLER_FIRST,
    "straggler_ms": STRAGGLER_MS,
}


@pytest.mark.benchmark(group="fleet-steal-speedup")
def test_fleet_steal_speedup_on_clustered_stragglers(benchmark):
    """Work stealing vs static leases on clustered stragglers.

    With stealing off, worker 0 serialises all eight 400 ms sleeps
    (a hard 3.2 s floor); with stealing on, idle workers carve up the
    sleeping worker's tail.  The workload is sleep-dominated, so the
    >= 3x assertion holds even on a single-core host -- sleeps overlap
    regardless of parallelism.  Both runs must agree byte-for-byte.
    """
    population = STEAL_SHARDS * _STRAGGLER_PARAMS["shard_size"]

    static_start = time.perf_counter()
    static = run_fleet(
        "synthetic", population=population, seed=77,
        workers=STEAL_WORKERS, lease_size=STEAL_LEASE, steal=False,
        params=_STRAGGLER_PARAMS,
    )
    static_seconds = time.perf_counter() - static_start

    stolen_start = time.perf_counter()
    stolen = run_fleet(
        "synthetic", population=population, seed=77,
        workers=STEAL_WORKERS, lease_size=STEAL_LEASE, steal=True,
        params=_STRAGGLER_PARAMS,
    )
    stolen_seconds = time.perf_counter() - stolen_start

    # Stealing must never change the answer, only the wall clock.
    assert static.aggregate_json() == stolen.aggregate_json()
    assert len(stolen.executed) == STEAL_SHARDS
    assert stolen.steals > 0, "clustered stragglers must force steals"

    speedup = static_seconds / stolen_seconds
    benchmark.extra_info["static_seconds"] = round(static_seconds, 3)
    benchmark.extra_info["stolen_seconds"] = round(stolen_seconds, 3)
    benchmark.extra_info["steals"] = stolen.steals
    benchmark.extra_info["shards_stolen"] = stolen.shards_stolen
    benchmark.extra_info["speedup"] = round(speedup, 3)

    def run():
        # Timed body is a no-op re-report; each configuration ran once.
        return speedup

    benchmark.pedantic(run, rounds=1, warmup_rounds=0)

    assert speedup >= STEAL_SPEEDUP_TARGET, (
        f"expected >= {STEAL_SPEEDUP_TARGET}x from work stealing on the "
        f"clustered-straggler workload, measured {speedup:.2f}x"
    )
