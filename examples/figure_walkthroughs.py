#!/usr/bin/env python3
"""Protocol walkthroughs for every figure in the paper (1-4 and 6).

Each scenario runs the pictured interaction on a fresh protected machine
and prints the numbered protocol steps as they executed -- the runnable
version of the paper's diagrams.

Run:  python examples/figure_walkthroughs.py
"""

from repro.workloads.scenarios import all_figure_scenarios


def main() -> None:
    for trace in all_figure_scenarios():
        print(trace.render())
        print()


if __name__ == "__main__":
    main()
