#!/usr/bin/env python3
"""The Section V-B usability study (46 participants, two tasks).

Task 1: a real Skype-call scenario per participant on a protected machine;
the Likert rating falls out of observable behaviour differences (none).
Task 2: a real hidden camera-probe process fires mid-task; the block and
the overlay alert are genuine, only the human noticing is modelled
(calibrated to the paper's 24/16/6 outcome).

Run:  python examples/usability_study.py [seed]
"""

import sys

from repro.workloads.usability import run_usability_study


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 2016
    results = run_usability_study(seed=seed)
    print(f"seed {seed}")
    print(results.render())
    print()
    print("paper reported            : 24 interrupted / 16 noticed / 6 missed")
    print(
        f"model expectation (46 x)  : "
        f"{46 * 24 / 46:.0f} / {46 * 16 / 46:.0f} / {46 * 6 / 46:.0f} "
        "(this run is one seeded draw from that distribution)"
    )


if __name__ == "__main__":
    main()
