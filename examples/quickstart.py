#!/usr/bin/env python3
"""Quickstart: a protected machine, one spying process, one honest app.

Demonstrates the core Overhaul loop in under a minute of reading:

1. build a simulated desktop with Overhaul installed;
2. a background process tries the microphone -> blocked, alert shown;
3. the user clicks a recorder app -> its microphone open is granted,
   announced by an overlay alert carrying the visual shared secret;
4. two simulated seconds later the permission has expired again.

Run:  python examples/quickstart.py
"""

from repro import Machine
from repro.apps import AudioRecorder, Spyware
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import format_timestamp, from_seconds


def main() -> None:
    machine = Machine.with_overhaul()
    print(f"booted {machine!r}")
    print(f"sensitive devices: {machine.kernel.devfs.sensitive_map.sensitive_paths()}")

    recorder = AudioRecorder(machine)
    spy = Spyware(machine)
    machine.settle()

    print("\n--- background spyware tries the microphone (no interaction) ---")
    sample = spy.attempt_microphone()
    print(f"spyware got: {sample!r}  (blocked attempts: {spy.blocked})")

    print("\n--- the user clicks the recorder's record button ---")
    recorder.click_record()
    samples = recorder.capture_samples(count=16)
    print(f"recorder captured {len(samples)} bytes at {format_timestamp(machine.now)}")
    recorder.stop_recording()

    print("\n--- alerts currently on the trusted overlay ---")
    for alert in machine.xserver.overlay.visible_alerts(machine.now):
        print(f"  [{alert.shared_secret}] {alert.message}")

    print("\n--- two simulated seconds later, the permission has expired ---")
    machine.run_for(from_seconds(2.5))
    try:
        recorder.start_recording()
        print("unexpected: grant without fresh interaction")
    except OverhaulDenied as error:
        print(f"denied as designed: {error}")

    print("\n--- the kernel audit log (what the paper's authors inspected) ---")
    print(machine.kernel.audit.render())


if __name__ == "__main__":
    main()
