#!/usr/bin/env python3
"""Decision-path tracing: replay *why* every verdict happened.

The paper's authors verified Overhaul "by inspecting the logs produced by
our system".  This example shows the reproduction's sharper version of that
inspection: a cross-layer tracer records every hop of each decision --
input provenance, interaction notification, netlink message, permission
monitor verdict, overlay alert -- and the decision-path report reconstructs
the full chain for every grant and deny.

Run:  python examples/trace_decision.py

Equivalent CLI:  python -m repro trace --tree --counters
"""

from repro.obs import collect_counters, render_decision_report, run_traced_quickstart


def main() -> None:
    # The quickstart scenario (spyware denied; a clicked recorder granted;
    # the grant expiring 2.5 s later) on a machine with tracing enabled.
    # Equivalent by hand:  machine = Machine.with_overhaul(trace=True)
    machine = run_traced_quickstart()

    print("--- decision-path report: every verdict back to its input ---")
    print(render_decision_report(machine))

    print("\n--- the raw span forest the report was built from ---")
    print(machine.tracer.render_tree())

    print("\n--- exact cross-layer operation counts ---")
    print(collect_counters(machine).render())

    # Everything above is deterministic: a second traced run renders the
    # identical bytes (window ids are interned in first-seen order).
    again = run_traced_quickstart()
    assert again.tracer.render_tree() == machine.tracer.render_tree()
    print("\nreplayed: second traced run rendered byte-identically")


if __name__ == "__main__":
    main()
