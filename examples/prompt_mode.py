#!/usr/bin/env python3
"""Prompt mode: the Section IV-A extension the paper verified but shelved.

A non-interactive voice daemon needs the microphone.  Under default
Overhaul it is simply blocked (no interaction, ever).  With
``prompt_mode=True`` the failed check raises an unforgeable prompt on the
trusted output path; the user's *hardware* click approves or denies that
one (process, operation) pair for one threshold window.  Synthetic clicks
(XTest) bounce off.

Run:  python examples/prompt_mode.py
"""

from repro import Machine, OverhaulConfig
from repro.apps import SimApp
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds
from repro.xserver.events import EventKind


def main() -> None:
    machine = Machine.with_overhaul(OverhaulConfig(prompt_mode=True))
    daemon = SimApp(machine, "/usr/bin/voiced", comm="voiced", with_window=False)
    machine.settle()
    manager = machine.overhaul.extension.prompt_manager

    print("--- the daemon tries the microphone (no interaction on record) ---")
    try:
        daemon.open_device("mic0")
    except OverhaulDenied as error:
        print(f"denied: {error}")
    print(f"prompt on screen: {manager.active.render()}")

    print("\n--- malware tries to approve it with a forged XTest click ---")
    machine.xserver.xtest_fake_input(
        daemon.client, EventKind.BUTTON_PRESS, detail=1, x=100, y=10
    )
    print(f"prompt still pending: {manager.active is not None}")

    print("\n--- the user approves with a real hardware click ---")
    machine.mouse.click(100, 10)
    fd = daemon.open_device("mic0")
    print(f"daemon's retry granted: fd {fd}")

    print("\n--- the approval expires like any interaction (delta = 2 s) ---")
    machine.run_for(from_seconds(2.5))
    try:
        daemon.open_device("mic0")
    except OverhaulDenied as error:
        print(f"denied again: {error}")
    print(f"\nprompts shown: {manager.prompts_shown}, responses: {manager.responses_sent}")


if __name__ == "__main__":
    main()
