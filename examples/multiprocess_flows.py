#!/usr/bin/env python3
"""Cross-process interaction tracking: Figures 3 & 4 plus the CLI path.

Three flows where the process touching the device is *not* the process the
user touched:

- launcher -> fork/exec -> screenshot tool            (P1, Figure 3)
- browser -> shared-memory IPC -> tab -> camera       (P2, Figure 4)
- terminal emulator -> pty -> shell -> arecord        (pty patch, IV-B)

Run:  python examples/multiprocess_flows.py
"""

from repro import Machine
from repro.apps import Browser, Launcher, TerminalEmulator
from repro.apps.recorder import CommandLineRecorder
from repro.sim.time import format_timestamp


def main() -> None:
    machine = Machine.with_overhaul()

    print("--- Figure 3: launcher spawns a screenshot tool (P1) ---")
    launcher = Launcher(machine)
    machine.settle()
    child = launcher.launch_program("/usr/bin/shot", comm="shot")
    print(f"launcher interaction: {format_timestamp(launcher.task.interaction_ts)}")
    print(f"child (pid {child.pid}) inherited:  {format_timestamp(child.interaction_ts)}")
    client = machine.xserver.connect(child)
    image = machine.xserver.get_image(client, machine.xserver.root_window.drawable_id)
    print(f"screenshot captured: {len(image)} bytes\n")

    print("--- Figure 4: browser tab opens the camera via shm IPC (P2) ---")
    browser = Browser(machine)
    machine.settle()
    tab = browser.open_tab()
    print(f"tab before click: {format_timestamp(tab.task.interaction_ts)}")
    browser.click()
    faults_before = machine.kernel.shm.total_faults
    browser.start_video_conference(tab)
    print(f"tab after shm command: {format_timestamp(tab.task.interaction_ts)} "
          f"({machine.kernel.shm.total_faults - faults_before} page fault(s) serviced)")
    print(f"camera fd in the tab process: {tab.camera_fd}\n")

    print("--- CLI: xterm -> bash -> arecord through the pty driver ---")
    terminal = TerminalEmulator(machine)
    machine.settle()
    task = terminal.run_command("arecord", "/usr/bin/arecord")
    print(f"shell history: {terminal.shell.history}")
    print(f"arecord task interaction: {format_timestamp(task.interaction_ts)}")
    recorder = CommandLineRecorder(machine, task)
    data = recorder.record_once(count=32)
    print(f"arecord sampled {len(data)} bytes from the microphone")


if __name__ == "__main__":
    main()
