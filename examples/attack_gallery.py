#!/usr/bin/env python3
"""Attack gallery: every attack from the paper's analysis, on both machines.

Each attack runs first against a stock Linux/X11 machine (where it succeeds
-- demonstrating the simulated substrate genuinely has the holes) and then
against an Overhaul machine (where it fails).  Nine variants:

  1. background spyware sampling mic/screen/clipboard
  2. input forgery via SendEvent                           (S2)
  3. input forgery via XTestFakeInput                      (S2)
  4. clickjacking with a transparent overlay               (S3)
  5. fake overlay alerts                                   (S4)
  6. clipboard-protocol bypass via SendEvent(SelectionRequest)
  7. in-flight clipboard property snooping
  8. screen theft via CopyArea from a foreign window
  9. code injection into a blessed child via ptrace

Run:  python examples/attack_gallery.py
"""

from repro import Machine
from repro.workloads.attacks import run_attack_matrix


def main() -> None:
    print(run_attack_matrix(Machine.baseline()).render())
    print()
    print(run_attack_matrix(Machine.with_overhaul()).render())


if __name__ == "__main__":
    main()
