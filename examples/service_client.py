#!/usr/bin/env python3
"""Overhaul-as-a-service: the permission daemon driven over a real socket.

Start the daemon first (it prints a ready line when the sockets are
bound), then point this script at it:

    python -m repro serve --unix /tmp/overhaul.sock &
    python examples/service_client.py --unix /tmp/overhaul.sock

The walkthrough mirrors the quickstart, but split across the service
boundary: *this* process is an untrusted client; the temporal-proximity
rule runs in the daemon, inside the tenant's own simulated machine.  Two
tenants demonstrate the partition: machine-a's click never unlocks
machine-b.
"""

import argparse

from repro.service import ServiceClient


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--unix", metavar="PATH", help="daemon UNIX socket")
    target.add_argument("--tcp", metavar="HOST:PORT", help="daemon TCP address")
    args = parser.parse_args()
    if args.unix:
        client = ServiceClient(unix_path=args.unix)
    else:
        host, _, port = args.tcp.rpartition(":")
        client = ServiceClient(tcp=(host, int(port)))

    with client:
        print("ping ->", client.ping())

        # A fresh partition per run, so reruns against a long-lived
        # daemon always tell the same story.
        client.reset("machine-a")
        client.reset("machine-b")

        pid = client.spawn("machine-a", "recorder")["pid"]
        print(f"spawned 'recorder' in machine-a -> pid {pid}")

        denied = client.query("machine-a", pid, "microphone:/dev/mic0")
        print("query before any click ->", denied)
        assert not denied["granted"]

        client.interact("machine-a", pid)  # the user clicks record
        granted = client.query("machine-a", pid, "microphone:/dev/mic0")
        print("query just after click ->", granted)
        assert granted["granted"]

        # Tenants are partitions: the same pid in machine-b stays locked.
        other = client.spawn("machine-b", "recorder")["pid"]
        crossed = client.query("machine-b", other, "microphone:/dev/mic0")
        print("same query in machine-b ->", crossed)
        assert not crossed["granted"]

        # Sim time is decoupled from wall clock: the grant only expires
        # because *this tenant* advances 2.5 s past delta = 2 s.
        client.advance("machine-a", 2_500_000)
        expired = client.query("machine-a", pid, "microphone:/dev/mic0")
        print("query 2.5 s (sim) later ->", expired)
        assert not expired["granted"]

        digest = client.digest("machine-a")
        print("machine-a decision-history digest ->", digest["digest"][:16], "...")
        stats = client.stats("machine-a")
        print(f"machine-a stats -> {stats['grants']} grant(s), {stats['denies']} denies")
        assert (stats["grants"], stats["denies"]) == (1, 2)

    print("service walkthrough ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
