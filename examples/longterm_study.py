#!/usr/bin/env python3
"""The Section V-D empirical study: 21 days, two machines, live spyware.

Identical seeded daily workloads (video calls, password pastes, document
edits, screenshots) run on a protected and an unprotected machine while the
same spyware samples the clipboard, screen, and microphone every ~10
simulated minutes.

Run:  python examples/longterm_study.py [days] [seed]
"""

import sys

from repro.workloads.longterm import run_comparison


def main() -> None:
    days = int(sys.argv[1]) if len(sys.argv) > 1 else 21
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 2016
    print(f"running the two-machine study: {days} days, seed {seed}\n")
    pair = run_comparison(seed=seed, days=days)

    for label in ("protected", "unprotected"):
        print(pair[label].render())
        print()

    protected, unprotected = pair["protected"], pair["unprotected"]
    print("paper comparison:")
    print(f"  protected machine stolen items : paper 0   -> {protected.total_stolen}")
    print(f"  protected false positives      : paper 0   -> {protected.legit_failures}")
    print(
        "  unprotected machine            : paper 'successfully spied' -> "
        f"{unprotected.total_stolen} items incl. {len(unprotected.stolen_passwords)} "
        "password captures"
    )


if __name__ == "__main__":
    main()
