#!/usr/bin/env python3
"""Gray-box intent correlation: the paper's future-work direction, working.

Black-box Overhaul blesses *any* operation after *any* recent input — the
"strictly weaker than ACGs" concession of Section III-E.  The gray-box
extension (sketched in Section VII) narrows it: a per-application intent
profile (the artifact a program analysis would produce, here learned from
a training trace) binds each sensitive operation to the UI inputs that
express intent for it.

Run:  python examples/graybox_intent.py
"""

from repro import Machine, OverhaulConfig
from repro.apps import SimApp
from repro.core.graybox import InputDescriptor, IntentProfileLearner
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds


def main() -> None:
    machine = Machine.with_overhaul(OverhaulConfig(graybox_enabled=True))
    app = SimApp(machine, "/usr/bin/voicenote", comm="voicenote")
    machine.settle()
    geometry = app.window.geometry

    print("--- black-box gap, before any profile ---")
    machine.mouse.click(geometry.x + 15, geometry.y + 15)  # the 'save' button
    fd = app.open_device("mic0")
    print(f"'save' click blesses the microphone anyway (fd {fd}) — the ACG gap")
    app.close_fd(fd)

    print("\n--- training: observe which input precedes mic use ---")
    learner = IntentProfileLearner("voicenote")
    machine.run_for(from_seconds(3.0))
    machine.mouse.click(geometry.x + 500, geometry.y + 400)  # the record button
    learner.observe_input(InputDescriptor("button", 500, 400), machine.now)
    fd = app.open_device("mic0")
    learner.observe_operation("microphone:/dev/mic0", machine.now)
    app.close_fd(fd)
    machine.overhaul.monitor.graybox.install_profile(learner.build_profile())
    print("profile learned: microphone <- clicks near (500, 400)")

    print("\n--- enforcement ---")
    machine.run_for(from_seconds(3.0))
    machine.mouse.click(geometry.x + 15, geometry.y + 15)
    try:
        app.open_device("mic0")
        print("unexpected grant")
    except OverhaulDenied:
        print("'save' click no longer blesses the microphone (intent mismatch)")
    machine.mouse.click(geometry.x + 500, geometry.y + 400)
    fd = app.open_device("mic0")
    print(f"record-button click still works (fd {fd})")
    print(f"\nintent denials recorded: {machine.overhaul.monitor.graybox.intent_denials}")


if __name__ == "__main__":
    main()
