#!/usr/bin/env python3
"""The Section V-C applicability & false-positive study.

Exercises behavioural models of all 58 device/screen applications and all
50 clipboard applications on fresh Overhaul machines and prints the same
tallies the paper reports: one spurious alert (Skype's startup camera
probe), the delayed-screenshot limitation, zero false positives.

Run:  python examples/applicability_sweep.py
"""

from collections import Counter

from repro.workloads.app_catalog import (
    build_clipboard_app_pool,
    build_device_app_pool,
    run_applicability_sweep,
)


def main() -> None:
    device_pool = build_device_app_pool()
    clipboard_pool = build_clipboard_app_pool()
    print(f"device/screen pool: {len(device_pool)} applications")
    by_category = Counter(spec.category for spec in device_pool)
    for category, count in sorted(by_category.items()):
        print(f"  {category:<22} {count}")
    print(f"clipboard pool:     {len(clipboard_pool)} applications\n")

    summary = run_applicability_sweep(device_pool + clipboard_pool)
    print(summary.render())

    print("\nper-app notes (non-clean results only):")
    for result in summary.results:
        if result.spurious_alert or result.limitation_hit or result.false_positive:
            print(f"  {result.spec.name:<18} {result.notes or result.spec.pattern.value}")

    print("\npaper comparison:")
    print("  spurious alerts : paper 1 (Skype)      -> reproduced",
          [r.spec.name for r in summary.spurious_alerts])
    print("  limitations     : paper delayed shots  -> reproduced",
          [r.spec.name for r in summary.limitations])
    print("  false positives : paper 0              -> reproduced",
          len(summary.false_positives))


if __name__ == "__main__":
    main()
