#!/usr/bin/env python3
"""Interaction blast radius: the cost of black-box tracking, quantified.

Section III-E concedes Overhaul is "strictly weaker" than intent-precise
systems (ACGs): one click is propagated to everything the clicked app
transitively talks to before delta expires.  This experiment makes the
trade-off concrete across three desktop topologies — an isolated app, a
moderately chatty session, and a D-Bus-style ecosystem where almost every
process exchanges messages constantly.

Run:  python examples/blast_radius.py
"""

from repro.workloads.blast_radius import sweep_topologies


def main() -> None:
    for result in sweep_topologies():
        print(result.render())
        print()
    print("reading: the radius grows with IPC chattiness (the black-box")
    print("over-approximation) but is always bounded in time by delta --")
    print("after 2 s without fresh input, nothing can use the click.")


if __name__ == "__main__":
    main()
