#!/usr/bin/env python3
"""Population-scale evaluation with the fleet engine.

The paper ran two machines for 21 days and 46 students through two tasks;
this example reruns both studies over a whole *population* of
independently seeded simulated machines and users, sharded across a
multiprocessing worker pool, and prints the population rates with 95%
confidence intervals.

Run:  python examples/fleet_population.py [machines] [users] [workers]
"""

import os
import sys

from repro.fleet import run_fleet


def main() -> None:
    machines = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    users = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else (os.cpu_count() or 1)

    print(f"V-D fleet: {machines} machine pairs x 21 days, {workers} workers")
    longterm = run_fleet(
        "longterm", population=machines, seed=2016, workers=workers,
        params={"days": 21},
    )
    print(longterm.render())
    protected = longterm.aggregate["protected"]
    unprotected = longterm.aggregate["unprotected"]
    fp = protected["false_positive_rate"]
    block = protected["block_rate"]
    print(f"  protected items stolen   : {protected['items_stolen']}")
    print(
        f"  block rate               : {block['rate']:.4f} "
        f"CI95 [{block['ci95_low']:.5f}, {block['ci95_high']:.5f}]"
    )
    print(
        f"  false-positive rate      : {fp['successes']}/{fp['trials']} "
        f"CI95 [{fp['ci95_low']:.5f}, {fp['ci95_high']:.5f}]"
    )
    print(f"  unprotected items stolen : {unprotected['items_stolen']}")
    print()

    print(f"V-B fleet: {users} participants, {workers} workers")
    usability = run_fleet("usability", population=users, seed=2016, workers=workers)
    print(usability.render())
    aggregate = usability.aggregate
    identical = aggregate["identical_experience"]
    noticed = aggregate["alert_noticed"]
    print(
        f"  identical experience     : {identical['successes']}/{identical['trials']} "
        f"CI95 [{identical['ci95_low']:.5f}, {identical['ci95_high']:.5f}]"
    )
    print(f"  reactions                : {aggregate['reactions']}")
    print(
        f"  noticed the alert        : {noticed['rate']:.4f} "
        f"CI95 [{noticed['ci95_low']:.5f}, {noticed['ci95_high']:.5f}]"
    )


if __name__ == "__main__":
    main()
