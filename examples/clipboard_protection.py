#!/usr/bin/env python3
"""Clipboard sniffing, attacked and defended (Sections III-C and IV-A).

Plays the same three attacks against an unprotected and a protected
machine:

1. a background process simply pasting the clipboard;
2. a SendEvent(SelectionRequest) protocol bypass soliciting the data
   straight from the selection owner;
3. a PropertyNotify snooper grabbing the in-flight transfer property.

On the baseline machine all three steal the password manager's secret; on
the Overhaul machine all three come back empty-handed while the user's own
copy & paste continues to work.

Run:  python examples/clipboard_protection.py
"""

from repro import Machine
from repro.apps import (
    ClipboardProtocolAttacker,
    PasswordManager,
    Spyware,
    TextEditor,
)
from repro.sim.time import from_seconds


def attack_round(machine: Machine) -> None:
    vault = PasswordManager(machine)
    editor = TextEditor(machine)
    spy = Spyware(machine)
    protocol_attacker = ClipboardProtocolAttacker(machine)
    snooper = ClipboardProtocolAttacker(machine, comm="propsnoop")
    machine.settle()
    snooper.watch_window_properties(editor.window.drawable_id)

    secret = vault.user_copy_password("bank")
    print(f"  user copies a password from the vault ({len(secret)} bytes)")
    machine.run_for(from_seconds(0.3))

    stolen = spy.attempt_clipboard()
    print(f"  attack 1 (background paste)      -> {stolen!r}")
    stolen = protocol_attacker.solicit_owner_directly(vault)
    print(f"  attack 2 (SendEvent bypass)      -> {stolen!r}")

    pasted = editor.user_paste()  # the legitimate paste, snooper watching
    print(f"  legitimate paste by the user     -> {pasted!r}")
    grabbed = [s for s in snooper.sniffed if s == secret]
    print(f"  attack 3 (property snooping)     -> {grabbed[0]!r}" if grabbed
          else "  attack 3 (property snooping)     -> None")


def main() -> None:
    print("=== unprotected machine (stock Linux + X11) ===")
    attack_round(Machine.baseline())
    print()
    print("=== OVERHAUL machine ===")
    attack_round(Machine.with_overhaul())


if __name__ == "__main__":
    main()
