"""Unit tests for the transport-agnostic service core.

Covers the verb surface, request validation, batching equivalence (the
batch-boundaries-are-unobservable contract), tenant isolation, and the
``decision_cache_size`` config knob threaded through a tenant partition.
"""

import pytest

from repro.core.config import OverhaulConfig
from repro.service.core import PermissionService
from repro.service.protocol import (
    PROTOCOL_VERSION,
    E_BAD_REQUEST,
    E_TENANT_LIMIT,
    E_UNSUPPORTED_VERSION,
)
from repro.sim.time import from_seconds


def req(op, **fields):
    envelope = {"v": PROTOCOL_VERSION, "id": fields.pop("id", 1), "op": op}
    envelope.update(fields)
    return envelope


def spawn_pid(service, tenant, name="alpha"):
    response = service.apply(req("spawn", tenant=tenant, name=name))
    assert response["ok"], response
    return response["result"]["pid"]


class TestVerbs:
    def test_ping(self):
        response = PermissionService().apply(req("ping"))
        assert response["result"] == {"pong": True, "version": PROTOCOL_VERSION}

    def test_spawn_is_idempotent(self):
        service = PermissionService()
        first = service.apply(req("spawn", tenant="t0", name="alpha"))["result"]
        second = service.apply(req("spawn", tenant="t0", name="alpha"))["result"]
        assert first["created"] and not second["created"]
        assert first["pid"] == second["pid"]

    def test_query_denied_before_any_interaction(self):
        service = PermissionService()
        pid = spawn_pid(service, "t0")
        result = service.apply(req("query", tenant="t0", pid=pid, operation="paste"))["result"]
        assert result["granted"] is False

    def test_interact_then_query_grants_within_threshold(self):
        service = PermissionService()
        pid = spawn_pid(service, "t0")
        service.apply(req("interact", tenant="t0", pid=pid))
        result = service.apply(req("query", tenant="t0", pid=pid, operation="paste"))["result"]
        assert result["granted"] is True
        assert result["interaction_age"] == 0

    def test_grant_expires_after_advance_past_delta(self):
        service = PermissionService()
        pid = spawn_pid(service, "t0")
        service.apply(req("interact", tenant="t0", pid=pid))
        service.apply(req("advance", tenant="t0", dt=from_seconds(3.0)))
        result = service.apply(req("query", tenant="t0", pid=pid, operation="paste"))["result"]
        assert result["granted"] is False

    def test_digest_is_deterministic(self):
        digests = []
        for _ in range(2):
            service = PermissionService()
            pid = spawn_pid(service, "t0")
            service.apply(req("interact", tenant="t0", pid=pid))
            service.apply(req("query", tenant="t0", pid=pid, operation="copy"))
            digests.append(service.apply(req("digest", tenant="t0"))["result"]["digest"])
        assert digests[0] == digests[1]

    def test_tenant_stats_counts_history(self):
        service = PermissionService()
        pid = spawn_pid(service, "t0")
        service.apply(req("interact", tenant="t0", pid=pid))
        service.apply(req("query", tenant="t0", pid=pid, operation="paste"))
        stats = service.apply(req("stats", tenant="t0"))["result"]
        assert stats["queries"] == 1
        assert stats["grants"] == 1
        assert stats["notifications"] == 1
        assert stats["pids"] == 1

    def test_service_stats_lists_tenants_and_counters(self):
        service = PermissionService()
        spawn_pid(service, "t0")
        result = service.apply(req("stats"))["result"]
        assert result["tenants"] == ["t0"]
        assert result["counters"]["service.tenants_created"] == 1

    def test_reset_discards_partition_history_free(self):
        service = PermissionService()
        pid = spawn_pid(service, "t0")
        service.apply(req("interact", tenant="t0", pid=pid))
        first = service.apply(req("reset", tenant="t0"))["result"]
        second = service.apply(req("reset", tenant="t0"))["result"]
        # Byte-identical whether or not the partition existed.
        assert first == second == {"reset": True}
        assert service.tenant_ids == []


class TestValidation:
    def test_wrong_version_rejected(self):
        response = PermissionService().apply({"v": 99, "id": 3, "op": "ping"})
        assert response["error"] == E_UNSUPPORTED_VERSION
        assert response["id"] == 3

    def test_unknown_op_rejected(self):
        response = PermissionService().apply(req("frobnicate"))
        assert response["error"] == E_BAD_REQUEST

    def test_bad_tenant_token_rejected(self):
        response = PermissionService().apply(req("spawn", tenant="../etc", name="alpha"))
        assert response["error"] == E_BAD_REQUEST

    def test_non_integer_pid_rejected(self):
        response = PermissionService().apply(
            req("query", tenant="t0", pid="12", operation="paste")
        )
        assert response["error"] == E_BAD_REQUEST

    def test_boolean_pid_rejected(self):
        response = PermissionService().apply(
            req("query", tenant="t0", pid=True, operation="paste")
        )
        assert response["error"] == E_BAD_REQUEST

    def test_negative_advance_rejected(self):
        response = PermissionService().apply(req("advance", tenant="t0", dt=-1))
        assert response["error"] == E_BAD_REQUEST

    def test_non_dict_request_rejected(self):
        response = PermissionService().apply_many(["not a dict"])[0]
        assert response["error"] == E_BAD_REQUEST

    def test_tenant_limit_enforced(self):
        service = PermissionService(max_tenants=1)
        spawn_pid(service, "t0")
        response = service.apply(req("spawn", tenant="t1", name="alpha"))
        assert response["error"] == E_TENANT_LIMIT

    def test_errors_do_not_poison_the_batch(self):
        service = PermissionService()
        pid = spawn_pid(service, "t0")
        service.apply(req("interact", tenant="t0", pid=pid))
        responses = service.apply_many(
            [
                req("query", tenant="t0", pid=pid, operation="paste"),
                req("frobnicate"),
                req("query", tenant="t0", pid=pid, operation="copy"),
            ]
        )
        assert responses[0]["ok"] and responses[2]["ok"]
        assert responses[1]["error"] == E_BAD_REQUEST


class TestBatching:
    def _script(self, pid):
        script = [req("interact", tenant="t0", pid=pid, id=1)]
        for i, operation in enumerate(("paste", "copy", "screen_capture"), start=2):
            script.append(req("query", tenant="t0", pid=pid, operation=operation, id=i))
        script.append(req("advance", tenant="t0", dt=from_seconds(2.5), id=5))
        script.append(req("query", tenant="t0", pid=pid, operation="paste", id=6))
        script.append(req("digest", tenant="t0", id=7))
        return script

    def test_batch_boundaries_are_unobservable(self):
        """One apply_many == a loop of single applies, byte for byte."""
        reference_service = PermissionService()
        pid = spawn_pid(reference_service, "t0")
        reference = [reference_service.apply(r) for r in self._script(pid)]

        batched_service = PermissionService()
        assert spawn_pid(batched_service, "t0") == pid
        batched = batched_service.apply_many(self._script(pid))
        assert batched == reference

    def test_interleaved_tenants_batch_correctly(self):
        """Query runs split at tenant switches without changing results."""
        service = PermissionService()
        pid_a = spawn_pid(service, "a")
        pid_b = spawn_pid(service, "b")
        service.apply(req("interact", tenant="a", pid=pid_a))
        responses = service.apply_many(
            [
                req("query", tenant="a", pid=pid_a, operation="paste", id=1),
                req("query", tenant="a", pid=pid_a, operation="copy", id=2),
                req("query", tenant="b", pid=pid_b, operation="paste", id=3),
                req("query", tenant="a", pid=pid_a, operation="paste", id=4),
            ]
        )
        assert [r["result"]["granted"] for r in responses] == [True, True, False, True]


class TestTenantIsolation:
    def test_interactions_never_cross_tenants(self):
        service = PermissionService()
        pid_a = spawn_pid(service, "a")
        pid_b = spawn_pid(service, "b")
        assert pid_a == pid_b  # partitions boot identically...
        service.apply(req("interact", tenant="a", pid=pid_a))
        granted_a = service.apply(
            req("query", tenant="a", pid=pid_a, operation="paste")
        )["result"]["granted"]
        granted_b = service.apply(
            req("query", tenant="b", pid=pid_b, operation="paste")
        )["result"]["granted"]
        assert granted_a is True
        assert granted_b is False  # ...but A's interaction never unlocks B

    def test_advance_moves_only_one_clock(self):
        service = PermissionService()
        spawn_pid(service, "a")
        spawn_pid(service, "b")
        service.apply(req("advance", tenant="a", dt=1_000_000))
        time_a = service.apply(req("stats", tenant="a"))["result"]["time"]
        time_b = service.apply(req("stats", tenant="b"))["result"]["time"]
        assert time_a >= 1_000_000
        assert time_b < 1_000_000


class TestDecisionCacheSizing:
    def test_small_cache_still_decides_correctly(self):
        """A tenant sized down to a tiny cache stays correct, just colder."""

        def tiny():
            return OverhaulConfig(decision_cache_size=2)

        service = PermissionService(config_factory=tiny)
        pid = spawn_pid(service, "t0")
        service.apply(req("interact", tenant="t0", pid=pid))
        operations = ["paste", "copy", "screen_capture", "microphone:/dev/mic0"]
        for operation in operations:
            result = service.apply(
                req("query", tenant="t0", pid=pid, operation=operation)
            )["result"]
            assert result["granted"] is True
        stats = service.apply(req("stats", tenant="t0"))["result"]
        assert stats["queries"] == len(operations)

    def test_config_factory_threads_to_monitor(self):
        def tiny():
            return OverhaulConfig(decision_cache_size=7)

        service = PermissionService(config_factory=tiny)
        tenant = service.tenant("t0")
        assert tenant._monitor._decision_cache_limit == 7
