"""Client behaviour when the daemon dies underneath it.

The contract: a dead daemon surfaces as :class:`ConnectionError` within
the socket timeout -- never a hang -- for the sync client, the pipelined
async client, and the nastiest case, a connection with one complete
response already buffered and the next one cut mid-frame.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import canonical_json

TIMEOUT = 10.0


def run(coroutine_function, *args):
    return asyncio.run(coroutine_function(*args))


class _ScriptedServer(threading.Thread):
    """Accept one client; after each request, send the next scripted blob
    of raw bytes; close when the script runs out."""

    def __init__(self, path: str, script):
        super().__init__(daemon=True)
        self.path = path
        self.script = list(script)
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(1)

    def run(self) -> None:
        conn, _ = self._listener.accept()
        for blob in self.script:
            conn.recv(65536)
            conn.sendall(blob)
        conn.close()
        self._listener.close()


def _frame(payload: dict) -> bytes:
    body = canonical_json(payload).encode("utf-8")
    return struct.pack("!I", len(body)) + body


class TestSyncClientDaemonDeath:
    def test_clean_close_before_response_raises(self, tmp_path):
        path = str(tmp_path / "dead.sock")
        server = _ScriptedServer(path, [b""])  # answer nothing, just close
        server.start()
        with ServiceClient(unix_path=path, timeout=TIMEOUT) as client:
            with pytest.raises(ConnectionError) as excinfo:
                client.request_raw("ping")
            assert "closed the connection" in str(excinfo.value)
        server.join(timeout=TIMEOUT)

    def test_death_mid_multiframe_stats_buffer(self, tmp_path):
        # The buffered-decoder case: the daemon sends one whole response
        # plus the first half of a second, then dies.  Request one must
        # succeed from the buffer; request two must raise, not spin.
        path = str(tmp_path / "midstats.sock")
        ok_one = _frame({"v": 1, "id": 1, "ok": True, "result": {"pong": True}})
        # A stats-sized response cut mid-body after its header.
        stats_body = canonical_json(
            {"v": 1, "id": 2, "ok": True,
             "result": {"counters": {f"service.k{i}": i for i in range(200)}}}
        ).encode("utf-8")
        partial = struct.pack("!I", len(stats_body)) + stats_body[: len(stats_body) // 2]
        # Two script steps: the close must happen only after the *second*
        # request is received, so the client observes a clean EOF with a
        # half frame buffered (not a racy ECONNRESET on send).
        server = _ScriptedServer(path, [ok_one + partial, b""])
        server.start()
        with ServiceClient(unix_path=path, timeout=TIMEOUT) as client:
            assert client.request_raw("ping")["result"] == {"pong": True}
            with pytest.raises(ConnectionError) as excinfo:
                client.request_raw("stats")
            assert "mid-frame" in str(excinfo.value)
            assert "bytes short" in str(excinfo.value)
        server.join(timeout=TIMEOUT)


class TestAsyncClientDaemonDeath:
    def test_pipelined_requests_all_fail_within_timeout(self, tmp_path):
        async def body():
            path = str(tmp_path / "async-dead.sock")
            daemon = ServiceDaemon(PermissionService(), unix_path=path)
            await daemon.start()
            gate = asyncio.Event()
            daemon.dispatch_gate = gate  # hold every response back

            client = await AsyncServiceClient.connect(unix_path=path)
            futures = [
                asyncio.ensure_future(client.request_raw("ping")) for _ in range(5)
            ]
            await client.drain()
            while daemon.queue_depth < 5:
                await asyncio.sleep(0.005)
            # Kill the daemon abruptly: abort every client transport (the
            # moral equivalent of kill -9 mid-pipeline).
            for conn in list(daemon._connections):
                conn.writer.transport.abort()
            results = await asyncio.wait_for(
                asyncio.gather(*futures, return_exceptions=True), timeout=TIMEOUT
            )
            assert len(results) == 5
            for result in results:
                assert isinstance(result, ConnectionError)
            # Fail-fast afterwards: no new future parks on a dead pipe.
            with pytest.raises(ConnectionError):
                await asyncio.wait_for(client.request_raw("ping"), timeout=TIMEOUT)
            await client.close()
            gate.set()
            daemon.begin_drain()
            await asyncio.wait_for(daemon.wait_stopped(), timeout=TIMEOUT)

        run(body)
