"""Unit tests for the service wire protocol (framing and envelopes)."""

import json
import struct

import pytest

from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    PROTOCOL_VERSION,
    E_BAD_REQUEST,
    E_FRAME_TOO_LARGE,
    FrameDecoder,
    FrameError,
    canonical_json,
    decode_body,
    encode_frame,
    error_response,
    ok_response,
)


class TestFraming:
    def test_round_trip(self):
        request = {"v": PROTOCOL_VERSION, "id": 7, "op": "ping"}
        frame = encode_frame(request)
        (length,) = struct.unpack("!I", frame[:HEADER_SIZE])
        assert length == len(frame) - HEADER_SIZE
        assert decode_body(frame[HEADER_SIZE:]) == request

    def test_body_is_canonical_json(self):
        frame = encode_frame({"b": 1, "a": 2})
        body = frame[HEADER_SIZE:].decode("utf-8")
        assert body == '{"a":2,"b":1}'
        assert canonical_json({"b": 1, "a": 2}) == body

    def test_decode_rejects_garbage(self):
        with pytest.raises(FrameError) as excinfo:
            decode_body(b"\xff\xfe not json")
        assert excinfo.value.code == E_BAD_REQUEST

    def test_decode_rejects_non_object(self):
        with pytest.raises(FrameError) as excinfo:
            decode_body(b"[1,2,3]")
        assert excinfo.value.code == E_BAD_REQUEST


class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        frames = encode_frame({"id": 1}) + encode_frame({"id": 2})
        decoder = FrameDecoder()
        seen = []
        for i in range(len(frames)):
            seen.extend(decoder.feed(frames[i : i + 1]))
        assert [f["id"] for f in seen] == [1, 2]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_feed(self):
        blob = b"".join(encode_frame({"id": i}) for i in range(5))
        assert [f["id"] for f in FrameDecoder().feed(blob)] == list(range(5))

    def test_pending_bytes_tracks_partial_frame(self):
        frame = encode_frame({"op": "ping"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-2]) == []
        assert decoder.pending_bytes == len(frame) - 2

    def test_oversized_announcement_raises(self):
        decoder = FrameDecoder(max_frame=16)
        header = struct.pack("!I", 17)
        with pytest.raises(FrameError) as excinfo:
            decoder.feed(header)
        assert excinfo.value.code == E_FRAME_TOO_LARGE

    def test_default_bound_accepts_large_valid_frame(self):
        body = {"blob": "x" * 1024}
        assert FrameDecoder(max_frame=DEFAULT_MAX_FRAME).feed(encode_frame(body)) == [body]


class TestEnvelopes:
    def test_ok_response_echoes_id(self):
        response = ok_response(42, {"pong": True})
        assert response == {
            "v": PROTOCOL_VERSION,
            "id": 42,
            "ok": True,
            "result": {"pong": True},
        }

    def test_error_response_shape(self):
        response = error_response(None, E_BAD_REQUEST, "nope")
        assert response["ok"] is False
        assert response["error"] == E_BAD_REQUEST
        assert response["id"] is None

    def test_responses_serialise_deterministically(self):
        a = canonical_json(ok_response(1, {"z": 1, "a": 2}))
        b = canonical_json(ok_response(1, {"a": 2, "z": 1}))
        assert a == b
        json.loads(a)  # still valid JSON


# -- packed (wire v2) bodies ---------------------------------------------------

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.service.protocol import (  # noqa: E402
    LENGTH_MASK,
    PACKED_BIT,
    PK_INTERACT,
    PK_QUERY,
    WIRE_VERSION,
    encode_packed_frame,
    encode_request_frame,
    encode_response_frame,
    pack_interact,
    pack_interact_ok,
    pack_query,
    pack_query_ok,
    packed_request_id,
    packed_tenant,
    rewrite_packed_id,
    unpack_body,
)


class TestPackedRoundTrip:
    def test_query_round_trips_to_json_twin(self):
        request = {
            "v": PROTOCOL_VERSION, "id": 42, "op": "query",
            "tenant": "t0", "pid": 12, "operation": "paste", "at": 5_000_000,
        }
        body = pack_query(42, "t0", 12, "paste", 5_000_000)
        assert unpack_body(body) == request

    def test_query_without_at_omits_the_key(self):
        body = pack_query(7, "t1", 3, "screen_capture")
        decoded = unpack_body(body)
        assert "at" not in decoded
        assert decoded["operation"] == "screen_capture"

    def test_interact_round_trips(self):
        body = pack_interact(9, "tenant.x", 4, at=123)
        assert unpack_body(body) == {
            "v": PROTOCOL_VERSION, "id": 9, "op": "interact",
            "tenant": "tenant.x", "pid": 4, "at": 123,
        }

    def test_query_ok_round_trips_and_age_flag(self):
        body = pack_query_ok(5, True, "interaction fresh", 1234, 9999)
        assert unpack_body(body) == {
            "v": PROTOCOL_VERSION, "id": 5, "ok": True,
            "result": {
                "granted": True, "reason": "interaction fresh",
                "interaction_age": 1234, "time": 9999,
            },
        }
        body = pack_query_ok(5, False, "no interaction", None, 9999)
        assert unpack_body(body)["result"]["interaction_age"] is None

    def test_interact_ok_round_trips(self):
        assert unpack_body(pack_interact_ok(3, 777)) == {
            "v": PROTOCOL_VERSION, "id": 3, "ok": True, "result": {"time": 777},
        }

    @settings(max_examples=50, deadline=None)
    @given(
        request_id=st.integers(min_value=-(2**63), max_value=2**63 - 1),
        tenant=st.from_regex(r"[A-Za-z0-9][A-Za-z0-9_.:-]{0,63}", fullmatch=True),
        pid=st.integers(min_value=0, max_value=2**32 - 1),
        operation=st.text(min_size=1, max_size=80),
        at=st.one_of(st.none(), st.integers(min_value=0, max_value=2**62)),
    )
    def test_query_round_trip_property(self, request_id, tenant, pid, operation, at):
        body = pack_query(request_id, tenant, pid, operation, at)
        decoded = unpack_body(body)
        assert decoded["id"] == request_id
        assert decoded["tenant"] == tenant
        assert decoded["pid"] == pid
        assert decoded["operation"] == operation
        assert decoded.get("at") == at if at is not None else "at" not in decoded


class TestPackedRejection:
    def test_unknown_tag(self):
        with pytest.raises(FrameError):
            unpack_body(b"\x7f" + b"\x00" * 8)

    def test_truncated_body(self):
        body = pack_query(1, "t0", 2, "paste")
        with pytest.raises(FrameError):
            unpack_body(body[:-3])

    def test_trailing_bytes(self):
        body = pack_query(1, "t0", 2, "paste") + b"xx"
        with pytest.raises(FrameError) as excinfo:
            unpack_body(body)
        assert "trailing" in str(excinfo.value)

    def test_empty_body(self):
        with pytest.raises(FrameError):
            unpack_body(b"")

    def test_peek_tenant_rejects_response_tags(self):
        with pytest.raises(FrameError):
            packed_tenant(pack_interact_ok(1, 5))


class TestPackedPeekAndRewrite:
    def test_peek_matches_decode(self):
        body = pack_query(4242, "shardy", 9, "copy")
        assert packed_request_id(body) == 4242
        assert packed_tenant(body) == "shardy"

    def test_rewrite_id_in_place(self):
        body = bytearray(pack_interact(1, "t3", 2))
        rewrite_packed_id(body, 9_999_999_999)
        decoded = unpack_body(bytes(body))
        assert decoded["id"] == 9_999_999_999
        assert decoded["tenant"] == "t3"  # everything else untouched


class TestEncodeNegotiatedFrames:
    def test_request_frame_packs_hot_verbs(self):
        request = {"v": PROTOCOL_VERSION, "id": 1, "op": "query",
                   "tenant": "t0", "pid": 2, "operation": "paste"}
        frame = encode_request_frame(request, packed=True)
        (raw,) = struct.unpack("!I", frame[:HEADER_SIZE])
        assert raw & PACKED_BIT
        assert unpack_body(frame[HEADER_SIZE:]) == request

    def test_request_frame_falls_back_for_cold_verbs_and_odd_ids(self):
        for request in (
            {"v": PROTOCOL_VERSION, "id": 1, "op": "digest", "tenant": "t0"},
            {"v": PROTOCOL_VERSION, "id": "str-id", "op": "query",
             "tenant": "t0", "pid": 2, "operation": "paste"},
            {"v": PROTOCOL_VERSION, "id": 2**64, "op": "interact",
             "tenant": "t0", "pid": 2},
            {"v": PROTOCOL_VERSION, "id": 3, "op": "query", "tenant": "t0",
             "pid": 2, "operation": "paste", "extra": 1},
        ):
            frame = encode_request_frame(request, packed=True)
            (raw,) = struct.unpack("!I", frame[:HEADER_SIZE])
            assert not raw & PACKED_BIT
            assert decode_body(frame[HEADER_SIZE:]) == request

    def test_response_frame_packs_known_shapes_only(self):
        ok = ok_response(1, {"granted": True, "reason": "r",
                             "interaction_age": None, "time": 5})
        (raw,) = struct.unpack("!I", encode_response_frame(ok, True)[:HEADER_SIZE])
        assert raw & PACKED_BIT
        err = error_response(1, E_BAD_REQUEST, "nope")
        (raw,) = struct.unpack("!I", encode_response_frame(err, True)[:HEADER_SIZE])
        assert not raw & PACKED_BIT  # errors always fall back to JSON

    def test_wire_version_constant(self):
        assert WIRE_VERSION == 2
        assert PACKED_BIT == 0x80000000
        assert LENGTH_MASK == 0x7FFFFFFF


class TestDecoderMixedStream:
    def test_json_and_packed_frames_interleave(self):
        decoder = FrameDecoder()
        stream = (
            encode_frame(ok_response(1, {"pong": True}))
            + encode_packed_frame(pack_query_ok(2, True, "ok", None, 7))
            + encode_frame(error_response(3, E_BAD_REQUEST, "x"))
            + encode_packed_frame(pack_interact_ok(4, 9))
        )
        # Feed byte-by-byte: framing must be position-independent.
        frames = []
        for offset in range(len(stream)):
            frames.extend(decoder.feed(stream[offset:offset + 1]))
        assert [f["id"] for f in frames] == [1, 2, 3, 4]
        assert frames[1]["result"]["time"] == 7
        assert frames[3]["result"] == {"time": 9}
        assert decoder.pending_bytes == 0

    def test_packed_bit_is_not_length(self):
        decoder = FrameDecoder(max_frame=64)
        body = pack_interact_ok(1, 2)
        # The packed bit must be masked out of the length comparison --
        # otherwise every packed frame would look oversized.
        frames = decoder.feed(encode_packed_frame(body))
        assert frames[0]["id"] == 1
