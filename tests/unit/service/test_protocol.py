"""Unit tests for the service wire protocol (framing and envelopes)."""

import json
import struct

import pytest

from repro.service.protocol import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    PROTOCOL_VERSION,
    E_BAD_REQUEST,
    E_FRAME_TOO_LARGE,
    FrameDecoder,
    FrameError,
    canonical_json,
    decode_body,
    encode_frame,
    error_response,
    ok_response,
)


class TestFraming:
    def test_round_trip(self):
        request = {"v": PROTOCOL_VERSION, "id": 7, "op": "ping"}
        frame = encode_frame(request)
        (length,) = struct.unpack("!I", frame[:HEADER_SIZE])
        assert length == len(frame) - HEADER_SIZE
        assert decode_body(frame[HEADER_SIZE:]) == request

    def test_body_is_canonical_json(self):
        frame = encode_frame({"b": 1, "a": 2})
        body = frame[HEADER_SIZE:].decode("utf-8")
        assert body == '{"a":2,"b":1}'
        assert canonical_json({"b": 1, "a": 2}) == body

    def test_decode_rejects_garbage(self):
        with pytest.raises(FrameError) as excinfo:
            decode_body(b"\xff\xfe not json")
        assert excinfo.value.code == E_BAD_REQUEST

    def test_decode_rejects_non_object(self):
        with pytest.raises(FrameError) as excinfo:
            decode_body(b"[1,2,3]")
        assert excinfo.value.code == E_BAD_REQUEST


class TestFrameDecoder:
    def test_byte_at_a_time_reassembly(self):
        frames = encode_frame({"id": 1}) + encode_frame({"id": 2})
        decoder = FrameDecoder()
        seen = []
        for i in range(len(frames)):
            seen.extend(decoder.feed(frames[i : i + 1]))
        assert [f["id"] for f in seen] == [1, 2]
        assert decoder.pending_bytes == 0

    def test_many_frames_in_one_feed(self):
        blob = b"".join(encode_frame({"id": i}) for i in range(5))
        assert [f["id"] for f in FrameDecoder().feed(blob)] == list(range(5))

    def test_pending_bytes_tracks_partial_frame(self):
        frame = encode_frame({"op": "ping"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:-2]) == []
        assert decoder.pending_bytes == len(frame) - 2

    def test_oversized_announcement_raises(self):
        decoder = FrameDecoder(max_frame=16)
        header = struct.pack("!I", 17)
        with pytest.raises(FrameError) as excinfo:
            decoder.feed(header)
        assert excinfo.value.code == E_FRAME_TOO_LARGE

    def test_default_bound_accepts_large_valid_frame(self):
        body = {"blob": "x" * 1024}
        assert FrameDecoder(max_frame=DEFAULT_MAX_FRAME).feed(encode_frame(body)) == [body]


class TestEnvelopes:
    def test_ok_response_echoes_id(self):
        response = ok_response(42, {"pong": True})
        assert response == {
            "v": PROTOCOL_VERSION,
            "id": 42,
            "ok": True,
            "result": {"pong": True},
        }

    def test_error_response_shape(self):
        response = error_response(None, E_BAD_REQUEST, "nope")
        assert response["ok"] is False
        assert response["error"] == E_BAD_REQUEST
        assert response["id"] is None

    def test_responses_serialise_deterministically(self):
        a = canonical_json(ok_response(1, {"z": 1, "a": 2}))
        b = canonical_json(ok_response(1, {"a": 2, "z": 1}))
        assert a == b
        json.loads(a)  # still valid JSON
