"""Daemon edge cases: disconnects, hostile frames, backpressure, drain.

All tests drive a real daemon over a real UNIX socket inside one
``asyncio.run`` body (no event-loop plugin needed).  The
``dispatch_gate`` test hook holds the dispatcher so requests pile up
deterministically where a test needs an observable queue.
"""

import asyncio
import struct

import pytest

from repro.service.client import AsyncServiceClient, ServiceError
from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import (
    PROTOCOL_VERSION,
    E_FRAME_TOO_LARGE,
    E_BAD_REQUEST,
    E_RETRY_LATER,
    E_SHUTTING_DOWN,
    encode_frame,
)


def run(coroutine_function, *args):
    return asyncio.run(coroutine_function(*args))


async def start_daemon(tmp_path, **kwargs):
    path = str(tmp_path / "daemon.sock")
    daemon = ServiceDaemon(PermissionService(), unix_path=path, **kwargs)
    await daemon.start()
    return daemon, path


async def raw_connection(path):
    return await asyncio.open_unix_connection(path)


async def read_frame(reader):
    import json

    header = await reader.readexactly(4)
    (length,) = struct.unpack("!I", header)
    return json.loads(await reader.readexactly(length))


class TestFrameRejection:
    def test_oversized_frame_refused_and_connection_closed(self, tmp_path):
        async def body():
            daemon, path = await start_daemon(tmp_path, max_frame=128)
            reader, writer = await raw_connection(path)
            writer.write(struct.pack("!I", 129) + b"x" * 129)
            response = await read_frame(reader)
            assert response["error"] == E_FRAME_TOO_LARGE
            assert await reader.read() == b""  # daemon hung up
            assert daemon.counters.get("service.frames_rejected") == 1
            writer.close()
            daemon.begin_drain()
            await daemon.wait_stopped()

        run(body)

    def test_malformed_json_refused_and_connection_closed(self, tmp_path):
        async def body():
            daemon, path = await start_daemon(tmp_path)
            reader, writer = await raw_connection(path)
            body_bytes = b"{not json"
            writer.write(struct.pack("!I", len(body_bytes)) + body_bytes)
            response = await read_frame(reader)
            assert response["error"] == E_BAD_REQUEST
            assert await reader.read() == b""
            writer.close()
            daemon.begin_drain()
            await daemon.wait_stopped()

        run(body)


class TestDisconnects:
    def test_client_disconnect_mid_batch_drops_only_its_responses(self, tmp_path):
        """A peer that vanishes while queued must not stall the batch."""

        async def body():
            daemon, path = await start_daemon(tmp_path)
            gate = asyncio.Event()
            daemon.dispatch_gate = gate

            doomed_reader, doomed_writer = await raw_connection(path)
            survivor = await AsyncServiceClient.connect(unix_path=path)
            try:
                doomed_writer.write(
                    encode_frame({"v": PROTOCOL_VERSION, "id": 1, "op": "ping"})
                )
                await doomed_writer.drain()
                survivor_future = asyncio.ensure_future(survivor.request("ping"))
                while daemon.queue_depth < 2:
                    await asyncio.sleep(0.005)
                # Both requests are queued; kill the first client, then
                # let the dispatcher run the batch.
                doomed_writer.close()
                await asyncio.sleep(0.02)
                gate.set()
                result = await asyncio.wait_for(survivor_future, timeout=5)
                assert result == {"pong": True, "version": PROTOCOL_VERSION}
                assert daemon.counters.get("service.responses_dropped") >= 1
            finally:
                await survivor.close()
                daemon.begin_drain()
                await daemon.wait_stopped()

        run(body)


class TestBackpressure:
    def test_overflowing_pipeline_gets_retry_later(self, tmp_path):
        async def body():
            daemon, path = await start_daemon(tmp_path, max_pending=4)
            gate = asyncio.Event()
            daemon.dispatch_gate = gate
            client = await AsyncServiceClient.connect(unix_path=path)
            try:
                futures = [
                    asyncio.ensure_future(client.request_raw("ping")) for _ in range(6)
                ]
                await client.drain()
                # The overflow responses arrive while the gate is closed.
                overflow = await asyncio.wait_for(
                    asyncio.gather(*futures[4:]), timeout=5
                )
                assert [r["error"] for r in overflow] == [E_RETRY_LATER] * 2
                assert daemon.counters.get("service.retry_later") == 2
                gate.set()  # now serve the four budgeted requests
                served = await asyncio.wait_for(asyncio.gather(*futures[:4]), timeout=5)
                assert all(r["ok"] for r in served)
            finally:
                await client.close()
                daemon.begin_drain()
                await daemon.wait_stopped()

        run(body)

    def test_sync_client_retries_after_backpressure(self, tmp_path):
        """The blocking client's RETRY_LATER backoff is invisible to callers."""

        async def body():
            daemon, path = await start_daemon(tmp_path, max_pending=1)
            gate = asyncio.Event()
            daemon.dispatch_gate = gate

            # Fill the budget with a parked request...
            parked = await AsyncServiceClient.connect(unix_path=path)
            future = asyncio.ensure_future(parked.request("ping"))
            while daemon.queue_depth < 1:
                await asyncio.sleep(0.005)

            from repro.service.client import ServiceClient

            def blocking_call():
                with ServiceClient(unix_path=path, retry_delay=0.01) as client:
                    return client.ping()

            release = asyncio.get_running_loop().call_later(0.05, gate.set)
            # ...so the sync client's first attempts bounce, then succeed
            # once the gate opens and the queue drains.
            result = await asyncio.to_thread(blocking_call)
            assert result == {"pong": True, "version": PROTOCOL_VERSION}
            await future
            release.cancel()
            await parked.close()
            daemon.begin_drain()
            await daemon.wait_stopped()

        run(body)


class TestGracefulDrain:
    def test_drain_completes_in_flight_and_refuses_new(self, tmp_path):
        async def body():
            daemon, path = await start_daemon(tmp_path)
            gate = asyncio.Event()
            daemon.dispatch_gate = gate
            client = await AsyncServiceClient.connect(unix_path=path)
            in_flight = asyncio.ensure_future(
                client.request("spawn", tenant="t0", name="alpha")
            )
            while daemon.queue_depth < 1:
                await asyncio.sleep(0.005)
            daemon.begin_drain()
            late = asyncio.ensure_future(client.request("ping"))
            await asyncio.sleep(0.02)
            gate.set()
            # The queued spawn completes; the post-drain ping is refused.
            result = await asyncio.wait_for(in_flight, timeout=5)
            assert result["created"] is True
            with pytest.raises(ServiceError) as excinfo:
                await asyncio.wait_for(late, timeout=5)
            assert excinfo.value.code == E_SHUTTING_DOWN
            await asyncio.wait_for(daemon.wait_stopped(), timeout=5)
            assert daemon.connection_count == 0
            await client.close()

        run(body)

    def test_new_connections_refused_after_drain(self, tmp_path):
        async def body():
            daemon, path = await start_daemon(tmp_path)
            daemon.begin_drain()
            await asyncio.wait_for(daemon.wait_stopped(), timeout=5)
            with pytest.raises((ConnectionError, FileNotFoundError)):
                await asyncio.open_unix_connection(path)

        run(body)


class TestTenantIsolationOverSockets:
    def test_interactions_never_cross_tenants(self, tmp_path):
        async def body():
            daemon, path = await start_daemon(tmp_path)
            client_a = await AsyncServiceClient.connect(unix_path=path)
            client_b = await AsyncServiceClient.connect(unix_path=path)
            try:
                pid_a = (await client_a.request("spawn", tenant="a", name="alpha"))["pid"]
                pid_b = (await client_b.request("spawn", tenant="b", name="alpha"))["pid"]
                await client_a.request("interact", tenant="a", pid=pid_a)
                granted_a, granted_b = await asyncio.gather(
                    client_a.request("query", tenant="a", pid=pid_a, operation="paste"),
                    client_b.request("query", tenant="b", pid=pid_b, operation="paste"),
                )
                assert granted_a["granted"] is True
                assert granted_b["granted"] is False
            finally:
                await client_a.close()
                await client_b.close()
                daemon.begin_drain()
                await daemon.wait_stopped()

        run(body)

    def test_tcp_listener_serves_and_reports_port(self, tmp_path):
        async def body():
            daemon = ServiceDaemon(
                PermissionService(), tcp_host="127.0.0.1", tcp_port=0
            )
            await daemon.start()
            assert daemon.tcp_port != 0
            client = await AsyncServiceClient.connect(tcp=("127.0.0.1", daemon.tcp_port))
            try:
                assert (await client.request("ping"))["pong"] is True
            finally:
                await client.close()
                daemon.begin_drain()
                await daemon.wait_stopped()

        run(body)
