"""Regression tests for the three service hang bugs.

Each of these deadlocked real deployments before the fix:

1. ``ServiceClient.request_raw`` busy-looped forever when the daemon
   closed mid-frame (EOF only raised when *zero* bytes were buffered).
2. ``AsyncServiceClient._read_loop`` died silently on a malformed
   response frame, stranding every in-flight and future request.
3. An exception escaping ``PermissionService.apply_many`` killed the
   daemon's dispatcher task -- a zombie daemon that accepted frames and
   answered nothing.

Every test is bounded by an explicit timeout: pre-fix, these tests hang
and the timeout is what fails them.
"""

import asyncio
import socket
import struct
import threading

import pytest

from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import HEADER_SIZE, E_INTERNAL

TIMEOUT = 10.0


def run(coroutine_function, *args):
    return asyncio.run(coroutine_function(*args))


class _HalfFrameServer(threading.Thread):
    """Accept one client, read its request, answer with a *partial* frame
    (the header promises more bytes than are ever sent), then close."""

    def __init__(self, path: str, body_promise: int = 64, body_sent: bytes = b'{"tru'):
        super().__init__(daemon=True)
        self.path = path
        self.body_promise = body_promise
        self.body_sent = body_sent
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(path)
        self._listener.listen(1)

    def run(self) -> None:
        conn, _ = self._listener.accept()
        conn.recv(65536)  # the client's request; content irrelevant
        conn.sendall(struct.pack("!I", self.body_promise) + self.body_sent)
        conn.close()
        self._listener.close()


class TestSyncClientHalfFrameEOF:
    """Bug 1: empty recv() must raise even with a partial frame buffered."""

    def test_half_frame_then_close_raises_instead_of_spinning(self, tmp_path):
        path = str(tmp_path / "half.sock")
        server = _HalfFrameServer(path)
        server.start()
        client = ServiceClient(unix_path=path, timeout=TIMEOUT)
        outcome = {}

        def attempt():
            try:
                client.request_raw("ping")
            except Exception as error:  # noqa: BLE001 - captured for asserts
                outcome["error"] = error

        try:
            # Pre-fix this call spins on recv() forever (recv returns b""
            # but pending_bytes > 0 skipped the raise); a daemon thread +
            # bounded join turns that hang into a clean assert failure.
            worker = threading.Thread(target=attempt, daemon=True)
            worker.start()
            worker.join(timeout=TIMEOUT)
            assert not worker.is_alive(), "request_raw busy-hung on mid-frame EOF"
            assert isinstance(outcome.get("error"), ConnectionError)
            assert "mid-frame" in str(outcome["error"])
        finally:
            client.close()
            server.join(timeout=TIMEOUT)


class TestAsyncClientMalformedFrame:
    """Bug 2: a FrameError in the reader must fail pending + future calls."""

    def test_garbage_frame_fails_pending_and_subsequent_requests(self, tmp_path):
        async def body():
            path = str(tmp_path / "garbage.sock")
            served = asyncio.Event()

            async def handler(reader, writer):
                await reader.readexactly(HEADER_SIZE)  # client's request header
                # A structurally valid frame whose body is not JSON: the
                # client's decoder raises FrameError.  Pre-fix that killed
                # the reader task silently and the request below hung.
                writer.write(struct.pack("!I", 4) + b"\xff\xfe\xfd\xfc")
                await writer.drain()
                served.set()

            server = await asyncio.start_unix_server(handler, path=path)
            client = await AsyncServiceClient.connect(unix_path=path)
            try:
                with pytest.raises(ConnectionError) as excinfo:
                    await asyncio.wait_for(client.request_raw("ping"), timeout=TIMEOUT)
                assert "undecodable frame" in str(excinfo.value)
                # And the connection is now marked dead: later requests
                # fail fast instead of parking a future forever.
                with pytest.raises(ConnectionError):
                    await asyncio.wait_for(client.request_raw("ping"), timeout=TIMEOUT)
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        run(body)


class _PoisonedService(PermissionService):
    """A service whose ``poison`` verb detonates *outside* the per-request
    guards -- _parse raises before any _run_action try/except is reached,
    so the exception escapes apply_many itself."""

    def _parse(self, request):
        if isinstance(request, dict) and request.get("op") == "poison":
            raise RuntimeError("parse-time detonation")
        return super()._parse(request)


class TestDispatcherSurvivesBatchExplosion:
    """Bug 3: an exception escaping apply_many must not kill the dispatcher."""

    def test_poisoned_batch_answers_internal_and_daemon_keeps_serving(self, tmp_path):
        async def body():
            path = str(tmp_path / "poison.sock")
            service = _PoisonedService()
            daemon = ServiceDaemon(service, unix_path=path)
            await daemon.start()
            gate = asyncio.Event()
            daemon.dispatch_gate = gate

            client = await AsyncServiceClient.connect(unix_path=path)
            try:
                # Pile one good, one poisoned, one good request into a
                # single batch behind the closed gate.
                futures = [
                    asyncio.ensure_future(client.request_raw("ping")),
                    asyncio.ensure_future(client.request_raw("poison")),
                    asyncio.ensure_future(client.request_raw("ping")),
                ]
                await client.drain()
                while daemon.queue_depth < 3:
                    await asyncio.sleep(0.005)
                gate.set()
                responses = await asyncio.wait_for(
                    asyncio.gather(*futures), timeout=TIMEOUT
                )
                # The whole batch is answered (not dropped, not hung):
                # every request gets E_INTERNAL naming the detonation.
                for response in responses:
                    assert response["ok"] is False
                    assert response["error"] == E_INTERNAL
                    assert "batch dispatch failed" in response["message"]
                    assert "parse-time detonation" in response["message"]
                assert daemon.counters.get("service.dispatch_errors") == 1

                # The dispatcher is alive: a fresh request round-trips...
                follow_up = await asyncio.wait_for(
                    client.request_raw("ping"), timeout=TIMEOUT
                )
                assert follow_up["ok"] and follow_up["result"]["pong"]
                # ...and the in-flight credits were returned (no leak).
                assert all(conn.pending == 0 for conn in daemon._connections)
            finally:
                await client.close()
            # Clean drain still works after the explosion.
            daemon.begin_drain()
            await asyncio.wait_for(daemon.wait_stopped(), timeout=TIMEOUT)

        run(body)

    def test_fix_is_needed_poison_escapes_apply_many(self):
        # Documents the failure shape the dispatcher guards against: the
        # exception really does escape apply_many (no per-request guard
        # catches a parse-time detonation).
        service = _PoisonedService()
        with pytest.raises(RuntimeError):
            service.apply_many([
                {"v": 1, "id": 1, "op": "ping"},
                {"v": 1, "id": 2, "op": "poison"},
            ])
