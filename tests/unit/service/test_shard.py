"""ShardedDaemon: real worker processes behind a real router socket.

These tests spawn actual worker interpreters, so they are the slowest in
the service suite; they assert the properties that justify the sharding
design -- byte-identical transcripts, per-tenant isolation, aggregated
stats, and warm restarts across a drain/restart boundary.
"""

import asyncio
import threading

import pytest

from repro.service.client import ServiceClient
from repro.service.scenario import (
    collect_digests,
    run_against_daemon,
    run_inprocess,
    transcript_json,
)
from repro.service.shard import ShardedDaemon
from repro.service.snapshot import tenant_shard

TIMEOUT = 30.0


class ShardRig:
    """Host a ShardedDaemon on a background thread with its own loop."""

    def __init__(self, tmp_path, workers=2, name="shard", **kwargs):
        self.socket_path = str(tmp_path / f"{name}.sock")
        self.workers = workers
        self.kwargs = kwargs
        self.daemon = None
        self.loop = None
        self._ready = threading.Event()
        self._failure = None
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def _serve(self):
        async def body():
            self.daemon = ShardedDaemon(
                self.workers, unix_path=self.socket_path, **self.kwargs
            )
            try:
                await self.daemon.start()
            finally:
                self.loop = asyncio.get_running_loop()
                self._ready.set()
            await self.daemon.wait_stopped()

        try:
            asyncio.run(body())
        except Exception as error:  # noqa: BLE001 - surfaced in __enter__/stop
            self._failure = error
            self._ready.set()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(timeout=TIMEOUT), "router did not start"
        if self._failure is not None:
            raise self._failure
        return self

    def __exit__(self, *exc):
        self.stop()

    def stop(self):
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.daemon.begin_drain)
        self._thread.join(timeout=TIMEOUT)
        assert not self._thread.is_alive(), "router did not drain"
        if self._failure is not None:
            raise self._failure


class TestShardedVerbs:
    def test_verbs_isolation_and_global_stats(self, tmp_path):
        with ShardRig(tmp_path, workers=2) as rig:
            with ServiceClient(unix_path=rig.socket_path) as client:
                assert client.ping() == {"pong": True, "version": 1}
                assert client.negotiate() is True  # wire v2 accepted

                # Two tenants that hash to *different* workers.
                tenants = ["t0"]
                for i in range(1, 64):
                    if tenant_shard(f"t{i}", 2) != tenant_shard("t0", 2):
                        tenants.append(f"t{i}")
                        break
                assert len(tenants) == 2

                pids = {}
                for tenant in tenants:
                    pids[tenant] = client.spawn(tenant, "alpha")["pid"]
                    client.interact(tenant, pids[tenant], at=1_000_000)
                # Only the interacted tenant's partition unlocks; its
                # neighbour on the *other worker process* stays untouched.
                fresh = client.query(
                    tenants[0], pids[tenants[0]], "paste", at=1_500_000
                )
                assert fresh["granted"] is True
                other = client.spawn(tenants[1], "beta")["pid"]
                denied = client.query(tenants[1], other, "paste", at=1_500_000)
                assert denied["granted"] is False

                stats = client.stats()
                assert set(tenants) <= set(stats["tenants"])  # both workers seen
                assert stats["workers"] == 2
                assert stats["counters"]["shard.routed_packed"] > 0
                assert stats["counters"]["service.requests"] > 0

                # reset routes to the owning worker and drops the tenant.
                client.reset(tenants[0])
                stats = client.stats()
                assert tenants[0] not in stats["tenants"]
                assert tenants[1] in stats["tenants"]

    def test_error_envelopes_and_worker_zero_fallback(self, tmp_path):
        with ShardRig(tmp_path, workers=2) as rig:
            with ServiceClient(unix_path=rig.socket_path, retry_attempts=0) as client:
                from repro.service.client import ServiceError

                # Invalid tenants have no shard; worker 0 must still answer
                # the byte-identical BAD_REQUEST the in-process engine gives.
                with pytest.raises(ServiceError) as excinfo:
                    client.request("query", tenant="***", pid=1, operation="x")
                assert excinfo.value.code == "BAD_REQUEST"
                with pytest.raises(ServiceError) as excinfo:
                    client.request("frobnicate", tenant="t0")
                assert excinfo.value.code == "BAD_REQUEST"


class TestShardedTranscripts:
    def test_byte_identical_to_inprocess_json_and_packed(self, tmp_path):
        tenants, ops, seed = 3, 40, 7
        reference = run_inprocess(tenants, ops, seed)
        with ShardRig(tmp_path, workers=2) as rig:
            over_json = run_against_daemon(
                tenants, ops, seed, unix_path=rig.socket_path
            )
            over_packed = run_against_daemon(
                tenants, ops, seed, unix_path=rig.socket_path, packed=True
            )
        for index in range(tenants):
            expected = transcript_json(reference[index], seed, ops)
            assert transcript_json(over_json[index], seed, ops) == expected
            assert transcript_json(over_packed[index], seed, ops) == expected


class TestShardedWarmRestart:
    def test_drain_restart_digests_match_uninterrupted_run(self, tmp_path):
        tenants, ops, seed, cut = 3, 40, 7, 25
        snapdir = str(tmp_path / "snaps")

        # Uninterrupted reference: both phases against one sharded daemon.
        with ShardRig(tmp_path, workers=2, name="cold") as rig:
            run_against_daemon(tenants, ops, seed, unix_path=rig.socket_path,
                               first=cut)
            run_against_daemon(tenants, ops, seed, unix_path=rig.socket_path,
                               skip=cut)
            cold = collect_digests(tenants, unix_path=rig.socket_path)

        # Warm restart: phase one, drain (snapshots), new daemon, phase two.
        with ShardRig(tmp_path, workers=2, name="warm1",
                      snapshot_dir=snapdir) as rig:
            run_against_daemon(tenants, ops, seed, unix_path=rig.socket_path,
                               first=cut)
        with ShardRig(tmp_path, workers=2, name="warm2",
                      snapshot_dir=snapdir) as rig:
            run_against_daemon(tenants, ops, seed, unix_path=rig.socket_path,
                               skip=cut)
            warm = collect_digests(tenants, unix_path=rig.socket_path)

        assert warm == cold
