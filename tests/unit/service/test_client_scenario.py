"""Service determinism gates: daemon == in-process, byte for byte.

The acceptance property from the service layer's design: a tenant's
transcript for a seeded script is identical whether it runs through
``PermissionService.apply`` in process or over sockets through the
daemon's batching -- and identical whether the tenant runs alone or
interleaved with neighbours.
"""

import asyncio
import threading

import pytest

from repro.service import scenario
from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon

OPS = 80
SEED = 7


@pytest.fixture()
def daemon_path(tmp_path):
    """A live daemon on a background event loop; yields its socket path."""
    path = str(tmp_path / "scenario.sock")
    started = threading.Event()
    box = {}

    def serve():
        async def body():
            daemon = ServiceDaemon(PermissionService(), unix_path=path)
            await daemon.start()
            box["daemon"] = daemon
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await daemon.wait_stopped()

        asyncio.run(body())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert started.wait(timeout=10)
    yield path
    box["loop"].call_soon_threadsafe(box["daemon"].begin_drain)
    thread.join(timeout=10)


def transcript(responses):
    return scenario.transcript_json(responses[0], SEED, OPS)


class TestByteIdentity:
    def test_daemon_matches_inprocess_reference(self, daemon_path):
        reference = transcript(scenario.run_inprocess(1, OPS, SEED))
        daemon = transcript(
            scenario.run_against_daemon(1, OPS, SEED, unix_path=daemon_path)
        )
        assert daemon == reference

    def test_neighbour_tenants_do_not_perturb_the_transcript(self, daemon_path):
        alone = transcript(
            scenario.run_against_daemon(1, OPS, SEED, unix_path=daemon_path)
        )
        crowded = transcript(
            scenario.run_against_daemon(3, OPS, SEED, unix_path=daemon_path)
        )
        assert crowded == alone

    def test_inprocess_interleaving_is_invisible(self):
        alone = transcript(scenario.run_inprocess(1, OPS, SEED))
        interleaved = transcript(scenario.run_inprocess(2, OPS, SEED))
        assert interleaved == alone

    def test_scripts_differ_across_tenant_indices(self):
        assert scenario.scripted_requests(SEED, OPS, 0) != scenario.scripted_requests(
            SEED, OPS, 1
        )

    def test_scripts_differ_across_seeds(self):
        assert scenario.scripted_requests(SEED, OPS, 0) != scenario.scripted_requests(
            SEED + 1, OPS, 0
        )


class TestScenarioCli:
    def test_inprocess_output_is_canonical(self, capsys):
        assert scenario.main(["--inprocess", "--tenants", "1", "--ops", "20"]) == 0
        first = capsys.readouterr().out
        assert scenario.main(["--inprocess", "--tenants", "2", "--ops", "20"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert first.endswith("\n")

    def test_unix_target(self, daemon_path, capsys):
        assert (
            scenario.main(
                ["--unix", daemon_path, "--tenants", "1", "--ops", "20", "--seed", "3"]
            )
            == 0
        )
        over_socket = capsys.readouterr().out
        assert scenario.main(["--inprocess", "--tenants", "1", "--ops", "20", "--seed", "3"]) == 0
        assert over_socket == capsys.readouterr().out
