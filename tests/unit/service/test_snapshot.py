"""Tenant snapshots: journalling, write/load round trips, warm restarts."""

import asyncio
import json

import pytest

from repro.service.core import PermissionService
from repro.service.daemon import ServiceDaemon
from repro.service.protocol import PROTOCOL_VERSION, canonical_json
from repro.service.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshots,
    snapshot_path,
    tenant_shard,
    write_snapshots,
)

TIMEOUT = 10.0


def apply_script(service, tenant="t0"):
    """A short mixed-verb history; returns the tenant's digest."""
    script = [
        {"op": "spawn", "tenant": tenant, "name": "alpha"},
        {"op": "spawn", "tenant": tenant, "name": "beta"},
        {"op": "interact", "tenant": tenant, "pid": 4},
        {"op": "query", "tenant": tenant, "pid": 4, "operation": "paste"},
        {"op": "advance", "tenant": tenant, "dt": 2_000_000},
        {"op": "query", "tenant": tenant, "pid": 4, "operation": "copy", "at": 9_000_000},
        {"op": "stats", "tenant": tenant},  # read-only: must not journal
        {"op": "interact", "tenant": tenant, "pid": 5, "at": 10_000_000},
        {"op": "query", "tenant": tenant, "pid": 5, "operation": "screen_capture"},
    ]
    for request in script:
        response = service.apply({"v": PROTOCOL_VERSION, "id": 1, **request})
        assert response["ok"], response
    return service.apply(
        {"v": PROTOCOL_VERSION, "id": 1, "op": "digest", "tenant": tenant}
    )["result"]["digest"]


class TestJournal:
    def test_off_by_default(self):
        service = PermissionService()
        apply_script(service)
        assert service.tenant("t0").journal is None

    def test_records_mutating_verbs_only(self):
        service = PermissionService(journal=True)
        apply_script(service)
        journal = service.tenant("t0").journal
        assert journal is not None
        ops = [entry["op"] for entry in journal]
        assert ops == [
            "spawn", "spawn", "interact", "query", "advance",
            "query", "interact", "query",
        ]  # stats and digest never appear
        # Normalised: explicit timestamps kept, absent ones stay absent.
        assert journal[3] == {"op": "query", "tenant": "t0", "pid": 4,
                              "operation": "paste"}
        assert journal[5]["at"] == 9_000_000
        assert journal[6]["at"] == 10_000_000

    def test_replaying_journal_reproduces_digest(self):
        source = PermissionService(journal=True)
        digest = apply_script(source)
        replica = PermissionService()
        for entry in source.tenant("t0").journal:
            assert replica.apply({"v": PROTOCOL_VERSION, "id": 0, **entry})["ok"]
        assert replica.apply(
            {"v": PROTOCOL_VERSION, "id": 0, "op": "digest", "tenant": "t0"}
        )["result"]["digest"] == digest


class TestWriteLoadRoundTrip:
    def test_round_trip_digests_identical(self, tmp_path):
        source = PermissionService(journal=True)
        digests = {t: apply_script(source, t) for t in ("t0", "t1", "alpha:9")}
        assert write_snapshots(source, tmp_path) == 3

        restored = PermissionService(journal=True)
        assert load_snapshots(restored, tmp_path) == sorted(("t0", "t1", "alpha:9"))
        for tenant, digest in digests.items():
            assert restored.apply(
                {"v": PROTOCOL_VERSION, "id": 0, "op": "digest", "tenant": tenant}
            )["result"]["digest"] == digest

    def test_snapshot_file_is_canonical_and_versioned(self, tmp_path):
        service = PermissionService(journal=True)
        apply_script(service)
        write_snapshots(service, tmp_path)
        path = snapshot_path(tmp_path, "t0")
        text = path.read_text(encoding="utf-8")
        data = json.loads(text)
        assert data["version"] == SNAPSHOT_VERSION
        assert data["tenant"] == "t0"
        assert text == canonical_json(data) + "\n"  # byte-stable across runs

    def test_missing_directory_is_cold_start(self, tmp_path):
        assert load_snapshots(PermissionService(), tmp_path / "nope") == []

    def test_reset_tenant_prunes_stale_file(self, tmp_path):
        service = PermissionService(journal=True)
        apply_script(service, "t0")
        apply_script(service, "t1")
        write_snapshots(service, tmp_path)
        assert snapshot_path(tmp_path, "t0").exists()
        service.apply({"v": PROTOCOL_VERSION, "id": 0, "op": "reset", "tenant": "t0"})
        write_snapshots(service, tmp_path)
        assert not snapshot_path(tmp_path, "t0").exists()  # not resurrectable
        assert snapshot_path(tmp_path, "t1").exists()

    def test_version_mismatch_raises(self, tmp_path):
        service = PermissionService(journal=True)
        apply_script(service)
        write_snapshots(service, tmp_path)
        path = snapshot_path(tmp_path, "t0")
        data = json.loads(path.read_text(encoding="utf-8"))
        data["version"] = SNAPSHOT_VERSION + 1
        path.write_text(canonical_json(data), encoding="utf-8")
        with pytest.raises(SnapshotError) as excinfo:
            load_snapshots(PermissionService(), tmp_path)
        assert "version" in str(excinfo.value)

    def test_corrupt_json_raises(self, tmp_path):
        service = PermissionService(journal=True)
        apply_script(service)
        write_snapshots(service, tmp_path)
        snapshot_path(tmp_path, "t0").write_text("{nope", encoding="utf-8")
        with pytest.raises(SnapshotError):
            load_snapshots(PermissionService(), tmp_path)

    def test_unjournalled_service_refuses_to_snapshot(self, tmp_path):
        service = PermissionService()  # journal off
        apply_script(service)
        with pytest.raises(SnapshotError):
            write_snapshots(service, tmp_path)


class TestShardOwnership:
    def test_hash_is_stable_and_partitions(self):
        tenants = [f"t{i}" for i in range(64)]
        assert all(tenant_shard(t, 1) == 0 for t in tenants)
        shards = {t: tenant_shard(t, 4) for t in tenants}
        assert set(shards.values()) == {0, 1, 2, 3}  # spreads
        assert shards == {t: tenant_shard(t, 4) for t in tenants}  # stable

    def test_write_and_load_respect_ownership(self, tmp_path):
        service = PermissionService(journal=True)
        tenants = [f"t{i}" for i in range(8)]
        for tenant in tenants:
            apply_script(service, tenant)
        count = 2
        written = sum(
            write_snapshots(service, tmp_path, shard_index=i, shard_count=count)
            for i in range(count)
        )
        assert written == len(tenants)
        for index in range(count):
            owned = [t for t in tenants if tenant_shard(t, count) == index]
            restored = PermissionService(journal=True)
            assert load_snapshots(
                restored, tmp_path, shard_index=index, shard_count=count
            ) == sorted(owned)
            assert restored.tenant_ids == sorted(owned)


class TestDaemonIntegration:
    def test_drain_snapshots_and_warm_restart(self, tmp_path):
        snapdir = str(tmp_path / "snaps")

        async def first_life():
            path = str(tmp_path / "one.sock")
            service = PermissionService(journal=True)
            daemon = ServiceDaemon(service, unix_path=path, snapshot_dir=snapdir)
            await daemon.start()
            digest = apply_script(service)  # in-process shortcut; same engine
            daemon.begin_drain()
            await asyncio.wait_for(daemon.wait_stopped(), timeout=TIMEOUT)
            assert daemon.counters.get("service.tenants_snapshotted") == 1
            return digest

        async def second_life():
            path = str(tmp_path / "two.sock")
            service = PermissionService(journal=True)
            daemon = ServiceDaemon(service, unix_path=path, snapshot_dir=snapdir)
            await daemon.start()  # restores from snapdir
            assert daemon.counters.get("service.tenants_restored") == 1
            digest = service.apply(
                {"v": PROTOCOL_VERSION, "id": 0, "op": "digest", "tenant": "t0"}
            )["result"]["digest"]
            daemon.begin_drain()
            await asyncio.wait_for(daemon.wait_stopped(), timeout=TIMEOUT)
            return digest

        assert asyncio.run(first_life()) == asyncio.run(second_life())

    def test_snapshot_dir_requires_journalling_service(self, tmp_path):
        with pytest.raises(ValueError):
            ServiceDaemon(
                PermissionService(),  # journal off
                unix_path=str(tmp_path / "x.sock"),
                snapshot_dir=str(tmp_path / "snaps"),
            )
