"""Unit tests for timing metrics and the Table I benchmark rigs."""

import pytest

from repro.analysis.benchops import (
    ClipboardRig,
    DeviceAccessRig,
    FilesystemRig,
    ScreenCaptureRig,
    SharedMemoryRig,
)
from repro.analysis.metrics import (
    TimingResult,
    mean,
    overhead_percent,
    stdev,
    time_callable,
)


class TestMetrics:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_single_sample(self):
        assert stdev([5.0]) == 0.0

    def test_overhead_percent(self):
        assert overhead_percent(100.0, 102.17) == pytest.approx(2.17)
        assert overhead_percent(10.0, 9.0) == pytest.approx(-10.0)

    def test_overhead_requires_positive_baseline(self):
        with pytest.raises(ValueError):
            overhead_percent(0.0, 1.0)

    def test_time_callable_runs_warmup_plus_repeats(self):
        calls = []
        result = time_callable("x", lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(result.samples_seconds) == 3
        assert result.mean_seconds >= 0.0
        assert result.best_seconds <= result.mean_seconds

    def test_time_callable_needs_repeats(self):
        with pytest.raises(ValueError):
            time_callable("x", lambda: None, repeats=0)


class TestRigs:
    """Each rig must run in both configurations and do its real work."""

    def test_device_rig_both_modes(self):
        for protected in (False, True):
            rig = DeviceAccessRig(protected)
            rig.run(10)  # must not raise

    def test_device_rig_overhaul_exercises_monitor(self):
        rig = DeviceAccessRig(protected=True)
        rig.run(5)
        monitor = rig.machine.overhaul.monitor
        assert len(monitor.decisions) >= 5

    def test_clipboard_rig_transfers_data(self):
        rig = ClipboardRig(protected=True)
        rig.run(3)
        assert rig.target.pasted[-1] == b"benchmark-clipboard-payload"

    def test_screen_rig_captures_content(self):
        rig = ScreenCaptureRig(protected=False)
        rig.run(1)

    def test_shm_rig_faults_and_rearm(self):
        from repro.sim.time import from_millis

        rig = SharedMemoryRig(protected=True, pages=16)
        # Shrink the wait list so the test sees several re-arm cycles
        # without needing the full 10k writes per 500 ms window.
        rig.machine.kernel.shm.waitlist_duration = from_millis(1)
        rig.run(200)  # 200 x 50 us = 10 ms of simulated time
        assert rig.faults > 1

    def test_shm_rig_baseline_never_faults(self):
        rig = SharedMemoryRig(protected=False, pages=16)
        rig.run(100)
        assert rig.faults == 0

    def test_shm_sequential_pattern(self):
        rig = SharedMemoryRig(protected=True, pages=4, random_offsets=False)
        rig.run(50)

    def test_filesystem_rig_leaves_directory_clean(self):
        rig = FilesystemRig(protected=True)
        rig.run(20)
        assert rig.machine.kernel.filesystem.listdir("/home/user/bench") == []

    def test_filesystem_rig_unique_names_across_runs(self):
        rig = FilesystemRig(protected=False)
        rig.run(5)
        rig.run(5)  # same names would raise EEXIST
