"""Unit tests for population-level aggregation and interval statistics."""

import json

import pytest

from repro.analysis.population import (
    aggregate_longterm,
    aggregate_usability,
    proportion_summary,
    wilson_interval,
)


class TestWilsonInterval:
    def test_basic_properties(self):
        low, high = wilson_interval(8, 10)
        assert 0.0 <= low < 0.8 < high <= 1.0

    def test_extremes_stay_in_unit_interval(self):
        low, high = wilson_interval(0, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < high < 0.15
        low, high = wilson_interval(50, 50)
        assert 0.85 < low < 1.0
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_zero_trials_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrower_with_more_trials(self):
        small = wilson_interval(8, 10)
        large = wilson_interval(800, 1000)
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)

    def test_proportion_summary_shape(self):
        summary = proportion_summary(3, 4)
        assert summary["rate"] == 0.75
        assert summary["ci95_low"] < 0.75 < summary["ci95_high"]
        assert summary["successes"] == 3 and summary["trials"] == 4


def _longterm_envelope(index, stolen, blocked, failures=0):
    def arm(protected):
        return {
            "machine_name": f"m{index}",
            "protected": protected,
            "days": 1,
            "stolen_counts": {"clipboard": 0 if protected else stolen},
            "blocked_counts": {"clipboard": blocked if protected else 0},
            "total_stolen": 0 if protected else stolen,
            "stolen_passwords_hex": [],
            "passwords_captured": 0,
            "legit_actions": 10,
            "legit_failures": failures if protected else 0,
            "device_grants": 2,
            "device_denials": 1,
            "alerts_shown": 3,
            "spy_rounds": stolen + blocked,
        }

    return {
        "machine_index": index,
        "seed": index,
        "days": 1,
        "protected": arm(True),
        "unprotected": arm(False),
        "counters": {
            "protected": {"x.ops": index + 1},
            "unprotected": {"x.ops": 2 * (index + 1)},
        },
    }


class TestAggregateLongterm:
    def test_sums_and_rates(self):
        envelopes = [
            _longterm_envelope(0, stolen=5, blocked=5),
            _longterm_envelope(1, stolen=3, blocked=7),
        ]
        aggregate = aggregate_longterm(envelopes)
        assert aggregate["machines"] == 2
        protected = aggregate["protected"]
        assert protected["attempts_blocked"] == 12
        assert protected["items_stolen"] == 0
        assert protected["block_rate"]["rate"] == 1.0
        assert protected["false_positive_rate"]["rate"] == 0.0
        assert protected["counters"] == {"x.ops": 3}
        unprotected = aggregate["unprotected"]
        assert unprotected["items_stolen"] == 8
        assert unprotected["steal_rate"]["rate"] == 1.0
        assert unprotected["counters"] == {"x.ops": 6}

    def test_order_of_envelope_fields_is_irrelevant_to_json(self):
        envelopes = [_longterm_envelope(0, 2, 2), _longterm_envelope(1, 1, 3)]
        one = json.dumps(aggregate_longterm(envelopes), sort_keys=True)
        # Same data with arm dict keys built in reverse insertion order.
        reversed_envelopes = [
            {key: envelope[key] for key in reversed(list(envelope))}
            for envelope in envelopes
        ]
        other = json.dumps(aggregate_longterm(reversed_envelopes), sort_keys=True)
        assert one == other

    def test_meta_passthrough(self):
        aggregate = aggregate_longterm(
            [_longterm_envelope(0, 1, 1)], meta={"seed": 7, "quarantined_shards": []}
        )
        assert aggregate["meta"]["seed"] == 7


class TestAggregateUsability:
    def test_counts_and_intervals(self):
        envelopes = [
            {
                "outcomes": [
                    {
                        "participant_id": i,
                        "likert_score": 1,
                        "behaviour_differences": 0,
                        "camera_blocked": True,
                        "alert_displayed": True,
                        "reaction": "INTERRUPTED_AND_REPORTED"
                        if i % 2
                        else "DID_NOT_NOTICE",
                    }
                    for i in range(4)
                ]
            },
            {
                "outcomes": [
                    {
                        "participant_id": 4,
                        "likert_score": 3,
                        "behaviour_differences": 1,
                        "camera_blocked": True,
                        "alert_displayed": False,
                        "reaction": "NOTICED_CONTINUED_TASK",
                    }
                ]
            },
        ]
        aggregate = aggregate_usability(envelopes)
        assert aggregate["participants"] == 5
        assert aggregate["identical_experience"]["successes"] == 4
        assert aggregate["camera_blocked"]["rate"] == 1.0
        assert aggregate["alert_displayed"]["successes"] == 4
        assert aggregate["reactions"] == {
            "DID_NOT_NOTICE": 2,
            "INTERRUPTED_AND_REPORTED": 2,
            "NOTICED_CONTINUED_TASK": 1,
        }
        assert aggregate["alert_noticed"]["successes"] == 3
