"""Unit tests for the overhead decomposition and the report builder."""

import pytest

from repro.analysis.decomposition import measure_components, render_report
from repro.analysis.report import build_report


class TestDecomposition:
    @pytest.fixture(scope="class")
    def components(self):
        return measure_components(ops=300)

    def test_all_components_measured(self, components):
        names = {component.name for component in components}
        assert len(names) == 7
        assert any("decide" in name for name in names)
        assert any("netlink" in name for name in names)
        assert any("shm fault" in name for name in names)

    def test_costs_are_positive_and_sane(self, components):
        for component in components:
            assert 0 < component.microseconds_per_op < 10_000

    def test_query_costs_more_than_bare_decision(self, components):
        by_name = {c.name: c.microseconds_per_op for c in components}
        decision = next(v for k, v in by_name.items() if k.startswith("decision"))
        query = next(v for k, v in by_name.items() if k.startswith("netlink"))
        assert query > decision  # the round trip wraps the decision

    def test_render(self, components):
        text = render_report(ops=200)
        assert "decomposition" in text
        assert "us/op" in text


class TestReportBuilder:
    def test_build_report_structure(self):
        report = build_report(
            table_scale=0.02,
            usability_seed=66,
            longterm_days=1,
        )
        assert "# Overhaul reproduction" in report
        assert "Table I" in report
        assert "Figure 1" in report
        assert "usability" in report
        assert "applicability" in report
        assert "long-term" in report
