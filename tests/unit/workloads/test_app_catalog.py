"""Unit tests for the V-C application catalogue and per-pattern exercisers."""

import pytest

from repro.workloads.app_catalog import (
    AccessPattern,
    build_clipboard_app_pool,
    build_device_app_pool,
    exercise_app,
)


class TestPools:
    def test_device_pool_size_matches_paper(self):
        assert len(build_device_app_pool()) == 58

    def test_clipboard_pool_size_matches_paper(self):
        assert len(build_clipboard_app_pool()) == 50

    def test_skype_is_the_startup_probe_app(self):
        specs = build_device_app_pool()
        probes = [s for s in specs if s.pattern is AccessPattern.STARTUP_DEVICE_PROBE]
        assert [s.name for s in probes] == ["skype"]

    def test_delayed_screenshot_apps_present(self):
        specs = build_device_app_pool()
        delayed = {s.name for s in specs if s.pattern is AccessPattern.DELAYED_SCREENSHOT}
        assert delayed == {"shutter", "flameshot"}

    def test_names_unique(self):
        names = [s.name for s in build_device_app_pool() + build_clipboard_app_pool()]
        assert len(names) == len(set(names))

    def test_pool_covers_paper_categories(self):
        categories = {s.category for s in build_device_app_pool()}
        for expected in ("video-conferencing", "audio-editor", "av-recorder",
                         "screenshot", "screencast", "browser"):
            assert expected in categories


class TestExercisers:
    def _one(self, pattern):
        spec = next(
            s
            for s in build_device_app_pool() + build_clipboard_app_pool()
            if s.pattern is pattern
        )
        return exercise_app(spec)

    def test_interaction_then_device_functions(self):
        result = self._one(AccessPattern.INTERACTION_THEN_DEVICE)
        assert result.functioned and not result.false_positive

    def test_startup_probe_yields_spurious_alert_only(self):
        result = self._one(AccessPattern.STARTUP_DEVICE_PROBE)
        assert result.functioned
        assert result.spurious_alert
        assert not result.false_positive

    def test_gui_screenshot_functions(self):
        result = self._one(AccessPattern.GUI_SCREENSHOT)
        assert result.functioned

    def test_delayed_screenshot_hits_limitation(self):
        result = self._one(AccessPattern.DELAYED_SCREENSHOT)
        assert not result.functioned
        assert result.limitation_hit
        assert not result.false_positive  # a documented design limit, not an FP

    def test_screencast_functions(self):
        result = self._one(AccessPattern.SCREENCAST)
        assert result.functioned

    def test_cli_device_functions(self):
        result = self._one(AccessPattern.CLI_DEVICE)
        assert result.functioned

    def test_cli_screenshot_functions(self):
        result = self._one(AccessPattern.CLI_SCREENSHOT)
        assert result.functioned

    def test_browser_webapp_functions(self):
        result = self._one(AccessPattern.BROWSER_WEBAPP)
        assert result.functioned

    def test_clipboard_functions(self):
        result = self._one(AccessPattern.CLIPBOARD)
        assert result.functioned
