"""Unit tests for the scenario trace machinery."""

import pytest

from repro.core import Machine
from repro.workloads.scenarios import (
    ScenarioStep,
    ScenarioTrace,
    figure1_hardware_device,
    figure2_clipboard_paste,
)


class TestTraceMechanics:
    def test_step_render(self):
        step = ScenarioStep("3", "event forwarded", "queue depth 2")
        assert step.render() == "(3) event forwarded -- queue depth 2"

    def test_step_render_without_detail(self):
        assert ScenarioStep("1", "click").render() == "(1) click"

    def test_trace_add_and_render(self):
        trace = ScenarioTrace("demo", "Figure X")
        trace.add("1", "first")
        trace.add("2", "second", "detail")
        trace.succeeded = True
        text = trace.render()
        assert "Figure X" in text
        assert "(1) first" in text
        assert "GRANTED" in text

    def test_denied_rendering_with_notes(self):
        trace = ScenarioTrace("demo", "Figure X")
        trace.notes = "expired"
        text = trace.render()
        assert "DENIED" in text and "expired" in text


class TestScenarioReuse:
    def test_scenarios_accept_supplied_machine(self):
        """Scenarios can run on a caller's machine (shared-state studies)."""
        machine = Machine.with_overhaul()
        trace1 = figure1_hardware_device(machine=machine)
        trace2 = figure2_clipboard_paste(machine=machine)
        assert trace1.succeeded and trace2.succeeded

    def test_scenarios_on_fresh_machines_are_independent(self):
        first = figure1_hardware_device()
        second = figure1_hardware_device()
        assert first.succeeded and second.succeeded
        assert first.steps[0].detail == second.steps[0].detail  # deterministic

    def test_figure1_step_numbering_matches_paper(self):
        trace = figure1_hardware_device()
        assert [s.number for s in trace.steps] == ["1", "2", "3", "4", "5", "6"]
