"""Unit tests for the user behaviour models."""

from collections import Counter

from repro.sim.rng import RandomSource
from repro.sim.time import from_seconds
from repro.workloads.user_model import (
    AlertAttentionModel,
    AlertReaction,
    DailyUsageModel,
)


class TestAttentionModel:
    def test_distribution_roughly_matches_calibration(self):
        rng = RandomSource(1234)
        model = AlertAttentionModel(rng)
        counts = Counter(model.react() for _ in range(10_000))
        total = sum(counts.values())
        assert counts[AlertReaction.DID_NOT_NOTICE] / total == pytest_approx(6 / 46, 0.03)
        assert counts[AlertReaction.INTERRUPTED_AND_REPORTED] / total == pytest_approx(
            24 / 46, 0.03
        )

    def test_deterministic_given_seed(self):
        reactions_a = [AlertAttentionModel(RandomSource(5)).react() for _ in range(1)]
        reactions_b = [AlertAttentionModel(RandomSource(5)).react() for _ in range(1)]
        assert reactions_a == reactions_b

    def test_extreme_probabilities(self):
        always = AlertAttentionModel(RandomSource(1), p_notice=1.0, p_interrupt=1.0)
        assert all(
            always.react() is AlertReaction.INTERRUPTED_AND_REPORTED for _ in range(20)
        )
        never = AlertAttentionModel(RandomSource(1), p_notice=0.0)
        assert all(never.react() is AlertReaction.DID_NOT_NOTICE for _ in range(20))


def pytest_approx(value, tolerance):
    import pytest

    return pytest.approx(value, abs=tolerance)


class TestDailyUsage:
    def test_day_plan_contents(self):
        model = DailyUsageModel(RandomSource(1))
        plan = model.plan_day(0)
        kinds = {activity.kind for activity in plan.activities}
        assert "video_call" in kinds
        assert "password_paste" in kinds
        assert "document_edit" in kinds

    def test_activities_sorted_and_within_day(self):
        model = DailyUsageModel(RandomSource(2))
        day_span = from_seconds(DailyUsageModel.ACTIVE_HOURS * 3600.0)
        for day in range(5):
            plan = model.plan_day(day)
            offsets = [activity.at_offset for activity in plan.activities]
            assert offsets == sorted(offsets)
            assert all(0 <= off <= day_span for off in offsets)

    def test_study_plan_length(self):
        model = DailyUsageModel(RandomSource(3))
        plans = model.plan_study(21)
        assert len(plans) == 21
        assert [plan.day_index for plan in plans] == list(range(21))

    def test_same_seed_same_plan(self):
        plan_a = DailyUsageModel(RandomSource(9)).plan_day(0)
        plan_b = DailyUsageModel(RandomSource(9)).plan_day(0)
        assert [(a.kind, a.at_offset) for a in plan_a.activities] == [
            (b.kind, b.at_offset) for b in plan_b.activities
        ]
