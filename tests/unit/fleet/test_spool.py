"""Unit tests for the checkpoint spool (record format v2)."""

import json
import pickle
import shutil

import pytest

from repro.fleet.errors import SpoolMismatchError, SpoolVersionError
from repro.fleet.spool import SPOOL_VERSION, Spool
from repro.fleet.studies import ShardSpec


def _spec(index: int) -> ShardSpec:
    return ShardSpec(study="demo", index=index, seed=index * 7, params=(("days", 1),))


class TestManifest:
    def test_manifest_created_and_idempotent(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        manifest = {"study": "longterm", "population": 4, "seed": 9, "params": {}, "shards": 4}
        spool.ensure_manifest(manifest)
        spool.ensure_manifest(manifest)  # same config resumes fine
        stored = json.loads(spool.manifest_path().read_text())
        assert stored["study"] == "longterm"
        assert stored["version"] == SPOOL_VERSION == 2

    def test_mismatched_manifest_rejected(self, tmp_path):
        spool = Spool(tmp_path)
        spool.ensure_manifest({"study": "longterm", "population": 4, "seed": 9})
        with pytest.raises(SpoolMismatchError):
            spool.ensure_manifest({"study": "longterm", "population": 8, "seed": 9})

    def test_old_format_manifest_raises_version_error(self, tmp_path):
        spool = Spool(tmp_path)
        manifest = {"study": "longterm", "population": 4, "seed": 9}
        spool.ensure_manifest(manifest)
        # Rewrite the manifest as a format-1 (pickle-era) spool would have.
        stored = json.loads(spool.manifest_path().read_text())
        stored["version"] = 1
        spool.manifest_path().write_text(json.dumps(stored))
        with pytest.raises(SpoolVersionError, match="format 1"):
            spool.ensure_manifest(manifest)

    def test_missing_manifest_reads_none(self, tmp_path):
        assert Spool(tmp_path / "nope").read_manifest() is None


class TestShardCheckpoints:
    def test_write_read_round_trip(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        spec = _spec(3)
        spool.write_shard(spec.to_dict(), {"value": [1, 2, 3]})
        assert spool.read_shard(3) == {"value": [1, 2, 3]}
        assert spool.completed_indexes() == {3}

    def test_read_shard_packed_matches_write(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        packed = spool.write_shard(_spec(4).to_dict(), {"counters": {"a.b": 2}})
        assert spool.read_shard_packed(4) == packed
        assert spool.read_shard(4) == {"counters": {"a.b": 2}}

    def test_corrupt_checkpoint_dropped(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        spool.write_shard(_spec(0).to_dict(), {"ok": True})
        # A hard kill can leave a truncated file with a valid name.
        spool.shard_path(1).write_bytes(b"not a spool record at all")
        truncated = spool.write_shard(_spec(2).to_dict(), {"ok": True})
        data = spool.shard_path(2).read_bytes()
        spool.shard_path(2).write_bytes(data[: len(data) - len(truncated) // 2 - 1])
        assert spool.completed_indexes() == {0}
        assert not spool.shard_path(1).exists()  # dropped for recomputation
        assert not spool.shard_path(2).exists()

    def test_pickle_era_checkpoint_raises_version_error(self, tmp_path):
        """A format-1 file is a recognisable old format, not corruption:
        the loud error beats silently re-executing a whole spool."""
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        payload = pickle.dumps({"spec": _spec(1).to_dict(), "result": {}}, protocol=4)
        spool.shard_path(1).write_bytes(payload)
        with pytest.raises(SpoolVersionError, match="format-1 pickle"):
            spool.completed_indexes()
        with pytest.raises(SpoolVersionError):
            spool.read_shard(1)

    def test_future_format_checkpoint_raises_version_error(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        spool.write_shard(_spec(1).to_dict(), {"ok": True})
        data = bytearray(spool.shard_path(1).read_bytes())
        data[4:6] = (99).to_bytes(2, "little")
        spool.shard_path(1).write_bytes(bytes(data))
        with pytest.raises(SpoolVersionError, match="format 99"):
            spool.completed_indexes()

    def test_index_mismatch_inside_payload_dropped(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        # A checkpoint copied to the wrong filename must not be trusted.
        spool.write_shard(_spec(7).to_dict(), {})
        shutil.copy(spool.shard_path(7), spool.shard_path(2))
        spool.shard_path(7).unlink()
        assert spool.completed_indexes() == set()

    def test_tmp_files_ignored(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        (tmp_path / "shard-00005.rec.tmp.123").write_bytes(b"partial")
        assert spool.completed_indexes() == set()

    def test_empty_dir_and_missing_dir(self, tmp_path):
        assert Spool(tmp_path).completed_indexes() == set()
        assert Spool(tmp_path / "absent").completed_indexes() == set()
