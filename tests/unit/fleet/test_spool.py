"""Unit tests for the checkpoint spool."""

import json
import pickle

import pytest

from repro.fleet.errors import SpoolMismatchError
from repro.fleet.spool import Spool
from repro.fleet.studies import ShardSpec


def _spec(index: int) -> ShardSpec:
    return ShardSpec(study="demo", index=index, seed=index * 7, params=(("days", 1),))


class TestManifest:
    def test_manifest_created_and_idempotent(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        manifest = {"study": "longterm", "population": 4, "seed": 9, "params": {}, "shards": 4}
        spool.ensure_manifest(manifest)
        spool.ensure_manifest(manifest)  # same config resumes fine
        stored = json.loads(spool.manifest_path().read_text())
        assert stored["study"] == "longterm"
        assert stored["version"] == 1

    def test_mismatched_manifest_rejected(self, tmp_path):
        spool = Spool(tmp_path)
        spool.ensure_manifest({"study": "longterm", "population": 4, "seed": 9})
        with pytest.raises(SpoolMismatchError):
            spool.ensure_manifest({"study": "longterm", "population": 8, "seed": 9})

    def test_missing_manifest_reads_none(self, tmp_path):
        assert Spool(tmp_path / "nope").read_manifest() is None


class TestShardCheckpoints:
    def test_write_read_round_trip(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        spec = _spec(3)
        spool.write_shard(spec.to_dict(), {"value": [1, 2, 3]})
        assert spool.read_shard(3) == {"value": [1, 2, 3]}
        assert spool.completed_indexes() == {3}

    def test_corrupt_checkpoint_dropped(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        spool.write_shard(_spec(0).to_dict(), {"ok": True})
        # A hard kill can leave a truncated file with a valid name.
        spool.shard_path(1).write_bytes(b"\x80\x04 truncated garbage")
        assert spool.completed_indexes() == {0}
        assert not spool.shard_path(1).exists()  # dropped for recomputation

    def test_index_mismatch_inside_payload_dropped(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        # A checkpoint copied to the wrong filename must not be trusted.
        payload = pickle.dumps({"spec": _spec(7).to_dict(), "result": {}})
        spool.shard_path(2).write_bytes(payload)
        assert spool.completed_indexes() == set()

    def test_tmp_files_ignored(self, tmp_path):
        spool = Spool(tmp_path)
        spool.root.mkdir(exist_ok=True)
        (tmp_path / "shard-00005.pkl.tmp.123").write_bytes(b"partial")
        assert spool.completed_indexes() == set()

    def test_empty_dir_and_missing_dir(self, tmp_path):
        assert Spool(tmp_path).completed_indexes() == set()
        assert Spool(tmp_path / "absent").completed_indexes() == set()
