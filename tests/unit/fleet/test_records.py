"""Unit tests for the packed result-record codec."""

import pytest

from repro.fleet.errors import RecordFormatError
from repro.fleet.records import PackedCounters, pack_record, unpack_record
from repro.obs.counters import Counters


SAMPLE = {
    "study": "longterm",
    "users": 64,
    "rate": 0.25,
    "big": 1 << 80,
    "negative": -(1 << 80),
    "none": None,
    "flags": [True, False, None],
    "nested": {"stolen": ["SEC-1", "SEC-2"], "empty": {}, "blob": b"\x00\x01"},
    "counters": {"a.ops": 3, "b.ops": -7},
}


class TestRoundTrip:
    def test_materialized_round_trip_is_exact(self):
        assert unpack_record(pack_record(SAMPLE), materialize=True) == SAMPLE

    def test_packing_is_deterministic_under_key_order(self):
        shuffled = {key: SAMPLE[key] for key in reversed(list(SAMPLE))}
        assert pack_record(SAMPLE) == pack_record(shuffled)

    def test_scalar_round_trips(self):
        for value in (None, True, False, 0, -1, 2**63 - 1, -(2**63), 1.5, "héllo", b"", []):
            assert unpack_record(pack_record(value), materialize=True) == value

    def test_float_bits_preserved(self):
        value = 0.1 + 0.2  # not representable exactly; bits must survive
        assert unpack_record(pack_record(value), materialize=True) == value

    def test_bool_is_not_confused_with_int(self):
        packed = unpack_record(pack_record([True, 1]), materialize=True)
        assert packed[0] is True and packed[1] == 1 and packed[1] is not True


class TestPackedCountersView:
    def test_counter_dict_unpacks_to_view_by_default(self):
        tree = unpack_record(pack_record(SAMPLE))
        view = tree["counters"]
        assert isinstance(view, PackedCounters)
        assert view.to_dict() == SAMPLE["counters"]
        assert view.total() == 3 - 7
        assert list(view.items()) == [("a.ops", 3), ("b.ops", -7)]

    def test_view_merges_into_registry_without_dict(self):
        view = unpack_record(pack_record({"counters": {"x": 2, "y": 5}}))["counters"]
        registry = Counters({"x": 1})
        view.merge_into(registry)
        assert registry.snapshot() == {"x": 3, "y": 5}

    def test_view_equals_dict_and_view(self):
        one = unpack_record(pack_record({"c": {"x": 2}}))["c"]
        two = unpack_record(pack_record({"c": {"x": 2}}))["c"]
        assert one == two
        assert one == {"x": 2}
        assert one != {"x": 3}

    def test_counter_blob_matches_pack_deltas_layout(self):
        counters = Counters({"b": 2, "a": 1})
        # A record holding the dict and one holding pack_deltas bytes via a
        # PackedCounters value must produce the same packed bytes.
        by_dict = pack_record({"c": {"a": 1, "b": 2}})
        by_blob = pack_record({"c": PackedCounters(counters.pack_deltas())})
        assert by_dict == by_blob

    def test_non_counter_dicts_stay_maps(self):
        for tree in ({}, {"x": "s"}, {"x": 1.0}, {"x": True}, {1: 2}, {"x": 1 << 80}):
            if all(isinstance(k, str) for k in tree):
                value = unpack_record(pack_record(tree))
                assert not isinstance(value, PackedCounters)
                assert value == tree


class TestErrors:
    def test_unpackable_type_raises(self):
        with pytest.raises(RecordFormatError, match="not record-packable"):
            pack_record({"x": object()})

    def test_non_str_map_key_raises(self):
        with pytest.raises(RecordFormatError, match="keys must be str"):
            pack_record({"x": "ok", 3: 1.5})

    def test_truncated_record_raises(self):
        packed = pack_record(SAMPLE)
        with pytest.raises(RecordFormatError, match="truncated"):
            unpack_record(packed[: len(packed) // 2], materialize=True)

    def test_empty_buffer_raises(self):
        with pytest.raises(RecordFormatError, match="missing tag"):
            unpack_record(b"")

    def test_unknown_tag_raises(self):
        with pytest.raises(RecordFormatError, match="unknown record tag"):
            unpack_record(b"Q" + b"\x00" * 8)

    def test_trailing_garbage_raises(self):
        with pytest.raises(RecordFormatError, match="trailing garbage"):
            unpack_record(pack_record(7) + b"\x00")
