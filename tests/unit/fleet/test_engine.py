"""Unit tests for the fleet engine: dispatch, retries, timeouts, resume.

The synthetic studies registered here are module-level functions so that
forked worker processes (which share the parent's registry) can run them.
"""

import os
import time

import pytest

from repro.fleet.engine import run_fleet
from repro.fleet.errors import FleetError, UnknownStudyError
from repro.fleet.spool import Spool
from repro.fleet.studies import (
    ShardSpec,
    StudyDefinition,
    register_study,
    unregister_study,
)

# -- synthetic studies -----------------------------------------------------


def _build(population, seed, params):
    extra = tuple(sorted(params.items()))
    return [
        ShardSpec(study=params["study_name"], index=i, seed=seed + i, params=extra)
        for i in range(population)
    ]


def _run_square(spec):
    return {"index": spec.index, "value": spec.seed * spec.seed}


def _run_flaky(spec):
    """Fails the first attempt of every shard, succeeds on retry.

    Worker processes share no memory with the driver, so attempts are
    tracked as marker files in a scratch directory passed via params.
    """
    marker = os.path.join(spec.param("scratch"), f"attempt-{spec.index}")
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("tried")
        raise RuntimeError(f"transient failure on shard {spec.index}")
    return _run_square(spec)


def _run_poison(spec):
    if spec.index == spec.param("poison_index"):
        raise ValueError("this shard always fails")
    return _run_square(spec)


def _run_hang(spec):
    if spec.index == spec.param("hang_index"):
        time.sleep(120.0)
    return _run_square(spec)


def _aggregate(envelopes, meta):
    return {
        "values": [envelope["value"] for envelope in envelopes],
        "total": sum(envelope["value"] for envelope in envelopes),
        "quarantined": meta["quarantined_shards"],
    }


def _definition(name, runner):
    return StudyDefinition(
        name=name,
        description=f"synthetic engine-test study {name}",
        build_shards=_build,
        run_shard=runner,
        aggregate=_aggregate,
    )


@pytest.fixture()
def synthetic_studies():
    names = {
        "t-square": _run_square,
        "t-flaky": _run_flaky,
        "t-poison": _run_poison,
        "t-hang": _run_hang,
    }
    for name, runner in names.items():
        register_study(_definition(name, runner), replace=True)
    yield
    for name in names:
        unregister_study(name)


def _params(name, **extra):
    return dict({"study_name": name}, **extra)


# -- tests -----------------------------------------------------------------


class TestValidation:
    def test_unknown_study(self):
        with pytest.raises(UnknownStudyError):
            run_fleet("definitely-not-registered", population=1)

    def test_bad_population_and_workers(self, synthetic_studies):
        with pytest.raises(FleetError):
            run_fleet("t-square", population=0, params=_params("t-square"))
        with pytest.raises(FleetError):
            run_fleet("t-square", population=1, workers=0, params=_params("t-square"))


class TestInlineExecution:
    def test_all_shards_executed_in_order(self, synthetic_studies):
        report = run_fleet("t-square", population=5, seed=10, params=_params("t-square"))
        assert report.executed == [0, 1, 2, 3, 4]
        assert report.resumed == []
        assert report.aggregate["values"] == [(10 + i) ** 2 for i in range(5)]
        assert report.quarantined == []

    def test_retry_then_success(self, synthetic_studies, tmp_path):
        report = run_fleet(
            "t-flaky",
            population=3,
            params=_params("t-flaky", scratch=str(tmp_path)),
            max_retries=2,
        )
        assert report.retries == 3  # one transient failure per shard
        assert report.quarantined == []
        assert len(report.executed) == 3

    def test_poison_shard_quarantined_not_fatal(self, synthetic_studies):
        report = run_fleet(
            "t-poison",
            population=4,
            seed=2,
            params=_params("t-poison", poison_index=2),
            max_retries=1,
        )
        assert [shard.index for shard in report.quarantined] == [2]
        assert report.quarantined[0].attempts == 2  # initial try + 1 retry
        assert "ValueError" in report.quarantined[0].reason
        # The healthy shards still aggregate.
        assert report.aggregate["values"] == [4, 9, 25]
        assert report.aggregate["quarantined"] == [2]


class TestPoolExecution:
    def test_pool_matches_inline(self, synthetic_studies):
        inline = run_fleet("t-square", population=8, seed=3, params=_params("t-square"))
        pooled = run_fleet(
            "t-square", population=8, seed=3, workers=3, params=_params("t-square")
        )
        assert pooled.aggregate == inline.aggregate
        assert pooled.executed == inline.executed

    def test_pool_retry_across_processes(self, synthetic_studies, tmp_path):
        report = run_fleet(
            "t-flaky",
            population=4,
            workers=2,
            params=_params("t-flaky", scratch=str(tmp_path)),
            max_retries=2,
        )
        assert report.quarantined == []
        assert report.retries == 4
        assert len(report.executed) == 4

    def test_pool_poison_quarantine(self, synthetic_studies):
        report = run_fleet(
            "t-poison",
            population=5,
            seed=1,
            workers=2,
            params=_params("t-poison", poison_index=3),
            max_retries=1,
        )
        assert [shard.index for shard in report.quarantined] == [3]
        assert sorted(report.executed) == [0, 1, 2, 4]

    def test_pool_timeout_quarantines_hung_shard(self, synthetic_studies):
        report = run_fleet(
            "t-hang",
            population=4,
            seed=5,
            workers=2,
            params=_params("t-hang", hang_index=1),
            timeout_seconds=0.5,
            max_retries=0,
        )
        assert [shard.index for shard in report.quarantined] == [1]
        assert "timeout" in report.quarantined[0].reason
        assert sorted(report.executed) == [0, 2, 3]
        # Healthy shards aggregated despite the hang.
        assert report.aggregate["values"] == [25, 49, 64]


class TestResume:
    def test_resume_skips_completed_shards(self, synthetic_studies, tmp_path):
        spool_dir = tmp_path / "spool"
        first = run_fleet(
            "t-square", population=6, seed=4, params=_params("t-square"),
            spool_dir=str(spool_dir),
        )
        assert len(first.executed) == 6

        # Simulate a killed run: drop two checkpoints, keep the rest.
        spool = Spool(spool_dir)
        spool.shard_path(1).unlink()
        spool.shard_path(4).unlink()

        second = run_fleet(
            "t-square", population=6, seed=4, params=_params("t-square"),
            spool_dir=str(spool_dir),
        )
        assert second.executed == [1, 4]
        assert second.resumed == [0, 2, 3, 5]
        assert second.aggregate == first.aggregate

    def test_resume_with_different_config_rejected(self, synthetic_studies, tmp_path):
        spool_dir = str(tmp_path / "spool")
        run_fleet("t-square", population=3, seed=4, params=_params("t-square"),
                  spool_dir=spool_dir)
        with pytest.raises(FleetError):
            run_fleet("t-square", population=5, seed=4, params=_params("t-square"),
                      spool_dir=spool_dir)

    def test_fully_complete_spool_runs_nothing(self, synthetic_studies, tmp_path):
        spool_dir = str(tmp_path / "spool")
        run_fleet("t-square", population=3, seed=9, params=_params("t-square"),
                  spool_dir=spool_dir)
        again = run_fleet("t-square", population=3, seed=9, params=_params("t-square"),
                          spool_dir=spool_dir, workers=2)
        assert again.executed == []
        assert again.resumed == [0, 1, 2]
        assert again.aggregate["values"] == [81, 100, 121]


# -- streaming studies ------------------------------------------------------


def _sum_streaming():
    from repro.fleet.reducers import StreamingReducer

    def fold(state, envelope, index):
        # The square-study envelope is a pure str->int dict, so on the
        # merge path it arrives as a zero-copy PackedCounters view (the
        # codec's counter-blob contract); the materialised path and the
        # spool read path hand back plain dicts.
        if not isinstance(envelope, dict):
            envelope = envelope.to_dict()
        state["total"] += envelope["value"]
        state["count"] += 1

    def merge(left, right):
        left["total"] += right["total"]
        left["count"] += right["count"]
        return left

    return StreamingReducer(
        init=lambda: {"total": 0, "count": 0},
        fold=fold,
        merge=merge,
        finalize=lambda state, meta: {
            "values": None,
            "total": state["total"],
            "count": state["count"],
            "quarantined": meta["quarantined_shards"],
        },
    )


@pytest.fixture()
def streaming_studies():
    for name, runner in {"s-square": _run_square, "s-poison": _run_poison}.items():
        definition = _definition(name, runner)
        definition = StudyDefinition(
            name=definition.name,
            description=definition.description,
            build_shards=definition.build_shards,
            run_shard=definition.run_shard,
            aggregate=definition.aggregate,
            streaming=_sum_streaming,
        )
        register_study(definition, replace=True)
    yield
    for name in ("s-square", "s-poison"):
        unregister_study(name)


class TestStreamingReduce:
    def test_streaming_matches_materialised_totals(self, streaming_studies):
        streamed = run_fleet(
            "s-square", population=6, seed=3, params=_params("s-square")
        )
        legacy = run_fleet(
            "s-square", population=6, seed=3, params=_params("s-square"),
            streaming=False,
        )
        assert streamed.streamed and not legacy.streamed
        assert streamed.aggregate["total"] == legacy.aggregate["total"]
        assert streamed.aggregate["count"] == 6

    def test_pool_streams_and_matches_inline(self, streaming_studies):
        inline = run_fleet("s-square", population=8, seed=3, params=_params("s-square"))
        pooled = run_fleet(
            "s-square", population=8, seed=3, workers=3, params=_params("s-square")
        )
        assert inline.streamed and pooled.streamed
        assert pooled.aggregate == inline.aggregate

    def test_streaming_quarantine_skips_poison_shard(self, streaming_studies):
        report = run_fleet(
            "s-poison",
            population=4,
            seed=2,
            workers=2,
            params=_params("s-poison", poison_index=2),
            max_retries=1,
        )
        assert report.streamed
        assert [shard.index for shard in report.quarantined] == [2]
        # (2+2)^2 skipped: 4 + 9 + 25.
        assert report.aggregate["total"] == 38
        assert report.aggregate["count"] == 3
        assert report.aggregate["quarantined"] == [2]

    def test_streaming_resume_reads_spool_lazily(self, streaming_studies, tmp_path):
        spool_dir = str(tmp_path / "spool")
        first = run_fleet(
            "s-square", population=6, seed=4, params=_params("s-square"),
            spool_dir=spool_dir,
        )
        Spool(spool_dir).shard_path(1).unlink()
        second = run_fleet(
            "s-square", population=6, seed=4, params=_params("s-square"),
            spool_dir=spool_dir, workers=2,
        )
        assert second.executed == [1]
        assert second.resumed == [0, 2, 3, 4, 5]
        assert second.aggregate == first.aggregate


class TestLeaseAndStealReporting:
    def test_report_carries_lease_and_steal_fields(self, synthetic_studies):
        report = run_fleet(
            "t-square", population=12, seed=1, workers=2, lease_size=3,
            params=_params("t-square"),
        )
        assert report.lease_size == 3
        assert report.leases >= 4  # 12 shards / lease 3
        assert report.steals >= 0
        rendered = report.render()
        assert "lease / steals" in rendered
        assert "merge                  : materialised" in rendered

    def test_streamed_render_reports_buffer_high_water(self, streaming_studies):
        report = run_fleet(
            "s-square", population=5, seed=1, workers=2, params=_params("s-square")
        )
        rendered = report.render()
        assert "merge                  : streaming (peak" in rendered
        assert report.peak_buffered_records >= 1

    def test_steal_disabled_still_completes(self, synthetic_studies):
        report = run_fleet(
            "t-square", population=10, seed=2, workers=3, lease_size=4,
            steal=False, params=_params("t-square"),
        )
        assert report.steals == 0
        assert len(report.executed) == 10
