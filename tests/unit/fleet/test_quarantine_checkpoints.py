"""Regression: quarantined shards must not leave checkpoints behind.

The hazard: a worker can write its shard checkpoint and *then* die (or be
killed on deadline) before the driver hears "done".  If retries exhaust,
the shard is quarantined -- but without cleanup its stale checkpoint
survives on disk, and a later ``--resume`` of the same spool silently
adopts the shard as completed.  The run that declared the shard failed
and the run that resumed it would then disagree about what the aggregate
covers, and merged counters would include a shard no run vouches for.

The synthetic study below reproduces the exact half-written state
in-process: ``run_shard`` checkpoints itself (as the real worker loop
does) and then raises.
"""

import pytest

from repro.fleet.engine import run_fleet
from repro.fleet.spool import Spool
from repro.fleet.studies import (
    ShardSpec,
    StudyDefinition,
    register_study,
    unregister_study,
)
from repro.obs.counters import Counters


def _build(population, seed, params):
    extra = tuple(sorted(params.items()))
    return [
        ShardSpec(study="t-traitor", index=i, seed=seed + i, params=extra)
        for i in range(population)
    ]


def _run_traitor(spec):
    """Checkpoint the shard, then fail -- the killed-after-write worker.

    A marker file makes the *next* run's attempt succeed, so a resumed
    spool can distinguish "re-executed properly" from "adopted the stale
    checkpoint": the stale result carries ``poisoned: True``.
    """
    import os

    result = {"index": spec.index, "value": spec.seed, "poisoned": False}
    if spec.index == spec.param("traitor_index"):
        marker = os.path.join(spec.param("scratch"), f"died-{spec.index}")
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("first attempt")
            Spool(spec.param("spool")).write_shard(
                spec.to_dict(), dict(result, poisoned=True)
            )
            raise RuntimeError("worker died after writing its checkpoint")
    return result


def _aggregate(envelopes, meta):
    return {
        "values": [envelope["value"] for envelope in envelopes],
        "poisoned": [e["index"] for e in envelopes if e["poisoned"]],
        "counters": Counters.merged(
            {"fleet.shards": 1} for _ in envelopes
        ).snapshot(),
        "quarantined": meta["quarantined_shards"],
    }


@pytest.fixture()
def traitor_study():
    register_study(
        StudyDefinition(
            name="t-traitor",
            description="synthetic study that checkpoints then dies",
            build_shards=_build,
            run_shard=_run_traitor,
            aggregate=_aggregate,
        ),
        replace=True,
    )
    yield
    unregister_study("t-traitor")


def _params(tmp_path):
    spool_dir = str(tmp_path / "spool")
    return spool_dir, {
        "scratch": str(tmp_path),
        "spool": spool_dir,
        "traitor_index": 1,
    }


def test_quarantine_discards_the_stale_checkpoint(traitor_study, tmp_path):
    spool_dir, params = _params(tmp_path)
    report = run_fleet(
        "t-traitor", population=3, seed=5, params=params,
        spool_dir=spool_dir, max_retries=0,
    )
    assert [shard.index for shard in report.quarantined] == [1]
    # The half-written checkpoint is gone: the shard is not "completed".
    assert not Spool(spool_dir).shard_path(1).exists()
    assert Spool(spool_dir).completed_indexes() == {0, 2}
    # And the aggregate neither contains the poisoned envelope nor counts it.
    assert report.aggregate["poisoned"] == []
    assert report.aggregate["values"] == [5, 7]
    assert report.aggregate["counters"]["fleet.shards"] == 2


def test_resume_reexecutes_the_quarantined_shard(traitor_study, tmp_path):
    spool_dir, params = _params(tmp_path)
    first = run_fleet(
        "t-traitor", population=3, seed=5, params=params,
        spool_dir=spool_dir, max_retries=0,
    )
    assert [shard.index for shard in first.quarantined] == [1]

    second = run_fleet(
        "t-traitor", population=3, seed=5, params=params,
        spool_dir=spool_dir, max_retries=0,
    )
    # The marker file makes the re-execution succeed this time; the shard
    # must be freshly executed, never adopted from the stale checkpoint.
    assert second.executed == [1]
    assert second.resumed == [0, 2]
    assert second.quarantined == []
    assert second.aggregate["poisoned"] == []
    assert second.aggregate["values"] == [5, 6, 7]
    # Counters merge exactly one contribution per shard -- no double count
    # from the shard that ran in both runs.
    assert second.aggregate["counters"]["fleet.shards"] == 3


def test_pool_quarantine_also_discards(traitor_study, tmp_path):
    spool_dir, params = _params(tmp_path)
    report = run_fleet(
        "t-traitor", population=4, seed=2, params=params,
        spool_dir=spool_dir, max_retries=0, workers=2,
    )
    assert [shard.index for shard in report.quarantined] == [1]
    assert not Spool(spool_dir).shard_path(1).exists()
    assert report.aggregate["poisoned"] == []
