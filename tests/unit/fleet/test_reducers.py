"""Unit tests for streaming reducers and the ordered fold."""

import pytest
from hypothesis import given, strategies as st

from repro.fleet.errors import FleetError
from repro.fleet.reducers import OrderedFold, StreamingReducer
from repro.fleet.studies import synthetic_reducer


def trace_reducer() -> StreamingReducer:
    """A reducer whose state is the exact fold sequence it observed."""
    return StreamingReducer(
        init=list,
        fold=lambda state, envelope, index: state.append((index, envelope)),
        merge=lambda left, right: left + right,
        finalize=lambda state, meta: {"trace": list(state), "meta": dict(meta)},
    )


def sum_reducer() -> StreamingReducer:
    return StreamingReducer(
        init=lambda: [0],
        fold=lambda state, envelope, index: state.__setitem__(0, state[0] + envelope),
        merge=lambda left, right: [left[0] + right[0]],
        finalize=lambda state, meta: {"total": state[0]},
    )


class TestOrderedFold:
    def test_in_order_arrivals_fold_immediately(self):
        fold = OrderedFold(trace_reducer(), [0, 1, 2])
        for index in range(3):
            fold.offer(index, lambda i=index: f"r{i}")
        assert fold.complete
        assert fold.peak_buffered == 1  # never more than the newest arrival
        assert fold.finalize({})["trace"] == [(0, "r0"), (1, "r1"), (2, "r2")]

    def test_out_of_order_arrivals_fold_in_shard_order(self):
        fold = OrderedFold(trace_reducer(), [0, 1, 2, 3])
        for index in (3, 1, 2, 0):
            fold.offer(index, lambda i=index: f"r{i}")
        assert fold.finalize({})["trace"] == [
            (0, "r0"), (1, "r1"), (2, "r2"), (3, "r3"),
        ]
        # 3, 1, 2 waited on 0; the arrival of 0 itself counts before it
        # drains, so the high-water mark is 4.
        assert fold.peak_buffered == 4

    def test_thunks_run_lazily_at_fold_time(self):
        loaded = []
        fold = OrderedFold(trace_reducer(), [0, 1])

        def thunk_for(index):
            return lambda: loaded.append(index) or f"r{index}"

        fold.offer(1, thunk_for(1))
        assert loaded == []  # buffered, not loaded
        fold.offer(0, thunk_for(0))
        assert loaded == [0, 1]

    def test_resident_records_load_through_reader(self):
        reads = []

        def reader(index):
            reads.append(index)
            return f"spool{index}"

        fold = OrderedFold(trace_reducer(), [0, 1, 2], reader=reader)
        fold.offer_resident(2)
        fold.offer_resident(0)
        assert reads == [0]  # 2 still waits on 1, costs no memory
        fold.offer(1, lambda: "live1")
        assert reads == [0, 2]
        assert fold.finalize({})["trace"] == [
            (0, "spool0"), (1, "live1"), (2, "spool2"),
        ]

    def test_offer_resident_without_reader_rejected(self):
        fold = OrderedFold(trace_reducer(), [0])
        with pytest.raises(FleetError, match="reader"):
            fold.offer_resident(0)

    def test_skip_unblocks_the_cursor(self):
        fold = OrderedFold(trace_reducer(), [0, 1, 2])
        fold.offer(2, lambda: "r2")
        fold.offer(0, lambda: "r0")
        fold.skip(1)  # quarantined
        assert fold.complete
        assert fold.finalize({})["trace"] == [(0, "r0"), (2, "r2")]

    def test_duplicate_offers_fold_once(self):
        fold = OrderedFold(sum_reducer(), [0, 1])
        fold.offer(0, lambda: 5)
        fold.offer(0, lambda: 5)  # late duplicate (retry raced a success)
        fold.offer(1, lambda: 7)
        assert fold.finalize({})["total"] == 12

    def test_finalize_incomplete_names_the_stall(self):
        fold = OrderedFold(trace_reducer(), [0, 1, 2])
        fold.offer(2, lambda: "r2")
        assert fold.pending_index() == 0
        with pytest.raises(FleetError, match="stalled on shard 0"):
            fold.finalize({})


class TestReduceEnvelopes:
    def test_matches_manual_fold(self):
        reducer = sum_reducer()
        assert reducer.reduce_envelopes([3, 4, 5], {})["total"] == 12


# -- merge algebra ----------------------------------------------------------
#
# The two-level engine relies on merge being (a) associative over adjacent
# ranges and (b) equivalent to folding the concatenated range -- that is
# what makes machine-level partial states safe to combine in any grouping,
# as long as ranges stay in shard-id order.

@st.composite
def _envelope(draw):
    users = draw(st.integers(0, 512))
    return {
        "first": draw(st.integers(0, 1 << 20)),
        "users": users,
        "checksum": draw(st.integers(0, (1 << 61) - 1)),
        # Events are per-user successes: at most one per user, so the
        # event-rate proportion stays well-formed.
        "events": draw(st.integers(0, users)),
        "counters": draw(
            st.dictionaries(
                st.sampled_from(["a.ops", "b.ops", "c.ops"]),
                st.integers(0, 1 << 30),
                min_size=1,
            )
        ),
    }


envelopes = st.lists(_envelope(), min_size=0, max_size=12)


def fold_range(reducer, items, start):
    state = reducer.init()
    for offset, envelope in enumerate(items):
        reducer.fold(state, envelope, start + offset)
    return state


@given(envelopes=envelopes, split=st.integers(0, 12))
def test_merge_of_adjacent_ranges_equals_single_fold(envelopes, split):
    split = min(split, len(envelopes))
    reducer = synthetic_reducer()

    whole = fold_range(reducer, envelopes, 0)
    left = fold_range(reducer, envelopes[:split], 0)
    right = fold_range(reducer, envelopes[split:], split)
    merged = reducer.merge(left, right)

    meta = {"population": 0, "shards": len(envelopes), "study": "synthetic"}
    assert reducer.finalize(merged, meta) == reducer.finalize(whole, meta)


@given(envelopes=envelopes, a=st.integers(0, 12), b=st.integers(0, 12))
def test_merge_is_associative_over_three_way_splits(envelopes, a, b):
    a, b = sorted((min(a, len(envelopes)), min(b, len(envelopes))))
    reducer = synthetic_reducer()

    def state(lo, hi):
        return fold_range(reducer, envelopes[lo:hi], lo)

    left_first = reducer.merge(
        reducer.merge(state(0, a), state(a, b)), state(b, len(envelopes))
    )
    right_first = reducer.merge(
        state(0, a), reducer.merge(state(a, b), state(b, len(envelopes)))
    )

    meta = {"population": 0, "shards": len(envelopes), "study": "synthetic"}
    assert reducer.finalize(left_first, meta) == reducer.finalize(right_first, meta)


@given(
    counter_sets=st.lists(
        st.dictionaries(
            st.sampled_from(["a.ops", "b.ops", "c.ops", "d.ops"]),
            st.integers(-(1 << 40), 1 << 40),
        ),
        max_size=8,
    )
)
def test_counter_merge_commutes_up_to_snapshot(counter_sets):
    """Counter merging is value-commutative: any arrival order produces the
    same sorted snapshot (the engine still folds in shard order so that
    *non*-commutative state, like float sums, stays deterministic too)."""
    from repro.obs.counters import Counters

    forward = Counters.merged(counter_sets).snapshot()
    backward = Counters.merged(list(reversed(counter_sets))).snapshot()
    assert forward == backward
