"""Unit tests for the shared-memory SPSC record ring."""

import multiprocessing

import pytest

from repro.fleet.errors import FleetError
from repro.fleet.shm_ring import _FRAME_HEAD, DEFAULT_RING_BYTES, ShmRing


@pytest.fixture
def ring():
    ring = ShmRing(4096, multiprocessing.Lock())
    yield ring
    ring.close()
    ring.unlink()


class TestPushPop:
    def test_fifo_round_trip(self, ring):
        assert ring.try_push(3, b"alpha")
        assert ring.try_push(4, b"beta", flags=1)
        assert ring.try_pop() == (3, 0, b"alpha")
        assert ring.try_pop() == (4, 1, b"beta")
        assert ring.try_pop() is None

    def test_empty_payload_frame(self, ring):
        assert ring.try_push(9, b"")
        assert ring.try_pop() == (9, 0, b"")

    def test_drain_yields_everything_buffered(self, ring):
        for index in range(5):
            assert ring.try_push(index, bytes([index]))
        assert [frame[0] for frame in ring.drain()] == [0, 1, 2, 3, 4]

    def test_wrap_around_preserves_payloads(self, ring):
        # Cycle far past the capacity so frames straddle the wrap point.
        payload = bytes(range(256)) * 3  # 768 bytes -> ~5 frames per lap
        for index in range(50):
            assert ring.try_push(index, payload)
            popped_index, _flags, popped = ring.try_pop()
            assert popped_index == index
            assert popped == payload

    def test_full_ring_rejects_then_accepts_after_pop(self, ring):
        payload = b"x" * 1000
        pushed = 0
        while ring.try_push(pushed, payload):
            pushed += 1
        assert 0 < pushed < 5  # 4096 capacity, ~1009-byte frames
        assert not ring.try_push(99, payload)
        assert ring.try_pop() is not None
        assert ring.try_push(99, payload)

    def test_oversized_payload_never_fits(self, ring):
        huge = b"x" * 5000
        assert not ring.fits(len(huge))
        assert not ring.try_push(0, huge)
        assert ring.fits(4096 - _FRAME_HEAD.size)


class TestLifecycle:
    def test_minimum_capacity_enforced(self):
        with pytest.raises(FleetError, match=">= 4096"):
            ShmRing(16, multiprocessing.Lock())

    def test_default_capacity_is_a_mib(self):
        assert DEFAULT_RING_BYTES == 1 << 20

    def test_pop_timeout_gives_up_on_held_lock(self):
        lock = multiprocessing.Lock()
        ring = ShmRing(4096, lock)
        try:
            ring.try_push(1, b"stuck")
            lock.acquire()  # a killed producer died holding the lock
            try:
                assert ring.try_pop(timeout=0.05) is None
                assert list(ring.drain(timeout=0.05)) == []
            finally:
                lock.release()
            assert ring.try_pop(timeout=0.05) == (1, 0, b"stuck")
        finally:
            ring.close()
            ring.unlink()

    def test_attach_by_name_shares_the_block(self):
        lock = multiprocessing.Lock()
        owner = ShmRing(4096, lock)
        try:
            peer = ShmRing(4096, lock, name=owner.name, create=False)
            assert peer.try_push(7, b"via-peer")
            peer.close()
            assert owner.try_pop() == (7, 0, b"via-peer")
        finally:
            owner.close()
            owner.unlink()
