"""Unit tests for shard specs and the study registry."""

import pickle

import pytest

from repro.fleet.errors import FleetError, UnknownStudyError
from repro.fleet.studies import (
    ShardSpec,
    StudyDefinition,
    get_study,
    register_study,
    study_names,
    unregister_study,
)
from repro.sim.rng import RandomSource


class TestShardSpec:
    def test_picklable_and_frozen(self):
        spec = ShardSpec(study="longterm", index=4, seed=99, params=(("days", 3),))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        with pytest.raises(Exception):
            spec.index = 5  # type: ignore[misc]

    def test_param_lookup(self):
        spec = ShardSpec(study="s", index=0, seed=1, params=(("days", 3), ("x", "y")))
        assert spec.param("days") == 3
        assert spec.param("missing", 42) == 42

    def test_to_dict(self):
        spec = ShardSpec(study="s", index=2, seed=5, params=(("b", 1), ("a", 2)))
        assert spec.to_dict() == {
            "study": "s",
            "index": 2,
            "seed": 5,
            "params": {"a": 2, "b": 1},
        }


class TestRegistry:
    def test_builtin_studies_present(self):
        assert "longterm" in study_names()
        assert "usability" in study_names()

    def test_unknown_study_raises(self):
        with pytest.raises(UnknownStudyError):
            get_study("no-such-study")

    def test_duplicate_registration_rejected(self):
        existing = get_study("longterm")
        with pytest.raises(FleetError):
            register_study(existing)

    def test_register_unregister_round_trip(self):
        definition = StudyDefinition(
            name="synthetic-test-study",
            description="registry round trip",
            build_shards=lambda population, seed, params: [],
            run_shard=lambda spec: {},
            aggregate=lambda envelopes, meta: {},
        )
        register_study(definition)
        try:
            assert get_study("synthetic-test-study") is definition
        finally:
            unregister_study("synthetic-test-study")
        assert "synthetic-test-study" not in study_names()


class TestLongtermStudy:
    def test_shards_are_per_machine_with_distinct_seeds(self):
        study = get_study("longterm")
        shards = study.build_shards(5, 2016, {"days": 3})
        assert [spec.index for spec in shards] == [0, 1, 2, 3, 4]
        assert len({spec.seed for spec in shards}) == 5
        assert all(spec.param("days") == 3 for spec in shards)

    def test_shard_seeds_match_spawn_derivation(self):
        study = get_study("longterm")
        shards = study.build_shards(3, 7, {})
        root = RandomSource(7, name="fleet")
        for machine in range(3):
            assert shards[machine].seed == root.spawn(("longterm", machine)).seed

    def test_shard_layout_independent_of_call_count(self):
        study = get_study("longterm")
        assert study.build_shards(4, 1, {"days": 2}) == study.build_shards(4, 1, {"days": 2})


class TestUsabilityStudy:
    def test_population_partitioned_exactly(self):
        study = get_study("usability")
        shards = study.build_shards(21, 2016, {"shard_size": 8})
        assert [spec.param("first") for spec in shards] == [0, 8, 16]
        assert [spec.param("count") for spec in shards] == [8, 8, 5]
        assert sum(spec.param("count") for spec in shards) == 21

    def test_invalid_shard_size_rejected(self):
        study = get_study("usability")
        with pytest.raises(FleetError):
            study.build_shards(10, 1, {"shard_size": 0})
