"""Unit tests for the lease/steal scheduler bookkeeping."""

import pytest

from repro.fleet.scheduler import StealScheduler, default_lease_size


def make(items=16, workers=("a", "b"), lease_size=4, steal=True):
    return StealScheduler(list(range(items)), list(workers), lease_size, steal=steal)


class TestLeasing:
    def test_leases_drain_in_shard_order(self):
        sched = make()
        first = sched.lease("a")
        second = sched.lease("b")
        assert first.items == [0, 1, 2, 3]
        assert second.items == [4, 5, 6, 7]
        assert sched.leases_granted == 2

    def test_short_tail_lease(self):
        sched = make(items=5)
        sched.lease("a")
        assert sched.lease("b").items == [4]

    def test_double_lease_rejected(self):
        sched = make()
        sched.lease("a")
        with pytest.raises(ValueError, match="already holds"):
            sched.lease("a")

    def test_release_then_release_cycle(self):
        sched = make(items=8)
        sched.lease("a")
        sched.release("a")
        assert sched.lease("a").items == [4, 5, 6, 7]

    def test_empty_queue_leases_none(self):
        sched = make(items=4)
        sched.lease("a")
        assert sched.lease("b") is None

    def test_lease_size_must_be_positive(self):
        with pytest.raises(ValueError, match="lease_size"):
            make(lease_size=0)

    def test_outstanding_tracks_pending_and_inflight(self):
        sched = make(items=4)
        assert sched.outstanding()
        lease = sched.lease("a")
        assert lease is not None and sched.outstanding()
        sched.release("a")
        assert not sched.outstanding()


class TestStealing:
    def test_victim_is_largest_unstarted_tail(self):
        sched = make(items=8, workers=("a", "b", "c"), lease_size=4)
        sched.lease("a")
        sched.lease("b")
        sched.note_progress("a", 0)  # a: 3 unstarted; b: 4 unstarted
        assert sched.plan_steal("c") == "b"

    def test_no_steal_while_pending_queue_has_work(self):
        sched = make(items=16, workers=("a", "b"), lease_size=4)
        sched.lease("a")
        assert sched.plan_steal("b") is None

    def test_steal_disabled(self):
        sched = make(items=4, steal=False)
        sched.lease("a")
        assert sched.plan_steal("b") is None

    def test_cut_takes_back_half_of_unstarted_tail(self):
        sched = make(items=8, workers=("a", "b"), lease_size=8)
        sched.lease("a")
        assert sched.proposed_cut("a") == 4  # 8 unstarted -> take [4, 8)
        sched.note_progress("a", 2)
        assert sched.proposed_cut("a") == 5  # 5 unstarted -> take [5, 8)

    def test_record_steal_moves_tail_to_thief(self):
        sched = make(items=8, workers=("a", "b"), lease_size=8)
        victim = sched.lease("a")
        stolen = sched.record_steal("a", "b", 5)
        assert stolen.items == [5, 6, 7]
        assert victim.revoked_from == 5
        assert victim.live_items() == [0, 1, 2, 3, 4]
        assert (sched.steals, sched.shards_stolen) == (1, 3)

    def test_record_steal_respects_live_progress(self):
        # The engine pushes the cut later when the victim raced ahead.
        sched = make(items=8, workers=("a", "b"), lease_size=8)
        sched.lease("a")
        sched.note_progress("a", 5)
        stolen = sched.record_steal("a", "b", 3)
        assert stolen.items == [6, 7]

    def test_record_steal_returns_none_when_nothing_left(self):
        sched = make(items=4, workers=("a", "b"), lease_size=4)
        sched.lease("a")
        sched.note_progress("a", 3)
        assert sched.record_steal("a", "b", 2) is None
        assert sched.steals == 0

    def test_stolen_lease_is_itself_stealable(self):
        sched = make(items=8, workers=("a", "b", "c"), lease_size=8)
        sched.lease("a")
        sched.record_steal("a", "b", 4)
        sched.note_progress("a", 3)  # a exhausted its trimmed lease
        assert sched.plan_steal("c") == "b"


class TestFailureReclaim:
    def test_reclaim_returns_unstarted_tail_to_front(self):
        sched = make(items=12, workers=("a", "b"), lease_size=8)
        sched.lease("a")
        sched.note_progress("a", 1)
        reclaimed = sched.reclaim("a")
        assert reclaimed == [2, 3, 4, 5, 6, 7]
        # Front of the queue, original order -- the next lease resumes there.
        assert sched.lease("b").items == [2, 3, 4, 5, 6, 7, 8, 9]

    def test_reclaim_excludes_stolen_tail(self):
        sched = make(items=8, workers=("a", "b"), lease_size=8)
        sched.lease("a")
        sched.record_steal("a", "b", 4)
        assert sched.reclaim("a") == [0, 1, 2, 3]

    def test_requeue_appends_for_retry(self):
        sched = make(items=4, workers=("a", "b"), lease_size=4)
        sched.lease("a")
        sched.release("a")
        sched.requeue(2)
        assert sched.lease("a").items == [2]

    def test_worker_churn(self):
        sched = make(items=4, workers=("a",), lease_size=2)
        sched.add_worker("x")
        assert sched.lease("x") is not None
        sched.remove_worker("x")  # died; lease goes with it unless reclaimed
        assert "x" not in sched.lease_of


class TestDefaultLeaseSize:
    def test_small_runs_get_singleton_leases(self):
        assert default_lease_size(8, 4) == 1
        assert default_lease_size(0, 4) == 1

    def test_big_runs_clamp_at_32(self):
        assert default_lease_size(1_000_000, 8) == 32

    def test_mid_scale_is_an_eighth_of_fair_share(self):
        assert default_lease_size(640, 4) == 20
