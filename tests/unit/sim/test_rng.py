"""Unit tests for the seeded random sources."""

import pytest

from repro.sim.errors import DeterminismError
from repro.sim.rng import RandomSource, default_source


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(7)
        b = RandomSource(8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_is_stable(self):
        child1 = RandomSource(7).fork("workload")
        child2 = RandomSource(7).fork("workload")
        assert child1.random() == child2.random()

    def test_fork_labels_independent(self):
        root = RandomSource(7)
        a = root.fork("a")
        b = root.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_does_not_consume_parent_stream(self):
        lone = RandomSource(7)
        expected = [lone.random() for _ in range(3)]
        forked_parent = RandomSource(7)
        forked_parent.fork("child")
        assert [forked_parent.random() for _ in range(3)] == expected

    def test_default_source_default_seed(self):
        assert default_source().seed == 2016
        assert default_source(99).seed == 99

    def test_seed_must_be_int(self):
        with pytest.raises(DeterminismError):
            RandomSource("not-a-seed")  # type: ignore[arg-type]


class TestDraws:
    def test_randint_bounds(self):
        rng = RandomSource(1)
        draws = [rng.randint(3, 5) for _ in range(100)]
        assert set(draws) <= {3, 4, 5}

    def test_chance_extremes(self):
        rng = RandomSource(1)
        assert all(rng.chance(1.0) for _ in range(20))
        assert not any(rng.chance(0.0) for _ in range(20))

    def test_chance_out_of_range(self):
        with pytest.raises(DeterminismError):
            RandomSource(1).chance(1.5)

    def test_choice_empty_rejected(self):
        with pytest.raises(DeterminismError):
            RandomSource(1).choice([])

    def test_shuffle_returns_new_list(self):
        rng = RandomSource(1)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffle(original)
        assert sorted(shuffled) == original
        assert original == [1, 2, 3, 4, 5]

    def test_reaction_time_floor(self):
        rng = RandomSource(1)
        draws = [rng.reaction_time(mean_seconds=0.0, stddev_seconds=0.0) for _ in range(10)]
        assert all(d >= 80_000 for d in draws)  # 80 ms floor

    def test_jittered_delay_within_bounds(self):
        rng = RandomSource(1)
        for _ in range(100):
            delay = rng.jittered_delay(10.0, jitter_fraction=0.1)
            assert 8_999_999 <= delay <= 11_000_001

    def test_jittered_delay_rejects_negative(self):
        with pytest.raises(DeterminismError):
            RandomSource(1).jittered_delay(-1.0)
