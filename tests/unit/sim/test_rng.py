"""Unit tests for the seeded random sources."""

import pytest

from repro.sim.errors import DeterminismError
from repro.sim.rng import RandomSource, default_source


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(7)
        b = RandomSource(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomSource(7)
        b = RandomSource(8)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_is_stable(self):
        child1 = RandomSource(7).fork("workload")
        child2 = RandomSource(7).fork("workload")
        assert child1.random() == child2.random()

    def test_fork_labels_independent(self):
        root = RandomSource(7)
        a = root.fork("a")
        b = root.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_does_not_consume_parent_stream(self):
        lone = RandomSource(7)
        expected = [lone.random() for _ in range(3)]
        forked_parent = RandomSource(7)
        forked_parent.fork("child")
        assert [forked_parent.random() for _ in range(3)] == expected

    def test_default_source_default_seed(self):
        assert default_source().seed == 2016
        assert default_source(99).seed == 99

    def test_seed_must_be_int(self):
        with pytest.raises(DeterminismError):
            RandomSource("not-a-seed")  # type: ignore[arg-type]


class TestDraws:
    def test_randint_bounds(self):
        rng = RandomSource(1)
        draws = [rng.randint(3, 5) for _ in range(100)]
        assert set(draws) <= {3, 4, 5}

    def test_chance_extremes(self):
        rng = RandomSource(1)
        assert all(rng.chance(1.0) for _ in range(20))
        assert not any(rng.chance(0.0) for _ in range(20))

    def test_chance_out_of_range(self):
        with pytest.raises(DeterminismError):
            RandomSource(1).chance(1.5)

    def test_choice_empty_rejected(self):
        with pytest.raises(DeterminismError):
            RandomSource(1).choice([])

    def test_shuffle_returns_new_list(self):
        rng = RandomSource(1)
        original = [1, 2, 3, 4, 5]
        shuffled = rng.shuffle(original)
        assert sorted(shuffled) == original
        assert original == [1, 2, 3, 4, 5]

    def test_reaction_time_floor(self):
        rng = RandomSource(1)
        draws = [rng.reaction_time(mean_seconds=0.0, stddev_seconds=0.0) for _ in range(10)]
        assert all(d >= 80_000 for d in draws)  # 80 ms floor

    def test_jittered_delay_within_bounds(self):
        rng = RandomSource(1)
        for _ in range(100):
            delay = rng.jittered_delay(10.0, jitter_fraction=0.1)
            assert 8_999_999 <= delay <= 11_000_001

    def test_jittered_delay_rejects_negative(self):
        with pytest.raises(DeterminismError):
            RandomSource(1).jittered_delay(-1.0)


class TestSpawn:
    """The fleet engine's hierarchical derived-stream API."""

    def test_same_parent_same_key_identical_stream(self):
        a = RandomSource(7).spawn(("longterm", 3))
        b = RandomSource(7).spawn(("longterm", 3))
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_keys_differ(self):
        root = RandomSource(7)
        a = root.spawn(("longterm", 3))
        b = root.spawn(("longterm", 4))
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_spawn_does_not_consume_parent_stream(self):
        lone = RandomSource(7)
        expected = [lone.random() for _ in range(3)]
        spawning = RandomSource(7)
        spawning.spawn("child")
        assert [spawning.random() for _ in range(3)] == expected

    def test_spawn_and_fork_are_separate_domains(self):
        root = RandomSource(7)
        assert root.spawn("x").seed != root.fork("x").seed

    def test_int_and_str_keys_do_not_collide(self):
        root = RandomSource(7)
        assert root.spawn(1).seed != root.spawn("1").seed

    def test_tuple_flattening_is_unambiguous(self):
        root = RandomSource(7)
        assert root.spawn(("a", "b")).seed != root.spawn(("a,b",)).seed
        assert root.spawn((("a",), "b")).seed != root.spawn(("a", ("b",))).seed

    def test_spawn_is_hierarchical(self):
        a = RandomSource(7).spawn("fleet").spawn(("machine", 2))
        b = RandomSource(7).spawn("fleet").spawn(("machine", 2))
        assert a.seed == b.seed
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_spawn_name_reflects_key(self):
        child = RandomSource(7, name="root").spawn(("fleet", 5))
        assert "root/" in child.name

    def test_invalid_keys_rejected(self):
        root = RandomSource(7)
        with pytest.raises(DeterminismError):
            root.spawn(1.5)  # type: ignore[arg-type]
        with pytest.raises(DeterminismError):
            root.spawn(True)  # type: ignore[arg-type]
        with pytest.raises(DeterminismError):
            root.spawn(("a", [1]))  # type: ignore[arg-type]
