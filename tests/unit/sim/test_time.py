"""Unit tests for the virtual timebase."""

import pytest

from repro.sim.errors import TimeError
from repro.sim.time import (
    MICROSECONDS_PER_MILLISECOND,
    MICROSECONDS_PER_SECOND,
    NEVER,
    format_timestamp,
    from_millis,
    from_seconds,
    to_seconds,
    validate_duration,
)


class TestConversions:
    def test_from_seconds_whole(self):
        assert from_seconds(2.0) == 2 * MICROSECONDS_PER_SECOND

    def test_from_seconds_fractional(self):
        assert from_seconds(0.5) == 500_000

    def test_from_seconds_rounds(self):
        assert from_seconds(1e-7) == 0
        assert from_seconds(6e-7) == 1

    def test_from_millis(self):
        assert from_millis(500) == 500 * MICROSECONDS_PER_MILLISECOND

    def test_round_trip(self):
        assert to_seconds(from_seconds(3.25)) == pytest.approx(3.25)

    def test_nan_rejected(self):
        with pytest.raises(TimeError):
            from_seconds(float("nan"))
        with pytest.raises(TimeError):
            from_millis(float("nan"))


class TestFormatting:
    def test_format_zero(self):
        assert format_timestamp(0) == "[0.000000s]"

    def test_format_fractional(self):
        assert format_timestamp(1_500_000) == "[1.500000s]"

    def test_format_negative(self):
        assert format_timestamp(-250_000) == "[-0.250000s]"

    def test_format_never(self):
        assert format_timestamp(NEVER) == "[never]"


class TestValidateDuration:
    def test_accepts_zero(self):
        assert validate_duration(0) == 0

    def test_accepts_positive(self):
        assert validate_duration(123) == 123

    def test_rejects_negative(self):
        with pytest.raises(TimeError):
            validate_duration(-1)

    def test_rejects_float(self):
        with pytest.raises(TimeError):
            validate_duration(1.5)

    def test_rejects_bool(self):
        with pytest.raises(TimeError):
            validate_duration(True)


class TestNever:
    def test_never_is_older_than_everything(self):
        assert NEVER < 0
        assert NEVER < -from_seconds(10_000_000.0)
