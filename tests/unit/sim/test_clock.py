"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.errors import TimeError


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_custom_start(self):
        assert VirtualClock(start=42).now == 42

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_same_instant_is_noop(self):
        clock = VirtualClock(start=50)
        clock.advance_to(50)
        assert clock.now == 50

    def test_advance_by(self):
        clock = VirtualClock(start=10)
        clock.advance_by(5)
        assert clock.now == 15

    def test_advance_by_zero(self):
        clock = VirtualClock(start=10)
        clock.advance_by(0)
        assert clock.now == 10

    def test_cannot_go_backwards(self):
        clock = VirtualClock(start=100)
        with pytest.raises(TimeError):
            clock.advance_to(99)

    def test_cannot_advance_by_negative(self):
        clock = VirtualClock()
        with pytest.raises(TimeError):
            clock.advance_by(-1)

    def test_rejects_non_integer_start(self):
        with pytest.raises(TimeError):
            VirtualClock(start=1.5)

    def test_repr_mentions_time(self):
        assert "1.500000s" in repr(VirtualClock(start=1_500_000))
