"""Lazy-deletion compaction: the heap stays bounded under cancel churn.

The shm wait list cancels and re-arms its 500 ms timer on every fault, so a
long-running simulation performs schedule/cancel cycles constantly.  Without
compaction the heap grows with *total churn*; with it, the heap is bounded
by a small multiple of the number of live events.
"""

import pytest

from repro.sim.errors import SchedulerError
from repro.sim.scheduler import _COMPACT_MIN_SIZE, EventScheduler


class TestCompactionBoundsHeap:
    def test_schedule_cancel_churn_keeps_heap_bounded(self):
        """The shm-timer pattern: cancel + re-arm, thousands of times."""
        scheduler = EventScheduler()
        live = [scheduler.schedule_after(10_000, lambda: None, "shm-timer")]
        for _ in range(10_000):
            live[0].cancel()
            live[0] = scheduler.schedule_after(10_000, lambda: None, "shm-timer")
        # One live event; the heap may hold some dead entries but must be
        # bounded by the compaction floor, not the 10k churn count.
        assert scheduler.pending_count == 1
        assert scheduler.heap_size <= _COMPACT_MIN_SIZE
        assert scheduler.compactions > 0

    def test_heap_bounded_with_many_live_events(self):
        """With n live events the heap stays O(n) despite heavy cancels."""
        scheduler = EventScheduler()
        keepers = [
            scheduler.schedule_at(1_000_000 + i, lambda: None, "keeper")
            for i in range(500)
        ]
        for _ in range(20):
            doomed = [
                scheduler.schedule_at(2_000_000 + i, lambda: None, "doomed")
                for i in range(1_000)
            ]
            for event in doomed:
                event.cancel()
        assert scheduler.pending_count == len(keepers)
        # Dead entries never exceed half the heap (plus the in-flight one
        # that triggers the compaction).
        assert scheduler.heap_size <= 2 * len(keepers) + 1

    def test_small_heaps_are_never_compacted(self):
        """Below the size floor, rebuilds would cost more than they save."""
        scheduler = EventScheduler()
        for _ in range(10):
            scheduler.schedule_after(100, lambda: None).cancel()
        assert scheduler.compactions == 0
        assert scheduler.heap_size == 10  # lazy entries, reaped at dispatch
        assert scheduler.pending_count == 0

    def test_compaction_preserves_order_and_counts(self):
        """Live events fire in (time, seq) order across a compaction."""
        scheduler = EventScheduler()
        fired = []
        keep = []
        for i in range(_COMPACT_MIN_SIZE * 2):
            event = scheduler.schedule_at(100 + i, lambda i=i: fired.append(i))
            if i % 3 == 0:
                keep.append(i)
            else:
                event.cancel()
        assert scheduler.compactions > 0
        scheduler.drain()
        assert fired == keep
        assert scheduler.heap_size == 0
        assert scheduler.pending_count == 0


class TestCancelEdgeCases:
    def test_cancel_is_idempotent_for_counters(self):
        scheduler = EventScheduler()
        events = [scheduler.schedule_after(50, lambda: None) for _ in range(8)]
        events[0].cancel()
        events[0].cancel()
        events[0].cancel()
        assert scheduler.pending_count == 7

    def test_cancel_after_fire_does_not_corrupt_counts(self):
        """A handle cancelled after its callback ran is a pure flag set."""
        scheduler = EventScheduler()
        fired_event = scheduler.schedule_at(10, lambda: None)
        pending = [scheduler.schedule_at(1_000 + i, lambda: None) for i in range(4)]
        scheduler.run_until(10)
        fired_event.cancel()  # already popped: must not count against heap
        assert scheduler.pending_count == 4
        pending[0].cancel()
        assert scheduler.pending_count == 3
        assert scheduler.drain() == 3

    def test_cancel_during_dispatch_of_same_instant(self):
        """A callback cancelling a same-instant sibling suppresses it."""
        scheduler = EventScheduler()
        fired = []
        second = scheduler.schedule_at(100, lambda: fired.append("second"))
        scheduler.schedule_at(100, lambda: second.cancel())
        # Insertion order: the canceller was scheduled after `second`, so
        # schedule a third event whose cancellation happens first.
        third = scheduler.schedule_at(100, lambda: fired.append("third"))
        scheduler.schedule_at(99, lambda: third.cancel())
        scheduler.run_until(200)
        assert fired == ["second"]

    def test_mass_cancel_inside_callback_compacts_safely(self):
        """Compaction triggered mid-dispatch must not desync the loop."""
        scheduler = EventScheduler()
        fired = []
        doomed = [
            scheduler.schedule_at(500 + i, lambda: fired.append("doomed"))
            for i in range(_COMPACT_MIN_SIZE * 2)
        ]

        def cancel_all():
            for event in doomed:
                event.cancel()

        scheduler.schedule_at(10, cancel_all)
        survivor = scheduler.schedule_at(900, lambda: fired.append("survivor"))
        scheduler.run_until(1_000)
        assert fired == ["survivor"]
        assert survivor.cancelled is False
        assert scheduler.compactions > 0
        assert scheduler.pending_count == 0

    def test_drain_budget_still_enforced(self):
        scheduler = EventScheduler()

        def reschedule():
            scheduler.schedule_after(1, reschedule)

        scheduler.schedule_after(1, reschedule)
        with pytest.raises(SchedulerError):
            scheduler.drain(max_events=100)
