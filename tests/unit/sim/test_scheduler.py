"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.errors import SchedulerError
from repro.sim.scheduler import EventScheduler


class TestScheduling:
    def test_schedule_and_run(self, scheduler):
        fired = []
        scheduler.schedule_at(100, lambda: fired.append("a"))
        scheduler.run_until(100)
        assert fired == ["a"]
        assert scheduler.now == 100

    def test_events_fire_in_time_order(self, scheduler):
        fired = []
        scheduler.schedule_at(200, lambda: fired.append("late"))
        scheduler.schedule_at(100, lambda: fired.append("early"))
        scheduler.run_until(300)
        assert fired == ["early", "late"]

    def test_same_instant_insertion_order(self, scheduler):
        fired = []
        for name in ("first", "second", "third"):
            scheduler.schedule_at(50, lambda n=name: fired.append(n))
        scheduler.run_until(50)
        assert fired == ["first", "second", "third"]

    def test_schedule_after(self, scheduler):
        scheduler.run_until(100)
        fired = []
        scheduler.schedule_after(25, lambda: fired.append(scheduler.now))
        scheduler.run_for(25)
        assert fired == [125]

    def test_schedule_in_past_rejected(self, scheduler):
        scheduler.run_until(100)
        with pytest.raises(SchedulerError):
            scheduler.schedule_at(99, lambda: None)

    def test_run_until_past_rejected(self, scheduler):
        scheduler.run_until(100)
        with pytest.raises(SchedulerError):
            scheduler.run_until(50)

    def test_clock_advances_to_horizon_even_if_queue_empty(self, scheduler):
        scheduler.run_until(500)
        assert scheduler.now == 500

    def test_events_beyond_horizon_stay_queued(self, scheduler):
        fired = []
        scheduler.schedule_at(200, lambda: fired.append("x"))
        scheduler.run_until(100)
        assert fired == []
        assert scheduler.pending_count == 1
        scheduler.run_until(200)
        assert fired == ["x"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, scheduler):
        fired = []
        handle = scheduler.schedule_at(10, lambda: fired.append("x"))
        handle.cancel()
        scheduler.run_until(20)
        assert fired == []

    def test_cancel_is_idempotent(self, scheduler):
        handle = scheduler.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        assert scheduler.run_until(20) == 0

    def test_pending_count_excludes_cancelled(self, scheduler):
        handle = scheduler.schedule_at(10, lambda: None)
        scheduler.schedule_at(20, lambda: None)
        handle.cancel()
        assert scheduler.pending_count == 1


class TestReentrancy:
    def test_callback_can_schedule_more_events(self, scheduler):
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule_after(10, lambda: fired.append("second"))

        scheduler.schedule_at(100, first)
        scheduler.run_until(200)
        assert fired == ["first", "second"]

    def test_callback_chain_within_horizon(self, scheduler):
        count = []

        def tick():
            if len(count) < 5:
                count.append(1)
                scheduler.schedule_after(1, tick)

        scheduler.schedule_at(0, tick)
        scheduler.run_until(100)
        assert len(count) == 5

    def test_reentrant_run_rejected(self, scheduler):
        def evil():
            scheduler.run_until(500)

        scheduler.schedule_at(10, evil)
        with pytest.raises(SchedulerError):
            scheduler.run_until(100)


class TestDrain:
    def test_drain_empties_queue(self, scheduler):
        fired = []
        scheduler.schedule_at(10, lambda: fired.append(1))
        scheduler.schedule_at(20, lambda: fired.append(2))
        assert scheduler.drain() == 2
        assert fired == [1, 2]

    def test_drain_detects_runaway(self, scheduler):
        def forever():
            scheduler.schedule_after(1, forever)

        scheduler.schedule_at(0, forever)
        with pytest.raises(SchedulerError):
            scheduler.drain(max_events=100)

    def test_events_dispatched_counter(self, scheduler):
        for t in (1, 2, 3):
            scheduler.schedule_at(t, lambda: None)
        scheduler.run_until(10)
        assert scheduler.events_dispatched == 3


class TestEdgeCasesUnderLoad:
    """Edge cases the fleet engine leans on: cancellation of fired events,
    same-instant scheduling from inside callbacks, and re-entrancy."""

    def test_cancel_after_fired_is_harmless(self, scheduler):
        fired = []
        handle = scheduler.schedule_at(10, lambda: fired.append("x"))
        scheduler.run_until(20)
        assert fired == ["x"]
        handle.cancel()  # already dispatched; must not raise or corrupt
        handle.cancel()
        assert scheduler.pending_count == 0
        assert scheduler.run_until(30) == 0

    def test_cancel_after_fired_does_not_affect_later_events(self, scheduler):
        fired = []
        early = scheduler.schedule_at(10, lambda: fired.append("early"))
        scheduler.schedule_at(30, lambda: fired.append("late"))
        scheduler.run_until(20)
        early.cancel()
        scheduler.run_until(40)
        assert fired == ["early", "late"]

    def test_schedule_at_current_instant_from_callback_fires_same_run(self, scheduler):
        fired = []

        def outer():
            scheduler.schedule_at(scheduler.now, lambda: fired.append("inner"))
            fired.append("outer")

        scheduler.schedule_at(50, outer)
        dispatched = scheduler.run_until(50)
        assert fired == ["outer", "inner"]
        assert dispatched == 2
        assert scheduler.now == 50

    def test_same_instant_chain_from_callbacks_preserves_order(self, scheduler):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 4:
                scheduler.schedule_at(scheduler.now, lambda: chain(depth + 1))

        scheduler.schedule_at(5, lambda: chain(0))
        scheduler.run_until(5)
        assert fired == [0, 1, 2, 3, 4]

    def test_callback_cancelling_same_instant_sibling(self, scheduler):
        fired = []
        handles = {}

        def killer():
            fired.append("killer")
            handles["victim"].cancel()

        scheduler.schedule_at(10, killer)
        handles["victim"] = scheduler.schedule_at(10, lambda: fired.append("victim"))
        scheduler.run_until(10)
        assert fired == ["killer"]

    def test_reentrant_run_for_rejected_from_callback(self, scheduler):
        def evil():
            scheduler.run_for(5)

        scheduler.schedule_at(10, evil)
        with pytest.raises(SchedulerError):
            scheduler.run_for(20)

    def test_reentrant_drain_rejected_from_callback(self, scheduler):
        def evil():
            scheduler.drain()

        scheduler.schedule_at(10, evil)
        with pytest.raises(SchedulerError):
            scheduler.run_until(20)

    def test_scheduler_usable_after_rejected_reentrant_run(self, scheduler):
        def evil():
            scheduler.run_until(500)

        scheduler.schedule_at(10, evil)
        with pytest.raises(SchedulerError):
            scheduler.run_until(100)
        # The failed run must release the running flag and keep the clock
        # consistent so the scheduler remains usable.
        fired = []
        scheduler.schedule_at(scheduler.now + 1, lambda: fired.append("ok"))
        scheduler.run_for(10)
        assert fired == ["ok"]

    def test_many_events_with_interleaved_cancellation(self, scheduler):
        fired = []
        handles = [
            scheduler.schedule_at(t, lambda t=t: fired.append(t)) for t in range(1000)
        ]
        for handle in handles[::2]:
            handle.cancel()
        assert scheduler.pending_count == 500
        assert scheduler.run_until(1000) == 500
        assert fired == list(range(1, 1000, 2))
