"""Unit tests for X events, provenance, windows, and stacking."""

import pytest

from repro.sim.time import NEVER
from repro.xserver.errors import BadValue
from repro.xserver.events import EventKind, EventProvenance, XEvent
from repro.xserver.window import Geometry, Pixmap, StackingOrder, Window


class TestProvenance:
    def test_hardware_is_authentic(self):
        assert EventProvenance.HARDWARE.is_user_authentic

    def test_synthetic_sources_are_not(self):
        assert not EventProvenance.SEND_EVENT.is_user_authentic
        assert not EventProvenance.XTEST.is_user_authentic
        assert not EventProvenance.SERVER.is_user_authentic

    def test_synthetic_flag_only_for_sendevent(self):
        """The on-the-wire SendEvent flag is forced by the protocol; XTest
        events carry no flag -- that asymmetry is why provenance tagging
        was needed."""
        send = XEvent(EventKind.KEY_PRESS, 0, EventProvenance.SEND_EVENT)
        xtest = XEvent(EventKind.KEY_PRESS, 0, EventProvenance.XTEST)
        assert send.synthetic_flag
        assert not xtest.synthetic_flag

    def test_is_authentic_input(self):
        hw_key = XEvent(EventKind.KEY_PRESS, 0, EventProvenance.HARDWARE)
        hw_expose = XEvent(EventKind.EXPOSE, 0, EventProvenance.HARDWARE)
        fake_key = XEvent(EventKind.KEY_PRESS, 0, EventProvenance.XTEST)
        assert hw_key.is_authentic_input
        assert not hw_expose.is_authentic_input
        assert not fake_key.is_authentic_input

    def test_input_kinds(self):
        assert EventKind.BUTTON_PRESS.is_input
        assert EventKind.MOTION.is_input
        assert not EventKind.SELECTION_NOTIFY.is_input

    def test_serials_increase(self):
        a = XEvent(EventKind.MOTION, 0, EventProvenance.HARDWARE)
        b = XEvent(EventKind.MOTION, 0, EventProvenance.HARDWARE)
        assert b.serial > a.serial


class TestGeometry:
    def test_contains(self):
        geometry = Geometry(10, 20, 100, 50)
        assert geometry.contains(10, 20)
        assert geometry.contains(109, 69)
        assert not geometry.contains(110, 69)
        assert not geometry.contains(9, 20)

    def test_positive_dimensions_required(self):
        with pytest.raises(BadValue):
            Geometry(0, 0, 0, 10)


class TestWindowVisibility:
    def test_unmapped_window_has_no_visibility(self):
        window = Window(1, Geometry(0, 0, 10, 10))
        assert window.visible_since == NEVER
        assert window.visible_duration(1000) == 0

    def test_visible_duration(self):
        window = Window(1, Geometry(0, 0, 10, 10))
        window.mapped = True
        window.visible_since = 100
        assert window.visible_duration(500) == 400


class TestStacking:
    def _window(self, client_id, x=0, y=0, w=100, h=100):
        window = Window(client_id, Geometry(x, y, w, h))
        window.mapped = True
        return window

    def test_new_windows_on_top(self):
        stack = StackingOrder()
        bottom, top = self._window(1), self._window(2)
        stack.add_top(bottom)
        stack.add_top(top)
        assert stack.bottom_to_top() == [bottom, top]
        assert stack.topmost_at(50, 50) is top

    def test_raise_and_lower(self):
        stack = StackingOrder()
        a, b = self._window(1), self._window(2)
        stack.add_top(a)
        stack.add_top(b)
        stack.raise_window(a)
        assert stack.topmost_at(50, 50) is a
        stack.lower_window(a)
        assert stack.topmost_at(50, 50) is b

    def test_hit_testing_respects_geometry(self):
        stack = StackingOrder()
        left = self._window(1, x=0, w=50)
        right = self._window(2, x=100, w=50)
        stack.add_top(left)
        stack.add_top(right)
        assert stack.topmost_at(10, 10) is left
        assert stack.topmost_at(120, 10) is right
        assert stack.topmost_at(75, 10) is None

    def test_transparent_window_receives_clicks_by_default(self):
        """The clickjacking routing reality: a transparent overlay can
        capture clicks (the defence is at notification level, not here)."""
        stack = StackingOrder()
        victim = self._window(1)
        overlay = self._window(2)
        overlay.transparent = True
        stack.add_top(victim)
        stack.add_top(overlay)
        assert stack.topmost_at(50, 50) is overlay
        assert stack.topmost_at(50, 50, include_transparent=False) is victim

    def test_remove(self):
        stack = StackingOrder()
        window = self._window(1)
        stack.add_top(window)
        stack.remove(window)
        assert len(stack) == 0
        assert stack.topmost_at(50, 50) is None

    def test_duplicate_add_ignored(self):
        stack = StackingOrder()
        window = self._window(1)
        stack.add_top(window)
        stack.add_top(window)
        assert len(stack) == 1


class TestDrawables:
    def test_draw_replaces_content(self):
        pixmap = Pixmap(1)
        pixmap.draw(b"abc")
        pixmap.draw(b"xyz")
        assert bytes(pixmap.content) == b"xyz"

    def test_append(self):
        pixmap = Pixmap(1)
        pixmap.append(b"ab")
        pixmap.append(b"cd")
        assert bytes(pixmap.content) == b"abcd"

    def test_drawable_ids_unique(self):
        assert Pixmap(1).drawable_id != Pixmap(1).drawable_id
