"""Unit tests for selections, properties, screen capture (unmodified server).

These exercise the *stock X11* behaviour -- including the insecurities the
paper exploits in its attack analysis.  The Overhaul-enabled behaviour is
tested in tests/unit/core and tests/integration.
"""

import pytest

from repro.sim.scheduler import EventScheduler
from repro.xserver.errors import BadAtom, BadMatch, BadWindow
from repro.xserver.events import EventKind
from repro.xserver.selection import TransferState
from repro.xserver.server import XServer
from repro.xserver.window import Geometry


class FakeTask:
    def __init__(self, pid, comm="app"):
        self.pid = pid
        self.comm = comm


@pytest.fixture
def server():
    return XServer(EventScheduler())


def client_with_window(server, pid, geometry=None):
    client = server.connect(FakeTask(pid))
    window = server.create_window(
        client, geometry if geometry is not None else Geometry(0, 0, 10, 10)
    )
    server.map_window(client, window.drawable_id)
    return client, window


class TestSelectionOwnership:
    def test_set_and_get_owner(self, server):
        client, window = client_with_window(server, 1)
        server.set_selection_owner(client, "CLIPBOARD", window.drawable_id)
        assert server.get_selection_owner(client, "CLIPBOARD") == window.drawable_id

    def test_no_owner_returns_none(self, server):
        client, _ = client_with_window(server, 1)
        assert server.get_selection_owner(client, "CLIPBOARD") is None

    def test_previous_owner_receives_selection_clear(self, server):
        first, first_window = client_with_window(server, 1)
        second, second_window = client_with_window(server, 2)
        server.set_selection_owner(first, "CLIPBOARD", first_window.drawable_id)
        server.set_selection_owner(second, "CLIPBOARD", second_window.drawable_id)
        clears = [e for e in first.event_queue if e.kind is EventKind.SELECTION_CLEAR]
        assert len(clears) == 1

    def test_empty_selection_name_rejected(self, server):
        client, window = client_with_window(server, 1)
        with pytest.raises(BadAtom):
            server.set_selection_owner(client, "", window.drawable_id)

    def test_cannot_own_with_foreign_window(self, server):
        client, _ = client_with_window(server, 1)
        other, other_window = client_with_window(server, 2)
        with pytest.raises(BadMatch):
            server.set_selection_owner(client, "CLIPBOARD", other_window.drawable_id)


class TestTransferProtocol:
    def test_full_round_trip_states(self, server):
        owner, owner_window = client_with_window(server, 1)
        requestor, req_window = client_with_window(server, 2)
        server.set_selection_owner(owner, "CLIPBOARD", owner_window.drawable_id)
        transfer = server.convert_selection(
            requestor, "CLIPBOARD", "STRING", "XSEL_DATA", req_window.drawable_id
        )
        assert transfer.state is TransferState.REQUESTED
        # Owner received SelectionRequest (step 7).
        requests = [e for e in owner.event_queue if e.kind is EventKind.SELECTION_REQUEST]
        assert len(requests) == 1
        # Owner stores data (step 8).
        server.change_property(owner, req_window.drawable_id, "XSEL_DATA", b"hello")
        assert transfer.state is TransferState.DATA_STORED
        # Owner sends SelectionNotify (step 9).
        server.send_event(owner, req_window.drawable_id, EventKind.SELECTION_NOTIFY)
        assert transfer.state is TransferState.NOTIFIED
        # Requestor fetches and deletes (steps 11-13).
        data = server.get_property(requestor, req_window.drawable_id, "XSEL_DATA", delete=True)
        assert data == b"hello"
        assert transfer.state is TransferState.COMPLETED

    def test_convert_with_no_owner_returns_none(self, server):
        requestor, req_window = client_with_window(server, 2)
        assert server.convert_selection(
            requestor, "CLIPBOARD", "STRING", "P", req_window.drawable_id
        ) is None

    def test_convert_after_owner_disconnect(self, server):
        owner, owner_window = client_with_window(server, 1)
        server.set_selection_owner(owner, "CLIPBOARD", owner_window.drawable_id)
        server.disconnect(owner)
        requestor, req_window = client_with_window(server, 2)
        assert server.convert_selection(
            requestor, "CLIPBOARD", "STRING", "P", req_window.drawable_id
        ) is None


class TestProperties:
    def test_get_missing_property(self, server):
        client, window = client_with_window(server, 1)
        assert server.get_property(client, window.drawable_id, "NOPE") is None

    def test_property_notify_delivered_to_subscribers(self, server):
        owner, window = client_with_window(server, 1)
        snoop, _ = client_with_window(server, 2)
        server.subscribe_property_events(snoop, window.drawable_id)
        server.change_property(owner, window.drawable_id, "PROP", b"v")
        notifies = [e for e in snoop.event_queue if e.kind is EventKind.PROPERTY_NOTIFY]
        assert len(notifies) == 1
        assert notifies[0].payload["property"] == "PROP"

    def test_delete_fires_deleted_notify(self, server):
        client, window = client_with_window(server, 1)
        server.change_property(client, window.drawable_id, "PROP", b"v")
        server.get_property(client, window.drawable_id, "PROP", delete=True)
        deleted = [
            e
            for e in client.event_queue
            if e.kind is EventKind.PROPERTY_NOTIFY and e.payload.get("deleted")
        ]
        assert len(deleted) == 1

    def test_unknown_window_rejected(self, server):
        client, _ = client_with_window(server, 1)
        with pytest.raises(BadWindow):
            server.change_property(client, 0xDEAD, "P", b"x")


class TestScreenCaptureUnprotected:
    def test_get_image_own_window(self, server):
        client, window = client_with_window(server, 1)
        server.draw(client, window.drawable_id, b"mine")
        assert server.get_image(client, window.drawable_id) == b"mine"

    def test_get_image_root_composites_all_windows(self, server):
        # Disjoint geometries: on the 2D screen an opaque window
        # (zero-extended over its whole rect) occludes whatever lies below.
        a_client, a_window = client_with_window(server, 1, Geometry(0, 0, 10, 10))
        b_client, b_window = client_with_window(server, 2, Geometry(20, 0, 10, 10))
        server.draw(a_client, a_window.drawable_id, b"AAA")
        server.draw(b_client, b_window.drawable_id, b"BBB")
        spy, _ = client_with_window(server, 3, Geometry(40, 0, 10, 10))
        image = server.get_image(spy, server.root_window.drawable_id)
        assert b"AAA" in image and b"BBB" in image

    def test_get_image_foreign_window_allowed_on_stock_server(self, server):
        victim, victim_window = client_with_window(server, 1)
        server.draw(victim, victim_window.drawable_id, b"secret")
        spy, _ = client_with_window(server, 2)
        assert server.get_image(spy, victim_window.drawable_id) == b"secret"

    def test_shm_variant_same_path(self, server):
        client, window = client_with_window(server, 1)
        server.draw(client, window.drawable_id, b"img")
        assert server.get_image(client, window.drawable_id, via="mit-shm") == b"img"

    def test_copy_area_same_owner(self, server):
        client, window = client_with_window(server, 1)
        server.draw(client, window.drawable_id, b"content")
        pixmap = server.create_pixmap(client)
        server.copy_area(client, window.drawable_id, pixmap.drawable_id)
        assert bytes(pixmap.content) == b"content"

    def test_copy_area_into_foreign_drawable_rejected(self, server):
        a, a_window = client_with_window(server, 1)
        b, b_window = client_with_window(server, 2)
        with pytest.raises(BadMatch):
            server.copy_area(a, a_window.drawable_id, b_window.drawable_id)

    def test_copy_plane_aliases_copy_area(self, server):
        client, window = client_with_window(server, 1)
        server.draw(client, window.drawable_id, b"plane")
        pixmap = server.create_pixmap(client)
        server.copy_plane(client, window.drawable_id, pixmap.drawable_id)
        assert bytes(pixmap.content) == b"plane"
