"""Unit tests for the damage-tracked display pipeline.

Covers the composition cache and its invalidation rules (draw, map, unmap,
raise, property writes, overlay banner appearance *and* expiry), the
zero-copy drawable snapshots, the CopyPlane operation label, and the
selection-transfer reuse pool.  The cross-configuration byte-equivalence of
all of these is separately enforced by the differential property tests in
tests/property/test_fastpath_equivalence.py.
"""

import pytest

from repro.core.config import OverhaulConfig, reference_config
from repro.core.system import Machine
from repro.apps.base import SimApp
from repro.sim.scheduler import EventScheduler
from repro.sim.time import from_seconds
from repro.xserver.errors import BadAccess
from repro.xserver.server import XServer
from repro.xserver.window import Geometry


def _quiet_config(**overrides) -> OverhaulConfig:
    """Grant everything, no capture alerts -- isolates cache mechanics."""
    defaults = dict(force_grant=True, alert_on_screen_capture=False, alert_on_denial=False)
    defaults.update(overrides)
    return OverhaulConfig(**defaults)


def _machine_with_app(config=None):
    machine = Machine.with_overhaul(config if config is not None else _quiet_config())
    app = SimApp(machine, "/usr/bin/viewer", comm="viewer",
                 geometry=Geometry(10, 10, 100, 100))
    machine.xserver.draw(app.client, app.window.drawable_id, b"A" * 16)
    machine.settle()
    return machine, app


class FakeTask:
    def __init__(self, pid, comm="app"):
        self.pid = pid
        self.comm = comm


class TestComposeCache:
    def test_repeat_capture_is_a_cache_hit(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        first = app.capture_screen()
        misses = xserver.compose_cache_misses
        second = app.capture_screen()
        assert second == first
        assert xserver.compose_cache_hits >= 1
        assert xserver.compose_cache_misses == misses  # no recomposition

    def test_draw_busts_the_cache(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        stale = app.capture_screen()
        xserver.draw(app.client, app.window.drawable_id, b"B" * 16)
        fresh = app.capture_screen()
        assert fresh != stale
        assert b"B" * 16 in fresh

    def test_direct_window_draw_busts_the_cache(self):
        # Content mutations that bypass the protocol layer (tests and apps
        # paint Drawable objects directly) must still invalidate.
        machine, app = _machine_with_app()
        stale = app.capture_screen()
        app.window.draw(b"C" * 16)
        fresh = app.capture_screen()
        assert fresh != stale
        assert b"C" * 16 in fresh

    def test_unmap_and_map_bust_the_cache(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        mapped = app.capture_screen()
        xserver.unmap_window(app.client, app.window.drawable_id)
        hidden = app.capture_screen()
        assert b"A" * 16 not in hidden
        xserver.map_window(app.client, app.window.drawable_id)
        remapped = app.capture_screen()
        assert remapped == mapped

    def test_raise_busts_the_cache(self):
        machine, app = _machine_with_app()
        other = SimApp(machine, "/usr/bin/other", comm="other",
                       geometry=Geometry(20, 20, 100, 100))
        machine.xserver.draw(other.client, other.window.drawable_id, b"Z" * 16)
        machine.settle()
        before = app.capture_screen()
        assert b"Z" * 16 in before  # `other` is on top
        machine.xserver.raise_window(app.client, app.window.drawable_id)
        after = app.capture_screen()
        assert after != before  # composition order changed
        assert b"Z" * 16 not in after  # the raised window occludes it now

    def test_property_write_lands_in_the_journal_not_a_full_miss(self):
        # Property writes bump the render generation but leave content
        # untouched; under incremental composition they resolve to a
        # partial pass that reuses every band instead of a full recompose.
        machine, app = _machine_with_app()
        xserver = machine.xserver
        first = app.capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        xserver.change_property(app.client, app.window.drawable_id, "WM_NAME", b"t")
        second = app.capture_screen()
        assert second == first  # properties are not rendered content
        assert xserver.compose_cache_misses == misses  # no full rebuild
        assert xserver.compose_partial_hits == partials + 1

    def test_property_write_forces_full_recompose_without_incremental(self):
        # With incremental composition off the fast path falls back to the
        # whole-frame render key, so the same write is a full miss.
        machine, app = _machine_with_app()
        xserver = machine.xserver
        xserver.incremental_compose = False
        misses_before = xserver.compose_cache_misses
        app.capture_screen()
        xserver.change_property(app.client, app.window.drawable_id, "WM_NAME", b"t")
        app.capture_screen()
        assert xserver.compose_cache_misses > misses_before + 1  # both recomposed

    def test_banner_appearance_busts_the_cache(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        quiet = app.capture_screen()
        xserver.display_alert("'rec' is accessing the microphone",
                              "microphone:/dev/mic0", pid=77, comm="rec")
        alerted = app.capture_screen()
        assert alerted != quiet
        assert alerted.startswith(quiet)  # banner appended above the stack
        assert b"ALERT[rec:microphone:/dev/mic0" in alerted

    def test_banner_expiry_busts_the_cache(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        quiet = app.capture_screen()
        xserver.display_alert("alert", "op", pid=77, comm="rec")
        alerted = app.capture_screen()
        machine.run_for(from_seconds(10.0))
        expired = app.capture_screen()
        assert expired == quiet
        assert expired != alerted

    def test_capture_after_alert_never_serves_stale_frame(self):
        # The acceptance scenario: a capture made immediately after
        # display_alert must carry the banner even if the previous frame
        # (banner-less) is still cached.
        machine, app = _machine_with_app()
        app.capture_screen()  # populate the cache without a banner
        machine.xserver.display_alert("blocked", "camera:/dev/cam0", pid=9, comm="spy")
        frame = app.capture_screen()
        assert b"ALERT[spy:camera:/dev/cam0" in frame

    def test_reference_config_never_caches(self):
        machine, app = _machine_with_app(
            _quiet_config(fast_netlink=False, fast_decision_cache=False,
                          fast_audit_batch=False, fast_display=False)
        )
        xserver = machine.xserver
        assert not xserver.fast_display
        app.capture_screen()
        app.capture_screen()
        assert xserver.compose_cache_hits == 0
        assert xserver.compose_cache_misses == 0

    def test_tracing_disables_the_cache_at_call_time(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        app.capture_screen()
        hits = xserver.compose_cache_hits
        machine.tracer.enabled = True
        app.capture_screen()
        assert xserver.compose_cache_hits == hits


class TestZeroCopySnapshots:
    def test_repeat_window_capture_returns_the_same_object(self):
        machine, app = _machine_with_app()
        owner_window = app.window
        first = app.capture_window(owner_window)
        second = app.capture_window(owner_window)
        assert first is second  # cached immutable snapshot, no copy

    def test_draw_invalidates_the_snapshot(self):
        machine, app = _machine_with_app()
        first = app.capture_window(app.window)
        machine.xserver.draw(app.client, app.window.drawable_id, b"NEW" * 4)
        second = app.capture_window(app.window)
        assert first is not second
        assert second == b"NEW" * 4

    def test_snapshot_is_immutable_bytes(self):
        machine, app = _machine_with_app()
        snapshot = app.capture_window(app.window)
        assert isinstance(snapshot, bytes)

    def test_copy_area_destination_is_independent_of_source(self):
        machine, app = _machine_with_app()
        xserver = machine.xserver
        pixmap = xserver.create_pixmap(app.client)
        xserver.copy_area(app.client, app.window.drawable_id, pixmap.drawable_id)
        assert bytes(pixmap.content) == b"A" * 16
        xserver.draw(app.client, app.window.drawable_id, b"B" * 16)
        assert bytes(pixmap.content) == b"A" * 16  # dst kept its own buffer


class TestCopyPlaneLabel:
    def _server_with_two_clients(self):
        machine = Machine.with_overhaul()  # real decisions: denials possible
        victim = SimApp(machine, "/usr/bin/victim", comm="victim")
        spy = SimApp(machine, "/usr/bin/spy", comm="spy")
        machine.xserver.draw(victim.client, victim.window.drawable_id, b"secret")
        machine.settle()
        return machine, victim, spy

    def test_denial_text_names_copy_plane(self):
        machine, victim, spy = self._server_with_two_clients()
        pixmap = machine.xserver.create_pixmap(spy.client)
        with pytest.raises(BadAccess, match="CopyPlane from foreign drawable"):
            machine.xserver.copy_plane(
                spy.client, victim.window.drawable_id, pixmap.drawable_id
            )
        with pytest.raises(BadAccess, match="CopyArea from foreign drawable"):
            machine.xserver.copy_area(
                spy.client, victim.window.drawable_id, pixmap.drawable_id
            )

    def test_counters_distinguish_copy_plane_from_copy_area(self):
        machine, victim, spy = self._server_with_two_clients()
        xserver = machine.xserver
        pixmap = xserver.create_pixmap(victim.client)
        xserver.copy_area(victim.client, victim.window.drawable_id, pixmap.drawable_id)
        xserver.copy_plane(victim.client, victim.window.drawable_id, pixmap.drawable_id)
        xserver.copy_plane(victim.client, victim.window.drawable_id, pixmap.drawable_id)
        assert xserver.copy_requests == {"copy-area": 1, "copy-plane": 2}

    def test_trace_span_carries_the_operation_label(self):
        machine, victim, spy = self._server_with_two_clients()
        machine.tracer.enabled = True
        pixmap = machine.xserver.create_pixmap(spy.client)
        with pytest.raises(BadAccess):
            machine.xserver.copy_plane(
                spy.client, victim.window.drawable_id, pixmap.drawable_id
            )
        spans = [s for s in machine.tracer.spans if s.name == "screen.gate"]
        assert spans and spans[-1].attrs["via"] == "copy-plane"


class TestSelectionTransferReuse:
    def _clipboard_pair(self, config=None):
        machine = Machine.with_overhaul(config if config is not None else _quiet_config())
        source = SimApp(machine, "/usr/bin/src", comm="src")
        target = SimApp(machine, "/usr/bin/dst", comm="dst")
        machine.settle()
        source.copy_text(b"payload")
        return machine, source, target

    def test_repeat_paste_reuses_the_transfer_record(self):
        machine, source, target = self._clipboard_pair()
        selections = machine.xserver.selections
        assert target.paste_text() == b"payload"
        assert selections.transfer_reuses == 0  # first round allocates
        assert target.paste_text() == b"payload"
        assert target.paste_text() == b"payload"
        assert selections.transfer_reuses == 2

    def test_reused_transfers_get_fresh_ids(self):
        machine, source, target = self._clipboard_pair()

        ids = []
        original_begin = machine.xserver.selections.begin_transfer

        def record(*args, **kwargs):
            transfer = original_begin(*args, **kwargs)
            ids.append(transfer.transfer_id)
            return transfer

        machine.xserver.selections.begin_transfer = record
        target.paste_text()
        target.paste_text()
        target.paste_text()
        assert ids == sorted(ids) and len(set(ids)) == 3

    def test_reference_config_never_reuses(self):
        machine, source, target = self._clipboard_pair(
            _quiet_config(fast_netlink=False, fast_decision_cache=False,
                          fast_audit_batch=False, fast_display=False)
        )
        for _ in range(3):
            assert target.paste_text() == b"payload"
        assert machine.xserver.selections.transfer_reuses == 0

    def test_completed_counter_still_advances_on_reuse(self):
        machine, source, target = self._clipboard_pair()
        for _ in range(5):
            target.paste_text()
        assert machine.xserver.selections.completed_transfers == 5


class TestBannerCache:
    def test_banner_cached_within_expiry_window(self):
        xserver = XServer(EventScheduler())
        xserver.display_alert("m", "op", pid=1, comm="a")
        first = xserver.overlay.banner_bytes(xserver.now)
        second = xserver.overlay.banner_bytes(xserver.now)
        assert first is second  # memoized render

    def test_coalesced_alert_does_not_bump_generation(self):
        xserver = XServer(EventScheduler())
        xserver.display_alert("m", "op", pid=1, comm="a")
        generation = xserver.overlay.generation
        xserver.display_alert("m", "op", pid=1, comm="a")  # coalesces
        assert xserver.overlay.generation == generation
        assert xserver.overlay.total_coalesced == 1

    def test_new_alert_bumps_generation_and_rerenders(self):
        xserver = XServer(EventScheduler())
        xserver.display_alert("m", "op", pid=1, comm="a")
        first = xserver.overlay.banner_bytes(xserver.now)
        xserver.display_alert("m2", "op2", pid=2, comm="b")
        second = xserver.overlay.banner_bytes(xserver.now)
        assert second != first and b"b:op2" in second
