"""Edge cases for region-granular damage and incremental composition.

The damage-rect pipeline has three layers of state that must stay
consistent: the per-drawable pending rects (clipping, coalescing, the
collapse cap), the per-drawable snapshot refresh (splicing only dirty
spans), and the server's incremental compose (patching only dirty bands
of the cached frame).  These tests pin each layer's edge cases -- the
differential property suite separately proves whole-pipeline equivalence
against the reference composition.
"""

from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.apps.base import SimApp
from repro.sim.time import from_seconds
from repro.xserver.window import Geometry, Pixmap, Rect, Window


def _quiet_config(**overrides) -> OverhaulConfig:
    defaults = dict(force_grant=True, alert_on_screen_capture=False, alert_on_denial=False)
    defaults.update(overrides)
    return OverhaulConfig(**defaults)


def _machine_with_stack(windows=3, content=16):
    """A machine with *windows* painted windows, settled and composable."""
    machine = Machine.with_overhaul(_quiet_config())
    apps = []
    for index in range(windows):
        app = SimApp(machine, f"/usr/bin/app{index}", comm=f"app{index}",
                     geometry=Geometry(10 * index, 10, 100, 100))
        machine.xserver.draw(app.client, app.window.drawable_id,
                             bytes([65 + index]) * content)
        apps.append(app)
    machine.settle()
    return machine, apps


def _reference_frame(machine):
    """The frame the reference (uncached) composition would produce."""
    parts = [bytes(w.content) for w in machine.xserver.stacking.bottom_to_top()]
    banner = machine.xserver.overlay.banner_bytes(machine.xserver.now)
    if banner:
        parts.append(banner)
    return b"".join(parts)


class TestRectGeometry:
    def test_span_is_row_major_with_stride(self):
        assert Rect(2, 1, 4, 2).span(10) == (12, 26)

    def test_span_linear_drawable(self):
        assert Rect(3, 0, 5, 1).span(0) == (3, 8)

    def test_union_is_bounding_box(self):
        assert Rect(0, 0, 2, 2).union(Rect(4, 4, 2, 2)) == Rect(0, 0, 6, 6)

    def test_overlap_is_open_at_edges(self):
        assert not Rect(0, 0, 2, 2).overlaps(Rect(2, 0, 2, 2))  # touching
        assert Rect(0, 0, 3, 2).overlaps(Rect(2, 0, 2, 2))


class TestDrawRectClipping:
    def _window(self, width=32, height=4):
        return Window(owner_client_id=1, geometry=Geometry(0, 0, width, height))

    def test_zero_area_draw_is_a_complete_noop(self):
        window = self._window()
        window.draw(b"x" * 8)
        damage = window.damage
        content = bytes(window.content)
        assert window.draw_rect(5, 1, 0, 3, b"zz") is None
        assert window.draw_rect(5, 1, 3, 0, b"zz") is None
        assert window.damage == damage  # no damage event at all
        assert bytes(window.content) == content

    def test_fully_outside_draw_is_a_noop(self):
        window = self._window()
        damage = window.damage
        assert window.draw_rect(40, 0, 4, 1, b"zzzz") is None  # past right edge
        assert window.draw_rect(0, 10, 4, 1, b"zzzz") is None  # past bottom
        assert window.damage == damage

    def test_rect_clipped_at_drawable_bounds(self):
        window = self._window(width=32, height=4)
        rect = window.draw_rect(28, 3, 10, 5, b"q" * 50)
        assert rect == Rect(28, 3, 4, 1)  # clipped to the corner
        lo, hi = rect.span(32)
        assert bytes(window.content[lo:hi]) == b"q" * 4

    def test_negative_origin_clamps(self):
        window = self._window()
        rect = window.draw_rect(-2, -1, 6, 2, b"r" * 12)
        assert rect == Rect(0, 0, 4, 1)

    def test_write_lands_at_the_rect_span(self):
        window = self._window(width=8, height=4)
        window.draw(b"." * 32)
        window.draw_rect(2, 1, 4, 1, b"WXYZ")
        assert bytes(window.content) == b"." * 10 + b"WXYZ" + b"." * 18

    def test_short_content_zero_extended(self):
        window = self._window(width=8, height=4)
        window.draw_rect(0, 1, 4, 1, b"abcd")  # content was empty
        assert bytes(window.content) == b"\x00" * 8 + b"abcd"

    def test_pixmap_is_a_single_linear_row(self):
        pixmap = Pixmap(owner_client_id=1)
        rect = pixmap.draw_rect(2, 0, 4, 3, b"abcd")
        assert rect == Rect(2, 0, 4, 1)  # height clipped to the one row
        assert bytes(pixmap.content) == b"\x00\x00abcd"
        assert pixmap.draw_rect(0, 1, 4, 1, b"efgh") is None  # no second row


class TestDamageCoalescing:
    def _window(self):
        return Window(owner_client_id=1, geometry=Geometry(0, 0, 100, 100))

    def test_overlapping_draws_coalesce_to_one_rect(self):
        window = self._window()
        window.draw_rect(0, 0, 10, 1, b"a" * 10)
        window.draw_rect(5, 0, 10, 1, b"b" * 10)
        assert window.damage_rects == [Rect(0, 0, 15, 1)]

    def test_transitive_coalescing(self):
        # The third rect bridges the first two; all three become one.
        window = self._window()
        window.draw_rect(0, 0, 4, 1, b"a" * 4)
        window.draw_rect(8, 0, 4, 1, b"b" * 4)
        assert len(window.damage_rects) == 2
        window.draw_rect(3, 0, 6, 1, b"c" * 6)
        assert window.damage_rects == [Rect(0, 0, 12, 1)]

    def test_non_overlapping_draws_stay_separate(self):
        window = self._window()
        window.draw_rect(0, 0, 4, 1, b"a" * 4)
        window.draw_rect(20, 0, 4, 1, b"b" * 4)
        assert len(window.damage_rects) == 2

    def test_cap_collapses_to_bounding_rect(self):
        window = self._window()
        for i in range(9):  # one past _MAX_PENDING_RECTS
            window.draw_rect(i * 10, 0, 2, 1, b"xy")
        assert window.damage_rects == [Rect(0, 0, 82, 1)]

    def test_full_damage_swallows_pending_rects(self):
        window = self._window()
        window.draw_rect(0, 0, 4, 1, b"a" * 4)
        window.draw(b"z" * 16)  # whole-content damage
        assert window.damage_rects == []
        assert window._damage_full

    def test_coalesce_counter_reaches_the_server(self):
        machine, apps = _machine_with_stack()
        window = apps[0].window
        window.content_bytes()  # settle the initial full-paint damage
        before = machine.xserver.damage_rects_coalesced
        window.draw_rect(0, 0, 10, 1, b"a" * 10)
        window.draw_rect(5, 0, 10, 1, b"b" * 10)  # merges with the first
        assert machine.xserver.damage_rects_coalesced == before + 1


class TestSnapshotRegionRefresh:
    def test_unchanged_drawable_returns_same_object(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        assert window.content_bytes() is window.content_bytes()

    def test_region_refresh_matches_full_rebuild(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        window.content_bytes()  # seed the snapshot cache
        window.draw_rect(2, 1, 4, 1, b"WXYZ")
        assert window.content_bytes() == bytes(window.content)

    def test_refresh_clears_pending_damage(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        window.draw_rect(0, 0, 4, 1, b"abcd")
        window.content_bytes()
        assert window.damage_rects == []
        assert not window._damage_full

    def test_neighbour_windows_keep_their_snapshots(self):
        # An unchanged band must keep its bytes object across a partial
        # compose -- the zero-copy property the issue requires.
        machine, apps = _machine_with_stack()
        apps[0].capture_screen()
        clean = apps[1].window.content_bytes()
        apps[0].window.draw_rect(0, 0, 4, 1, b"dddd")
        apps[0].capture_screen()
        assert apps[1].window.content_bytes() is clean


class TestIncrementalCompose:
    def test_region_draw_is_a_partial_hit_not_a_miss(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        apps[1].window.draw_rect(0, 0, 4, 1, b"dddd")
        frame = apps[0].capture_screen()
        assert xserver.compose_cache_misses == misses
        assert xserver.compose_partial_hits == partials + 1
        assert frame == _reference_frame(machine)

    def test_multi_dirty_epoch_patches_every_band(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        partials = xserver.compose_partial_hits
        apps[0].window.draw_rect(0, 0, 4, 1, b"aaaa")
        apps[2].window.draw_rect(4, 0, 4, 1, b"cccc")
        frame = apps[0].capture_screen()
        assert xserver.compose_partial_hits == partials + 1
        assert frame == _reference_frame(machine)

    def test_length_changing_draw_fixes_up_offsets(self):
        # Growing the middle window shifts every later band; a follow-up
        # patch on the top window must land at the shifted offset.
        machine, apps = _machine_with_stack()
        apps[0].capture_screen()
        apps[1].window.draw(b"L" * 48)  # middle band grows 16 -> 48
        assert apps[0].capture_screen() == _reference_frame(machine)
        apps[2].window.draw_rect(0, 0, 4, 1, b"tttt")
        assert apps[0].capture_screen() == _reference_frame(machine)

    def test_unmap_forces_full_recompose(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        xserver.unmap_window(apps[1].client, apps[1].window.drawable_id)
        frame = apps[0].capture_screen()
        assert xserver.compose_cache_misses == misses + 1  # structural change
        assert xserver.compose_partial_hits == partials
        assert frame == _reference_frame(machine)

    def test_restack_forces_full_recompose(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        xserver.raise_window(apps[0].client, apps[0].window.drawable_id)
        frame = apps[0].capture_screen()
        assert xserver.compose_cache_misses == misses + 1
        assert frame == _reference_frame(machine)
        assert frame.endswith(bytes(apps[0].window.content))

    def test_zero_area_draw_keeps_the_cache_hit(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        hits = xserver.compose_cache_hits
        partials = xserver.compose_partial_hits
        assert apps[1].window.draw_rect(0, 0, 0, 5, b"") is None
        apps[0].capture_screen()
        assert xserver.compose_cache_hits == hits + 1  # still a clean hit
        assert xserver.compose_partial_hits == partials

    def test_draw_to_unmapped_window_does_not_patch_the_frame(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        xserver.unmap_window(apps[1].client, apps[1].window.drawable_id)
        apps[0].capture_screen()
        hits = xserver.compose_cache_hits
        apps[1].window.draw_rect(0, 0, 4, 1, b"hidden")
        frame = apps[0].capture_screen()
        # The dirty window is not in the composition; the journal entry is
        # consumed without recomposing anything.
        assert bytes(apps[1].window.content)[:4] not in frame
        assert frame == _reference_frame(machine)
        assert xserver.compose_cache_hits == hits + 1

    def test_banner_appearance_and_expiry_are_banner_region_patches(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        quiet = apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        xserver.display_alert("m", "op", pid=9, comm="rec")
        alerted = apps[0].capture_screen()
        assert alerted.startswith(quiet)  # body bands untouched
        assert alerted != quiet
        assert xserver.compose_cache_misses == misses
        assert xserver.compose_partial_hits == partials + 1
        machine.run_for(from_seconds(10.0))
        expired = apps[0].capture_screen()
        assert expired == quiet
        assert xserver.compose_cache_misses == misses
        assert xserver.compose_partial_hits >= partials + 2

    def test_direct_window_draw_patches_correctly(self):
        # Content mutations that bypass the request layer still reach the
        # journal through the damage sink and patch the right band.
        machine, apps = _machine_with_stack()
        apps[0].capture_screen()
        apps[1].window.draw(b"D" * 16)
        frame = apps[0].capture_screen()
        assert frame == _reference_frame(machine)
        assert b"D" * 16 in frame
