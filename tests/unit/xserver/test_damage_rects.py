"""Edge cases for region-granular damage and incremental 2D composition.

The damage-rect pipeline has three layers of state that must stay
consistent: the per-drawable pending rects (clipping, coalescing, the
least-waste merge cap), the per-drawable snapshot refresh (splicing only
dirty rows), and the server's incremental compose (blitting only dirty
rects of the cached 2D frame).  These tests pin each layer's edge cases
-- the differential property suite separately proves whole-pipeline
equivalence against the reference composition.
"""

import pytest

from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.apps.base import SimApp
from repro.sim.time import from_seconds
from repro.xserver.window import Geometry, Pixmap, Rect, Window


def _quiet_config(**overrides) -> OverhaulConfig:
    defaults = dict(force_grant=True, alert_on_screen_capture=False, alert_on_denial=False)
    defaults.update(overrides)
    return OverhaulConfig(**defaults)


def _machine_with_stack(windows=3, content=16):
    """A machine with *windows* painted windows, settled and composable.

    The small screen keeps the naive reference model cheap; windows
    overlap in a staircase so patches exercise blockers and clipping.
    """
    machine = Machine.with_overhaul(_quiet_config(), screen_size=(140, 120))
    apps = []
    for index in range(windows):
        app = SimApp(machine, f"/usr/bin/app{index}", comm=f"app{index}",
                     geometry=Geometry(10 * index, 10, 100, 100))
        machine.xserver.draw(app.client, app.window.drawable_id,
                             bytes([65 + index]) * content)
        apps.append(app)
    machine.settle()
    return machine, apps


def _reference_frame(machine):
    """A naive cell-model composition, independent of the framebuffer:
    every mapped opaque window writes its (zero-extended, clipped) cells
    bottom-to-top, then the banner is appended."""
    xserver = machine.xserver
    width, height = xserver.width, xserver.height
    frame = bytearray(width * height)
    for window in xserver.stacking.bottom_to_top():
        if window.transparent:
            continue
        geometry = window.geometry
        content = bytes(window.content)
        for row in range(geometry.height):
            sy = geometry.y + row
            if not 0 <= sy < height:
                continue
            for col in range(geometry.width):
                sx = geometry.x + col
                if not 0 <= sx < width:
                    continue
                offset = row * geometry.width + col
                frame[sy * width + sx] = content[offset] if offset < len(content) else 0
    banner = xserver.overlay.banner_bytes(xserver.now)
    return bytes(frame) + banner


class TestRectGeometry:
    def test_span_linear_drawable(self):
        assert Rect(3, 0, 5, 1).span() == (3, 8)

    def test_span_refuses_multi_row_rects(self):
        # Regression guard for the 2D framebuffer: a 1-px-wide full-height
        # rect must never collapse into a full-width bounding band.  The
        # screen path blits per row, so span() has no 2D meaning at all.
        with pytest.raises(ValueError):
            Rect(5, 0, 1, 100).span()

    def test_union_is_bounding_box(self):
        assert Rect(0, 0, 2, 2).union(Rect(4, 4, 2, 2)) == Rect(0, 0, 6, 6)

    def test_overlap_is_open_at_edges(self):
        assert not Rect(0, 0, 2, 2).overlaps(Rect(2, 0, 2, 2))  # touching
        assert Rect(0, 0, 3, 2).overlaps(Rect(2, 0, 2, 2))


class TestDrawRectClipping:
    def _window(self, width=32, height=4):
        return Window(owner_client_id=1, geometry=Geometry(0, 0, width, height))

    def test_zero_area_draw_is_a_complete_noop(self):
        window = self._window()
        window.draw(b"x" * 8)
        damage = window.damage
        content = bytes(window.content)
        assert window.draw_rect(5, 1, 0, 3, b"zz") is None
        assert window.draw_rect(5, 1, 3, 0, b"zz") is None
        assert window.damage == damage  # no damage event at all
        assert bytes(window.content) == content

    def test_fully_outside_draw_is_a_noop(self):
        window = self._window()
        damage = window.damage
        assert window.draw_rect(40, 0, 4, 1, b"zzzz") is None  # past right edge
        assert window.draw_rect(0, 10, 4, 1, b"zzzz") is None  # past bottom
        assert window.damage == damage

    def test_rect_clipped_at_drawable_bounds(self):
        window = self._window(width=32, height=4)
        rect = window.draw_rect(28, 3, 10, 5, b"q" * 50)
        assert rect == Rect(28, 3, 4, 1)  # clipped to the corner
        lo = 3 * 32 + 28
        assert bytes(window.content[lo : lo + 4]) == b"q" * 4

    def test_negative_origin_clamps(self):
        window = self._window()
        rect = window.draw_rect(-2, -1, 6, 2, b"r" * 12)
        assert rect == Rect(0, 0, 4, 1)

    def test_write_lands_at_the_rect_rows(self):
        window = self._window(width=8, height=4)
        window.draw(b"." * 32)
        window.draw_rect(2, 1, 4, 1, b"WXYZ")
        assert bytes(window.content) == b"." * 10 + b"WXYZ" + b"." * 18

    def test_multi_row_write_touches_only_rect_columns(self):
        window = self._window(width=8, height=4)
        window.draw(b"." * 32)
        window.draw_rect(2, 1, 3, 2, b"abcdef")
        assert bytes(window.content) == (
            b"." * 10 + b"abc" + b"." * 5 + b"def" + b"." * 11
        )

    def test_short_content_zero_extended(self):
        window = self._window(width=8, height=4)
        window.draw_rect(0, 1, 4, 1, b"abcd")  # content was empty
        assert bytes(window.content) == b"\x00" * 8 + b"abcd"

    def test_pixmap_is_a_single_linear_row(self):
        pixmap = Pixmap(owner_client_id=1)
        rect = pixmap.draw_rect(2, 0, 4, 3, b"abcd")
        assert rect == Rect(2, 0, 4, 1)  # height clipped to the one row
        assert bytes(pixmap.content) == b"\x00\x00abcd"
        assert pixmap.draw_rect(0, 1, 4, 1, b"efgh") is None  # no second row


class TestDamageCoalescing:
    def _window(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 100, 100))
        window.content_bytes()  # seed the snapshot so splice rects accumulate
        return window

    def test_overlapping_draws_coalesce_to_one_rect(self):
        window = self._window()
        window.draw_rect(0, 0, 10, 1, b"a" * 10)
        window.draw_rect(5, 0, 10, 1, b"b" * 10)
        assert window.damage_rects == [Rect(0, 0, 15, 1)]

    def test_transitive_coalescing(self):
        # The third rect bridges the first two; all three become one.
        window = self._window()
        window.draw_rect(0, 0, 4, 1, b"a" * 4)
        window.draw_rect(8, 0, 4, 1, b"b" * 4)
        assert len(window.damage_rects) == 2
        window.draw_rect(3, 0, 6, 1, b"c" * 6)
        assert window.damage_rects == [Rect(0, 0, 12, 1)]

    def test_non_overlapping_draws_stay_separate(self):
        window = self._window()
        window.draw_rect(0, 0, 4, 1, b"a" * 4)
        window.draw_rect(20, 0, 4, 1, b"b" * 4)
        assert len(window.damage_rects) == 2

    def test_column_never_widens_into_a_band(self):
        # The tight-union rule: a 1-px column stacked on a disjoint row
        # stays a column -- their bounding box would smear uncovered cells.
        window = self._window()
        window.draw_rect(50, 0, 1, 1, b"x")
        window.draw_rect(50, 1, 1, 1, b"y")  # stacks into a 1x2 column
        window.draw_rect(0, 50, 10, 1, b"z" * 10)  # disjoint row
        assert sorted(window.damage_rects) == [Rect(0, 50, 10, 1), Rect(50, 0, 1, 2)]

    def test_cap_merges_least_waste_pairs_not_one_band(self):
        window = self._window()
        drawn = []
        for i in range(9):  # one past _MAX_PENDING_RECTS
            drawn.append(window.draw_rect(i * 10, 0, 2, 1, b"xy"))
        pending = window.damage_rects
        assert len(pending) == 8  # bounded...
        for rect in drawn:  # ...still covering every draw...
            assert any(p.contains_rect(rect) for p in pending)
        # ...and never collapsed to one screen-wide bounding rect.
        assert all(p.width <= 12 for p in pending)

    def test_full_damage_swallows_pending_rects(self):
        window = self._window()
        window.draw_rect(0, 0, 4, 1, b"a" * 4)
        window.draw(b"z" * 16)  # whole-content damage
        assert window.damage_rects == []
        assert window._damage_full

    def test_coalesce_counter_reaches_the_server(self):
        machine, apps = _machine_with_stack()
        window = apps[0].window
        window.content_bytes()  # settle the initial full-paint damage
        before = machine.xserver.damage_rects_coalesced
        window.draw_rect(0, 0, 10, 1, b"a" * 10)
        window.draw_rect(5, 0, 10, 1, b"b" * 10)  # merges with the first
        assert machine.xserver.damage_rects_coalesced == before + 1

    def test_repeat_draw_counts_one_merge_per_repeat(self):
        # The repeat-draw memo lane must count exactly what coalesce_rect's
        # dedupe-last branch would.
        machine, apps = _machine_with_stack()
        window = apps[0].window
        window.draw_rect(4, 0, 8, 1, b"p" * 8)
        before = machine.xserver.damage_rects_coalesced
        window.draw_rect(4, 0, 8, 1, b"q" * 8)
        window.draw_rect(4, 0, 8, 1, b"r" * 8)
        assert machine.xserver.damage_rects_coalesced == before + 2


class TestSnapshotRegionRefresh:
    def test_unchanged_drawable_returns_same_object(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        assert window.content_bytes() is window.content_bytes()

    def test_region_refresh_matches_full_rebuild(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        window.content_bytes()  # seed the snapshot cache
        window.draw_rect(2, 1, 4, 1, b"WXYZ")
        assert window.content_bytes() == bytes(window.content)

    def test_multi_row_refresh_matches_full_rebuild(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        window.content_bytes()
        window.draw_rect(1, 0, 2, 4, b"abcdefgh")  # a column of rows
        assert window.content_bytes() == bytes(window.content)

    def test_refresh_clears_pending_damage(self):
        window = Window(owner_client_id=1, geometry=Geometry(0, 0, 8, 4))
        window.draw(b"m" * 32)
        window.draw_rect(0, 0, 4, 1, b"abcd")
        window.content_bytes()
        assert window.damage_rects == []
        assert not window._damage_full

    def test_neighbour_windows_keep_their_snapshots(self):
        # An unchanged window must keep its bytes object across a partial
        # compose -- the zero-copy property the issue requires.
        machine, apps = _machine_with_stack()
        apps[0].capture_screen()
        clean = apps[1].window.content_bytes()
        apps[0].window.draw_rect(0, 0, 4, 1, b"dddd")
        apps[0].capture_screen()
        assert apps[1].window.content_bytes() is clean


class TestIncrementalCompose:
    def test_region_draw_is_a_partial_hit_not_a_miss(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        apps[1].window.draw_rect(0, 0, 4, 1, b"dddd")
        frame = apps[0].capture_screen()
        assert xserver.compose_cache_misses == misses
        assert xserver.compose_partial_hits == partials + 1
        assert frame == _reference_frame(machine)

    def test_multi_dirty_epoch_patches_every_rect(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        partials = xserver.compose_partial_hits
        apps[0].window.draw_rect(0, 0, 4, 1, b"aaaa")
        apps[2].window.draw_rect(4, 0, 4, 1, b"cccc")
        frame = apps[0].capture_screen()
        assert xserver.compose_partial_hits == partials + 1
        assert frame == _reference_frame(machine)

    def test_content_replacing_draw_patches_the_full_window(self):
        # A whole-content draw journals full-window damage; the composer
        # re-blits the window's entire rect (plus every blocker above it).
        machine, apps = _machine_with_stack()
        apps[0].capture_screen()
        apps[1].window.draw(b"L" * 48)
        assert apps[0].capture_screen() == _reference_frame(machine)
        apps[2].window.draw_rect(0, 0, 4, 1, b"tttt")
        assert apps[0].capture_screen() == _reference_frame(machine)

    def test_unmap_forces_full_recompose(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        xserver.unmap_window(apps[1].client, apps[1].window.drawable_id)
        frame = apps[0].capture_screen()
        assert xserver.compose_cache_misses == misses + 1  # structural change
        assert xserver.compose_partial_hits == partials
        assert frame == _reference_frame(machine)

    def test_restack_forces_full_recompose(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        xserver.raise_window(apps[0].client, apps[0].window.drawable_id)
        frame = apps[0].capture_screen()
        assert xserver.compose_cache_misses == misses + 1
        assert frame == _reference_frame(machine)
        # The raised window's first content row is now fully visible at
        # its screen position (row 10, columns 0..16).
        width = xserver.width
        assert frame[10 * width : 10 * width + 16] == b"A" * 16

    def test_zero_area_draw_keeps_the_cache_hit(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        apps[0].capture_screen()
        hits = xserver.compose_cache_hits
        partials = xserver.compose_partial_hits
        assert apps[1].window.draw_rect(0, 0, 0, 5, b"") is None
        apps[0].capture_screen()
        assert xserver.compose_cache_hits == hits + 1  # still a clean hit
        assert xserver.compose_partial_hits == partials

    def test_draw_to_unmapped_window_does_not_patch_the_frame(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        xserver.unmap_window(apps[1].client, apps[1].window.drawable_id)
        apps[0].capture_screen()
        partials = xserver.compose_partial_hits
        apps[1].window.draw_rect(0, 0, 6, 1, b"hidden")
        frame = apps[0].capture_screen()
        # The dirty window is not in the composition: its journal entry is
        # consumed (one partial pass) without touching a framebuffer byte.
        assert b"hidden" not in frame
        assert frame == _reference_frame(machine)
        assert xserver.compose_partial_hits == partials + 1
        # The composer marked it invisible: follow-up draws skip the
        # journal entirely, so the next capture is a pure cache hit.
        assert apps[1].window.composer_skip
        hits = xserver.compose_cache_hits
        apps[1].window.draw_rect(0, 0, 6, 1, b"hidden")
        assert apps[0].capture_screen() == frame
        assert xserver.compose_cache_hits == hits + 1

    def test_occluded_window_draw_is_culled_then_skipped(self):
        # A window fully covered by an opaque window above it: its first
        # dirty rect is culled at compose time, and every draw after that
        # bypasses the journal until the stacking order changes.
        machine, apps = _machine_with_stack(windows=2)
        xserver = machine.xserver
        top = SimApp(machine, "/usr/bin/top", comm="top",
                     geometry=Geometry(0, 0, 140, 120))  # covers the screen
        machine.xserver.draw(top.client, top.window.drawable_id, b"T" * 8)
        machine.settle()
        apps[0].capture_screen()
        culled = xserver.compose_rects_culled
        apps[0].window.draw_rect(0, 0, 4, 1, b"uuuu")
        frame = apps[0].capture_screen()
        assert xserver.compose_rects_culled == culled + 1
        assert apps[0].window.composer_skip
        assert frame == _reference_frame(machine)
        # Raising the buried window forces a recompose that re-arms it.
        xserver.raise_window(apps[0].client, apps[0].window.drawable_id)
        frame = apps[0].capture_screen()
        assert not apps[0].window.composer_skip
        assert frame == _reference_frame(machine)
        width = xserver.width
        assert frame[10 * width : 10 * width + 4] == b"uuuu"

    def test_banner_appearance_and_expiry_are_banner_region_patches(self):
        machine, apps = _machine_with_stack()
        xserver = machine.xserver
        quiet = apps[0].capture_screen()
        misses = xserver.compose_cache_misses
        partials = xserver.compose_partial_hits
        xserver.display_alert("m", "op", pid=9, comm="rec")
        alerted = apps[0].capture_screen()
        assert alerted.startswith(quiet)  # the grid is untouched
        assert alerted != quiet
        assert xserver.compose_cache_misses == misses
        assert xserver.compose_partial_hits == partials + 1
        machine.run_for(from_seconds(10.0))
        expired = apps[0].capture_screen()
        assert expired == quiet
        assert xserver.compose_cache_misses == misses
        assert xserver.compose_partial_hits >= partials + 2

    def test_direct_window_draw_patches_correctly(self):
        # Content mutations that bypass the request layer still reach the
        # journal through the damage sink and patch the right cells.
        machine, apps = _machine_with_stack()
        apps[0].capture_screen()
        apps[1].window.draw(b"D" * 16)
        frame = apps[0].capture_screen()
        assert frame == _reference_frame(machine)
        # The strip left of the window above shows the new bytes.
        width = machine.xserver.width
        assert frame[10 * width + 10 : 10 * width + 20] == b"D" * 10
