"""Unit tests for the X server core: connections, windows, input routing."""

import pytest

from repro.kernel.credentials import DEFAULT_USER
from repro.sim.scheduler import EventScheduler
from repro.xserver.errors import BadAccess, BadMatch, BadWindow
from repro.xserver.events import EventKind, EventProvenance
from repro.xserver.input_drivers import HardwareKeyboard, HardwareMouse
from repro.xserver.server import XServer
from repro.xserver.window import Geometry


class FakeTask:
    def __init__(self, pid, comm="app"):
        self.pid = pid
        self.comm = comm


@pytest.fixture
def rig():
    scheduler = EventScheduler()
    server = XServer(scheduler)
    keyboard = HardwareKeyboard(server)
    mouse = HardwareMouse(server)
    return scheduler, server, keyboard, mouse


class TestConnections:
    def test_pid_binding_from_task(self, rig):
        _, server, _, _ = rig
        client = server.connect(FakeTask(77, "myapp"))
        assert client.pid == 77
        assert client.comm == "myapp"

    def test_disconnect_cleans_windows(self, rig):
        _, server, _, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        server.disconnect(client)
        with pytest.raises(BadWindow):
            server.map_window(client, window.drawable_id)


class TestWindowRequests:
    def test_map_sets_visibility_clock(self, rig):
        scheduler, server, _, _ = rig
        scheduler.run_until(1000)
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        assert window.mapped
        assert window.visible_since == 1000

    def test_unmap_resets_visibility_clock(self, rig):
        scheduler, server, _, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        server.unmap_window(client, window.drawable_id)
        from repro.sim.time import NEVER

        assert window.visible_since == NEVER

    def test_remap_restarts_visibility_clock(self, rig):
        """Map/unmap cycling resets the clock -- the property the
        clickjacking defence relies on."""
        scheduler, server, _, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        scheduler.run_until(5000)
        server.unmap_window(client, window.drawable_id)
        scheduler.run_until(6000)
        server.map_window(client, window.drawable_id)
        assert window.visible_since == 6000

    def test_raise_does_not_reset_visibility(self, rig):
        scheduler, server, _, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        scheduler.run_until(9000)
        server.raise_window(client, window.drawable_id)
        assert window.visible_since == 0

    def test_foreign_window_operations_rejected(self, rig):
        _, server, _, _ = rig
        owner = server.connect(FakeTask(1))
        other = server.connect(FakeTask(2))
        window = server.create_window(owner, Geometry(0, 0, 10, 10))
        with pytest.raises(BadMatch):
            server.map_window(other, window.drawable_id)
        with pytest.raises(BadMatch):
            server.draw(other, window.drawable_id, b"x")


class TestInputRouting:
    def test_key_events_follow_focus(self, rig):
        _, server, keyboard, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        server.set_input_focus(client, window.drawable_id)
        keyboard.press(42)
        kinds = [e.kind for e in client.event_queue]
        assert EventKind.KEY_PRESS in kinds and EventKind.KEY_RELEASE in kinds

    def test_button_events_follow_pointer(self, rig):
        _, server, _, mouse = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(100, 100, 50, 50))
        server.map_window(client, window.drawable_id)
        mouse.click(125, 125)
        presses = [e for e in client.event_queue if e.kind is EventKind.BUTTON_PRESS]
        assert len(presses) == 1
        assert presses[0].provenance is EventProvenance.HARDWARE

    def test_clicks_outside_windows_dropped(self, rig):
        _, server, _, mouse = rig
        mouse.click(500, 500)
        assert server.input_events_dropped > 0

    def test_key_events_without_focus_dropped(self, rig):
        _, server, keyboard, _ = rig
        keyboard.press(42)
        assert server.input_events_dropped >= 2

    def test_hardware_injection_requires_driver_token(self, rig):
        _, server, _, _ = rig
        with pytest.raises(BadAccess):
            server.inject_hardware_key(12345, EventKind.KEY_PRESS, 1)

    def test_events_carry_window_id(self, rig):
        _, server, _, mouse = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        mouse.click(5, 5)
        assert client.event_queue[-1].window_id == window.drawable_id


class TestXTest:
    def test_xtest_routes_like_hardware_but_tagged(self, rig):
        _, server, _, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        server.xtest_fake_input(client, EventKind.BUTTON_PRESS, detail=1, x=5, y=5)
        event = client.event_queue[-1]
        assert event.kind is EventKind.BUTTON_PRESS
        assert event.provenance is EventProvenance.XTEST
        assert not event.synthetic_flag  # no wire flag: the XTest problem

    def test_xtest_key_needs_focus(self, rig):
        _, server, _, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        server.set_input_focus(client, window.drawable_id)
        server.xtest_fake_input(client, EventKind.KEY_PRESS, detail=42)
        assert client.event_queue[-1].provenance is EventProvenance.XTEST

    def test_xtest_rejects_non_input(self, rig):
        _, server, _, _ = rig
        client = server.connect(FakeTask(1))
        with pytest.raises(BadMatch):
            server.xtest_fake_input(client, EventKind.SELECTION_NOTIFY)


class TestTypeText:
    def test_type_text_generates_per_char_events(self, rig):
        _, server, keyboard, _ = rig
        client = server.connect(FakeTask(1))
        window = server.create_window(client, Geometry(0, 0, 10, 10))
        server.map_window(client, window.drawable_id)
        server.set_input_focus(client, window.drawable_id)
        keyboard.type_text("abc")
        presses = [e for e in client.event_queue if e.kind is EventKind.KEY_PRESS]
        assert [chr(e.detail - 1000) for e in presses] == ["a", "b", "c"]
