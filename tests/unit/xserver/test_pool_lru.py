"""LRU eviction for the display-side object pools.

The selection reuse pool and the payload-dict pools used to clear
wholesale when full, so any workload cycling through more than the bound
of distinct keys lost its entire hot set at once.  These tests pin the
LRU behaviour: recently used entries survive arbitrary churn, and hit
rates under >1024 distinct clipboard pairs stay at 100% for the most
recent window.
"""

from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.apps.base import SimApp
from repro.xserver.selection import _REUSE_POOL_LIMIT, SelectionSubsystem
from repro.xserver.server import _PROP_NOTIFY_POOL_LIMIT
from repro.xserver.window import Geometry


def _quiet_machine_with_app():
    config = OverhaulConfig(
        force_grant=True, alert_on_screen_capture=False, alert_on_denial=False
    )
    machine = Machine.with_overhaul(config)
    app = SimApp(machine, "/usr/bin/viewer", comm="viewer",
                 geometry=Geometry(10, 10, 100, 100))
    machine.settle()
    return machine, app


class TestRetiredTransferPoolLRU:
    """The clipboard reuse pool (distinct pair = distinct requestor window)."""

    def _cycle(self, selections, key_index):
        """One full paste round trip for a distinct clipboard pair."""
        transfer = selections.begin_transfer(
            selection_name="CLIPBOARD",
            owner_client_id=1,
            requestor_client_id=2,
            requestor_window_id=1_000 + key_index,
            property_name="XSEL_DATA",
            target="UTF8_STRING",
            now=0,
            reuse=True,
        )
        selections.mark_data_stored(transfer)
        selections.mark_notified(transfer)
        selections.complete(transfer)

    def test_pool_stays_bounded(self):
        selections = SelectionSubsystem()
        for i in range(_REUSE_POOL_LIMIT + 500):
            self._cycle(selections, i)
        assert len(selections._retired) == _REUSE_POOL_LIMIT

    def test_recent_window_hits_100_percent_after_overflow(self):
        """>1024 distinct pairs, then the most recent 1024 again: every
        repeat must reuse.  The old wholesale clear emptied the pool at
        entry 1024, so only the post-clear tail would have hit."""
        selections = SelectionSubsystem()
        total = _REUSE_POOL_LIMIT + 476
        for i in range(total):
            self._cycle(selections, i)
        assert selections.transfer_reuses == 0  # all first-time pairs
        for i in range(total - _REUSE_POOL_LIMIT, total):
            self._cycle(selections, i)
        assert selections.transfer_reuses == _REUSE_POOL_LIMIT

    def test_recently_used_entry_survives_eviction(self):
        selections = SelectionSubsystem()
        for i in range(_REUSE_POOL_LIMIT):
            self._cycle(selections, i)
        # Touch the oldest pair: it moves to the MRU end...
        reuses = selections.transfer_reuses
        self._cycle(selections, 0)
        assert selections.transfer_reuses == reuses + 1
        # ...so a brand-new pair evicts pair 1 (the LRU), not pair 0.
        self._cycle(selections, 999_999)
        reuses = selections.transfer_reuses
        self._cycle(selections, 0)
        assert selections.transfer_reuses == reuses + 1  # still pooled
        self._cycle(selections, 1)
        assert selections.transfer_reuses == reuses + 1  # evicted: no reuse


class TestPropertyNotifyPoolLRU:
    def test_hot_pair_survives_distinct_property_churn(self):
        machine, app = _quiet_machine_with_app()
        xserver = machine.xserver
        window_id = app.window.drawable_id
        xserver.change_property(app.client, window_id, "HOT", b"x")
        hot_payload = xserver._prop_notify_payloads[("HOT", False)]
        for i in range(_PROP_NOTIFY_POOL_LIMIT + 50):
            xserver.change_property(app.client, window_id, f"P{i}", b"x")
            xserver.change_property(app.client, window_id, "HOT", b"x")
        assert len(xserver._prop_notify_payloads) <= _PROP_NOTIFY_POOL_LIMIT
        # The hot pair was never evicted: still the same pooled dict.
        assert xserver._prop_notify_payloads[("HOT", False)] is hot_payload

    def test_pool_evicts_oldest_not_everything(self):
        machine, app = _quiet_machine_with_app()
        xserver = machine.xserver
        window_id = app.window.drawable_id
        for i in range(_PROP_NOTIFY_POOL_LIMIT + 10):
            xserver.change_property(app.client, window_id, f"P{i}", b"x")
        pool = xserver._prop_notify_payloads
        assert len(pool) == _PROP_NOTIFY_POOL_LIMIT
        assert ("P0", False) not in pool  # oldest evicted
        assert (f"P{_PROP_NOTIFY_POOL_LIMIT + 9}", False) in pool  # newest kept


class TestQueryPayloadPoolLRU:
    def test_pool_bounded_and_recent_keys_kept(self):
        machine, app = _quiet_machine_with_app()
        dm = machine.overhaul.extension
        for i in range(1_100):
            dm._query(app.client, f"op-{i}", machine.now)
        pool = dm._query_payloads
        assert len(pool) <= 1_024
        assert (app.client.client_id, "op-1099") in pool
        assert (app.client.client_id, "op-0") not in pool

    def test_repeat_operation_reuses_the_payload_dict(self):
        machine, app = _quiet_machine_with_app()
        dm = machine.overhaul.extension
        dm._query(app.client, "paste", machine.now)
        payload = dm._query_payloads[(app.client.client_id, "paste")]
        dm._query(app.client, "paste", machine.now)
        assert dm._query_payloads[(app.client.client_id, "paste")] is payload
