"""Unit tests for the trusted overlay output path (Figure 5)."""

from repro.sim.time import from_seconds
from repro.xserver.overlay import OverlayManager


class TestAlertLifecycle:
    def test_alert_visible_for_duration(self):
        overlay = OverlayManager()
        overlay.show_alert("msg", "microphone", 10, "skype", now=0)
        assert overlay.is_alert_visible(0)
        assert overlay.is_alert_visible(overlay.alert_duration - 1)
        assert not overlay.is_alert_visible(overlay.alert_duration)

    def test_custom_duration(self):
        overlay = OverlayManager()
        overlay.show_alert("msg", "op", 1, "a", now=0, duration=from_seconds(1.0))
        assert not overlay.is_alert_visible(from_seconds(1.5))

    def test_alert_carries_shared_secret(self):
        """Figure 5: the user's visual shared secret marks authentic alerts;
        no client-reachable API can attach it to a window."""
        overlay = OverlayManager(shared_secret="visual-secret:cat.png")
        alert = overlay.show_alert("msg", "camera", 10, "skype", now=0)
        assert alert.shared_secret == "visual-secret:cat.png"

    def test_history_and_pid_queries(self):
        overlay = OverlayManager()
        overlay.show_alert("a", "mic", 10, "x", now=0)
        overlay.show_alert("b", "cam", 20, "y", now=0)
        assert len(overlay.alerts_for_pid(10)) == 1
        assert overlay.total_shown == 2

    def test_coalescing_identical_visible_alerts(self):
        overlay = OverlayManager()
        first = overlay.show_alert("m", "mic", 10, "x", now=0)
        second = overlay.show_alert("m", "mic", 10, "x", now=100)
        assert first is second
        assert overlay.total_shown == 1

    def test_no_coalescing_after_expiry(self):
        overlay = OverlayManager()
        overlay.show_alert("m", "mic", 10, "x", now=0)
        later = overlay.alert_duration + 1
        second = overlay.show_alert("m", "mic", 10, "x", now=later)
        assert second.shown_at == later
        assert overlay.total_shown == 2

    def test_different_operations_not_coalesced(self):
        overlay = OverlayManager()
        overlay.show_alert("m", "mic", 10, "x", now=0)
        overlay.show_alert("m", "cam", 10, "x", now=0)
        assert overlay.total_shown == 2


class TestComposition:
    def test_banner_empty_without_alerts(self):
        overlay = OverlayManager()
        assert overlay.banner_bytes(0) == b""

    def test_banner_includes_secret_and_operation(self):
        overlay = OverlayManager(shared_secret="SECRET")
        overlay.show_alert("m", "camera", 10, "skype", now=0)
        banner = overlay.banner_bytes(1)
        assert b"SECRET" in banner
        assert b"camera" in banner
        assert b"skype" in banner

    def test_compose_over_prepends_banner(self):
        overlay = OverlayManager()
        overlay.show_alert("m", "mic", 1, "a", now=0)
        composed = overlay.compose_over(b"SCREEN", 1)
        assert composed.endswith(b"SCREEN")
        assert composed != b"SCREEN"

    def test_compose_over_identity_without_alerts(self):
        overlay = OverlayManager()
        screen = b"SCREEN"
        assert overlay.compose_over(screen, 0) is screen

    def test_history_retention_bounded(self):
        overlay = OverlayManager()
        overlay.HISTORY_LIMIT = 50
        for i in range(200):
            # distinct operations defeat coalescing
            overlay.show_alert("m", f"op{i}", 1, "a", now=i * overlay.alert_duration * 2)
        assert overlay.total_shown == 200
        assert len(overlay.history) <= 50
