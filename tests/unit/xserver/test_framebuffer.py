"""Unit edge cases for the 2D screen framebuffer and its numpy fast path.

The blitter has exactly three behaviours worth pinning at this level:
clipping (every edge, and the fully-offscreen no-op), zero-extension
(an opaque window covers its whole rect even with short content), and
the optional numpy path (requested-but-unavailable must degrade silently
to the pure-python loop, and when available must produce identical
bytes).  The whole-pipeline equivalence lives in the property suites;
the counter-parity checks at the bottom pin the observability contract
the differential relies on.
"""

import pytest

import repro.xserver.framebuffer as framebuffer_module
from repro.core import Machine, paper_config, reference_config
from repro.apps.base import SimApp
from repro.obs.counters import collect_counters
from repro.xserver.framebuffer import NUMPY_AVAILABLE, Framebuffer
from repro.xserver.window import Geometry


class TestBlitBasics:
    def test_blit_writes_rect_rows(self):
        fb = Framebuffer(8, 4)
        content = bytes(range(1, 13))  # a 4x3 window, stride 4
        assert fb.blit(1, 1, 4, content, 0, 0, 4, 3)
        rows = [fb.snapshot()[y * 8 : (y + 1) * 8] for y in range(4)]
        assert rows[0] == bytes(8)
        assert rows[1] == b"\x00\x01\x02\x03\x04\x00\x00\x00"
        assert rows[2] == b"\x00\x05\x06\x07\x08\x00\x00\x00"
        assert rows[3] == b"\x00\x09\x0a\x0b\x0c\x00\x00\x00"

    def test_blit_clips_every_edge(self):
        fb = Framebuffer(4, 4)
        content = b"\xff" * 16  # 4x4 window
        # Hang off each edge in turn: only the on-screen cells change.
        assert fb.blit(-2, 0, 4, content, 0, 0, 4, 1)
        assert fb.snapshot()[0:4] == b"\xff\xff\x00\x00"
        fb = Framebuffer(4, 4)
        assert fb.blit(2, 0, 4, content, 0, 0, 4, 1)
        assert fb.snapshot()[0:4] == b"\x00\x00\xff\xff"
        fb = Framebuffer(4, 4)
        assert fb.blit(0, -2, 4, content, 0, 0, 1, 4)
        column = [fb.snapshot()[y * 4] for y in range(4)]
        assert column == [0xFF, 0xFF, 0, 0]
        fb = Framebuffer(4, 4)
        assert fb.blit(0, 2, 4, content, 0, 0, 1, 4)
        column = [fb.snapshot()[y * 4] for y in range(4)]
        assert column == [0, 0, 0xFF, 0xFF]

    def test_fully_offscreen_blit_is_a_noop(self):
        fb = Framebuffer(4, 4)
        before = fb.epoch
        assert not fb.blit(10, 10, 4, b"\xff" * 16, 0, 0, 4, 4)
        assert not fb.blit(-8, 0, 4, b"\xff" * 16, 0, 0, 4, 4)
        assert fb.epoch == before
        assert fb.snapshot() == bytes(16)

    def test_one_pixel_column_touches_only_its_cells(self):
        """Regression for the 1D era: a 1px-wide full-height rect used to
        dirty full-width bands; the 2D blitter must touch exactly its own
        column."""
        fb = Framebuffer(8, 8)
        fb.data[:] = b"\xaa" * 64
        assert fb.blit(0, 0, 8, b"\xbb" * 64, 3, 0, 1, 8)
        snapshot = fb.snapshot()
        for y in range(8):
            for x in range(8):
                expected = 0xBB if x == 3 else 0xAA
                assert snapshot[y * 8 + x] == expected

    def test_short_content_zero_extends(self):
        fb = Framebuffer(4, 4)
        fb.data[:] = b"\xaa" * 16
        # A 4x4 window with only 6 bytes of content still covers its rect.
        assert fb.blit(0, 0, 4, b"\x01" * 6, 0, 0, 4, 4)
        assert fb.snapshot() == b"\x01\x01\x01\x01\x01\x01" + bytes(10)

    def test_clear_zeroes_and_bumps_epoch(self):
        fb = Framebuffer(4, 2)
        fb.blit(0, 0, 4, b"\xff" * 8, 0, 0, 4, 2)
        epoch = fb.epoch
        fb.clear()
        assert fb.snapshot() == bytes(8)
        assert fb.epoch == epoch + 1


class TestNumpyPath:
    def test_flag_degrades_silently_without_numpy(self, monkeypatch):
        """``use_numpy=True`` on a machine without the ``repro[fast]``
        extra must fall back to the pure-python loop, not raise."""
        monkeypatch.setattr(framebuffer_module, "_np", None)
        fb = Framebuffer(8, 8, use_numpy=True)
        assert not fb.use_numpy  # requested but not engaged
        content = bytes(range(64))
        assert fb.blit(0, 0, 8, content, 0, 0, 8, 8)
        assert fb.snapshot() == content

    @pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy not installed")
    def test_numpy_and_pure_blits_are_byte_identical(self):
        content = bytes(range(1, 201))  # a 10x20 window
        scripts = [
            (1, 1, 10, content, 0, 0, 10, 20),  # tall, fully in content
            (1, 1, 10, content, 2, 3, 5, 8),    # interior sub-rect
            (-3, -2, 10, content, 0, 0, 10, 20),  # clipped top-left
            (8, 20, 10, content, 0, 0, 10, 20),   # clipped bottom-right
            (0, 0, 10, content[:50], 0, 0, 10, 20),  # forces zero-extension
            (4, 0, 10, content, 3, 0, 1, 20),   # 1px column (short-row lane)
        ]
        fast = Framebuffer(16, 24, use_numpy=True)
        pure = Framebuffer(16, 24, use_numpy=False)
        assert fast.use_numpy
        for step in scripts:
            assert fast.blit(*step) == pure.blit(*step)
            assert fast.snapshot() == pure.snapshot()
        assert fast.epoch == pure.epoch


def _drive(machine, apps):
    """One fixed interaction script: region draws, a repeat (memo lane),
    a multi-row draw, and a compose between each batch."""
    xserver = machine.xserver
    first, second = apps[0].window, apps[1].window
    first.draw_rect(0, 0, 8, 1, b"\x11" * 8)
    xserver.compose_screen()
    first.draw_rect(0, 0, 8, 1, b"\x22" * 8)  # same rect: coalesces
    first.draw_rect(0, 0, 8, 1, b"\x33" * 8)
    xserver.compose_screen()
    second.draw_rect(5, 5, 3, 4, b"\x44" * 12)
    second.draw_rect(2, 0, 10, 1, b"\x55" * 10)
    xserver.compose_screen()
    return xserver.compose_screen()


class TestCounterParity:
    """The observability contract the fast/reference differential needs:
    coalescing is recorded at damage time (parity by construction), while
    partial hits and culls are fast-path-only diagnostics."""

    def _machines(self):
        pair = []
        for config in (paper_config(), reference_config()):
            machine = Machine.with_overhaul(config, screen_size=(140, 120))
            apps = [
                SimApp(machine, f"/usr/bin/fbapp{i}", comm=f"fbapp{i}",
                       geometry=Geometry(10 * i, 10, 100, 100))
                for i in range(2)
            ]
            machine.settle()
            pair.append((machine, apps))
        return pair

    def test_coalesce_counter_is_path_independent(self):
        (fast, fast_apps), (ref, ref_apps) = self._machines()
        fast_frame = _drive(fast, fast_apps)
        ref_frame = _drive(ref, ref_apps)
        assert fast_frame == ref_frame
        fast_counts = collect_counters(fast)
        ref_counts = collect_counters(ref)
        assert fast_counts.get("damage.rects_coalesced") == ref_counts.get(
            "damage.rects_coalesced"
        )
        assert fast_counts.get("damage.rects_coalesced") >= 2  # the repeats

    def test_partial_and_cull_counters_are_fast_path_diagnostics(self):
        (fast, fast_apps), (ref, ref_apps) = self._machines()
        _drive(fast, fast_apps)
        _drive(ref, ref_apps)
        fast_counts = collect_counters(fast)
        ref_counts = collect_counters(ref)
        assert fast_counts.get("compose.partial_hits") >= 1
        assert ref_counts.get("compose.partial_hits") == 0
        # Both machines export the cull counter (zero on the reference).
        assert ref_counts.get("compose.rects_culled") == 0
        assert fast_counts.get("compose.rects_culled") >= 0
