"""X server edge cases: disconnects mid-protocol, stale references, focus."""

import pytest

from repro.sim.scheduler import EventScheduler
from repro.xserver.errors import BadDrawable, BadWindow
from repro.xserver.events import EventKind
from repro.xserver.selection import TransferState
from repro.xserver.server import XServer
from repro.xserver.window import Geometry


class FakeTask:
    def __init__(self, pid, comm="app"):
        self.pid = pid
        self.comm = comm


@pytest.fixture
def server():
    return XServer(EventScheduler())


def client_with_window(server, pid, comm="app"):
    client = server.connect(FakeTask(pid, comm))
    window = server.create_window(client, Geometry(0, 0, 100, 100))
    server.map_window(client, window.drawable_id)
    return client, window


class TestDisconnectCleanup:
    def test_selection_cleared_on_owner_disconnect(self, server):
        owner, window = client_with_window(server, 1)
        server.set_selection_owner(owner, "CLIPBOARD", window.drawable_id)
        server.disconnect(owner)
        other, _ = client_with_window(server, 2)
        assert server.get_selection_owner(other, "CLIPBOARD") is None

    def test_disconnect_removes_windows_from_stacking(self, server):
        client, window = client_with_window(server, 1)
        server.disconnect(client)
        assert server.stacking.topmost_at(50, 50) is None

    def test_input_to_disconnected_client_dropped(self, server):
        from repro.xserver.input_drivers import HardwareMouse

        mouse = HardwareMouse(server)
        client, window = client_with_window(server, 1)
        server.disconnect(client)
        dropped_before = server.input_events_dropped
        mouse.click(50, 50)
        assert server.input_events_dropped > dropped_before

    def test_requestor_disconnect_leaves_transfer_inert(self, server):
        owner, owner_window = client_with_window(server, 1)
        requestor, req_window = client_with_window(server, 2)
        server.set_selection_owner(owner, "CLIPBOARD", owner_window.drawable_id)
        transfer = server.convert_selection(
            requestor, "CLIPBOARD", "STRING", "P", req_window.drawable_id
        )
        server.disconnect(requestor)
        # The owner's property write now targets a dead window id.
        with pytest.raises(BadWindow):
            server.change_property(owner, req_window.drawable_id, "P", b"late")
        assert transfer.state is TransferState.REQUESTED


class TestStaleReferences:
    def test_unknown_drawable(self, server):
        client, _ = client_with_window(server, 1)
        with pytest.raises(BadDrawable):
            server.get_image(client, 0xDEADBEEF)

    def test_send_event_to_unknown_window(self, server):
        client, _ = client_with_window(server, 1)
        with pytest.raises(BadWindow):
            server.send_event(client, 0xDEAD, EventKind.CLIENT_MESSAGE)

    def test_focus_requires_existing_window(self, server):
        client, _ = client_with_window(server, 1)
        with pytest.raises(BadWindow):
            server.set_input_focus(client, 0xDEAD)


class TestFocusBehaviour:
    def test_key_events_to_unmapped_focus_window_still_deliver(self, server):
        """X delivers key events to the focus window even if unmapped;
        the Overhaul *notification* check is where unmapped windows are
        rejected, not routing."""
        from repro.xserver.input_drivers import HardwareKeyboard

        keyboard = HardwareKeyboard(server)
        client, window = client_with_window(server, 1)
        server.set_input_focus(client, window.drawable_id)
        server.unmap_window(client, window.drawable_id)
        keyboard.press(42)
        assert client.events_received >= 2

    def test_focus_follows_latest_setter(self, server):
        from repro.xserver.input_drivers import HardwareKeyboard

        keyboard = HardwareKeyboard(server)
        a_client, a_window = client_with_window(server, 1)
        b_client, b_window = client_with_window(server, 2)
        server.set_input_focus(a_client, a_window.drawable_id)
        server.set_input_focus(b_client, b_window.drawable_id)
        keyboard.press(42)
        assert b_client.events_received >= 2
        assert a_client.events_received == 0


class TestClientMessage:
    def test_client_message_delivery(self, server):
        a_client, _ = client_with_window(server, 1)
        b_client, b_window = client_with_window(server, 2)
        server.send_event(
            a_client, b_window.drawable_id, EventKind.CLIENT_MESSAGE,
            payload={"cmd": "ping"},
        )
        event = b_client.event_queue[-1]
        assert event.kind is EventKind.CLIENT_MESSAGE
        assert event.payload["cmd"] == "ping"
        assert event.synthetic_flag  # SendEvent marks everything synthetic
