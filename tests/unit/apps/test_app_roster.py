"""Unit tests for the concrete application models."""

import pytest

from repro.apps import (
    AudioRecorder,
    Browser,
    ClipboardHistoryTool,
    DelayedScreenshotTool,
    DesktopRecorder,
    Launcher,
    PasswordManager,
    ScreenshotTool,
    TerminalEmulator,
    TextEditor,
    VideoConfApp,
    WebcamViewer,
)
from repro.apps.recorder import CommandLineRecorder
from repro.core import Machine
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import NEVER, from_seconds


@pytest.fixture
def machine():
    m = Machine.with_overhaul()
    m.settle()
    return m


class TestVideoConf:
    def test_call_flow(self, machine):
        skype = VideoConfApp(machine)
        machine.settle()
        skype.click_call_button()
        assert skype.call_active
        frame = skype.sample_call_media()
        assert frame
        skype.hang_up()
        assert skype.mic_fd is None and skype.cam_fd is None

    def test_startup_probe_blocked_on_protected_machine(self, machine):
        skype = VideoConfApp(machine, startup_camera_check=True)
        assert skype.startup_blocked  # the V-C spurious alert

    def test_startup_probe_succeeds_on_baseline(self):
        baseline = Machine.baseline()
        baseline.settle()
        skype = VideoConfApp(baseline, startup_camera_check=True)
        assert not skype.startup_blocked

    def test_call_without_click_denied(self, machine):
        skype = VideoConfApp(machine)
        machine.settle()
        with pytest.raises(OverhaulDenied):
            skype.place_call()


class TestRecorders:
    def test_audio_recorder(self, machine):
        recorder = AudioRecorder(machine)
        machine.settle()
        recorder.click_record()
        assert recorder.capture_samples(64)
        recorder.stop_recording()

    def test_webcam_viewer(self, machine):
        viewer = WebcamViewer(machine)
        machine.settle()
        frames = viewer.click_and_view(frames=2)
        assert len(frames) == 2


class TestScreenshotTools:
    def test_click_and_shoot(self, machine):
        tool = ScreenshotTool(machine)
        machine.settle()
        assert tool.click_and_shoot() is not None
        assert len(tool.shots) == 1

    def test_delayed_shot_beyond_threshold_denied(self, machine):
        tool = DelayedScreenshotTool(machine, delay=from_seconds(5.0))
        machine.settle()
        tool.click_and_shoot_delayed()
        machine.run_for(from_seconds(6.0))
        assert tool.delayed_denied
        assert tool.delayed_result is None

    def test_delayed_shot_within_threshold_succeeds(self, machine):
        tool = DelayedScreenshotTool(machine, delay=from_seconds(1.0))
        machine.settle()
        tool.click_and_shoot_delayed()
        machine.run_for(from_seconds(2.0))
        assert tool.delayed_result is not None

    def test_desktop_recorder_with_interaction(self, machine):
        recorder = DesktopRecorder(machine)
        machine.settle()
        recorder.record(frames=3, interval=from_seconds(1.0), keep_interacting=True)
        assert len(recorder.frames) == 3
        assert recorder.denied_frames == 0

    def test_desktop_recorder_without_interaction_starves(self, machine):
        recorder = DesktopRecorder(machine)
        machine.settle()
        recorder.click()
        recorder.record(frames=3, interval=from_seconds(3.0), keep_interacting=False)
        assert recorder.denied_frames >= 2  # first may pass, later ones expire


class TestLauncher:
    def test_launch_program_blesses_child(self, machine):
        launcher = Launcher(machine)
        machine.settle()
        child = launcher.launch_program("/usr/bin/shot")
        assert child.interaction_ts != NEVER
        assert child.comm == "shot"

    def test_launch_without_interaction_gives_nothing(self, machine):
        launcher = Launcher(machine)
        machine.settle()
        child = launcher.launch_without_interaction("/usr/bin/shot")
        assert child.interaction_ts == NEVER


class TestTerminal:
    def test_run_command_propagates_through_pty(self, machine):
        terminal = TerminalEmulator(machine)
        machine.settle()
        task = terminal.run_command("arecord", "/usr/bin/arecord")
        assert task.interaction_ts != NEVER
        assert terminal.shell.history == ["arecord"]

    def test_cli_recorder_records_after_terminal_launch(self, machine):
        terminal = TerminalEmulator(machine)
        machine.settle()
        task = terminal.run_command("arecord", "/usr/bin/arecord")
        recorder = CommandLineRecorder(machine, task)
        assert recorder.record_once()

    def test_shell_has_no_direct_interaction_without_typing(self, machine):
        terminal = TerminalEmulator(machine)
        assert terminal.shell.task.interaction_ts == NEVER


class TestBrowser:
    def test_tab_is_separate_process(self, machine):
        browser = Browser(machine)
        machine.settle()
        tab = browser.open_tab()
        assert tab.task.pid != browser.pid
        assert tab.task.parent is browser.task

    def test_videoconf_command_opens_devices_in_tab(self, machine):
        browser = Browser(machine)
        machine.settle()
        tab = browser.open_tab()
        browser.click()
        browser.start_video_conference(tab)
        assert tab.camera_fd is not None
        assert tab.mic_fd is not None

    def test_tab_without_browser_interaction_denied(self, machine):
        browser = Browser(machine)
        machine.settle()
        tab = browser.open_tab()
        with pytest.raises(OverhaulDenied):
            browser.command_tab(tab, b"\x01")


class TestClipboardApps:
    def test_editor_copy_paste(self, machine):
        editor = TextEditor(machine)
        other = TextEditor(machine, comm="kate")
        machine.settle()
        editor.user_copy(b"hello")
        machine.run_for(from_seconds(0.2))
        assert other.user_paste() == b"hello"
        assert other.buffer == b"hello"

    def test_password_manager_copy(self, machine):
        vault = PasswordManager(machine)
        editor = TextEditor(machine)
        machine.settle()
        secret = vault.user_copy_password("bank")
        machine.run_for(from_seconds(0.2))
        assert editor.user_paste() == secret

    def test_clipboard_history_tool_denied_when_idle(self, machine):
        vault = PasswordManager(machine)
        tool = ClipboardHistoryTool(machine)
        machine.settle()
        vault.user_copy_password("bank")
        machine.run_for(from_seconds(5.0))  # user idle past delta
        assert tool.poll_clipboard() is None
        assert tool.denied_polls == 1
