"""Unit tests for the SimApp framework."""

import pytest

from repro.apps.base import SimApp
from repro.core import Machine
from repro.sim.time import from_seconds
from repro.xserver.window import Geometry


@pytest.fixture
def machine():
    m = Machine.with_overhaul()
    m.settle()
    return m


class TestLifecycle:
    def test_app_has_task_and_client(self, machine):
        app = SimApp(machine, "/usr/bin/app", comm="app")
        assert app.pid == app.task.pid
        assert app.client.pid == app.pid
        assert app.window is not None
        assert app.window.mapped

    def test_windowless_app(self, machine):
        daemon = SimApp(machine, "/usr/bin/daemon", comm="daemon", with_window=False)
        assert daemon.window is None
        with pytest.raises(RuntimeError):
            daemon.click()

    def test_unmapped_window_app(self, machine):
        app = SimApp(machine, "/usr/bin/hidden", comm="hidden", map_window=False)
        assert app.window is not None
        assert not app.window.mapped

    def test_custom_geometry(self, machine):
        app = SimApp(machine, "/usr/bin/app", geometry=Geometry(5, 6, 70, 80))
        assert app.window.geometry.width == 70

    def test_exit_disconnects_and_kills(self, machine):
        app = SimApp(machine, "/usr/bin/app", comm="app")
        app.exit()
        assert not app.task.is_alive
        assert not app.client.connected

    def test_spawn_child_inherits_interaction(self, machine):
        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.settle()
        app.click()
        child = app.spawn_child("/usr/bin/tool")
        assert child.interaction_ts == app.task.interaction_ts


class TestUserInteractionHelpers:
    def test_click_records_interaction(self, machine):
        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.settle()
        app.click()
        assert app.task.interaction_ts == machine.now

    def test_click_raises_window_first(self, machine):
        below = SimApp(machine, "/usr/bin/below", geometry=Geometry(0, 0, 100, 100))
        above = SimApp(machine, "/usr/bin/above", geometry=Geometry(0, 0, 100, 100))
        machine.settle()
        below.click()
        # The click went to `below`, not the window stacked above it.
        assert below.task.interaction_ts == machine.now

    def test_type_keys_focuses_first(self, machine):
        app = SimApp(machine, "/usr/bin/editor", comm="editor")
        machine.settle()
        app.type_keys("hi")
        assert app.client.events_received >= 4  # 2 chars x press/release

    def test_event_hooks_called(self, machine):
        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.settle()
        seen = []
        app.on_event(seen.append)
        app.click()
        assert seen  # press + release delivered


class TestDeviceHelpers:
    def test_record_from_device_after_click(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        data = app.record_from_device("mic0", count=16)
        assert len(data) == 16

    def test_open_device_closes_cleanly(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        fd = app.open_device("mic0")
        app.close_fd(fd)
        from repro.kernel.errors import BadFileDescriptor

        with pytest.raises(BadFileDescriptor):
            app.read_device(fd)


class TestClipboardRoles:
    def test_copy_paste_round_trip(self, machine):
        source = SimApp(machine, "/usr/bin/src", comm="src")
        target = SimApp(machine, "/usr/bin/dst", comm="dst")
        machine.settle()
        source.click()
        source.copy_text(b"round-trip")
        machine.run_for(from_seconds(0.1))
        target.click()
        assert target.paste_text() == b"round-trip"
        assert target.pasted == [b"round-trip"]

    def test_paste_with_empty_clipboard(self, machine):
        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.settle()
        app.click()
        assert app.paste_text() is None

    def test_windowless_app_cannot_use_clipboard(self, machine):
        daemon = SimApp(machine, "/usr/bin/d", with_window=False)
        with pytest.raises(RuntimeError):
            daemon.copy_text(b"x")
        with pytest.raises(RuntimeError):
            daemon.paste_text()

    def test_second_copy_replaces_owner(self, machine):
        a = SimApp(machine, "/usr/bin/a", comm="a")
        b = SimApp(machine, "/usr/bin/b", comm="b")
        target = SimApp(machine, "/usr/bin/t", comm="t")
        machine.settle()
        a.click()
        a.copy_text(b"old")
        machine.run_for(from_seconds(0.1))
        b.click()
        b.copy_text(b"new")
        machine.run_for(from_seconds(0.1))
        target.click()
        assert target.paste_text() == b"new"
