"""Smoke tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "GRANTED" in output

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "spyware mic attempt -> None" in output

    def test_usability(self, capsys):
        assert main(["usability", "--seed", "66"]) == 0
        output = capsys.readouterr().out
        assert "participants" in output

    def test_longterm_short(self, capsys):
        assert main(["longterm", "--days", "1"]) == 0
        output = capsys.readouterr().out
        assert "OVERHAUL" in output and "unprotected" in output

    def test_applicability(self, capsys):
        assert main(["applicability"]) == 0
        output = capsys.readouterr().out
        assert "applications exercised : 108" in output

    def test_table1_tiny(self, capsys):
        assert main(["table1", "--scale", "0.02", "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        output = capsys.readouterr().out
        # The acceptance criterion: one grant and one deny, each with its
        # full decision path reconstructed from the trace.
        assert "GRANTED microphone:/dev/mic0" in output
        assert "DENIED microphone:/dev/mic0" in output
        assert "HARDWARE button-release on window w1" in output
        assert "no authentic user input was ever delivered" in output

    def test_trace_tree_and_counters(self, capsys):
        assert main(["trace", "--tree", "--counters"]) == 0
        output = capsys.readouterr().out
        assert "monitor.decide" in output
        assert "netlink.to_kernel" in output
        assert "obs.spans" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])


class TestJsonFlags:
    """`--json` turns each study subcommand into a machine-readable feed."""

    def test_longterm_json(self, capsys):
        import json

        assert main(["longterm", "--days", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"protected", "unprotected"}
        assert payload["protected"]["legit_failures"] == 0
        assert payload["unprotected"]["total_stolen"] > 0

    def test_usability_json(self, capsys):
        import json

        assert main(["usability", "--seed", "66", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["participants"] == 46
        assert len(payload["outcomes"]) == 46
        assert payload["identical_experience"] == 46

    def test_table1_json(self, capsys):
        import json

        assert main(["table1", "--scale", "0.02", "--repeats", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["table"] == "I"
        names = {row["name"] for row in payload["rows"]}
        assert "device-access" in names or len(names) == 5


class TestFleetCommand:
    def test_fleet_longterm_human_output(self, capsys):
        assert main([
            "fleet", "longterm", "--machines", "2", "--days", "1", "--workers", "1",
        ]) == 0
        output = capsys.readouterr().out
        assert "fleet 'longterm': population 2" in output
        assert "executed / resumed     : 2 / 0" in output

    def test_fleet_json_deterministic_across_workers(self, capsys):
        assert main([
            "fleet", "longterm", "--machines", "3", "--days", "1",
            "--workers", "1", "--seed", "8", "--json",
        ]) == 0
        serial = capsys.readouterr().out
        assert main([
            "fleet", "longterm", "--machines", "3", "--days", "1",
            "--workers", "2", "--seed", "8", "--json",
        ]) == 0
        pooled = capsys.readouterr().out
        assert serial == pooled

    def test_fleet_usability_users_flag(self, capsys):
        import json

        assert main([
            "fleet", "usability", "--users", "6", "--workers", "1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["participants"] == 6

    def test_fleet_resume_flag(self, capsys, tmp_path):
        spool = str(tmp_path / "spool")
        assert main([
            "fleet", "longterm", "--machines", "2", "--days", "1",
            "--workers", "1", "--resume", spool,
        ]) == 0
        capsys.readouterr()
        assert main([
            "fleet", "longterm", "--machines", "2", "--days", "1",
            "--workers", "1", "--resume", spool,
        ]) == 0
        output = capsys.readouterr().out
        assert "executed / resumed     : 0 / 2" in output

    def test_fleet_unknown_study_rejected(self, capsys):
        assert main(["fleet", "nope"]) == 2
        assert "unknown study" in capsys.readouterr().err


class TestRedteamCommand:
    def test_campaign_table(self, capsys):
        assert main([
            "redteam", "--families", "flood", "--trials", "2", "--no-baseline",
        ]) == 0
        output = capsys.readouterr().out
        assert "red-team campaign" in output
        assert "flood-sendevent" in output and "flood-xtest" in output
        assert "inside their verdict envelopes" in output

    def test_campaign_json_deterministic_across_workers(self, capsys):
        import json

        args = [
            "redteam", "--families", "ptrace", "--trials", "2",
            "--no-baseline", "--seed", "9", "--json",
        ]
        assert main(args + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        assert serial == capsys.readouterr().out
        payload = json.loads(serial)
        names = [entry["scenario"] for entry in payload["scenarios"]]
        assert names == ["ptrace-inject-blessed", "ptrace-detach-race"]

    def test_sweep_delta_json(self, capsys):
        import json

        assert main(["redteam", "--sweep", "delta", "--trials", "3", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["parameter"] == "delta"
        assert len(payload["points"]) == len(payload["roc"])
        assert 0.0 <= payload["auc"] <= 1.0

    def test_sweep_visibility_human(self, capsys):
        assert main(["redteam", "--sweep", "visibility", "--trials", "3"]) == 0
        output = capsys.readouterr().out
        assert "visibility" in output and "AUC" in output

    def test_unknown_family_rejected(self, capsys):
        assert main(["redteam", "--families", "nope", "--trials", "1"]) == 2
        assert "nope" in capsys.readouterr().err


class TestServeCommand:
    def test_no_listener_rejected(self, capsys):
        assert main(["serve"]) == 2
        assert "--unix PATH and/or --tcp" in capsys.readouterr().err

    def test_malformed_tcp_rejected(self, capsys):
        assert main(["serve", "--tcp", "nonsense"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_serve_ready_line_and_sigterm_drain(self, tmp_path):
        """End to end: spawn the daemon, talk to it, SIGTERM it."""
        import os
        import signal
        import subprocess
        import sys

        socket_path = str(tmp_path / "cli.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH")])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--unix", socket_path],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            ready = process.stdout.readline()
            assert "overhaul service ready" in ready
            assert f"unix:{socket_path}" in ready

            from repro.service.client import ServiceClient

            with ServiceClient(unix_path=socket_path) as client:
                assert client.ping() == {"pong": True, "version": 1}
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
            assert "overhaul service drained" in process.stdout.read()
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
            process.stdout.close()


class TestBrokenPipe:
    """Piping `--json` output into a closed reader must exit 141, quietly."""

    class _ClosedPipe:
        def write(self, text):
            raise BrokenPipeError(32, "Broken pipe")

        def flush(self):
            raise BrokenPipeError(32, "Broken pipe")

    def test_redteam_json_into_closed_pipe(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdout", self._ClosedPipe())
        assert main([
            "redteam", "--families", "flood", "--trials", "1",
            "--no-baseline", "--json",
        ]) == 141
        assert "pipe closed early" in capsys.readouterr().err

    def test_fleet_json_into_closed_pipe(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdout", self._ClosedPipe())
        assert main([
            "fleet", "usability", "--users", "2", "--workers", "1", "--json",
        ]) == 141
        assert "pipe closed early" in capsys.readouterr().err
