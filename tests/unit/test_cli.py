"""Smoke tests for the `python -m repro` command-line interface."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "GRANTED" in output

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "spyware mic attempt -> None" in output

    def test_usability(self, capsys):
        assert main(["usability", "--seed", "66"]) == 0
        output = capsys.readouterr().out
        assert "participants" in output

    def test_longterm_short(self, capsys):
        assert main(["longterm", "--days", "1"]) == 0
        output = capsys.readouterr().out
        assert "OVERHAUL" in output and "unprotected" in output

    def test_applicability(self, capsys):
        assert main(["applicability"]) == 0
        output = capsys.readouterr().out
        assert "applications exercised : 108" in output

    def test_table1_tiny(self, capsys):
        assert main(["table1", "--scale", "0.02", "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output

    def test_trace(self, capsys):
        assert main(["trace"]) == 0
        output = capsys.readouterr().out
        # The acceptance criterion: one grant and one deny, each with its
        # full decision path reconstructed from the trace.
        assert "GRANTED microphone:/dev/mic0" in output
        assert "DENIED microphone:/dev/mic0" in output
        assert "HARDWARE button-release on window w1" in output
        assert "no authentic user input was ever delivered" in output

    def test_trace_tree_and_counters(self, capsys):
        assert main(["trace", "--tree", "--counters"]) == 0
        output = capsys.readouterr().out
        assert "monitor.decide" in output
        assert "netlink.to_kernel" in output
        assert "obs.spans" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])
