"""Unit tests for the display-manager extension (trusted input/output)."""

import pytest

from repro.apps.base import SimApp
from repro.core import Machine, OverhaulConfig
from repro.sim.time import from_seconds
from repro.xserver.window import Geometry


@pytest.fixture
def rig():
    machine = Machine.with_overhaul()
    machine.settle()
    app = SimApp(machine, "/usr/bin/app", comm="app")
    machine.settle()
    return machine, machine.overhaul.extension, app


class TestTrustedInput:
    def test_hardware_click_sends_notification(self, rig):
        machine, extension, app = rig
        before = extension.notifications_sent
        app.click()
        assert extension.notifications_sent == before + 2  # press + release
        assert app.task.interaction_ts == machine.now

    def test_motion_does_not_notify(self, rig):
        machine, extension, app = rig
        before = extension.notifications_sent
        machine.mouse.move_to(
            app.window.geometry.x + 1, app.window.geometry.y + 1
        )
        assert extension.notifications_sent == before

    def test_xtest_input_never_notifies(self, rig):
        machine, extension, app = rig
        before = extension.notifications_sent
        machine.xserver.xtest_fake_input(
            app.client, __import__("repro.xserver.events", fromlist=["EventKind"]).EventKind.BUTTON_PRESS,
            detail=1, x=app.window.geometry.x + 1, y=app.window.geometry.y + 1,
        )
        assert extension.notifications_sent == before
        assert extension.synthetic_inputs_seen >= 1

    def test_sendevent_input_never_notifies(self, rig):
        from repro.xserver.events import EventKind

        machine, extension, app = rig
        before = extension.notifications_sent
        machine.xserver.send_event(
            app.client, app.window.drawable_id, EventKind.BUTTON_PRESS, detail=1
        )
        assert extension.notifications_sent == before


class TestClickjackingDefence:
    def test_freshly_mapped_window_suppressed(self):
        machine = Machine.with_overhaul()
        machine.settle()
        app = SimApp(machine, "/usr/bin/popup", comm="popup")
        # No settle: the window just appeared.
        app.click()
        extension = machine.overhaul.extension
        assert extension.notifications_sent == 0
        assert any("visible only" in s.reason for s in extension.suppressed)

    def test_window_visible_past_threshold_notifies(self):
        machine = Machine.with_overhaul()
        machine.settle()
        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.run_for(machine.overhaul.config.window_visibility_threshold + 1)
        app.click()
        assert machine.overhaul.extension.notifications_sent == 2

    def test_transparent_window_never_notifies(self, rig):
        machine, extension, _ = rig
        ghost = SimApp(machine, "/usr/bin/ghost", comm="ghost", transparent=True)
        machine.settle()  # even long visibility does not help transparency
        ghost.click()
        assert extension.notifications_sent == 0
        assert any(s.reason == "transparent window" for s in extension.suppressed)

    def test_suppression_records_pid_and_window(self):
        machine = Machine.with_overhaul()
        machine.settle()
        app = SimApp(machine, "/usr/bin/popup", comm="popup")
        app.click()
        suppressed = machine.overhaul.extension.suppressed
        assert suppressed[0].pid == app.pid
        assert suppressed[0].window_id == app.window.drawable_id

    def test_visibility_threshold_configurable(self):
        machine = Machine.with_overhaul(
            OverhaulConfig(window_visibility_threshold=from_seconds(0.1))
        )
        machine.settle()
        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.run_for(from_seconds(0.2))
        app.click()
        assert machine.overhaul.extension.notifications_sent == 2


class TestDisplayResourceQueries:
    def test_screen_capture_grant_displays_alert(self, rig):
        machine, extension, app = rig
        app.click()
        image = app.capture_screen()
        assert image is not None
        alerts = machine.xserver.overlay.alerts_for_pid(app.pid)
        assert any(a.operation == "screen" for a in alerts)

    def test_screen_capture_denial_displays_blocked_alert(self, rig):
        from repro.xserver.errors import BadAccess

        machine, extension, app = rig
        with pytest.raises(BadAccess):
            app.capture_screen()
        alerts = machine.xserver.overlay.alerts_for_pid(app.pid)
        assert any("BLOCKED" in a.message for a in alerts)

    def test_clipboard_ops_never_alert(self, rig):
        machine, extension, app = rig
        app.click()
        app.copy_text(b"data")
        machine.run_for(from_seconds(0.1))
        app.click()
        app.paste_text()
        assert all(a.operation != "copy" for a in machine.xserver.overlay.history)
        assert all(a.operation != "paste" for a in machine.xserver.overlay.history)

    def test_queries_counted(self, rig):
        machine, extension, app = rig
        app.click()
        app.copy_text(b"x")
        assert extension.queries_sent >= 1
