"""Unit tests for the gray-box building blocks."""

import pytest

from repro.core.graybox import (
    GrayBoxRegistry,
    InputDescriptor,
    IntentProfile,
    IntentRule,
    Region,
    descriptor_from_event,
)
from repro.xserver.events import EventKind, EventProvenance, XEvent
from repro.xserver.window import Geometry, Window


class TestRegion:
    def test_contains_half_open(self):
        region = Region(10, 10, 20, 20)
        assert region.contains(10, 10)
        assert region.contains(19, 19)
        assert not region.contains(20, 19)
        assert not region.contains(9, 15)


class TestIntentRule:
    def test_button_matching(self):
        rule = IntentRule(regions=[Region(0, 0, 50, 50)])
        assert rule.matches(InputDescriptor("button", 25, 25))
        assert not rule.matches(InputDescriptor("button", 75, 25))

    def test_key_matching(self):
        rule = IntentRule(keycodes=[107])
        assert rule.matches(InputDescriptor("key", keycode=107))
        assert not rule.matches(InputDescriptor("key", keycode=42))

    def test_kind_mismatch(self):
        rule = IntentRule(regions=[Region(0, 0, 50, 50)])
        assert not rule.matches(InputDescriptor("key", keycode=107))


class TestIntentProfile:
    def test_longest_prefix_wins(self):
        profile = IntentProfile("app")
        profile.allow_keycode("mic", 1)
        profile.allow_keycode("microphone:/dev/mic0", 2)
        rule = profile.rule_for("microphone:/dev/mic0")
        assert rule is not None and rule.keycodes == [2]

    def test_unruled_operation_unconstrained(self):
        profile = IntentProfile("app")
        profile.allow_keycode("microphone", 1)
        assert profile.permits("screen", None)
        assert profile.permits("screen", InputDescriptor("button", 1, 1))

    def test_ruled_operation_requires_descriptor(self):
        profile = IntentProfile("app").allow_keycode("microphone", 1)
        assert not profile.permits("microphone:/dev/mic0", None)

    def test_builder_chaining(self):
        profile = (
            IntentProfile("app")
            .allow_region("camera", Region(0, 0, 10, 10))
            .allow_keycode("camera", 9)
        )
        rule = profile.rule_for("camera:/dev/video0")
        assert rule.regions and rule.keycodes


class TestRegistry:
    def test_no_profile_passes_everything(self):
        registry = GrayBoxRegistry()
        assert registry.check("anyapp", "microphone:/dev/mic0", None)
        assert registry.intent_denials == 0

    def test_denials_counted(self):
        registry = GrayBoxRegistry()
        registry.install_profile(IntentProfile("app").allow_keycode("microphone", 1))
        assert not registry.check("app", "microphone:/dev/mic0", None)
        assert registry.intent_denials == 1


class TestDescriptorExtraction:
    def _window(self):
        window = Window(1, Geometry(100, 200, 640, 480))
        window.mapped = True
        return window

    def test_button_descriptor_is_window_relative(self):
        window = self._window()
        event = XEvent(
            EventKind.BUTTON_PRESS, 0, EventProvenance.HARDWARE, x=150, y=260
        )
        descriptor = descriptor_from_event(event, window)
        assert descriptor == InputDescriptor("button", window_x=50, window_y=60)

    def test_key_descriptor_carries_keycode(self):
        window = self._window()
        event = XEvent(
            EventKind.KEY_PRESS, 0, EventProvenance.HARDWARE, detail=107
        )
        descriptor = descriptor_from_event(event, window)
        assert descriptor == InputDescriptor("key", keycode=107)

    def test_non_input_events_have_no_descriptor(self):
        window = self._window()
        event = XEvent(EventKind.EXPOSE, 0, EventProvenance.SERVER)
        assert descriptor_from_event(event, window) is None
