"""Negative tests for visual-alert coalescing.

Coalescing exists so a process hammering a device produces one banner per
alert-duration window instead of a flicker of duplicates -- but it must
never *suppress* information: alerts about distinct resources, distinct
processes, or distinct outcomes are all separate facts the user must see.
Two layers coalesce independently (the kernel monitor on
``(pid, operation, blocked)`` before the netlink round trip; the overlay on
``(pid, operation, message)`` at display time) and both keep exact counters.
"""

import pytest

from repro.apps.base import SimApp
from repro.core import Machine
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds


@pytest.fixture
def machine():
    machine = Machine.with_overhaul()
    machine.settle()
    return machine


def denied_open(app, device):
    with pytest.raises(OverhaulDenied):
        app.open_device(device)


class TestDistinctFactsAreNotSuppressed:
    def test_distinct_devices_each_alert(self, machine):
        """mic0 and video0 are different resources: one banner each."""
        spy = SimApp(machine, "/usr/bin/spy", comm="spy")
        denied_open(spy, "mic0")
        denied_open(spy, "video0")
        overlay = machine.xserver.overlay
        assert overlay.total_shown == 2
        operations = {alert.operation for alert in overlay.history}
        assert len(operations) == 2
        assert machine.monitor.alerts_coalesced == 0

    def test_distinct_processes_each_alert(self, machine):
        spy_a = SimApp(machine, "/usr/bin/spya", comm="spya")
        spy_b = SimApp(machine, "/usr/bin/spyb", comm="spyb")
        denied_open(spy_a, "mic0")
        denied_open(spy_b, "mic0")
        assert machine.xserver.overlay.total_shown == 2
        assert machine.monitor.alerts_coalesced == 0

    def test_blocked_and_granted_outcomes_each_alert(self, machine):
        """A denial banner and a grant banner for the same (pid, device)
        are different facts; the outcome is part of the coalescing key."""
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()  # the fresh window must pass the visibility check
        denied_open(app, "mic0")
        app.click()  # authentic interaction -> next open is granted
        fd = app.open_device("mic0")
        app.close_fd(fd)
        overlay = machine.xserver.overlay
        assert overlay.total_shown == 2
        messages = {alert.message for alert in overlay.history}
        assert any(m.startswith("BLOCKED") for m in messages)
        assert any(not m.startswith("BLOCKED") for m in messages)


class TestSameFactCoalesces:
    def test_hammering_a_device_shows_one_banner_per_window(self, machine):
        spy = SimApp(machine, "/usr/bin/spy", comm="spy")
        for _ in range(25):
            denied_open(spy, "mic0")
        overlay = machine.xserver.overlay
        assert overlay.total_shown == 1
        # The kernel-side coalescer absorbed the rest before netlink.
        assert machine.monitor.alerts_coalesced == 24
        assert machine.monitor.alerts_requested == 1

    def test_window_expiry_allows_a_fresh_banner(self, machine):
        spy = SimApp(machine, "/usr/bin/spy", comm="spy")
        denied_open(spy, "mic0")
        machine.run_for(from_seconds(4.0))  # past the 3 s alert duration
        denied_open(spy, "mic0")
        assert machine.xserver.overlay.total_shown == 2

    def test_overlay_layer_coalesces_direct_duplicates(self, machine):
        """The overlay's own defence: identical show_alert calls while the
        banner is visible return the existing alert and count it."""
        overlay = machine.xserver.overlay
        now = machine.now
        first = overlay.show_alert("msg", "microphone:/dev/mic0", 42, "spy", now)
        second = overlay.show_alert("msg", "microphone:/dev/mic0", 42, "spy", now)
        assert second is first
        assert overlay.total_shown == 1
        assert overlay.total_coalesced == 1
        # A different operation is NOT absorbed.
        third = overlay.show_alert("msg", "camera:/dev/video0", 42, "spy", now)
        assert third is not first
        assert overlay.total_shown == 2
        assert overlay.total_coalesced == 1

    def test_coalescing_counters_in_cross_layer_snapshot(self, machine):
        from repro.obs import collect_counters

        spy = SimApp(machine, "/usr/bin/spy", comm="spy")
        for _ in range(5):
            denied_open(spy, "mic0")
        counters = collect_counters(machine)
        assert counters.get("overlay.shown") == 1
        assert counters.get("monitor.alerts_coalesced") == 4
        assert counters.get("monitor.alerts_requested") == 1
