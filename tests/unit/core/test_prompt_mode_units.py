"""Unit tests for prompt-mode internals."""

import pytest

from repro.apps import SimApp
from repro.core import Machine, OverhaulConfig
from repro.core.prompt_mode import PROMPT_BAND_HEIGHT, PromptRequest
from repro.kernel.errors import OverhaulDenied


@pytest.fixture
def machine():
    m = Machine.with_overhaul(OverhaulConfig(prompt_mode=True))
    m.settle()
    return m


class TestPromptRequest:
    def test_render_contains_identity_and_secret(self):
        request = PromptRequest(1, 42, "voiced", "microphone:/dev/mic0", 0, "SECRET")
        text = request.render()
        assert "voiced" in text
        assert "microphone" in text
        assert "SECRET" in text
        assert "Approve" in text and "Deny" in text


class TestPromptManagerGeometry:
    def test_regions_partition_the_band(self, machine):
        manager = machine.overhaul.extension.prompt_manager
        ax0, ay0, ax1, ay1 = manager.approve_region()
        dx0, dy0, dx1, dy1 = manager.deny_region()
        assert ax0 == 0 and dx1 == machine.xserver.width
        assert ax1 == dx0  # contiguous split
        assert ay1 == dy1 == PROMPT_BAND_HEIGHT

    def test_clicks_below_band_not_intercepted(self, machine):
        daemon = SimApp(machine, "/usr/bin/d", comm="d", with_window=False)
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        manager = machine.overhaul.extension.prompt_manager
        consumed = manager.intercept_hardware_click(100, PROMPT_BAND_HEIGHT + 1, machine.now)
        assert not consumed
        assert manager.active is not None

    def test_no_active_prompt_no_interception(self, machine):
        manager = machine.overhaul.extension.prompt_manager
        assert not manager.intercept_hardware_click(10, 10, machine.now)

    def test_banner_empty_when_idle(self, machine):
        assert machine.overhaul.extension.prompt_manager.banner() == b""


class TestPromptArbiter:
    def test_answers_expire_and_are_pruned(self, machine):
        daemon = SimApp(machine, "/usr/bin/d", comm="d", with_window=False)
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(10, 10)
        arbiter = machine.overhaul.monitor.prompt_arbiter
        operation = "microphone:/dev/mic0"
        assert arbiter.check_answer(daemon.task, operation, machine.now) is True
        late = machine.now + machine.overhaul.config.interaction_threshold
        assert arbiter.check_answer(daemon.task, operation, late) is None
        # Expired entries are dropped from the table, not just masked.
        assert (daemon.pid, operation) not in arbiter._answers

    def test_counters(self, machine):
        daemon = SimApp(machine, "/usr/bin/d", comm="d", with_window=False)
        arbiter = machine.overhaul.monitor.prompt_arbiter
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(10, 10)
        with pytest.raises(OverhaulDenied):
            daemon.open_device("video0")
        machine.mouse.click(machine.xserver.width - 10, 10)
        assert arbiter.prompts_posted == 2
        assert arbiter.approvals == 1
        assert arbiter.denials == 1

    def test_headless_prompting_is_fail_closed(self, machine):
        daemon = SimApp(machine, "/usr/bin/d", comm="d", with_window=False)
        machine.overhaul.channel.close()
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        assert machine.overhaul.monitor.prompt_arbiter.prompts_posted == 0
