"""Negative coverage for the epoch decision cache's invalidation triggers.

The fast core memoises the ptrace verdict per pid, keyed on the
``(interaction_ts, ptrace.version)`` epoch.  Five events must move that
key or the cache serves stale security verdicts: a new interaction, a
ptrace attach, a detach, a protection toggle, and a tracer death.

Positive tests ("the verdict is correct after the event") cannot tell a
load-bearing invalidation from a coincidentally-recomputed one.  Each
test here *suppresses* one trigger's signal -- undoing the version bump
the event just made, or pinning the interaction timestamp -- and asserts
the stale verdict really does survive, served from the cache.  Then it
restores the signal and asserts the verdict snaps back.  If a refactor
ever stops a trigger from moving the epoch, the "stale survives" half
goes green in production code paths and the "restored" half fails.
"""

import pytest

from repro.core import Machine
from repro.kernel.credentials import DEFAULT_USER

OP = "mic"


@pytest.fixture
def rig():
    machine = Machine.with_overhaul()
    machine.settle()
    parent = machine.kernel.sys_spawn(
        machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
    )
    child = machine.kernel.sys_fork(parent)
    monitor = machine.overhaul.monitor
    assert monitor._use_decision_cache, "cache must be on for these tests"
    return machine, monitor, parent, child


def prime(machine, monitor, task):
    """Warm the cache for *task* and return the primed verdict."""
    task.record_interaction(machine.now)
    misses = monitor.cache_misses
    granted, _, _ = monitor._decide_core(task, machine.now, OP)
    assert monitor.cache_misses == misses + 1
    return granted


def cached_verdict(machine, monitor, task):
    """Query again and assert the answer came from the cache."""
    hits = monitor.cache_hits
    granted, _, _ = monitor._decide_core(task, machine.now, OP)
    assert monitor.cache_hits == hits + 1
    return granted


class TestAttach:
    def test_skipped_attach_bump_serves_stale_grant(self, rig):
        machine, monitor, parent, child = rig
        assert prime(machine, monitor, child) is True

        machine.kernel.ptrace.attach(parent, child)
        machine.kernel.ptrace.version -= 1  # suppress the trigger

        # Stale: the child is traced, yet the cache still grants.
        assert cached_verdict(machine, monitor, child) is True

        machine.kernel.ptrace.version += 1  # restore the trigger
        granted, reason, _ = monitor._decide_core(child, machine.now, OP)
        assert granted is False and "traced" in reason


class TestDetach:
    def test_skipped_detach_bump_serves_stale_denial(self, rig):
        machine, monitor, parent, child = rig
        machine.kernel.ptrace.attach(parent, child)
        assert prime(machine, monitor, child) is False

        machine.kernel.ptrace.detach(parent, child)
        machine.kernel.ptrace.version -= 1  # suppress the trigger

        # Stale: nobody traces the child anymore, yet the cache denies.
        assert cached_verdict(machine, monitor, child) is False

        machine.kernel.ptrace.version += 1  # restore the trigger
        assert monitor._decide_core(child, machine.now, OP)[0] is True


class TestProtectionToggle:
    def test_skipped_toggle_bump_keeps_enforcing_disabled_hardening(self, rig):
        machine, monitor, parent, child = rig
        machine.kernel.ptrace.attach(parent, child)
        assert prime(machine, monitor, child) is False

        # The superuser turns the hardening off; the setter's bump is the
        # only thing that tells the cache.
        machine.kernel.ptrace.protection_enabled = False
        machine.kernel.ptrace.version -= 1  # suppress the trigger

        assert cached_verdict(machine, monitor, child) is False

        machine.kernel.ptrace.version += 1  # restore the trigger
        assert monitor._decide_core(child, machine.now, OP)[0] is True

    def test_unchanged_toggle_does_not_bump(self, rig):
        """Setting the switch to its current value is not a state change
        and must not churn the epoch (cache-thrash guard)."""
        machine, monitor, parent, child = rig
        before = machine.kernel.ptrace.version
        machine.kernel.ptrace.protection_enabled = True
        assert machine.kernel.ptrace.version == before


class TestTracerDeath:
    def test_skipped_exit_bump_denies_an_untraced_task(self, rig):
        machine, monitor, parent, child = rig
        tracer = machine.kernel.sys_fork(parent)
        grandchild = machine.kernel.sys_fork(tracer)
        machine.kernel.ptrace.attach(tracer, grandchild)
        assert prime(machine, monitor, grandchild) is False

        # Tracer exit severs the trace link (on_task_exit) and bumps.
        machine.kernel.sys_exit(tracer)
        assert grandchild.traced_by is None
        machine.kernel.ptrace.version -= 1  # suppress the trigger

        assert cached_verdict(machine, monitor, grandchild) is False

        machine.kernel.ptrace.version += 1  # restore the trigger
        assert monitor._decide_core(grandchild, machine.now, OP)[0] is True


class TestNewInteraction:
    def test_pinned_interaction_ts_serves_stale_ptrace_verdict(self, rig):
        """The epoch's first half: a fresh interaction must also retire
        the memo.  Poison the cached ptrace half directly; while the
        interaction timestamp stays pinned the poison is served, and the
        first new interaction flushes it."""
        machine, monitor, parent, child = rig
        assert prime(machine, monitor, child) is True

        ts, version, _ = monitor._decision_cache[child.pid]
        monitor._decision_cache[child.pid] = (ts, version, True)

        # Same interaction_ts, same version: the poisoned entry is live.
        assert cached_verdict(machine, monitor, child) is False

        # A newer interaction moves the key; the poison dies with it.
        machine.run_for(10)
        child.record_interaction(machine.now)
        misses = monitor.cache_misses
        assert monitor._decide_core(child, machine.now, OP)[0] is True
        assert monitor.cache_misses == misses + 1
