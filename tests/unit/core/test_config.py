"""Unit tests for OverhaulConfig validation and presets."""

import pytest

from repro.core.config import OverhaulConfig, benchmark_config, paper_config
from repro.sim.errors import SimulationError
from repro.sim.time import from_millis, from_seconds


class TestDefaults:
    def test_paper_values(self):
        config = paper_config()
        assert config.interaction_threshold == from_seconds(2.0)
        assert config.shm_waitlist == from_millis(500)
        assert config.alert_duration == from_seconds(3.0)
        assert config.ptrace_protection
        assert not config.force_grant

    def test_clipboard_never_alerted_by_default(self):
        """Section V-C: clipboard accesses are logged, not alerted."""
        assert not paper_config().alert_on_clipboard

    def test_benchmark_preset_forces_grants(self):
        assert benchmark_config().force_grant

    def test_decision_cache_default_bound(self):
        assert paper_config().decision_cache_size == 4096


class TestValidation:
    def test_non_positive_threshold_rejected(self):
        with pytest.raises(SimulationError):
            OverhaulConfig(interaction_threshold=0)

    def test_waitlist_must_be_shorter_than_threshold(self):
        """Section IV-B: 'This wait duration must be sufficiently shorter
        than the 2 second interaction expiration time.'"""
        with pytest.raises(SimulationError):
            OverhaulConfig(
                interaction_threshold=from_seconds(1.0),
                shm_waitlist=from_seconds(1.0),
            )

    def test_negative_waitlist_rejected(self):
        with pytest.raises(SimulationError):
            OverhaulConfig(shm_waitlist=-1)

    def test_negative_visibility_threshold_rejected(self):
        with pytest.raises(SimulationError):
            OverhaulConfig(window_visibility_threshold=-1)

    def test_non_positive_alert_duration_rejected(self):
        with pytest.raises(SimulationError):
            OverhaulConfig(alert_duration=0)

    def test_paper_defaults_satisfy_constraints(self):
        paper_config().validate()  # must not raise

    def test_decision_cache_size_must_be_positive_int(self):
        for bad in (0, -1, 1.5, True, "4096"):
            with pytest.raises(SimulationError):
                OverhaulConfig(decision_cache_size=bad)

    def test_decision_cache_size_one_accepted(self):
        assert OverhaulConfig(decision_cache_size=1).decision_cache_size == 1

    def test_shorter_delta_with_proportional_waitlist_valid(self):
        config = OverhaulConfig(
            interaction_threshold=from_seconds(1.0),
            shm_waitlist=from_millis(250),
        )
        assert config.shm_waitlist < config.interaction_threshold
