"""Unit tests for machine assembly (Machine / OverhaulSystem)."""

import pytest

from repro.core import Machine, OverhaulConfig, paper_config
from repro.kernel.credentials import ROOT
from repro.sim.time import from_millis, from_seconds


class TestBaselineMachine:
    def test_not_protected(self):
        machine = Machine.baseline()
        assert not machine.protected
        assert machine.monitor is None
        assert machine.kernel.permission_monitor is None
        assert machine.xserver.overhaul is None

    def test_tracking_disabled(self):
        assert not Machine.baseline().kernel.tracking.enabled


class TestProtectedMachine:
    def test_wiring(self):
        machine = Machine.with_overhaul()
        assert machine.protected
        assert machine.kernel.permission_monitor is machine.overhaul.monitor
        assert machine.xserver.overhaul is machine.overhaul.extension
        assert machine.kernel.tracking.enabled

    def test_display_manager_is_authenticated_root_task(self):
        machine = Machine.with_overhaul()
        assert machine.xserver_task.creds is ROOT
        assert machine.overhaul.channel.label == "display-manager"
        assert machine.overhaul.channel.owner is machine.xserver_task

    def test_config_applied_to_subsystems(self):
        config = OverhaulConfig(
            shm_waitlist=from_millis(200),
            alert_duration=from_seconds(5.0),
            ptrace_protection=False,
            shared_secret="my-dog-photo",
        )
        machine = Machine.with_overhaul(config)
        assert machine.kernel.shm.waitlist_duration == from_millis(200)
        assert machine.xserver.overlay.alert_duration == from_seconds(5.0)
        assert machine.xserver.overlay.shared_secret == "my-dog-photo"
        assert not machine.kernel.ptrace.protection_enabled

    def test_settle_exceeds_visibility_threshold(self):
        machine = Machine.with_overhaul()
        start = machine.now
        machine.settle()
        assert machine.now - start >= paper_config().window_visibility_threshold


class TestLaunch:
    def test_launch_connects_x_client(self):
        machine = Machine.baseline()
        task, client = machine.launch("/usr/bin/app", comm="app")
        assert client is not None
        assert client.pid == task.pid

    def test_launch_without_x(self):
        machine = Machine.baseline()
        task, client = machine.launch("/usr/bin/daemon", connect_x=False)
        assert client is None
        assert task.is_alive

    def test_launch_from_parent_inherits_interaction(self):
        machine = Machine.with_overhaul()
        parent, _ = machine.launch("/usr/bin/parent")
        parent.record_interaction(12345)
        child, _ = machine.launch("/usr/bin/child", parent=parent)
        assert child.interaction_ts == 12345

    def test_launch_from_init_has_no_interaction(self):
        from repro.sim.time import NEVER

        machine = Machine.with_overhaul()
        task, _ = machine.launch("/usr/bin/autostart")
        assert task.interaction_ts == NEVER

    def test_run_for_seconds(self):
        machine = Machine.baseline()
        machine.run_for_seconds(1.5)
        assert machine.now == from_seconds(1.5)
