"""Unit tests for the permission monitor's decision rule and messaging."""

import pytest

from repro.core import Machine, OverhaulConfig
from repro.core.notifications import MSG_INTERACTION, MSG_PERMISSION_QUERY
from repro.kernel.credentials import DEFAULT_USER
from repro.sim.time import from_seconds


@pytest.fixture
def rig():
    machine = Machine.with_overhaul()
    machine.settle()
    task = machine.kernel.sys_spawn(
        machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
    )
    return machine, machine.overhaul.monitor, task


class TestDecisionRule:
    def test_no_interaction_denied(self, rig):
        machine, monitor, task = rig
        response = monitor.decide(task, machine.now, "mic")
        assert not response.granted
        assert "no user interaction" in response.reason

    def test_within_threshold_granted(self, rig):
        machine, monitor, task = rig
        task.record_interaction(machine.now)
        response = monitor.decide(task, machine.now + from_seconds(1.9), "mic")
        assert response.granted
        assert response.interaction_age == from_seconds(1.9)

    def test_at_threshold_denied(self, rig):
        """The rule is strict: grant iff n < delta, so n == delta denies."""
        machine, monitor, task = rig
        task.record_interaction(machine.now)
        response = monitor.decide(task, machine.now + from_seconds(2.0), "mic")
        assert not response.granted

    def test_future_interaction_denied(self, rig):
        """An interaction recorded *after* the operation timestamp cannot
        justify it."""
        machine, monitor, task = rig
        task.record_interaction(machine.now + from_seconds(1.0))
        response = monitor.decide(task, machine.now, "mic")
        assert not response.granted
        assert "future" in response.reason

    def test_immediate_operation_granted(self, rig):
        machine, monitor, task = rig
        task.record_interaction(machine.now)
        assert monitor.decide(task, machine.now, "mic").granted

    def test_traced_task_denied_even_with_fresh_interaction(self, rig):
        machine, monitor, task = rig
        tracer = machine.kernel.sys_fork(task)  # child of task... need parent
        child = machine.kernel.sys_fork(task)
        machine.kernel.ptrace.attach(task, child)
        child.record_interaction(machine.now)
        response = monitor.decide(child, machine.now, "mic")
        assert not response.granted
        assert "traced" in response.reason

    def test_force_grant_overrides_but_runs_full_path(self):
        machine = Machine.with_overhaul(OverhaulConfig(force_grant=True))
        machine.settle()
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/bench", creds=DEFAULT_USER
        )
        response = machine.overhaul.monitor.decide(task, machine.now, "mic")
        assert response.granted
        assert "force_grant" in response.reason

    def test_decision_counters(self, rig):
        machine, monitor, task = rig
        task.record_interaction(machine.now)
        monitor.decide(task, machine.now, "a")
        monitor.decide(task, machine.now + from_seconds(10), "b")
        assert monitor.grant_count == 1
        assert monitor.deny_count == 1
        assert len(monitor.granted_decisions()) == 1
        assert len(monitor.denied_decisions()) == 1
        assert len(monitor.decisions_for_pid(task.pid)) == 2


class TestNetlinkHandlers:
    def test_interaction_notification_recorded_in_task_struct(self, rig):
        machine, monitor, task = rig
        channel = machine.overhaul.channel
        xorg = machine.xserver_task
        channel.send_to_kernel(
            xorg, MSG_INTERACTION, {"pid": task.pid, "timestamp": machine.now}
        )
        assert task.interaction_ts == machine.now
        assert monitor.notifications_received == 1

    def test_notification_for_dead_pid_ignored(self, rig):
        machine, monitor, task = rig
        machine.kernel.sys_exit(task)
        machine.overhaul.channel.send_to_kernel(
            machine.xserver_task, MSG_INTERACTION, {"pid": task.pid, "timestamp": 1}
        )
        assert monitor.notifications_received == 0

    def test_query_round_trip(self, rig):
        machine, monitor, task = rig
        task.record_interaction(machine.now)
        result = machine.overhaul.channel.send_to_kernel(
            machine.xserver_task,
            MSG_PERMISSION_QUERY,
            {"pid": task.pid, "operation": "paste", "timestamp": machine.now},
        )
        assert result["granted"]
        assert monitor.queries_answered == 1

    def test_query_for_unknown_pid_denied(self, rig):
        machine, monitor, _ = rig
        result = machine.overhaul.channel.send_to_kernel(
            machine.xserver_task,
            MSG_PERMISSION_QUERY,
            {"pid": 99999, "operation": "paste", "timestamp": machine.now},
        )
        assert not result["granted"]

    def test_query_audited_by_category(self, rig):
        from repro.kernel.audit import AuditCategory

        machine, monitor, task = rig
        for operation, category in (
            ("paste", AuditCategory.CLIPBOARD),
            ("copy", AuditCategory.CLIPBOARD),
            ("screen", AuditCategory.SCREEN),
        ):
            machine.overhaul.channel.send_to_kernel(
                machine.xserver_task,
                MSG_PERMISSION_QUERY,
                {"pid": task.pid, "operation": operation, "timestamp": machine.now},
            )
        assert len(machine.kernel.audit.records(category=AuditCategory.CLIPBOARD)) == 2
        assert len(machine.kernel.audit.records(category=AuditCategory.SCREEN)) == 1


class TestAlertRequests:
    def test_grant_alert_reaches_overlay(self, rig):
        machine, monitor, task = rig
        monitor.request_visual_alert(task, "microphone:/dev/mic0")
        alerts = machine.xserver.overlay.alerts_for_pid(task.pid)
        assert len(alerts) == 1
        assert "microphone" in alerts[0].operation

    def test_blocked_alert_message_differs(self, rig):
        machine, monitor, task = rig
        monitor.request_visual_alert(task, "camera:/dev/video0", blocked=True)
        alert = machine.xserver.overlay.alerts_for_pid(task.pid)[0]
        assert "BLOCKED" in alert.message

    def test_alert_requests_coalesce_within_duration(self, rig):
        machine, monitor, task = rig
        monitor.request_visual_alert(task, "mic")
        monitor.request_visual_alert(task, "mic")
        assert monitor.alerts_requested == 1
        machine.run_for(machine.overhaul.config.alert_duration + 1)
        monitor.request_visual_alert(task, "mic")
        assert monitor.alerts_requested == 2

    def test_alert_policy_flags_respected(self):
        machine = Machine.with_overhaul(
            OverhaulConfig(alert_on_device_grant=False, alert_on_denial=False)
        )
        machine.settle()
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
        )
        machine.overhaul.monitor.request_visual_alert(task, "mic")
        machine.overhaul.monitor.request_visual_alert(task, "mic", blocked=True)
        assert machine.xserver.overlay.total_shown == 0
