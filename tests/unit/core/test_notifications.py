"""Unit tests for the protocol message vocabulary."""

import pytest

from repro.core.notifications import (
    InteractionNotification,
    PermissionQuery,
    PermissionResponse,
    VisualAlertRequest,
)


class TestMessageObjects:
    def test_interaction_notification_immutable(self):
        notification = InteractionNotification(pid=10, timestamp=500)
        with pytest.raises(AttributeError):
            notification.pid = 11  # type: ignore[misc]

    def test_permission_response_payload(self):
        response = PermissionResponse(True, "within threshold", interaction_age=42)
        payload = response.as_payload
        assert payload == {
            "granted": True,
            "reason": "within threshold",
            "interaction_age": 42,
        }

    def test_permission_response_without_age(self):
        response = PermissionResponse(False, "no such process")
        assert response.as_payload["interaction_age"] is None

    def test_query_fields(self):
        query = PermissionQuery(pid=3, operation="paste", timestamp=9)
        assert (query.pid, query.operation, query.timestamp) == (3, "paste", 9)

    def test_alert_request_blocked_flag(self):
        request = VisualAlertRequest(pid=1, comm="spy", operation="cam", blocked=True)
        assert request.blocked

    def test_equality_semantics(self):
        """Frozen dataclasses compare by value -- used by test assertions
        and any deduplication logic."""
        assert InteractionNotification(1, 2) == InteractionNotification(1, 2)
        assert PermissionQuery(1, "copy", 3) != PermissionQuery(1, "paste", 3)
