"""Unit tests for the device model."""

import pytest

from repro.kernel.device import (
    Device,
    DeviceClass,
    DeviceInventory,
    standard_inventory,
)
from repro.kernel.errors import InvalidArgument, ResourceBusy


class TestDeviceClass:
    def test_sensitive_classes(self):
        assert DeviceClass.MICROPHONE.sensitive
        assert DeviceClass.CAMERA.sensitive

    def test_non_sensitive_classes(self):
        assert not DeviceClass.SPEAKER.sensitive
        assert not DeviceClass.DISK.sensitive
        assert not DeviceClass.KEYBOARD.sensitive


class TestDevice:
    def test_open_records_access(self):
        mic = Device("mic0", DeviceClass.MICROPHONE)
        mic.open(pid=42, comm="app", now=100)
        assert len(mic.access_log) == 1
        assert mic.access_log[0].pid == 42
        assert mic.access_log[0].timestamp == 100

    def test_stream_is_deterministic_and_progressive(self):
        a = Device("mic0", DeviceClass.MICROPHONE)
        b = Device("mic0b", DeviceClass.MICROPHONE)
        handle_a = a.open(1, "x", 0)
        first = handle_a.read(8)
        second = handle_a.read(8)
        assert first != second  # stream advances
        # Same serial ordering produces the same stream.
        assert len(first) == 8

    def test_release_idempotent(self):
        mic = Device("mic0", DeviceClass.MICROPHONE)
        handle = mic.open(1, "x", 0)
        handle.release()
        handle.release()
        assert mic.open_count == 0

    def test_read_after_release_rejected(self):
        mic = Device("mic0", DeviceClass.MICROPHONE)
        handle = mic.open(1, "x", 0)
        handle.release()
        with pytest.raises(InvalidArgument):
            handle.read(4)

    def test_negative_read_rejected(self):
        mic = Device("mic0", DeviceClass.MICROPHONE)
        handle = mic.open(1, "x", 0)
        with pytest.raises(InvalidArgument):
            handle.read(-1)

    def test_exclusive_device(self):
        cam = Device("video0", DeviceClass.CAMERA, exclusive=True)
        cam.open(1, "a", 0)
        with pytest.raises(ResourceBusy):
            cam.open(2, "b", 0)

    def test_exclusive_reopens_after_release(self):
        cam = Device("video0", DeviceClass.CAMERA, exclusive=True)
        handle = cam.open(1, "a", 0)
        handle.release()
        cam.open(2, "b", 0)  # no raise


class TestInventory:
    def test_standard_inventory_contents(self):
        inventory = standard_inventory()
        assert inventory.get("mic0").device_class is DeviceClass.MICROPHONE
        assert inventory.get("video0").device_class is DeviceClass.CAMERA
        assert inventory.get("missing") is None

    def test_by_class(self):
        inventory = standard_inventory()
        mics = inventory.by_class(DeviceClass.MICROPHONE)
        assert [d.name for d in mics] == ["mic0"]

    def test_duplicate_name_rejected(self):
        inventory = DeviceInventory()
        inventory.add(Device("mic0", DeviceClass.MICROPHONE))
        with pytest.raises(InvalidArgument):
            inventory.add(Device("mic0", DeviceClass.MICROPHONE))
