"""Unit tests for the secure channel and its memory-map authentication."""

import pytest

from repro.kernel.credentials import DEFAULT_USER, ROOT
from repro.kernel.errors import (
    InvalidArgument,
    OperationNotPermitted,
    PermissionDenied,
)
from repro.kernel.kernel import Kernel
from repro.kernel.netlink import DISPLAY_MANAGER_PATH


@pytest.fixture
def kernel(scheduler):
    return Kernel(scheduler)


def spawn_xorg(kernel):
    return kernel.sys_spawn(
        kernel.process_table.init, DISPLAY_MANAGER_PATH, comm="Xorg", creds=ROOT
    )


class TestAuthentication:
    def test_trusted_binary_connects(self, kernel):
        xorg = spawn_xorg(kernel)
        channel = kernel.netlink.connect(xorg)
        assert channel.label == "display-manager"

    def test_untrusted_binary_rejected(self, kernel):
        """The paper: the kernel 'ignore[s] communication attempts by other
        processes'."""
        malware = kernel.sys_spawn(
            kernel.process_table.init, "/usr/bin/malware", creds=DEFAULT_USER
        )
        with pytest.raises(PermissionDenied):
            kernel.netlink.connect(malware)
        assert malware.pid in kernel.netlink.rejected_connections

    def test_stale_trusted_path_rejected_if_not_root_owned(self, kernel):
        """Dropping a user-owned binary at the trusted path must not grant a
        channel: the check requires superuser ownership of the file."""
        kernel.filesystem.unlink(DISPLAY_MANAGER_PATH, ROOT)
        kernel.filesystem.create_file(
            DISPLAY_MANAGER_PATH, owner=DEFAULT_USER, mode=0o755, data=b"evil"
        )
        fake_xorg = kernel.sys_spawn(
            kernel.process_table.init, DISPLAY_MANAGER_PATH, comm="Xorg", creds=DEFAULT_USER
        )
        with pytest.raises(PermissionDenied):
            kernel.netlink.connect(fake_xorg)

    def test_introspection_examines_executable_mapping(self, kernel):
        """Authentication reads the address space, not a self-reported name:
        a process *claiming* comm='Xorg' but mapping another binary fails."""
        liar = kernel.sys_spawn(
            kernel.process_table.init, "/usr/bin/other", comm="Xorg", creds=ROOT
        )
        with pytest.raises(PermissionDenied):
            kernel.netlink.connect(liar)

    def test_second_live_channel_for_same_label_rejected(self, kernel):
        first = spawn_xorg(kernel)
        kernel.netlink.connect(first)
        second = spawn_xorg(kernel)
        with pytest.raises(OperationNotPermitted):
            kernel.netlink.connect(second)

    def test_channel_replaceable_after_owner_exit(self, kernel):
        first = spawn_xorg(kernel)
        kernel.netlink.connect(first)
        kernel.sys_exit(first)
        second = spawn_xorg(kernel)
        channel = kernel.netlink.connect(second)
        assert channel.owner is second


class TestChannelUse:
    def test_only_owner_can_send(self, kernel):
        xorg = spawn_xorg(kernel)
        channel = kernel.netlink.connect(xorg)
        other = kernel.sys_spawn(kernel.process_table.init, "/usr/bin/other")
        with pytest.raises(OperationNotPermitted):
            channel.send_to_kernel(other, "anything", {})

    def test_unknown_message_type_rejected(self, kernel):
        xorg = spawn_xorg(kernel)
        channel = kernel.netlink.connect(xorg)
        with pytest.raises(InvalidArgument):
            channel.send_to_kernel(xorg, "no.such.handler", {})

    def test_kernel_to_userspace_delivery(self, kernel):
        xorg = spawn_xorg(kernel)
        channel = kernel.netlink.connect(xorg)
        received = []
        channel.userspace_receiver = received.append
        channel.send_to_userspace("test.message", {"x": 1})
        assert len(received) == 1
        assert received[0].msg_type == "test.message"
        assert received[0].sender_pid is None

    def test_handler_result_returned_to_sender(self, kernel):
        kernel.netlink.register_kernel_handler(
            "test.echo", lambda ch, msg: {"echo": msg.payload["v"]}
        )
        xorg = spawn_xorg(kernel)
        channel = kernel.netlink.connect(xorg)
        assert channel.send_to_kernel(xorg, "test.echo", {"v": 7}) == {"echo": 7}

    def test_closed_channel_unusable(self, kernel):
        xorg = spawn_xorg(kernel)
        channel = kernel.netlink.connect(xorg)
        channel.close()
        with pytest.raises(InvalidArgument):
            channel.send_to_kernel(xorg, "x", {})
        assert kernel.netlink.channel_for("display-manager") is None

    def test_duplicate_handler_registration_rejected(self, kernel):
        kernel.netlink.register_kernel_handler("test.dup", lambda ch, m: None)
        with pytest.raises(InvalidArgument):
            kernel.netlink.register_kernel_handler("test.dup", lambda ch, m: None)
