"""Negative tests for the shared-memory wait-list re-arm machinery.

The paper's scheme: after a fault restores an area's permissions, the
``vm_area_struct`` sits on a wait list and is re-revoked once, 500 ms later.
The subtle properties worth locking down:

- re-revocation fires **exactly once** per open window, no matter how many
  accesses happen inside it (accesses during the window don't fault, so
  they cannot extend or multiply the timer -- the paper's documented
  coverage gap);
- a new fault after the window closes arms a new, single re-revocation;
- detach cancels a pending re-arm (no timer fires on an unmapped area).
"""

import pytest

from repro.core import Machine
from repro.sim.time import from_millis


@pytest.fixture
def rig():
    machine = Machine.with_overhaul()
    writer, _ = machine.launch("/usr/bin/shmwriter", comm="shmwriter", connect_x=False)
    segment = machine.kernel.shm.shmget(0xABCD, num_pages=2)
    area = machine.kernel.shm.attach(writer, segment)
    return machine, writer, segment, area


class TestSingleRearmPerWindow:
    def test_one_fault_one_rearm(self, rig):
        machine, writer, _, area = rig
        shm = machine.kernel.shm
        shm.write(writer, area, 0, b"x")
        assert shm.total_faults == 1
        assert shm.total_rearms == 0
        machine.run_for(from_millis(600))
        assert shm.total_rearms == 1
        assert area.protection_revoked

    def test_accesses_inside_window_do_not_refault_or_extend(self, rig):
        machine, writer, _, area = rig
        shm = machine.kernel.shm
        shm.write(writer, area, 0, b"x")  # fault; window opens at t=0
        for step in range(4):
            machine.run_for(from_millis(100))  # t = 100..400 ms
            shm.write(writer, area, 0, b"y")  # open window: no fault
        assert shm.total_faults == 1
        # The re-revocation still fires at the *original* 500 ms deadline:
        # the accesses at 100-400 ms did not push it out.
        machine.run_for(from_millis(150))  # t = 550 ms
        assert shm.total_rearms == 1
        assert area.protection_revoked

    def test_next_window_gets_its_own_single_rearm(self, rig):
        machine, writer, _, area = rig
        shm = machine.kernel.shm
        shm.write(writer, area, 0, b"x")
        machine.run_for(from_millis(600))
        shm.write(writer, area, 0, b"y")  # second fault, second window
        assert shm.total_faults == 2
        machine.run_for(from_millis(600))
        assert shm.total_rearms == 2

    def test_refault_before_expiry_replaces_timer_not_stacks_it(self, rig):
        """A fault while a timer is pending cancels and replaces it -- two
        overlapping wait-list entries for one area would re-revoke twice."""
        machine, writer, _, area = rig
        shm = machine.kernel.shm
        shm.write(writer, area, 0, b"x")  # fault at t=0, rearm due 500 ms
        machine.run_for(from_millis(600))  # rearm #1 fires
        shm.write(writer, area, 0, b"y")  # fault at 600 ms, rearm due 1100
        machine.run_for(from_millis(50))
        # Force a second fault while the timer is pending by re-revoking
        # through a fresh protection cycle: simulate with direct revoke.
        area.revoke_protection()
        shm.write(writer, area, 0, b"z")  # fault at 650 ms, timer replaced
        assert shm.total_faults == 3
        machine.run_for(from_millis(1000))
        # Exactly one more rearm fired (at 1150 ms), not two.
        assert shm.total_rearms == 2


class TestDetachCancelsRearm:
    def test_detach_with_pending_timer_never_fires(self, rig):
        machine, writer, _, area = rig
        shm = machine.kernel.shm
        shm.write(writer, area, 0, b"x")
        assert area.waitlist_event is not None
        shm.detach(writer, area)
        assert area.waitlist_event is None
        machine.run_for(from_millis(1000))
        assert shm.total_rearms == 0

    def test_counters_visible_in_cross_layer_snapshot(self, rig):
        from repro.obs import collect_counters

        machine, writer, _, area = rig
        shm = machine.kernel.shm
        shm.write(writer, area, 0, b"x")
        machine.run_for(from_millis(600))
        counters = collect_counters(machine)
        assert counters.get("shm.faults") == shm.total_faults == 1
        assert counters.get("shm.rearms") == shm.total_rearms == 1
        assert counters.get("shm.accesses") == shm.total_accesses
