"""Unit tests for fork/exec/exit/wait and P1 inheritance."""

import pytest

from repro.kernel.credentials import DEFAULT_USER, ROOT
from repro.kernel.errors import NoSuchProcess
from repro.kernel.process_table import INIT_PID, ProcessTable
from repro.kernel.task import TaskState
from repro.sim.time import NEVER


@pytest.fixture
def table(scheduler):
    return ProcessTable(scheduler)


class TestCreation:
    def test_init_exists(self, table):
        assert table.init.pid == INIT_PID
        assert table.init.creds is ROOT

    def test_fork_allocates_new_pid(self, table):
        child = table.fork(table.init)
        assert child.pid != table.init.pid
        assert child.parent is table.init
        assert child in table.init.children

    def test_fork_copies_identity(self, table):
        parent = table.spawn(table.init, "/usr/bin/app", creds=DEFAULT_USER)
        child = table.fork(parent)
        assert child.comm == parent.comm
        assert child.creds == parent.creds
        assert child.exe_path == parent.exe_path

    def test_fork_inherits_interaction_timestamp_p1(self, table):
        """The P1 policy: task_struct duplication carries the timestamp."""
        parent = table.spawn(table.init, "/usr/bin/app")
        parent.record_interaction(123_456)
        child = table.fork(parent)
        assert child.interaction_ts == 123_456

    def test_fork_without_interaction_inherits_never(self, table):
        parent = table.spawn(table.init, "/usr/bin/app")
        child = table.fork(parent)
        assert child.interaction_ts == NEVER

    def test_child_timestamp_independent_after_fork(self, table):
        parent = table.spawn(table.init, "/usr/bin/app")
        parent.record_interaction(100)
        child = table.fork(parent)
        parent.record_interaction(200)
        assert child.interaction_ts == 100

    def test_fork_from_dead_parent_rejected(self, table):
        parent = table.spawn(table.init, "/usr/bin/app")
        table.exit(parent)
        with pytest.raises(NoSuchProcess):
            table.fork(parent)


class TestExec:
    def test_exec_replaces_image(self, table):
        task = table.spawn(table.init, "/usr/bin/old")
        table.exec(task, "/usr/bin/new")
        assert task.exe_path == "/usr/bin/new"
        assert task.comm == "new"

    def test_exec_preserves_interaction_timestamp(self, table):
        """exec keeps the task_struct, hence the interaction state --
        required for launcher/shell workflows (Figure 3)."""
        task = table.spawn(table.init, "/usr/bin/old")
        task.record_interaction(777)
        table.exec(task, "/usr/bin/new")
        assert task.interaction_ts == 777

    def test_exec_maps_new_executable(self, table):
        task = table.spawn(table.init, "/usr/bin/old")
        table.exec(task, "/usr/bin/new")
        mapping = task.address_space.executable_mapping()
        assert mapping is not None
        assert mapping.backing_path == "/usr/bin/new"

    def test_exec_relative_path_rejected(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        from repro.kernel.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            table.exec(task, "relative/path")


class TestExitAndWait:
    def test_exit_zombifies(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        table.exit(task, code=3)
        assert task.state is TaskState.ZOMBIE
        assert task.exit_code == 3
        assert not task.is_alive

    def test_wait_reaps_zombie(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        table.exit(task)
        reaped = table.wait(table.init)
        assert reaped is task
        assert task.state is TaskState.DEAD

    def test_wait_with_no_zombies(self, table):
        assert table.wait(table.init) is None

    def test_orphans_reparented_to_init(self, table):
        parent = table.spawn(table.init, "/usr/bin/parent")
        child = table.fork(parent)
        table.exit(parent)
        assert child.parent is table.init

    def test_exit_closes_fds(self, table):
        from repro.kernel.vfs import OpenFile, OpenMode, RegularFile

        task = table.spawn(table.init, "/usr/bin/app")
        open_file = OpenFile("/x", RegularFile(ROOT, 0o644, 0), OpenMode.READ, task.pid)
        task.install_fd(open_file)
        table.exit(task)
        assert open_file.closed

    def test_double_exit_rejected(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        table.exit(task)
        with pytest.raises(NoSuchProcess):
            table.exit(task)

    def test_exit_hooks_run(self, table):
        seen = []
        table.on_exit(lambda t: seen.append(t.pid))
        task = table.spawn(table.init, "/usr/bin/app")
        table.exit(task)
        assert seen == [task.pid]

    def test_reap_all(self, table):
        children = [table.spawn(table.init, f"/usr/bin/a{i}") for i in range(3)]
        for child in children:
            table.exit(child)
        assert set(t.pid for t in table.reap_all(table.init)) == {c.pid for c in children}


class TestLookup:
    def test_get_live(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        assert table.get_live(task.pid) is task

    def test_get_unknown_pid(self, table):
        with pytest.raises(NoSuchProcess):
            table.get(99999)

    def test_get_live_rejects_zombie(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        table.exit(task)
        with pytest.raises(NoSuchProcess):
            table.get_live(task.pid)

    def test_contains_and_len(self, table):
        task = table.spawn(table.init, "/usr/bin/app")
        assert task.pid in table
        before = len(table)
        table.exit(task)
        table.wait(table.init)
        assert task.pid not in table
        assert len(table) == before - 1
