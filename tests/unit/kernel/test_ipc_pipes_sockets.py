"""Unit tests for pipes/FIFOs and UNIX domain sockets (with P2)."""

import pytest

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import (
    BrokenPipe,
    ConnectionRefused,
    FileExists,
    InvalidArgument,
    WouldBlock,
)
from repro.kernel.ipc.base import TrackingPolicy
from repro.kernel.ipc.pipe import PipeChannel, PipeSubsystem
from repro.kernel.ipc.unix_socket import UnixSocketSubsystem
from repro.kernel.task import Task
from repro.kernel.vfs import Filesystem


def make_task(pid):
    return Task(pid, None, f"t{pid}", DEFAULT_USER, "/usr/bin/t", 0)


@pytest.fixture
def policy():
    return TrackingPolicy(enabled=True)


class TestPipes:
    def test_write_then_read(self, policy):
        pipe = PipeChannel(policy)
        a, b = make_task(1), make_task(2)
        pipe.write(a, b"hello")
        assert pipe.read(b, 5) == b"hello"

    def test_partial_reads(self, policy):
        pipe = PipeChannel(policy)
        a, b = make_task(1), make_task(2)
        pipe.write(a, b"abcdef")
        assert pipe.read(b, 2) == b"ab"
        assert pipe.read(b, 10) == b"cdef"

    def test_p2_propagation_through_pipe(self, policy):
        pipe = PipeChannel(policy)
        a, b = make_task(1), make_task(2)
        a.record_interaction(1234)
        pipe.write(a, b"x")
        pipe.read(b, 1)
        assert b.interaction_ts == 1234

    def test_empty_read_blocks(self, policy):
        pipe = PipeChannel(policy)
        with pytest.raises(WouldBlock):
            pipe.read(make_task(1), 1)

    def test_eof_after_writer_close(self, policy):
        pipe = PipeChannel(policy)
        pipe.write(make_task(1), b"z")
        pipe.close_write()
        reader = make_task(2)
        assert pipe.read(reader, 10) == b"z"
        assert pipe.read(reader, 10) == b""

    def test_broken_pipe(self, policy):
        pipe = PipeChannel(policy)
        pipe.close_read()
        with pytest.raises(BrokenPipe):
            pipe.write(make_task(1), b"x")

    def test_capacity_limit(self, policy):
        pipe = PipeChannel(policy, capacity=4)
        pipe.write(make_task(1), b"1234")
        with pytest.raises(WouldBlock):
            pipe.write(make_task(1), b"5")


class TestFifos:
    def test_fifo_shared_by_path(self, policy):
        fs = Filesystem()
        fs.makedirs("/tmp")
        fs.create_fifo("/tmp/fifo", owner=DEFAULT_USER)
        pipes = PipeSubsystem(policy, fs)
        writer_view = pipes.open_fifo("/tmp/fifo")
        reader_view = pipes.open_fifo("/tmp/fifo")
        assert writer_view is reader_view  # same kernel object

    def test_fifo_propagates_timestamps(self, policy):
        fs = Filesystem()
        fs.makedirs("/tmp")
        fs.create_fifo("/tmp/fifo", owner=DEFAULT_USER)
        pipes = PipeSubsystem(policy, fs)
        channel = pipes.open_fifo("/tmp/fifo")
        a, b = make_task(1), make_task(2)
        a.record_interaction(42)
        channel.write(a, b"cmd")
        channel.read(b, 3)
        assert b.interaction_ts == 42

    def test_open_fifo_on_regular_file_rejected(self, policy):
        fs = Filesystem()
        fs.makedirs("/tmp")
        fs.create_file("/tmp/notafifo", owner=DEFAULT_USER)
        pipes = PipeSubsystem(policy, fs)
        with pytest.raises(InvalidArgument):
            pipes.open_fifo("/tmp/notafifo")


class TestUnixSockets:
    def test_connect_and_exchange(self, policy):
        sockets = UnixSocketSubsystem(policy)
        server, client = make_task(1), make_task(2)
        sockets.listen(server, "/tmp/sock")
        conn = sockets.connect(client, "/tmp/sock")
        accepted = sockets.accept(server, "/tmp/sock")
        assert accepted is conn
        conn.send(client, b"ping")
        assert conn.receive(server) == b"ping"
        conn.send(server, b"pong")
        assert conn.receive(client) == b"pong"

    def test_p2_propagation_both_directions(self, policy):
        sockets = UnixSocketSubsystem(policy)
        server, client = make_task(1), make_task(2)
        sockets.listen(server, "/tmp/sock")
        conn = sockets.connect(client, "/tmp/sock")
        client.record_interaction(11)
        conn.send(client, b"a")
        conn.receive(server)
        assert server.interaction_ts == 11
        server.record_interaction(99)
        conn.send(server, b"b")
        conn.receive(client)
        assert client.interaction_ts == 99

    def test_connect_refused_without_listener(self, policy):
        sockets = UnixSocketSubsystem(policy)
        with pytest.raises(ConnectionRefused):
            sockets.connect(make_task(1), "/tmp/nobody")

    def test_double_bind_rejected(self, policy):
        sockets = UnixSocketSubsystem(policy)
        sockets.listen(make_task(1), "/tmp/sock")
        with pytest.raises(FileExists):
            sockets.listen(make_task(2), "/tmp/sock")

    def test_non_endpoint_cannot_send_or_receive(self, policy):
        sockets = UnixSocketSubsystem(policy)
        left, right, outsider = make_task(1), make_task(2), make_task(3)
        conn = sockets.socketpair(left, right)
        with pytest.raises(InvalidArgument):
            conn.send(outsider, b"x")
        with pytest.raises(InvalidArgument):
            conn.receive(outsider)

    def test_receive_empty_blocks(self, policy):
        sockets = UnixSocketSubsystem(policy)
        conn = sockets.socketpair(make_task(1), make_task(2))
        with pytest.raises(WouldBlock):
            conn.receive(make_task(1))

    def test_closed_connection_eof_and_epipe(self, policy):
        sockets = UnixSocketSubsystem(policy)
        left, right = make_task(1), make_task(2)
        conn = sockets.socketpair(left, right)
        conn.close()
        assert conn.receive(left) == b""
        with pytest.raises(BrokenPipe):
            conn.send(left, b"x")

    def test_unlisten(self, policy):
        sockets = UnixSocketSubsystem(policy)
        server = make_task(1)
        sockets.listen(server, "/tmp/sock")
        sockets.unlisten(server, "/tmp/sock")
        with pytest.raises(ConnectionRefused):
            sockets.connect(make_task(2), "/tmp/sock")

    def test_dbus_style_relay_propagates_transitively(self, policy):
        """Higher-level IPC (D-Bus) on these sockets inherits P2: a message
        relayed A -> daemon -> B carries A's timestamp to B."""
        sockets = UnixSocketSubsystem(policy)
        a, daemon, b = make_task(1), make_task(2), make_task(3)
        conn_a = sockets.socketpair(a, daemon)
        conn_b = sockets.socketpair(daemon, b)
        a.record_interaction(555)
        conn_a.send(a, b"broadcast")
        payload = conn_a.receive(daemon)
        conn_b.send(daemon, payload)
        conn_b.receive(b)
        assert b.interaction_ts == 555
