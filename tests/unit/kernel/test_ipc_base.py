"""Unit tests for the P2 propagation primitive (InteractionStamp)."""

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task
from repro.sim.time import NEVER


def make_task(pid=1):
    return Task(pid, None, "t", DEFAULT_USER, "/usr/bin/t", 0)


class TestStampProtocol:
    def test_fresh_stamp_is_expired(self):
        """Step (1): new IPC resources embed an expired timestamp."""
        stamp = InteractionStamp(TrackingPolicy(enabled=True))
        assert stamp.timestamp == NEVER

    def test_embed_from_sender(self):
        """Step (2): sender's timestamp is embedded."""
        policy = TrackingPolicy(enabled=True)
        stamp = InteractionStamp(policy)
        sender = make_task()
        sender.record_interaction(500)
        assert stamp.embed_from(sender)
        assert stamp.timestamp == 500
        assert policy.stamps_embedded == 1

    def test_embed_keeps_more_recent_timestamp(self):
        """Step (2): '...unless the structure already contains a more
        recent timestamp.'"""
        policy = TrackingPolicy(enabled=True)
        stamp = InteractionStamp(policy)
        fresh, stale = make_task(1), make_task(2)
        fresh.record_interaction(900)
        stale.record_interaction(300)
        stamp.embed_from(fresh)
        assert not stamp.embed_from(stale)
        assert stamp.timestamp == 900

    def test_adopt_to_receiver(self):
        """Step (3): receiver adopts a newer embedded timestamp."""
        policy = TrackingPolicy(enabled=True)
        stamp = InteractionStamp(policy)
        sender, receiver = make_task(1), make_task(2)
        sender.record_interaction(700)
        stamp.embed_from(sender)
        assert stamp.adopt_to(receiver)
        assert receiver.interaction_ts == 700
        assert policy.stamps_adopted == 1

    def test_adopt_does_not_regress_receiver(self):
        policy = TrackingPolicy(enabled=True)
        stamp = InteractionStamp(policy)
        sender, receiver = make_task(1), make_task(2)
        sender.record_interaction(100)
        receiver.record_interaction(999)
        stamp.embed_from(sender)
        assert not stamp.adopt_to(receiver)
        assert receiver.interaction_ts == 999

    def test_disabled_policy_is_inert(self):
        """Baseline kernel: no embedding, no adoption, no counters."""
        policy = TrackingPolicy(enabled=False)
        stamp = InteractionStamp(policy)
        sender, receiver = make_task(1), make_task(2)
        sender.record_interaction(700)
        assert not stamp.embed_from(sender)
        assert stamp.timestamp == NEVER
        assert not stamp.adopt_to(receiver)
        assert receiver.interaction_ts == NEVER
        assert policy.stamps_embedded == 0

    def test_counters_reset(self):
        policy = TrackingPolicy(enabled=True)
        stamp = InteractionStamp(policy)
        sender = make_task()
        sender.record_interaction(1)
        stamp.embed_from(sender)
        policy.reset_counters()
        assert policy.stamps_embedded == 0
        assert policy.stamps_adopted == 0
