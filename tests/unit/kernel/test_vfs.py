"""Unit tests for the virtual filesystem."""

import pytest

from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials
from repro.kernel.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.kernel.vfs import FileKind, Filesystem, OpenFile, OpenMode, split_path


@pytest.fixture
def fs():
    filesystem = Filesystem()
    filesystem.makedirs("/home/user", owner=DEFAULT_USER)
    return filesystem


class TestPathResolution:
    def test_resolve_root_children(self, fs):
        assert fs.resolve("/home").kind is FileKind.DIRECTORY

    def test_resolve_nested(self, fs):
        fs.create_file("/home/user/a.txt", owner=DEFAULT_USER)
        assert fs.resolve("/home/user/a.txt").kind is FileKind.REGULAR

    def test_missing_path(self, fs):
        with pytest.raises(FileNotFound):
            fs.resolve("/no/such/path")

    def test_file_as_directory_component(self, fs):
        fs.create_file("/home/user/f", owner=DEFAULT_USER)
        with pytest.raises(NotADirectory):
            fs.resolve("/home/user/f/deeper")

    def test_relative_path_rejected(self, fs):
        with pytest.raises(InvalidArgument):
            fs.resolve("home/user")

    def test_split_path_ignores_empty_components(self):
        assert split_path("//home///user/") == ["home", "user"]

    def test_exists(self, fs):
        assert fs.exists("/home/user")
        assert not fs.exists("/home/nobody")


class TestCreation:
    def test_create_file_with_data(self, fs):
        fs.create_file("/home/user/x", owner=DEFAULT_USER, data=b"abc")
        assert fs.stat("/home/user/x").size == 3

    def test_duplicate_create_rejected(self, fs):
        fs.create_file("/home/user/x", owner=DEFAULT_USER)
        with pytest.raises(FileExists):
            fs.create_file("/home/user/x", owner=DEFAULT_USER)

    def test_makedirs_idempotent_prefix(self, fs):
        fs.makedirs("/a/b/c")
        fs.makedirs("/a/b/c/d")
        assert fs.exists("/a/b/c/d")

    def test_mkdir_in_missing_parent(self, fs):
        with pytest.raises(FileNotFound):
            fs.mkdir("/ghost/dir")

    def test_create_fifo(self, fs):
        node = fs.create_fifo("/home/user/pipe", owner=DEFAULT_USER)
        assert node.kind is FileKind.FIFO


class TestDeletion:
    def test_unlink(self, fs):
        fs.create_file("/home/user/x", owner=DEFAULT_USER)
        fs.unlink("/home/user/x", DEFAULT_USER)
        assert not fs.exists("/home/user/x")

    def test_unlink_missing(self, fs):
        with pytest.raises(FileNotFound):
            fs.unlink("/home/user/ghost", DEFAULT_USER)

    def test_unlink_directory_rejected(self, fs):
        with pytest.raises(IsADirectory):
            fs.unlink("/home/user", ROOT)

    def test_unlink_requires_parent_write(self, fs):
        fs.create_file("/home/user/x", owner=DEFAULT_USER)
        stranger = Credentials(2000, 2000)
        with pytest.raises(PermissionDenied):
            fs.unlink("/home/user/x", stranger)

    def test_rmdir_empty(self, fs):
        fs.mkdir("/home/user/d", owner=DEFAULT_USER)
        fs.rmdir("/home/user/d", DEFAULT_USER)
        assert not fs.exists("/home/user/d")

    def test_rmdir_non_empty(self, fs):
        fs.mkdir("/home/user/d", owner=DEFAULT_USER)
        fs.create_file("/home/user/d/f", owner=DEFAULT_USER)
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/home/user/d", DEFAULT_USER)


class TestOpenFileIO:
    def test_write_then_read(self, fs):
        inode = fs.create_file("/home/user/x", owner=DEFAULT_USER)
        writer = OpenFile("/home/user/x", inode, OpenMode.WRITE, 1)
        writer.write(b"hello world")
        reader = OpenFile("/home/user/x", inode, OpenMode.READ, 1)
        assert reader.read(5) == b"hello"
        assert reader.read(100) == b" world"
        assert reader.read(10) == b""

    def test_read_requires_read_mode(self, fs):
        inode = fs.create_file("/home/user/x", owner=DEFAULT_USER)
        writer = OpenFile("/home/user/x", inode, OpenMode.WRITE, 1)
        with pytest.raises(PermissionDenied):
            writer.read(1)

    def test_write_requires_write_mode(self, fs):
        inode = fs.create_file("/home/user/x", owner=DEFAULT_USER)
        reader = OpenFile("/home/user/x", inode, OpenMode.READ, 1)
        with pytest.raises(PermissionDenied):
            reader.write(b"x")

    def test_closed_file_unusable(self, fs):
        from repro.kernel.errors import BadFileDescriptor

        inode = fs.create_file("/home/user/x", owner=DEFAULT_USER)
        handle = OpenFile("/home/user/x", inode, OpenMode.READ, 1)
        handle.close()
        with pytest.raises(BadFileDescriptor):
            handle.read(1)

    def test_overwrite_extends(self, fs):
        inode = fs.create_file("/home/user/x", owner=DEFAULT_USER, data=b"ab")
        writer = OpenFile("/home/user/x", inode, OpenMode.WRITE, 1)
        writer.offset = 1
        writer.write(b"XYZ")
        assert bytes(inode.data) == b"aXYZ"


class TestMetadata:
    def test_stat_fields(self, fs):
        fs.create_file("/home/user/x", owner=DEFAULT_USER, mode=0o640, now=42, data=b"ab")
        stat = fs.stat("/home/user/x")
        assert stat.kind is FileKind.REGULAR
        assert stat.owner == DEFAULT_USER
        assert stat.mode == 0o640
        assert stat.size == 2
        assert stat.created_at == 42

    def test_listdir_sorted(self, fs):
        for name in ("zeta", "alpha", "mid"):
            fs.create_file(f"/home/user/{name}", owner=DEFAULT_USER)
        assert fs.listdir("/home/user") == ["alpha", "mid", "zeta"]

    def test_listdir_on_file_rejected(self, fs):
        fs.create_file("/home/user/x", owner=DEFAULT_USER)
        with pytest.raises(NotADirectory):
            fs.listdir("/home/user/x")

    def test_walk_count(self):
        fs = Filesystem()
        base = fs.walk_count()
        fs.makedirs("/a/b")
        fs.create_file("/a/b/f", owner=ROOT)
        assert fs.walk_count() == base + 3
