"""Unit tests for virtual memory areas and protections."""

import pytest

from repro.kernel.errors import InvalidArgument, SegmentationFault
from repro.kernel.mm import PAGE_SIZE, AddressSpace, PageProtection, VMArea


class TestVMArea:
    def test_basic_geometry(self):
        area = VMArea(start_page=0x1000, num_pages=4, prot=PageProtection.rw())
        assert area.end_page == 0x1004
        assert area.size_bytes == 4 * PAGE_SIZE
        assert area.contains_page(0x1003)
        assert not area.contains_page(0x1004)

    def test_zero_pages_rejected(self):
        with pytest.raises(InvalidArgument):
            VMArea(0, 0, PageProtection.rw())

    def test_revoke_and_restore(self):
        area = VMArea(0, 1, PageProtection.rw(), shared=True)
        area.revoke_protection()
        assert area.protection_revoked
        assert not area.permits(PageProtection.READ)
        area.restore_protection()
        assert not area.protection_revoked
        assert area.permits(PageProtection.rw())

    def test_double_revoke_preserves_original_prot(self):
        area = VMArea(0, 1, PageProtection.rw())
        area.revoke_protection()
        area.revoke_protection()  # must not save NONE as "original"
        area.restore_protection()
        assert area.permits(PageProtection.rw())

    def test_permits_subset_semantics(self):
        area = VMArea(0, 1, PageProtection.READ)
        assert area.permits(PageProtection.READ)
        assert not area.permits(PageProtection.WRITE)
        assert not area.permits(PageProtection.rw())


class TestAddressSpace:
    def test_map_and_find(self):
        space = AddressSpace()
        area = space.map_area(4, PageProtection.rw())
        assert space.find_area(area.start_page) is area
        assert space.find_area(area.end_page - 1) is area

    def test_find_unmapped_faults(self):
        space = AddressSpace()
        with pytest.raises(SegmentationFault):
            space.find_area(0x1)

    def test_guard_pages_between_mappings(self):
        space = AddressSpace()
        first = space.map_area(2, PageProtection.rw())
        second = space.map_area(2, PageProtection.rw())
        assert second.start_page > first.end_page  # gap exists
        with pytest.raises(SegmentationFault):
            space.find_area(first.end_page)

    def test_unmap(self):
        space = AddressSpace()
        area = space.map_area(1, PageProtection.rw())
        space.unmap(area)
        with pytest.raises(SegmentationFault):
            space.find_area(area.start_page)

    def test_unmap_foreign_area_rejected(self):
        space = AddressSpace()
        foreign = VMArea(0x9999, 1, PageProtection.rw())
        with pytest.raises(InvalidArgument):
            space.unmap(foreign)

    def test_executable_mapping_lookup(self):
        space = AddressSpace()
        space.map_area(8, PageProtection.rw())  # heap-ish, not executable
        exe = space.map_executable("/usr/bin/app")
        assert space.executable_mapping() is exe
        assert exe.backing_path == "/usr/bin/app"

    def test_executable_mapping_none_without_exe(self):
        assert AddressSpace().executable_mapping() is None

    def test_shared_areas_listing(self):
        space = AddressSpace()
        space.map_area(1, PageProtection.rw())
        shared = space.map_area(1, PageProtection.rw(), shared=True)
        assert space.shared_areas() == [shared]


class TestClone:
    def test_clone_copies_layout(self):
        space = AddressSpace()
        space.map_executable("/usr/bin/app")
        space.map_area(4, PageProtection.rw(), shared=True, backing_object=object())
        child = space.clone()
        assert len(child.areas) == 2
        assert child.executable_mapping().backing_path == "/usr/bin/app"

    def test_clone_aliases_shared_backing(self):
        space = AddressSpace()
        backing = object()
        space.map_area(1, PageProtection.rw(), shared=True, backing_object=backing)
        child = space.clone()
        assert child.shared_areas()[0].backing_object is backing

    def test_clone_resets_interception_state(self):
        """A child's shared mapping starts un-revoked (the subsystem re-arms
        it on attach in the child); revocation state is per-mapping."""
        space = AddressSpace()
        area = space.map_area(1, PageProtection.rw(), shared=True)
        area.revoke_protection()
        child = space.clone()
        assert not child.shared_areas()[0].protection_revoked
        assert child.shared_areas()[0].permits(PageProtection.rw())
