"""Unit tests for /dev management and the udev-helper round trip."""

import pytest

from repro.kernel.device import Device, DeviceClass
from repro.kernel.errors import NoDevice, OperationNotPermitted
from repro.kernel.kernel import Kernel


@pytest.fixture
def kernel(scheduler):
    return Kernel(scheduler)


class TestBootPopulation:
    def test_nodes_created(self, kernel):
        assert kernel.filesystem.exists("/dev/mic0")
        assert kernel.filesystem.exists("/dev/video0")

    def test_sensitive_map_populated_via_helper(self, kernel):
        """The map is filled by the helper's netlink messages, not directly."""
        assert kernel.devfs.sensitive_map.is_sensitive("/dev/mic0")
        assert kernel.devfs.sensitive_map.is_sensitive("/dev/video0")
        assert not kernel.devfs.sensitive_map.is_sensitive("/dev/audio-out0")
        assert kernel.udev_helper.updates_sent >= 4

    def test_device_path_lookup(self, kernel):
        assert kernel.device_path("mic0") == "/dev/mic0"
        with pytest.raises(NoDevice):
            kernel.device_path("nonexistent")

    def test_sensitive_paths_listing(self, kernel):
        assert kernel.devfs.sensitive_map.sensitive_paths() == ["/dev/mic0", "/dev/video0"]


class TestHotplug:
    def test_dynamic_names_increment(self, kernel):
        second_cam = Device("video-extra", DeviceClass.CAMERA)
        path = kernel.devfs.add_device(second_cam, kernel.now)
        assert path == "/dev/video1"
        assert kernel.devfs.sensitive_map.is_sensitive(path)

    def test_remove_device_clears_map(self, kernel):
        kernel.devfs.remove_device("mic0", kernel.now)
        assert not kernel.filesystem.exists("/dev/mic0")
        assert not kernel.devfs.sensitive_map.is_sensitive("/dev/mic0")

    def test_remove_unknown_device(self, kernel):
        with pytest.raises(NoDevice):
            kernel.devfs.remove_device("ghost", kernel.now)


class TestMapAuthority:
    def test_display_manager_channel_cannot_update_map(self, kernel):
        """Only the udev helper's channel may push device-map updates."""
        from repro.kernel.credentials import ROOT
        from repro.kernel.devfs import MSG_DEVICE_MAP_UPDATE
        from repro.kernel.netlink import DISPLAY_MANAGER_PATH

        xorg = kernel.sys_spawn(kernel.process_table.init, DISPLAY_MANAGER_PATH,
                                comm="Xorg", creds=ROOT)
        channel = kernel.netlink.connect(xorg)
        with pytest.raises(OperationNotPermitted):
            channel.send_to_kernel(
                xorg,
                MSG_DEVICE_MAP_UPDATE,
                {"action": "remove", "path": "/dev/mic0",
                 "device_class": DeviceClass.MICROPHONE},
            )
        assert kernel.devfs.sensitive_map.is_sensitive("/dev/mic0")

    def test_helper_requires_trusted_binary(self, kernel):
        from repro.kernel.credentials import ROOT
        from repro.kernel.devfs import UdevHelper

        imposter = kernel.sys_spawn(
            kernel.process_table.init, "/usr/bin/imposter", creds=ROOT
        )
        with pytest.raises(OperationNotPermitted):
            UdevHelper(imposter, kernel.netlink)
