"""Unit tests for shared memory: the page-fault interception machinery."""

import pytest

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import FileNotFound, SegmentationFault
from repro.kernel.ipc.base import TrackingPolicy
from repro.kernel.ipc.shared_memory import (
    DEFAULT_WAITLIST_DURATION,
    SharedMemorySubsystem,
)
from repro.kernel.task import Task
from repro.sim.scheduler import EventScheduler
from repro.sim.time import NEVER, from_millis


def make_task(pid):
    task = Task(pid, None, f"t{pid}", DEFAULT_USER, "/usr/bin/t", 0)
    from repro.kernel.mm import AddressSpace

    task.address_space = AddressSpace()
    return task


@pytest.fixture
def scheduler():
    return EventScheduler()


def build(scheduler, enabled=True):
    return SharedMemorySubsystem(TrackingPolicy(enabled=enabled), scheduler)


class TestNaming:
    def test_sysv_reuse(self, scheduler):
        shm = build(scheduler)
        assert shm.shmget(1, 4) is shm.shmget(1, 4)

    def test_posix_name_validation(self, scheduler):
        from repro.kernel.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            build(scheduler).shm_open("noslash", 1)

    def test_posix_unlink(self, scheduler):
        shm = build(scheduler)
        shm.shm_open("/seg", 1)
        shm.shm_unlink("/seg")
        with pytest.raises(FileNotFound):
            shm.shm_open("/seg", 1, create=False)

    def test_zero_pages_rejected(self, scheduler):
        from repro.kernel.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            build(scheduler).shmget(1, 0)


class TestInterception:
    def test_attach_arms_protection_when_enabled(self, scheduler):
        shm = build(scheduler, enabled=True)
        area = shm.attach(make_task(1), shm.shmget(1, 2))
        assert area.protection_revoked

    def test_attach_unarmed_on_baseline(self, scheduler):
        shm = build(scheduler, enabled=False)
        area = shm.attach(make_task(1), shm.shmget(1, 2))
        assert not area.protection_revoked

    def test_first_access_faults_and_restores(self, scheduler):
        shm = build(scheduler)
        task = make_task(1)
        segment = shm.shmget(1, 2)
        area = shm.attach(task, segment)
        shm.write(task, area, 0, b"hi")
        assert shm.total_faults == 1
        assert not area.protection_revoked  # restored for the retry window

    def test_accesses_within_window_do_not_fault(self, scheduler):
        shm = build(scheduler)
        task = make_task(1)
        area = shm.attach(task, shm.shmget(1, 2))
        shm.write(task, area, 0, b"a")
        for offset in range(1, 10):
            shm.write(task, area, offset, b"b")
        assert shm.total_faults == 1

    def test_rearm_after_waitlist_expiry(self, scheduler):
        """'...we put the corresponding vm_area_struct on a wait list
        before its permissions are revoked once again' -- 500 ms later."""
        shm = build(scheduler)
        task = make_task(1)
        area = shm.attach(task, shm.shmget(1, 2))
        shm.write(task, area, 0, b"a")
        scheduler.run_for(DEFAULT_WAITLIST_DURATION + 1)
        assert area.protection_revoked
        shm.write(task, area, 0, b"b")
        assert shm.total_faults == 2

    def test_waitlist_duration_configurable(self, scheduler):
        shm = build(scheduler)
        shm.waitlist_duration = from_millis(100)
        task = make_task(1)
        area = shm.attach(task, shm.shmget(1, 2))
        shm.write(task, area, 0, b"a")
        scheduler.run_for(from_millis(99))
        assert not area.protection_revoked
        scheduler.run_for(from_millis(2))
        assert area.protection_revoked

    def test_detach_cancels_waitlist_timer(self, scheduler):
        shm = build(scheduler)
        task = make_task(1)
        area = shm.attach(task, shm.shmget(1, 2))
        shm.write(task, area, 0, b"a")
        shm.detach(task, area)
        scheduler.run_for(DEFAULT_WAITLIST_DURATION + 1)  # timer must not fire
        assert area.waitlist_event is None


class TestPropagation:
    def test_write_fault_embeds_read_fault_adopts(self, scheduler):
        shm = build(scheduler)
        writer, reader = make_task(1), make_task(2)
        segment = shm.shmget(1, 2)
        w_area = shm.attach(writer, segment)
        r_area = shm.attach(reader, segment)
        writer.record_interaction(1000)
        shm.write(writer, w_area, 0, b"cmd")
        assert segment.stamp.timestamp == 1000
        shm.read(reader, r_area, 0, 3)
        assert reader.interaction_ts == 1000

    def test_miss_window_fidelity(self, scheduler):
        """The documented gap: accesses during the open window do NOT
        propagate -- 'we would miss shared memory IPC attempts... during
        this period'."""
        shm = build(scheduler)
        writer, reader = make_task(1), make_task(2)
        segment = shm.shmget(1, 2)
        w_area = shm.attach(writer, segment)
        shm.write(writer, w_area, 0, b"x")  # fault, embeds NEVER (no input yet)
        writer.record_interaction(2000)  # input arrives *after* the fault
        shm.write(writer, w_area, 1, b"y")  # window still open: no propagation
        assert segment.stamp.timestamp == NEVER

    def test_data_actually_transfers(self, scheduler):
        shm = build(scheduler)
        a, b = make_task(1), make_task(2)
        segment = shm.shmget(1, 1)
        area_a = shm.attach(a, segment)
        area_b = shm.attach(b, segment)
        shm.write(a, area_a, 100, b"payload")
        assert shm.read(b, area_b, 100, 7) == b"payload"


class TestBounds:
    def test_out_of_bounds_write(self, scheduler):
        shm = build(scheduler)
        task = make_task(1)
        area = shm.attach(task, shm.shmget(1, 1))
        with pytest.raises(SegmentationFault):
            shm.write(task, area, 4090, b"1234567890")

    def test_negative_offset(self, scheduler):
        shm = build(scheduler)
        task = make_task(1)
        area = shm.attach(task, shm.shmget(1, 1))
        with pytest.raises(SegmentationFault):
            shm.read(task, area, -1, 4)

    def test_non_shm_area_rejected(self, scheduler):
        from repro.kernel.errors import InvalidArgument
        from repro.kernel.mm import PageProtection

        shm = build(scheduler)
        task = make_task(1)
        plain = task.address_space.map_area(1, PageProtection.rw())
        with pytest.raises(InvalidArgument):
            shm.write(task, plain, 0, b"x")
