"""Targeted unit tests for the hot-path mechanisms.

The differential property suite proves end-to-end equivalence; these tests
pin the individual mechanisms -- batched audit retention, the pooled
netlink datagram (including re-entrant sends), the batched flush, and the
epoch decision cache's invalidation rules -- so a regression points at the
exact mechanism that broke.
"""

import pytest

from repro.core import Machine, paper_config, reference_config
from repro.core.notifications import MSG_INTERACTION, MSG_PERMISSION_QUERY
from repro.kernel.audit import AuditCategory, AuditDecision, AuditLog
from repro.kernel.credentials import ROOT
from repro.kernel.errors import InvalidArgument


def _record_args(i):
    return (
        i,  # timestamp
        AuditCategory.DEVICE,
        AuditDecision.GRANTED if i % 3 else AuditDecision.DENIED,
        100 + (i % 7),
        f"app{i % 7}",
        f"op-{i}",
    )


class TestAuditBatching:
    def test_deferred_appends_match_eager_appends(self):
        eager, deferred = AuditLog(), AuditLog()
        for i in range(3_000):
            eager.record(*_record_args(i))
            deferred.record_deferred(*_record_args(i))
        assert list(eager) == list(deferred)
        assert eager.total_recorded == deferred.total_recorded == 3_000

    def test_retention_window_identical_across_batching(self):
        """Trim boundaries land on the same records either way."""
        eager, deferred = AuditLog(), AuditLog()
        eager.RECORD_LIMIT = deferred.RECORD_LIMIT = 100
        for i in range(1_000):
            eager.record(*_record_args(i))
            deferred.record_deferred(*_record_args(i))
        assert list(eager) == list(deferred)
        assert eager.total_recorded == deferred.total_recorded == 1_000

    def test_total_recorded_exact_before_flush(self):
        log = AuditLog()
        for i in range(10):
            log.record_deferred(*_record_args(i))
        assert log.total_recorded == 10  # no read has flushed yet

    def test_every_read_path_flushes(self):
        for probe in (len, list, lambda l: l.records(), lambda l: l.render(),
                      lambda l: l.grants(), lambda l: l.denials()):
            log = AuditLog()
            log.record_deferred(*_record_args(1))
            probe(log)
            assert len(log._pending) == 0

    def test_mixed_eager_and_deferred_keep_order(self):
        log, mirror = AuditLog(), AuditLog()
        for i in range(100):
            if i % 2:
                log.record_deferred(*_record_args(i))
            else:
                log.record(*_record_args(i))
            mirror.record(*_record_args(i))
        assert list(log) == list(mirror)

    def test_clear_drops_pending(self):
        log = AuditLog()
        log.record_deferred(*_record_args(1))
        log.clear()
        assert len(log) == 0
        assert list(log) == []


class TestNetlinkPool:
    def _machine(self):
        machine = Machine.with_overhaul(paper_config())
        machine.settle()
        return machine

    def test_fast_handlers_registered_for_dominant_types(self):
        machine = self._machine()
        fast = machine.kernel.netlink._fast_handlers
        assert MSG_INTERACTION in fast
        assert MSG_PERMISSION_QUERY in fast

    def test_duplicate_fast_handler_rejected(self):
        machine = self._machine()
        with pytest.raises(InvalidArgument):
            machine.kernel.netlink.register_fast_handler(
                MSG_INTERACTION, lambda channel, payload, pid: None
            )

    def test_pooled_path_survives_reentrant_sends(self):
        """A kernel handler that sends again must not corrupt the pool."""
        machine = self._machine()
        kernel = machine.kernel
        channel = machine.overhaul.channel
        xtask = machine.xserver_task
        seen = []

        def outer(chan, message):
            # Re-entrant send while the pooled message is lent out.
            inner_result = chan.send_to_kernel(xtask, "test.inner", {"n": 1})
            seen.append((message.msg_type, dict(message.payload), inner_result))
            return "outer-done"

        def inner(chan, message):
            seen.append((message.msg_type, dict(message.payload)))
            return "inner-done"

        kernel.netlink.register_kernel_handler("test.outer", outer)
        kernel.netlink.register_kernel_handler("test.inner", inner)
        result = channel.send_to_kernel(xtask, "test.outer", {"n": 0})
        assert result == "outer-done"
        assert seen == [
            ("test.inner", {"n": 1}),
            ("test.outer", {"n": 0}, "inner-done"),
        ]
        # The pool is back in place and serves the next send.
        assert channel._pool is not None
        assert channel.send_to_kernel(xtask, "test.inner", {"n": 2}) == "inner-done"

    def test_batched_send_matches_loop_of_sends(self):
        fast = Machine.with_overhaul(paper_config())
        slow = Machine.with_overhaul(reference_config())
        for machine in (fast, slow):
            machine.settle()

        def notify_payload(machine, i):
            return {"pid": machine.xserver_task.pid, "timestamp": machine.now + i}

        fast_results = fast.overhaul.channel.send_many_to_kernel(
            fast.xserver_task, MSG_INTERACTION,
            [notify_payload(fast, i) for i in range(10)],
        )
        slow_results = [
            slow.overhaul.channel.send_to_kernel(
                slow.xserver_task, MSG_INTERACTION, notify_payload(slow, i)
            )
            for i in range(10)
        ]
        assert fast_results == slow_results
        assert fast.monitor.notifications_received == 10
        assert slow.monitor.notifications_received == 10
        assert (
            fast.kernel.netlink.messages_to_kernel
            == slow.kernel.netlink.messages_to_kernel
        )

    def test_batched_send_counts_match_singles(self):
        machine = self._machine()
        channel = machine.overhaul.channel
        before = channel.sent_to_kernel
        channel.send_many_to_kernel(
            machine.xserver_task, MSG_INTERACTION,
            [{"pid": machine.xserver_task.pid, "timestamp": machine.now}] * 5,
        )
        assert channel.sent_to_kernel == before + 5


class TestDecisionCache:
    def _machine(self):
        machine = Machine.with_overhaul(paper_config())
        machine.settle()
        return machine

    def _query(self, machine, task, offset=0):
        return machine.overhaul.channel.send_to_kernel(
            machine.xserver_task, MSG_PERMISSION_QUERY,
            {"pid": task.pid, "operation": "paste",
             "timestamp": machine.now + offset},
        )

    def _notify(self, machine, task):
        machine.overhaul.channel.send_to_kernel(
            machine.xserver_task, MSG_INTERACTION,
            {"pid": task.pid, "timestamp": machine.now},
        )

    def test_repeat_queries_hit_the_cache(self):
        machine = self._machine()
        task, _ = machine.launch("/usr/bin/app", comm="app")
        self._notify(machine, task)
        for _ in range(50):
            self._query(machine, task)
        monitor = machine.monitor
        assert monitor.cache_hits >= 49
        assert monitor.cache_misses >= 1

    def test_new_interaction_invalidates(self):
        """A fresh notification starts a new epoch for that pid."""
        machine = self._machine()
        task, _ = machine.launch("/usr/bin/app", comm="app")
        self._notify(machine, task)
        self._query(machine, task)
        misses_before = machine.monitor.cache_misses
        machine.run_for(1_000)
        self._notify(machine, task)  # newer timestamp -> new epoch
        self._query(machine, task)
        assert machine.monitor.cache_misses == misses_before + 1

    def test_ptrace_attach_invalidates_and_flips_decision(self):
        machine = self._machine()
        kernel = machine.kernel
        task, _ = machine.launch("/usr/bin/app", comm="app")
        debugger = kernel.sys_spawn(kernel.process_table.init, "/usr/bin/gdb",
                                    comm="gdb", creds=ROOT)
        self._notify(machine, task)
        assert self._query(machine, task)["granted"] is True
        kernel.ptrace.attach(debugger, task)
        response = self._query(machine, task)
        assert response["granted"] is False
        assert response["reason"] == "permissions disabled: task is being traced"
        kernel.ptrace.detach(debugger, task)
        assert self._query(machine, task)["granted"] is True

    def test_tracer_death_invalidates_cached_denial(self):
        """Regression: a dead tracer's revocation must not outlive it.

        Before the tracer-exit fix, a dying tracer left its tracees with a
        stale ``traced_by`` link and never bumped ``ptrace.version`` -- so
        the task stayed "traced" and the cached denial stayed valid
        forever.  Both must flip the instant the tracer exits.
        """
        machine = self._machine()
        kernel = machine.kernel
        task, _ = machine.launch("/usr/bin/app", comm="app")
        debugger = kernel.sys_spawn(kernel.process_table.init, "/usr/bin/gdb",
                                    comm="gdb", creds=ROOT)
        self._notify(machine, task)
        kernel.ptrace.attach(debugger, task)
        assert self._query(machine, task)["granted"] is False
        assert self._query(machine, task)["granted"] is False  # cached denial
        kernel.sys_exit(debugger)
        assert not task.is_traced
        assert self._query(machine, task)["granted"] is True

    def test_protection_toggle_invalidates(self):
        machine = self._machine()
        kernel = machine.kernel
        task, _ = machine.launch("/usr/bin/app", comm="app")
        debugger = kernel.sys_spawn(kernel.process_table.init, "/usr/bin/gdb",
                                    comm="gdb", creds=ROOT)
        self._notify(machine, task)
        kernel.ptrace.attach(debugger, task)
        assert self._query(machine, task)["granted"] is False
        kernel.ptrace.protection_enabled = False  # superuser procfs toggle
        assert self._query(machine, task)["granted"] is True
        kernel.ptrace.protection_enabled = True
        assert self._query(machine, task)["granted"] is False

    def test_fork_gets_a_fresh_epoch(self):
        """P1: the child inherits the timestamp but never a cache entry."""
        machine = self._machine()
        kernel = machine.kernel
        task, _ = machine.launch("/usr/bin/app", comm="app")
        self._notify(machine, task)
        self._query(machine, task)
        child = kernel.sys_spawn(task, task.exe_path, comm="app-child")
        misses_before = machine.monitor.cache_misses
        response = self._query(machine, child)
        assert response["granted"] is True  # P1 inheritance
        assert machine.monitor.cache_misses == misses_before + 1

    def test_cache_size_is_bounded(self):
        from repro.core.permission_monitor import _DECISION_CACHE_LIMIT

        machine = self._machine()
        monitor = machine.monitor
        for i in range(_DECISION_CACHE_LIMIT + 50):
            task, _ = machine.launch(f"/usr/bin/app{i}", comm=f"app{i}",
                                     connect_x=False)
            self._query(machine, task)
        assert len(monitor._decision_cache) <= _DECISION_CACHE_LIMIT
