"""Unit tests for the task_struct equivalent."""

import pytest

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import BadFileDescriptor
from repro.kernel.task import Task, TaskState
from repro.kernel.vfs import OpenFile, OpenMode, RegularFile
from repro.sim.time import NEVER


def make_task(pid=100, parent=None, comm="test") -> Task:
    return Task(pid, parent, comm, DEFAULT_USER, f"/usr/bin/{comm}", start_time=0)


class TestInteractionState:
    def test_starts_with_no_interaction(self):
        assert make_task().interaction_ts == NEVER

    def test_record_interaction_advances(self):
        task = make_task()
        assert task.record_interaction(1000)
        assert task.interaction_ts == 1000

    def test_record_is_max_merge(self):
        task = make_task()
        task.record_interaction(1000)
        assert not task.record_interaction(500)
        assert task.interaction_ts == 1000

    def test_record_same_timestamp_no_advance(self):
        task = make_task()
        task.record_interaction(1000)
        assert not task.record_interaction(1000)

    def test_interaction_age(self):
        task = make_task()
        task.record_interaction(1000)
        assert task.interaction_age(1500) == 500

    def test_interaction_age_without_interaction_is_huge(self):
        task = make_task()
        assert task.interaction_age(0) > 10**18


class TestLifecycle:
    def test_new_task_running(self):
        task = make_task()
        assert task.is_alive
        assert task.state is TaskState.RUNNING

    def test_descendant_chain(self):
        grandparent = make_task(1, comm="gp")
        parent = make_task(2, parent=grandparent, comm="p")
        child = make_task(3, parent=parent, comm="c")
        assert child.is_descendant_of(grandparent)
        assert child.is_descendant_of(parent)
        assert not parent.is_descendant_of(child)
        assert not grandparent.is_descendant_of(child)

    def test_not_descendant_of_self(self):
        task = make_task()
        assert not task.is_descendant_of(task)


class TestFdTable:
    def _open_file(self):
        inode = RegularFile(DEFAULT_USER, 0o644, created_at=0)
        return OpenFile("/tmp/x", inode, OpenMode.READ, opener_pid=100)

    def test_install_and_lookup(self):
        task = make_task()
        fd = task.install_fd(self._open_file())
        assert fd == 3  # std streams reserved
        assert task.lookup_fd(fd).path == "/tmp/x"

    def test_fds_increment(self):
        task = make_task()
        assert task.install_fd(self._open_file()) == 3
        assert task.install_fd(self._open_file()) == 4

    def test_lookup_unknown_fd(self):
        with pytest.raises(BadFileDescriptor):
            make_task().lookup_fd(3)

    def test_remove_fd(self):
        task = make_task()
        fd = task.install_fd(self._open_file())
        task.remove_fd(fd)
        with pytest.raises(BadFileDescriptor):
            task.lookup_fd(fd)

    def test_open_fds_snapshot_is_copy(self):
        task = make_task()
        fd = task.install_fd(self._open_file())
        snapshot = task.open_fds()
        task.remove_fd(fd)
        assert fd in snapshot
