"""Exact behavior of the audit log's bounded retention.

The log is the artifact the paper's authors "inspected" to verify
functionality, so its retention semantics must be precise: ``total_recorded``
is exact forever, the in-memory window trims to half the limit when
exceeded, and the newest records always survive.  The cross-layer
``Counters`` snapshot must agree with a recount of the retained records in
scenarios below the limit.
"""

import pytest

from repro.kernel.audit import AuditCategory, AuditDecision, AuditLog


def fill(log, count, start=0):
    for index in range(start, start + count):
        log.record(
            timestamp=index,
            category=AuditCategory.DEVICE,
            decision=AuditDecision.GRANTED,
            pid=1,
            comm="filler",
            detail=f"op-{index}",
        )


class TestRetentionBoundary:
    def test_exactly_at_limit_keeps_everything(self):
        log = AuditLog()
        log.RECORD_LIMIT = 100  # instance override; class default untouched
        fill(log, 100)
        assert len(log) == 100
        assert log.total_recorded == 100

    def test_one_past_limit_trims_to_half(self):
        log = AuditLog()
        log.RECORD_LIMIT = 100
        fill(log, 101)
        # The trim fires once, keeping the newest LIMIT // 2 records.
        assert len(log) == 50
        assert log.total_recorded == 101

    def test_newest_records_survive_the_trim(self):
        log = AuditLog()
        log.RECORD_LIMIT = 100
        fill(log, 101)
        timestamps = [record.timestamp for record in log]
        assert timestamps == list(range(51, 101))

    def test_counter_stays_exact_across_many_trims(self):
        log = AuditLog()
        log.RECORD_LIMIT = 40
        fill(log, 500)
        assert log.total_recorded == 500
        assert len(log) <= 40
        # The retained window is always a contiguous, newest-first suffix.
        timestamps = [record.timestamp for record in log]
        assert timestamps == list(range(500 - len(timestamps), 500))

    def test_query_helpers_see_only_retained_records(self):
        log = AuditLog()
        log.RECORD_LIMIT = 20
        fill(log, 30)
        assert len(log.grants()) == len(log)
        assert log.denials() == []

    def test_clear_resets_window_not_total(self):
        log = AuditLog()
        fill(log, 10)
        log.clear()
        assert len(log) == 0
        assert log.total_recorded == 10


class TestCountersAgreeWithRecount:
    """Below the retention limit, the Counters snapshot must match an exact
    recount of the records -- the counters are derived truth, not estimates."""

    @pytest.fixture
    def traced_machine(self):
        from repro.obs import run_traced_quickstart

        return run_traced_quickstart()

    def test_audit_totals_match(self, traced_machine):
        from repro.obs import collect_counters

        counters = collect_counters(traced_machine)
        audit = traced_machine.kernel.audit
        assert counters.get("audit.recorded") == audit.total_recorded
        assert counters.get("audit.retained") == len(audit)
        assert audit.total_recorded == len(audit)  # scenario is below the limit

    def test_monitor_counts_match_audit_recount(self, traced_machine):
        from repro.obs import collect_counters

        counters = collect_counters(traced_machine)
        audit = traced_machine.kernel.audit
        granted = len(audit.grants(AuditCategory.DEVICE))
        denied = len(audit.denials(AuditCategory.DEVICE))
        assert counters.get("monitor.grants") == granted
        assert counters.get("monitor.denials") == denied
        assert counters.get("device.checks") == granted + denied
        assert counters.get("device.denials") == denied
