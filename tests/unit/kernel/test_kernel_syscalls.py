"""Unit tests for the Kernel facade's syscall surface."""

import pytest

from repro.kernel import Kernel
from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials
from repro.kernel.errors import (
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    PermissionDenied,
)
from repro.kernel.vfs import OpenMode


@pytest.fixture
def kernel(scheduler):
    return Kernel(scheduler)


@pytest.fixture
def user(kernel):
    return kernel.sys_spawn(
        kernel.process_table.init, "/usr/bin/app", comm="app", creds=DEFAULT_USER
    )


class TestOpenSemantics:
    def test_open_missing_file(self, kernel, user):
        with pytest.raises(FileNotFound):
            kernel.sys_open(user, "/home/user/ghost")

    def test_open_directory_rejected(self, kernel, user):
        with pytest.raises(IsADirectory):
            kernel.sys_open(user, "/home/user")

    def test_open_needs_some_access_mode(self, kernel, user):
        kernel.sys_close(user, kernel.sys_creat(user, "/home/user/f"))
        with pytest.raises(InvalidArgument):
            kernel.sys_open(user, "/home/user/f", OpenMode.CREATE)

    def test_create_respects_parent_permissions(self, kernel, user):
        with pytest.raises(PermissionDenied):
            kernel.sys_creat(user, "/usr/bin/own-binary")  # /usr/bin is root's

    def test_create_is_idempotent_open_if_exists(self, kernel, user):
        first = kernel.sys_creat(user, "/home/user/f")
        kernel.sys_write(user, first, b"data")
        kernel.sys_close(user, first)
        second = kernel.sys_open(user, "/home/user/f", OpenMode.WRITE | OpenMode.CREATE)
        kernel.sys_close(user, second)
        assert kernel.sys_stat(user, "/home/user/f").size == 4

    def test_read_write_round_trip_via_syscalls(self, kernel, user):
        fd = kernel.sys_creat(user, "/home/user/notes")
        kernel.sys_write(user, fd, b"hello syscalls")
        kernel.sys_close(user, fd)
        fd = kernel.sys_open(user, "/home/user/notes", OpenMode.READ)
        assert kernel.sys_read(user, fd, 100) == b"hello syscalls"
        kernel.sys_close(user, fd)

    def test_device_read_via_syscalls(self, kernel, user):
        fd = kernel.sys_open(user, kernel.device_path("mic0"), OpenMode.READ)
        data = kernel.sys_read(user, fd, 32)
        assert len(data) == 32
        kernel.sys_close(user, fd)

    def test_mkdir_then_populate(self, kernel, user):
        kernel.sys_mkdir(user, "/home/user/project")
        fd = kernel.sys_creat(user, "/home/user/project/readme")
        kernel.sys_close(user, fd)
        assert kernel.filesystem.listdir("/home/user/project") == ["readme"]

    def test_mkdir_in_foreign_directory_rejected(self, kernel, user):
        with pytest.raises(PermissionDenied):
            kernel.sys_mkdir(user, "/usr/lib/mine")


class TestProcessSyscalls:
    def test_spawn_with_custom_creds(self, kernel):
        task = kernel.sys_spawn(
            kernel.process_table.init, "/usr/bin/svc", creds=Credentials(1234, 1234)
        )
        assert task.creds.uid == 1234

    def test_wait_returns_exited_child(self, kernel, user):
        child = kernel.sys_fork(user)
        kernel.sys_exit(child, code=7)
        reaped = kernel.sys_wait(user)
        assert reaped is child
        assert reaped.exit_code == 7

    def test_exec_changes_comm(self, kernel, user):
        child = kernel.sys_fork(user)
        kernel.sys_exec(child, "/usr/bin/other-tool")
        assert child.comm == "other-tool"

    def test_run_for_advances_time(self, kernel):
        from repro.sim.time import from_seconds

        before = kernel.now
        kernel.run_for(from_seconds(1.0))
        assert kernel.now == before + from_seconds(1.0)


class TestBootState:
    def test_trusted_binaries_exist_and_root_owned(self, kernel):
        from repro.kernel.netlink import DISPLAY_MANAGER_PATH, UDEV_HELPER_PATH

        for path in (DISPLAY_MANAGER_PATH, UDEV_HELPER_PATH, "/sbin/init"):
            stat = kernel.filesystem.stat(path)
            assert stat.owner is ROOT or stat.owner.is_superuser

    def test_home_directory_owned_by_user(self, kernel):
        assert kernel.filesystem.stat("/home/user").owner == DEFAULT_USER

    def test_tmp_world_writable(self, kernel, user):
        fd = kernel.sys_creat(user, "/tmp/scratch")
        kernel.sys_close(user, fd)
        assert kernel.filesystem.exists("/tmp/scratch")

    def test_udev_helper_is_live_root_task(self, kernel):
        helper_task = kernel.udev_helper.task
        assert helper_task.is_alive
        assert helper_task.creds.is_superuser
