"""Unit tests for ptrace hardening and the procfs toggle."""

import pytest

from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials
from repro.kernel.errors import (
    FileNotFound,
    InvalidArgument,
    OperationNotPermitted,
)
from repro.kernel.kernel import Kernel
from repro.kernel.procfs import PTRACE_PROTECTION_NODE


@pytest.fixture
def kernel(scheduler):
    return Kernel(scheduler)


def spawn(kernel, parent=None, creds=DEFAULT_USER, comm="app"):
    parent = parent if parent is not None else kernel.process_table.init
    return kernel.sys_spawn(parent, f"/usr/bin/{comm}", comm=comm, creds=creds)


class TestAttachRules:
    def test_parent_can_attach_to_child(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        assert child.traced_by is parent
        assert child.pid in parent.tracees

    def test_unrelated_same_uid_processes_cannot_attach(self, kernel):
        """'even if two unrelated processes run with identical (but
        non-super user) credentials, they cannot manipulate each other's
        state' (Section IV-B)."""
        a = spawn(kernel, comm="a")
        b = spawn(kernel, comm="b")
        with pytest.raises(OperationNotPermitted):
            kernel.ptrace.attach(a, b)
        assert (a.pid, b.pid) in kernel.ptrace.denied_attaches

    def test_different_uid_rejected(self, kernel):
        a = spawn(kernel, creds=Credentials(1000, 1000), comm="a")
        parent_b = spawn(kernel, creds=Credentials(2000, 2000), comm="b")
        b_child = kernel.sys_fork(parent_b)
        with pytest.raises(OperationNotPermitted):
            kernel.ptrace.attach(a, b_child)

    def test_superuser_can_attach_anywhere(self, kernel):
        rootproc = spawn(kernel, creds=ROOT, comm="gdb-as-root")
        victim = spawn(kernel, comm="victim")
        kernel.ptrace.attach(rootproc, victim)
        assert victim.traced_by is rootproc

    def test_self_attach_rejected(self, kernel):
        task = spawn(kernel)
        with pytest.raises(InvalidArgument):
            kernel.ptrace.attach(task, task)

    def test_single_tracer(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        grandchild = kernel.sys_fork(child)
        kernel.ptrace.attach(parent, grandchild)
        with pytest.raises(OperationNotPermitted):
            kernel.ptrace.attach(child, grandchild)

    def test_detach(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        kernel.ptrace.detach(parent, child)
        assert child.traced_by is None

    def test_detach_by_non_tracer_rejected(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        stranger = spawn(kernel, comm="stranger")
        with pytest.raises(OperationNotPermitted):
            kernel.ptrace.detach(stranger, child)

    def test_exit_severs_trace_links(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        kernel.sys_exit(child)
        assert child.pid not in parent.tracees


class TestTracerExit:
    """A dying *tracer* must detach its tracees (the reverse of tracee
    exit, which was always handled)."""

    def test_tracer_exit_severs_all_tracee_links(self, kernel):
        parent = spawn(kernel)
        first = kernel.sys_fork(parent)
        second = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, first)
        kernel.ptrace.attach(parent, second)
        kernel.sys_exit(parent)
        assert first.traced_by is None and not first.is_traced
        assert second.traced_by is None and not second.is_traced
        assert not parent.tracees

    def test_tracer_exit_bumps_version(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        version = kernel.ptrace.version
        kernel.sys_exit(parent)
        assert kernel.ptrace.version == version + 1

    def test_tracee_regains_permissions_when_tracer_dies(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        assert kernel.ptrace.permissions_disabled(child)
        kernel.sys_exit(parent)
        assert not kernel.ptrace.permissions_disabled(child)

    def test_exit_without_trace_links_does_not_bump_version(self, kernel):
        task = spawn(kernel)
        version = kernel.ptrace.version
        kernel.sys_exit(task)
        assert kernel.ptrace.version == version

    def test_new_tracer_can_attach_after_tracer_death(self, kernel):
        first = spawn(kernel, creds=ROOT, comm="gdb1")
        victim = spawn(kernel)
        kernel.ptrace.attach(first, victim)
        second = spawn(kernel, creds=ROOT, comm="gdb2")
        with pytest.raises(OperationNotPermitted):
            kernel.ptrace.attach(second, victim)  # single-tracer rule
        kernel.sys_exit(first)
        kernel.ptrace.attach(second, victim)
        assert victim.traced_by is second


class TestPermissionRevocation:
    def test_traced_task_loses_permissions(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        assert kernel.ptrace.permissions_disabled(child)

    def test_untraced_task_keeps_permissions(self, kernel):
        task = spawn(kernel)
        assert not kernel.ptrace.permissions_disabled(task)

    def test_toggle_disables_hardening(self, kernel):
        parent = spawn(kernel)
        child = kernel.sys_fork(parent)
        kernel.ptrace.attach(parent, child)
        kernel.ptrace.protection_enabled = False
        assert not kernel.ptrace.permissions_disabled(child)


class TestProcfsToggle:
    def test_read_default(self, kernel):
        assert kernel.procfs.read(PTRACE_PROTECTION_NODE) == "1"

    def test_superuser_can_toggle(self, kernel):
        rootproc = spawn(kernel, creds=ROOT, comm="admin")
        kernel.procfs.write(rootproc, PTRACE_PROTECTION_NODE, "0")
        assert not kernel.ptrace.protection_enabled
        kernel.procfs.write(rootproc, PTRACE_PROTECTION_NODE, "1")
        assert kernel.ptrace.protection_enabled

    def test_ordinary_user_cannot_toggle(self, kernel):
        """'it could be toggled by the super user' -- only."""
        user = spawn(kernel)
        with pytest.raises(OperationNotPermitted):
            kernel.procfs.write(user, PTRACE_PROTECTION_NODE, "0")
        assert kernel.ptrace.protection_enabled

    def test_invalid_value_rejected(self, kernel):
        rootproc = spawn(kernel, creds=ROOT, comm="admin")
        with pytest.raises(OperationNotPermitted):
            kernel.procfs.write(rootproc, PTRACE_PROTECTION_NODE, "yes")

    def test_unknown_node(self, kernel):
        with pytest.raises(FileNotFound):
            kernel.procfs.read("/proc/sys/overhaul/nonexistent")

    def test_node_listing(self, kernel):
        assert PTRACE_PROTECTION_NODE in kernel.procfs.nodes()
