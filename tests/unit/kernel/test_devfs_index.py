"""The sensitive-map operation index: one dict probe on the open hot path.

These tests pin the property the index was introduced for: the operation
string served to the mediator always reflects the *current* registration of
a path.  The previous design (a fill-on-first-use cache inside the
mediator) kept serving the first-seen name forever, so a path re-registered
under a different device class -- the udev collision case, e.g. a node name
reused by a different kind of hardware -- was audited under a stale label.
"""

import pytest

from repro.core import Machine
from repro.kernel.device import DeviceClass
from repro.kernel.devfs import SensitiveDeviceMap
from repro.kernel.errors import OverhaulDenied


class TestOperationIndex:
    def test_sensitive_paths_get_operation_names(self):
        sensitive_map = SensitiveDeviceMap()
        sensitive_map.set_mapping("/dev/mic0", DeviceClass.MICROPHONE)
        assert sensitive_map.operation_name("/dev/mic0") == "microphone:/dev/mic0"

    def test_unknown_and_non_sensitive_paths_are_none(self):
        sensitive_map = SensitiveDeviceMap()
        sensitive_map.set_mapping("/dev/audio-out0", DeviceClass.SPEAKER)
        assert sensitive_map.operation_name("/dev/audio-out0") is None
        assert sensitive_map.operation_name("/dev/unknown") is None

    def test_drop_mapping_clears_index(self):
        sensitive_map = SensitiveDeviceMap()
        sensitive_map.set_mapping("/dev/mic0", DeviceClass.MICROPHONE)
        sensitive_map.drop_mapping("/dev/mic0")
        assert sensitive_map.operation_name("/dev/mic0") is None
        assert sensitive_map.classify("/dev/mic0") is None

    def test_reregistration_with_new_class_updates_name(self):
        """The collision case: same path, different device class."""
        sensitive_map = SensitiveDeviceMap()
        sensitive_map.set_mapping("/dev/node0", DeviceClass.MICROPHONE)
        assert sensitive_map.operation_name("/dev/node0") == "microphone:/dev/node0"
        sensitive_map.set_mapping("/dev/node0", DeviceClass.CAMERA)
        assert sensitive_map.operation_name("/dev/node0") == "camera:/dev/node0"

    def test_reregistration_to_non_sensitive_demotes_path(self):
        """A path re-registered as non-sensitive must stop being mediated."""
        sensitive_map = SensitiveDeviceMap()
        sensitive_map.set_mapping("/dev/node0", DeviceClass.CAMERA)
        sensitive_map.set_mapping("/dev/node0", DeviceClass.SPEAKER)
        assert sensitive_map.operation_name("/dev/node0") is None
        assert not sensitive_map.is_sensitive("/dev/node0")

    def test_index_matches_classify_for_every_registration(self):
        """The index is a pure function of the registration map."""
        sensitive_map = SensitiveDeviceMap()
        classes = [
            DeviceClass.MICROPHONE,
            DeviceClass.SPEAKER,
            DeviceClass.CAMERA,
            DeviceClass.DISK,
        ]
        for i, device_class in enumerate(classes):
            sensitive_map.set_mapping(f"/dev/n{i}", device_class)
        for i, device_class in enumerate(classes):
            path = f"/dev/n{i}"
            name = sensitive_map.operation_name(path)
            if device_class.sensitive:
                assert name == f"{device_class.label}:{path}"
            else:
                assert name is None


class TestMediationUsesCurrentRegistration:
    def test_denial_reports_the_current_device_class(self):
        """End to end: audit and denial use the post-collision label."""
        machine = Machine.with_overhaul()
        machine.settle()
        kernel = machine.kernel
        task, _ = machine.launch("/usr/bin/recorder", comm="recorder")

        # First life of the node: a microphone.  One denied open caches
        # nothing stale anymore, but this is exactly the sequence that
        # poisoned the old mediator-side cache.
        kernel.devfs.sensitive_map.set_mapping("/dev/node7", DeviceClass.MICROPHONE)
        with pytest.raises(OverhaulDenied) as exc_info:
            kernel.device_mediator.gate_open(task, "/dev/node7")
        assert "microphone:/dev/node7" in str(exc_info.value)

        # The node is reused by a camera (udev collision).
        kernel.devfs.sensitive_map.set_mapping("/dev/node7", DeviceClass.CAMERA)
        with pytest.raises(OverhaulDenied) as exc_info:
            kernel.device_mediator.gate_open(task, "/dev/node7")
        assert "camera:/dev/node7" in str(exc_info.value)

        device_records = kernel.audit.records(pid=task.pid)
        assert [r.detail for r in device_records] == [
            "microphone:/dev/node7",
            "camera:/dev/node7",
        ]

    def test_demoted_path_passes_untouched(self):
        machine = Machine.with_overhaul()
        machine.settle()
        kernel = machine.kernel
        task, _ = machine.launch("/usr/bin/recorder", comm="recorder")
        kernel.devfs.sensitive_map.set_mapping("/dev/node8", DeviceClass.CAMERA)
        kernel.devfs.sensitive_map.set_mapping("/dev/node8", DeviceClass.SPEAKER)
        checks_before = kernel.device_mediator.checks_performed
        kernel.device_mediator.gate_open(task, "/dev/node8")  # must not raise
        assert kernel.device_mediator.checks_performed == checks_before
