"""Unit tests for the uid/gid model and classic UNIX checks."""

import pytest

from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials, can_access


class TestCredentials:
    def test_root_is_superuser(self):
        assert ROOT.is_superuser

    def test_user_is_not_superuser(self):
        assert not DEFAULT_USER.is_superuser

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            Credentials(-1, 0)
        with pytest.raises(ValueError):
            Credentials(0, -1)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            DEFAULT_USER.uid = 0  # type: ignore[misc]


class TestCanAccess:
    def test_superuser_bypasses_everything(self):
        assert can_access(ROOT, DEFAULT_USER, 0o000, 0o7)

    def test_owner_triplet(self):
        owner = Credentials(1000, 1000)
        assert can_access(owner, owner, 0o600, 0o4)
        assert can_access(owner, owner, 0o600, 0o2)
        assert not can_access(owner, owner, 0o600, 0o1)

    def test_group_triplet(self):
        subject = Credentials(1001, 1000)  # same gid, different uid
        owner = Credentials(1000, 1000)
        assert can_access(subject, owner, 0o640, 0o4)
        assert not can_access(subject, owner, 0o640, 0o2)

    def test_other_triplet(self):
        subject = Credentials(2000, 2000)
        owner = Credentials(1000, 1000)
        assert can_access(subject, owner, 0o604, 0o4)
        assert not can_access(subject, owner, 0o600, 0o4)

    def test_combined_bits(self):
        owner = Credentials(1000, 1000)
        assert can_access(owner, owner, 0o700, 0o6)
        assert not can_access(owner, owner, 0o500, 0o6)

    def test_invalid_want_rejected(self):
        with pytest.raises(ValueError):
            can_access(DEFAULT_USER, DEFAULT_USER, 0o777, 0o10)
