"""Unit tests for the audit log and the augmented-open device gate."""

import pytest

from repro.kernel.audit import AuditCategory, AuditDecision, AuditLog
from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import OverhaulDenied, PermissionDenied
from repro.core import Machine
from repro.kernel.vfs import OpenMode


class TestAuditLog:
    def test_record_and_filter(self):
        log = AuditLog()
        log.record(1, AuditCategory.DEVICE, AuditDecision.GRANTED, 10, "a", "mic")
        log.record(2, AuditCategory.DEVICE, AuditDecision.DENIED, 11, "b", "cam")
        log.record(3, AuditCategory.SCREEN, AuditDecision.DENIED, 11, "b", "scr")
        assert len(log) == 3
        assert len(log.grants(AuditCategory.DEVICE)) == 1
        assert len(log.denials()) == 2
        assert len(log.records(pid=11)) == 2
        assert len(log.records(category=AuditCategory.SCREEN, decision=AuditDecision.DENIED)) == 1

    def test_render_format(self):
        log = AuditLog()
        log.record(1_000_000, AuditCategory.DEVICE, AuditDecision.DENIED, 42, "spy", "microphone")
        line = log.render()
        assert "pid=42" in line
        assert "denied" in line
        assert "[1.000000s]" in line

    def test_retention_bound(self):
        log = AuditLog()
        log.RECORD_LIMIT = 100
        for i in range(250):
            log.record(i, AuditCategory.DEVICE, AuditDecision.GRANTED, 1, "x", "op")
        assert log.total_recorded == 250
        assert len(log) <= 100

    def test_clear(self):
        log = AuditLog()
        log.record(1, AuditCategory.ALERT, AuditDecision.INFO, 1, "x", "d")
        log.clear()
        assert len(log) == 0


class TestDeviceGate:
    def test_baseline_kernel_does_not_mediate(self, baseline_machine):
        task = baseline_machine.kernel.sys_spawn(
            baseline_machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
        )
        fd = baseline_machine.kernel.sys_open(
            task, baseline_machine.kernel.device_path("mic0"), OpenMode.READ
        )
        assert fd >= 3
        assert baseline_machine.kernel.device_mediator.checks_performed == 0

    def test_protected_kernel_denies_without_interaction(self, machine):
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/spy", creds=DEFAULT_USER
        )
        with pytest.raises(OverhaulDenied):
            machine.kernel.sys_open(task, machine.kernel.device_path("mic0"), OpenMode.READ)
        assert machine.kernel.device_mediator.denials == 1

    def test_denial_is_an_ordinary_eacces(self, machine):
        """Transparency: apps that only know UNIX semantics see EACCES."""
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/spy", creds=DEFAULT_USER
        )
        with pytest.raises(PermissionDenied):
            machine.kernel.sys_open(task, machine.kernel.device_path("mic0"), OpenMode.READ)

    def test_non_sensitive_device_not_mediated(self, machine):
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
        )
        fd = machine.kernel.sys_open(
            task, machine.kernel.device_path("speaker0"), OpenMode.READ
        )
        assert fd >= 3

    def test_regular_file_open_not_mediated(self, machine):
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
        )
        fd = machine.kernel.sys_creat(task, "/home/user/notes.txt")
        assert fd >= 3
        assert machine.kernel.device_mediator.checks_performed == 0

    def test_grant_after_interaction_audited(self, machine):
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/app", creds=DEFAULT_USER
        )
        task.record_interaction(machine.now)
        fd = machine.kernel.sys_open(task, machine.kernel.device_path("mic0"), OpenMode.READ)
        assert fd >= 3
        grants = machine.kernel.audit.grants(AuditCategory.DEVICE)
        assert len(grants) == 1
        assert grants[0].pid == task.pid

    def test_denial_audited(self, machine):
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/spy", creds=DEFAULT_USER
        )
        with pytest.raises(OverhaulDenied):
            machine.kernel.sys_open(task, machine.kernel.device_path("video0"), OpenMode.READ)
        denials = machine.kernel.audit.denials(AuditCategory.DEVICE)
        assert len(denials) == 1
        assert "camera" in denials[0].detail
