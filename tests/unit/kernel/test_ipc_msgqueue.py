"""Unit tests for SysV and POSIX message queues (with P2)."""

import pytest

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import FileNotFound, InvalidArgument, WouldBlock
from repro.kernel.ipc.base import TrackingPolicy
from repro.kernel.ipc.msg_queue import MessageQueueSubsystem
from repro.kernel.task import Task


def make_task(pid):
    return Task(pid, None, f"t{pid}", DEFAULT_USER, "/usr/bin/t", 0)


@pytest.fixture
def queues():
    return MessageQueueSubsystem(TrackingPolicy(enabled=True))


class TestSysV:
    def test_msgget_creates_and_reuses(self, queues):
        q1 = queues.msgget(100)
        q2 = queues.msgget(100)
        assert q1 is q2

    def test_msgget_no_create(self, queues):
        with pytest.raises(FileNotFound):
            queues.msgget(42, create=False)

    def test_send_receive_fifo_order(self, queues):
        queue = queues.msgget(1)
        a, b = make_task(1), make_task(2)
        queue.send(a, b"first")
        queue.send(a, b"second")
        assert queue.receive(b)[1] == b"first"
        assert queue.receive(b)[1] == b"second"

    def test_type_selective_receive(self, queues):
        queue = queues.msgget(1)
        a, b = make_task(1), make_task(2)
        queue.send(a, b"one", msg_type=1)
        queue.send(a, b"two", msg_type=2)
        assert queue.receive(b, msg_type=2) == (2, b"two")
        assert queue.receive(b) == (1, b"one")

    def test_no_message_of_type(self, queues):
        queue = queues.msgget(1)
        queue.send(make_task(1), b"x", msg_type=1)
        with pytest.raises(WouldBlock):
            queue.receive(make_task(2), msg_type=9)

    def test_invalid_type_rejected(self, queues):
        with pytest.raises(InvalidArgument):
            queues.msgget(1).send(make_task(1), b"x", msg_type=0)

    def test_remove(self, queues):
        queues.msgget(5)
        queues.msgctl_remove(5)
        with pytest.raises(FileNotFound):
            queues.msgget(5, create=False)

    def test_p2_propagation(self, queues):
        queue = queues.msgget(1)
        a, b = make_task(1), make_task(2)
        a.record_interaction(321)
        queue.send(a, b"data")
        queue.receive(b)
        assert b.interaction_ts == 321

    def test_queue_full(self, queues):
        queue = queues.msgget(1)
        queue.max_messages = 2
        sender = make_task(1)
        queue.send(sender, b"1")
        queue.send(sender, b"2")
        with pytest.raises(WouldBlock):
            queue.send(sender, b"3")


class TestPosix:
    def test_mq_open_name_validation(self, queues):
        with pytest.raises(InvalidArgument):
            queues.mq_open("noslash")

    def test_mq_namespaces_are_separate(self, queues):
        sysv = queues.msgget(1)
        posix = queues.mq_open("/1")
        assert sysv is not posix

    def test_mq_propagation(self, queues):
        queue = queues.mq_open("/chat")
        a, b = make_task(1), make_task(2)
        a.record_interaction(888)
        queue.send(a, b"hey")
        queue.receive(b)
        assert b.interaction_ts == 888

    def test_mq_unlink(self, queues):
        queues.mq_open("/gone")
        queues.mq_unlink("/gone")
        with pytest.raises(FileNotFound):
            queues.mq_open("/gone", create=False)

    def test_empty_receive_blocks(self, queues):
        queue = queues.mq_open("/empty")
        with pytest.raises(WouldBlock):
            queue.receive(make_task(1))
