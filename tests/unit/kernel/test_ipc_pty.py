"""Unit tests for pseudo-terminal pairs and CLI propagation."""

import pytest

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import InvalidArgument, WouldBlock
from repro.kernel.ipc.base import TrackingPolicy
from repro.kernel.ipc.pty import PtySubsystem
from repro.kernel.task import Task


def make_task(pid):
    return Task(pid, None, f"t{pid}", DEFAULT_USER, "/usr/bin/t", 0)


@pytest.fixture
def ptys():
    return PtySubsystem(TrackingPolicy(enabled=True))


class TestPlumbing:
    def test_master_write_appears_on_slave(self, ptys):
        pair = ptys.openpty()
        emulator, shell = make_task(1), make_task(2)
        pair.write(emulator, b"ls\n", from_master=True)
        assert pair.read(shell, 10, from_master=False) == b"ls\n"

    def test_slave_write_appears_on_master(self, ptys):
        pair = ptys.openpty()
        emulator, shell = make_task(1), make_task(2)
        pair.write(shell, b"output", from_master=False)
        assert pair.read(emulator, 10, from_master=True) == b"output"

    def test_directions_are_independent(self, ptys):
        pair = ptys.openpty()
        emulator, shell = make_task(1), make_task(2)
        pair.write(emulator, b"cmd", from_master=True)
        with pytest.raises(WouldBlock):
            pair.read(emulator, 10, from_master=True)

    def test_empty_read_blocks(self, ptys):
        pair = ptys.openpty()
        with pytest.raises(WouldBlock):
            pair.read(make_task(1), 10, from_master=False)

    def test_pair_numbering_and_lookup(self, ptys):
        first = ptys.openpty()
        second = ptys.openpty()
        assert first.number != second.number
        assert ptys.lookup(second.number) is second
        with pytest.raises(InvalidArgument):
            ptys.lookup(9999)

    def test_slave_path_names(self, ptys):
        pair = ptys.openpty()
        assert pair.slave_path == f"/dev/pts/{pair.number}"


class TestCliPropagation:
    def test_master_write_embeds_slave_read_adopts(self, ptys):
        """The Section IV-B pty patch: emulator -> pty -> shell."""
        pair = ptys.openpty()
        emulator, shell = make_task(1), make_task(2)
        emulator.record_interaction(4321)
        pair.write(emulator, b"arecord\n", from_master=True)
        pair.read(shell, 100, from_master=False)
        assert shell.interaction_ts == 4321

    def test_reader_keeps_more_recent_own_timestamp(self, ptys):
        pair = ptys.openpty()
        emulator, shell = make_task(1), make_task(2)
        emulator.record_interaction(100)
        shell.record_interaction(500)
        pair.write(emulator, b"x", from_master=True)
        pair.read(shell, 1, from_master=False)
        assert shell.interaction_ts == 500

    def test_empty_write_is_noop(self, ptys):
        pair = ptys.openpty()
        emulator = make_task(1)
        emulator.record_interaction(7)
        pair.write(emulator, b"", from_master=True)
        assert pair.stamp.timestamp != 7  # nothing embedded for empty writes

    def test_disabled_tracking_moves_data_not_timestamps(self):
        ptys = PtySubsystem(TrackingPolicy(enabled=False))
        pair = ptys.openpty()
        emulator, shell = make_task(1), make_task(2)
        emulator.record_interaction(77)
        pair.write(emulator, b"data", from_master=True)
        assert pair.read(shell, 4, from_master=False) == b"data"
        from repro.sim.time import NEVER

        assert shell.interaction_ts == NEVER
