"""Unit tests for the span tracer: recording, nesting, retention, rendering."""

from repro.obs.tracer import NULL_TRACER, Span, Tracer


def make_tracer(clock=None):
    times = clock if clock is not None else iter(range(0, 10_000, 10))
    tracer = Tracer(lambda: next(times), enabled=True)
    return tracer


class TestDisabledMode:
    def test_start_returns_none(self):
        tracer = Tracer()
        assert tracer.start("x", "test") is None
        assert tracer.event("x", "test") is None
        assert tracer.spans == []
        assert tracer.total_spans == 0

    def test_finish_none_is_noop(self):
        Tracer().finish(None)  # must not raise

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_enable_disable_toggle(self):
        tracer = Tracer(lambda: 0)
        tracer.enable()
        assert tracer.start("x", "test") is not None
        tracer.disable()
        assert tracer.start("x", "test") is None


class TestNesting:
    def test_children_parent_to_open_span(self):
        tracer = make_tracer()
        outer = tracer.start("outer", "test")
        inner = tracer.start("inner", "test")
        event = tracer.event("point", "test")
        tracer.finish(inner)
        tracer.finish(outer)
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert event.parent_id == inner.span_id
        assert tracer.children_of(outer) == [inner]
        assert tracer.roots() == [outer]

    def test_sibling_after_finish_is_not_nested(self):
        tracer = make_tracer()
        first = tracer.start("first", "test")
        tracer.finish(first)
        second = tracer.start("second", "test")
        tracer.finish(second)
        assert second.parent_id is None

    def test_unwind_tolerates_unfinished_inner_span(self):
        """An exception that propagates past an inner finish must not
        corrupt the stack: finishing the outer span unwinds through it."""
        tracer = make_tracer()
        outer = tracer.start("outer", "test")
        tracer.start("inner-left-open", "test")
        tracer.finish(outer)
        fresh = tracer.start("fresh", "test")
        assert fresh.parent_id is None

    def test_durations_and_final_attrs(self):
        tracer = make_tracer()
        span = tracer.start("op", "test", pid=1)
        tracer.finish(span, granted=True)
        assert span.duration == 10
        assert span.attrs == {"pid": 1, "granted": True}
        point = tracer.event("ev", "test")
        assert point.duration == 0


class TestRetention:
    def test_span_limit_trims_but_total_is_exact(self):
        tracer = make_tracer(iter(range(10**9)))
        tracer.SPAN_LIMIT = 100
        for index in range(150):
            tracer.event("e", "test", n=index)
        assert tracer.total_spans == 150
        assert len(tracer.spans) <= 100
        # Newest spans survive.
        assert tracer.spans[-1].attrs["n"] == 149

    def test_clear_keeps_total(self):
        tracer = make_tracer()
        tracer.event("e", "test")
        tracer.clear()
        assert tracer.spans == []
        assert tracer.total_spans == 1


class TestQueries:
    def test_find_by_name_category_and_attrs(self):
        tracer = make_tracer()
        tracer.event("a", "x", pid=1)
        tracer.event("a", "y", pid=2)
        tracer.event("b", "x", pid=1)
        assert len(tracer.find("a")) == 2
        assert len(tracer.find(category="x")) == 2
        assert len(tracer.find("a", pid=2)) == 1
        assert tracer.find("a", pid=99) == []


class TestRendering:
    def test_render_interns_global_ids_in_first_seen_order(self):
        tracer = make_tracer()
        tracer.event("e", "test", window=0x40_1234)
        tracer.event("e", "test", window=0x40_9999)
        tracer.event("e", "test", window=0x40_1234)
        text = tracer.render_tree()
        assert "window=w1" in text
        assert "window=w2" in text
        assert "0x40" not in text and "4198" not in text  # raw ids never leak

    def test_same_structure_different_raw_ids_render_identically(self):
        def build(offset):
            tracer = make_tracer()
            span = tracer.start("route", "test", window=offset + 1, client=offset + 2)
            tracer.event("hit", "test", window=offset + 1)
            tracer.finish(span)
            return tracer.render_tree()

        assert build(1000) == build(5000)

    def test_tree_indentation_follows_parenting(self):
        tracer = make_tracer()
        outer = tracer.start("outer", "test")
        tracer.event("inner", "test")
        tracer.finish(outer)
        lines = tracer.render_tree().splitlines()
        assert not lines[0].startswith(" ")
        assert lines[1].startswith("  ")

    def test_orphaned_children_render_as_roots_after_trim(self):
        tracer = make_tracer(iter(range(10**9)))
        tracer.SPAN_LIMIT = 4
        parent = tracer.start("parent", "test")
        for index in range(10):
            tracer.event("child", "test", n=index)
        tracer.finish(parent)
        # The parent span was trimmed away; render must not lose children.
        text = tracer.render_tree()
        assert "child" in text

    def test_attrs_render_sorted(self):
        tracer = make_tracer()
        tracer.event("e", "test", zebra=1, alpha=2)
        line = tracer.render_tree()
        assert line.index("alpha=2") < line.index("zebra=1")


class TestSpanBasics:
    def test_point_span_repr(self):
        span = Span(1, None, "n", "c", 5, {"k": 1})
        assert span.duration == 0
        assert "n" in repr(span)
