"""Unit tests for the Counters registry and the cross-layer collector."""

from repro.core import Machine
from repro.obs import Counters, collect_counters


class TestCountersRegistry:
    def test_inc_creates_at_zero(self):
        counters = Counters()
        assert counters.get("a.b") == 0
        assert counters.inc("a.b") == 1
        assert counters.inc("a.b", 4) == 5
        assert counters.get("a.b") == 5

    def test_set_and_len(self):
        counters = Counters()
        counters.set("x", 7)
        counters.set("y", 0)
        assert len(counters) == 2
        assert counters.get("x") == 7

    def test_snapshot_is_sorted_and_detached(self):
        counters = Counters()
        counters.set("zz", 1)
        counters.set("aa", 2)
        snap = counters.snapshot()
        assert list(snap) == ["aa", "zz"]
        counters.inc("aa")
        assert snap["aa"] == 2  # copy, not a view

    def test_merge_adds(self):
        a = Counters()
        a.set("x", 1)
        b = Counters()
        b.set("x", 2)
        b.set("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_iteration_and_render_deterministic(self):
        counters = Counters()
        counters.set("b", 2)
        counters.set("a", 1)
        assert [name for name, _ in counters] == ["a", "b"]
        rendered = counters.render()
        assert rendered.splitlines()[0].startswith("a")

    def test_render_empty(self):
        assert Counters().render() == "(no counters)"


class TestCollector:
    def test_baseline_machine_has_no_overhaul_namespaces(self):
        counters = collect_counters(Machine.baseline())
        names = dict(counters)
        assert "device.checks" in names
        assert not any(name.startswith("monitor.") for name in names)
        assert not any(name.startswith("dm.") for name in names)

    def test_protected_machine_exports_all_layers(self):
        counters = collect_counters(Machine.with_overhaul())
        names = set(dict(counters))
        for expected in (
            "device.checks",
            "audit.recorded",
            "stamps.embedded",
            "shm.faults",
            "netlink.to_kernel",
            "x.input_routed",
            "overlay.shown",
            "monitor.grants",
            "dm.notifications_sent",
            "obs.spans",
        ):
            assert expected in names

    def test_collection_does_not_perturb_the_machine(self):
        machine = Machine.with_overhaul()
        first = collect_counters(machine).snapshot()
        second = collect_counters(machine).snapshot()
        assert first == second


class TestCountersSerialization:
    """Order-stability and picklability: what fleet shard merging relies on."""

    def test_pickle_round_trip(self):
        import pickle

        counters = Counters()
        counters.set("b.two", 2)
        counters.set("a.one", 1)
        clone = pickle.loads(pickle.dumps(counters))
        assert clone == counters
        assert clone.snapshot() == {"a.one": 1, "b.two": 2}

    def test_pickle_bytes_independent_of_insertion_order(self):
        import pickle

        forward = Counters()
        forward.set("a", 1)
        forward.set("b", 2)
        forward.set("c", 3)
        backward = Counters()
        backward.set("c", 3)
        backward.set("b", 2)
        backward.set("a", 1)
        assert pickle.dumps(forward, protocol=4) == pickle.dumps(backward, protocol=4)

    def test_equality_is_content_based(self):
        a = Counters({"x": 1})
        b = Counters()
        b.set("x", 1)
        assert a == b
        b.inc("x")
        assert a != b
        assert a != "not-counters"

    def test_init_from_mapping_sorts(self):
        counters = Counters({"z": 9, "a": 1})
        assert [name for name, _ in counters] == ["a", "z"]

    def test_merged_snapshots_order_independent(self):
        snap_a = {"x.ops": 3, "y.ops": 1}
        snap_b = {"x.ops": 2, "z.ops": 5}
        one = Counters.merged([snap_a, snap_b]).snapshot()
        other = Counters.merged([snap_b, snap_a]).snapshot()
        assert one == other == {"x.ops": 5, "y.ops": 1, "z.ops": 5}

    def test_merge_order_stable_after_interleaved_updates(self):
        import pickle

        a = Counters({"m": 1})
        b = Counters({"a": 2, "m": 1})
        a.merge(b)
        direct = Counters({"a": 2, "m": 2})
        assert a == direct
        assert pickle.dumps(a, protocol=4) == pickle.dumps(direct, protocol=4)

    def test_machine_collection_pickles(self, machine):
        import pickle

        collected = collect_counters(machine)
        clone = pickle.loads(pickle.dumps(collected))
        assert clone.snapshot() == collected.snapshot()


class TestPackedDeltas:
    """The struct-packed delta blobs that ride the fleet's shm rings."""

    def test_pack_round_trips_through_merge_packed(self):
        source = Counters({"b.ops": 2, "a.ops": -3, "c.ops": 0})
        target = Counters()
        end = target.merge_packed(source.pack_deltas())
        assert target.snapshot() == source.snapshot()
        assert end == len(source.pack_deltas())

    def test_pack_is_deterministic_under_insertion_order(self):
        one = Counters()
        one.inc("z", 5)
        one.inc("a", 1)
        other = Counters({"a": 1, "z": 5})
        assert one.pack_deltas() == other.pack_deltas()

    def test_merge_packed_accumulates_in_place(self):
        target = Counters({"x": 1})
        target.merge_packed(Counters({"x": 2, "y": 7}).pack_deltas())
        target.merge_packed(Counters({"y": -7}).pack_deltas())
        assert target.snapshot() == {"x": 3, "y": 0}

    def test_merge_packed_from_offset_and_memoryview(self):
        blob = Counters({"k": 4}).pack_deltas()
        framed = b"\xff\xff" + blob
        target = Counters()
        end = target.merge_packed(memoryview(framed), offset=2)
        assert end == len(framed)
        assert target.snapshot() == {"k": 4}

    def test_empty_registry_packs_and_merges(self):
        target = Counters({"x": 1})
        target.merge_packed(Counters().pack_deltas())
        assert target.snapshot() == {"x": 1}

    def test_merged_accepts_blobs_and_dicts_mixed(self):
        combined = Counters.merged(
            [
                {"a": 1, "b": 2},
                Counters({"b": 3}).pack_deltas(),
                memoryview(Counters({"a": 4, "c": 5}).pack_deltas()),
            ]
        )
        assert combined.snapshot() == {"a": 5, "b": 5, "c": 5}

    def test_merged_blob_order_independent(self):
        blobs = [
            Counters({"a": 1}).pack_deltas(),
            Counters({"a": 2, "b": 9}).pack_deltas(),
        ]
        assert (
            Counters.merged(blobs).snapshot()
            == Counters.merged(list(reversed(blobs))).snapshot()
        )
