"""Unit tests for decision-path reconstruction and the rendered report."""

import pytest

from repro.obs import build_decision_paths, render_decision_report, run_traced_quickstart


@pytest.fixture(scope="module")
def traced():
    machine = run_traced_quickstart()
    return machine, build_decision_paths(machine.tracer)


class TestPathReconstruction:
    def test_scenario_yields_one_grant_two_denies(self, traced):
        _, paths = traced
        assert len(paths) == 3
        assert [path.granted for path in paths] == [False, True, False]

    def test_denied_spyware_has_no_blessing_input(self, traced):
        _, paths = traced
        spy_path = paths[0]
        assert spy_path.blessing is None
        assert spy_path.decision.attrs["reason"] == "no user interaction on record"

    def test_granted_decision_links_back_to_hardware_input(self, traced):
        _, paths = traced
        granted = paths[1]
        assert granted.blessing is not None
        assert granted.blessing.attrs["provenance"] == "HARDWARE"
        assert granted.blessing.attrs["pid"] == granted.pid
        assert granted.blessing.start <= granted.decision.start

    def test_expired_decision_reuses_the_old_blessing(self, traced):
        _, paths = traced
        expired = paths[2]
        assert expired.blessing is not None
        assert expired.decision.attrs["reason"] == "interaction too old (age >= delta)"
        # The blessing it was measured against is the same click that
        # justified the earlier grant.
        assert expired.blessing is paths[1].blessing

    def test_device_decisions_have_no_netlink_hops(self, traced):
        """Device mediation is in-kernel: the verdict's ancestry contains
        no netlink span (unlike clipboard/screen queries)."""
        _, paths = traced
        assert all(path.netlink_hops == [] for path in paths)

    def test_every_decision_produced_alert_activity(self, traced):
        _, paths = traced
        for path in paths:
            names = {span.name for span in path.alerts}
            assert "alert.request" in names
            assert "overlay.show" in names


class TestReportRendering:
    def test_report_contains_grant_and_deny_lines(self, traced):
        machine, _ = traced
        report = render_decision_report(machine)
        assert "GRANTED microphone:/dev/mic0" in report
        assert "DENIED microphone:/dev/mic0" in report

    def test_report_explains_the_full_path(self, traced):
        machine, _ = traced
        report = render_decision_report(machine)
        assert "HARDWARE button-release on window w1" in report
        assert "no authentic user input was ever delivered" in report
        assert "interaction too old" in report
        assert "delta=2.0s" in report
        assert "overlay banner shown" in report

    def test_untraced_machine_reports_nothing(self):
        from repro.core import Machine

        report = render_decision_report(Machine.with_overhaul())
        assert "no decisions recorded" in report
