"""Regression net for the Table I *shape* claims.

Not a benchmark -- a lenient sanity check that the two regimes documented
in EXPERIMENTS.md stay true: rows whose base operation does real simulated
work (shared memory, filesystem churn) must show near-zero relative
overhead, and no row's added per-operation cost may balloon.

Bounds are deliberately loose (3x headroom on current measurements) so the
test guards against structural regressions -- e.g. someone adding an
uncoalesced per-operation alert or an O(n) scan to a hot path -- without
flaking on machine noise.
"""

import time

import pytest

from repro.analysis.benchops import (
    ClipboardRig,
    DeviceAccessRig,
    FilesystemRig,
    ScreenCaptureRig,
    SharedMemoryRig,
)


def best_seconds_per_op(rig, ops, repeats=3):
    best = float("inf")
    rig.run(ops)  # warmup
    for _ in range(repeats):
        start = time.perf_counter()
        rig.run(ops)
        best = min(best, time.perf_counter() - start)
    return best / ops


class TestAddedCostBounds:
    """Absolute added microseconds per operation stay small constants."""

    def _added_us(self, rig_class, ops):
        baseline = best_seconds_per_op(rig_class(protected=False), ops)
        overhaul = best_seconds_per_op(rig_class(protected=True), ops)
        return (overhaul - baseline) * 1e6

    def test_device_access_added_cost(self):
        assert self._added_us(DeviceAccessRig, 1500) < 60.0  # measured ~7-10

    def test_clipboard_added_cost(self):
        assert self._added_us(ClipboardRig, 400) < 120.0  # measured ~15-20

    def test_screen_capture_added_cost(self):
        assert self._added_us(ScreenCaptureRig, 300) < 200.0  # measured ~20-50

    def test_filesystem_added_cost_is_tiny(self):
        """The Bonnie++ regime: a create/stat/delete triple gains at most a
        couple of microseconds (one map lookup on the create's open)."""
        assert self._added_us(FilesystemRig, 1500) < 15.0

    def test_shared_memory_added_cost_is_tiny(self):
        """The interception fast path is one revoked-bit test; faults are
        amortised over the 500 ms wait-list window."""
        assert self._added_us(SharedMemoryRig, 6000) < 10.0


class TestStructuralGuards:
    def test_alerts_do_not_accumulate_per_operation(self):
        """10k grants in one alert window must produce O(1) alerts."""
        rig = DeviceAccessRig(protected=True)
        rig.run(2_000)
        assert rig.machine.xserver.overlay.total_shown <= 2

    def test_transfers_do_not_accumulate(self):
        rig = ClipboardRig(protected=True)
        rig.run(500)
        assert len(rig.machine.xserver.selections.active_transfers()) == 0

    def test_decision_log_is_bounded(self):
        rig = DeviceAccessRig(protected=True)
        monitor = rig.machine.overhaul.monitor
        monitor.DECISION_LOG_LIMIT = 500
        rig.run(2_000)
        assert len(monitor.decisions) <= 500
        assert monitor.grant_count >= 2_000
