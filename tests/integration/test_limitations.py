"""The paper's documented limitations (Sections II, III-E, V-C), reproduced.

These tests assert that the *limitations hold* -- a reproduction must show
where the system fails exactly as described, not just where it succeeds.
"""

import pytest

from repro.apps import DelayedScreenshotTool, SimApp, VideoConfApp
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds
from repro.xserver.errors import BadAccess


class TestMimicryOutOfScope:
    def test_user_blessed_malware_gets_access(self, machine):
        """Threat-model scenario 3: a trojan the user knowingly installs
        and clicks is indistinguishable from a legitimate app -- Overhaul
        grants it access (by design, out of scope)."""
        trojan = SimApp(machine, "/usr/bin/totally-legit-skype", comm="skype2")
        machine.settle()
        trojan.click()  # the user was fooled into interacting
        fd = trojan.open_device("video0")
        assert fd >= 3  # the mimicry attack succeeds, as the paper concedes


class TestScheduledTasksUnsupported:
    def test_cron_style_job_blocked(self, machine):
        """'OVERHAUL does not support running scheduled tasks... (e.g., a
        cron job or daemon that periodically takes screen captures).'"""
        daemon = SimApp(machine, "/usr/bin/cron-shot", comm="cron-shot", with_window=False)
        blocked = {"count": 0}

        def periodic_capture():
            try:
                machine.xserver.get_image(
                    daemon.client, machine.xserver.root_window.drawable_id
                )
            except BadAccess:
                blocked["count"] += 1
            machine.scheduler.schedule_after(
                from_seconds(60.0), periodic_capture, label="cron-shot"
            )

        machine.scheduler.schedule_after(from_seconds(60.0), periodic_capture)
        machine.run_for(from_seconds(300.0))
        assert blocked["count"] == 5  # every scheduled capture denied

    def test_non_interactive_daemon_microphone_blocked(self, machine):
        daemon = SimApp(machine, "/usr/bin/voiced", comm="voiced", with_window=False)
        machine.settle()
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")


class TestDelayedScreenshotLimitation:
    def test_delay_beyond_threshold_fails(self, machine):
        tool = DelayedScreenshotTool(machine, delay=from_seconds(10.0))
        machine.settle()
        tool.click_and_shoot_delayed()
        machine.run_for(from_seconds(11.0))
        assert tool.delayed_denied

    def test_limitation_is_exactly_the_threshold(self, machine):
        """The boundary: a delay just under delta works, just over fails."""
        delta = machine.overhaul.config.interaction_threshold
        fast = DelayedScreenshotTool(machine, delay=delta - from_seconds(0.5), comm="fast")
        machine.settle()
        fast.click_and_shoot_delayed()
        machine.run_for(delta)
        assert fast.delayed_result is not None

        slow = DelayedScreenshotTool(machine, delay=delta + from_seconds(0.5), comm="slow")
        machine.settle()
        slow.click_and_shoot_delayed()
        machine.run_for(delta + from_seconds(1.0))
        assert slow.delayed_denied


class TestSkypeStartupProbe:
    def test_autostart_probe_blocked_but_calls_work(self, machine):
        """The single 'spurious alert' of Section V-C, and the paper's
        argument that it is desired behaviour."""
        skype = VideoConfApp(machine, startup_camera_check=True)
        machine.settle()
        assert skype.startup_blocked
        alerts = machine.xserver.overlay.alerts_for_pid(skype.pid)
        assert any("BLOCKED" in alert.message for alert in alerts)
        # "This did not cause subsequent video calls to fail."
        skype.click_call_button()
        assert skype.call_active


class TestWeakerThanACGs:
    def test_any_recent_input_blesses_any_operation(self, machine):
        """Section III-E: Overhaul cannot match input to *intent*.  A click
        on an unrelated button still blesses a device open within delta --
        strictly weaker than access-control gadgets, by design."""
        app = SimApp(machine, "/usr/bin/editor", comm="editor")
        machine.settle()
        app.click()  # the user clicked 'save', not 'record'
        fd = app.open_device("mic0")  # ...but the open is granted anyway
        assert fd >= 3
