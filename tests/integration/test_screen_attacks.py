"""Every display-content exfiltration route the paper enumerates (IV-A).

GetImage on the root window, GetImage on a victim's window, the MIT-SHM
variant, and the CopyArea/CopyPlane side channel -- each demonstrated
working on the baseline server and mediated under Overhaul.
"""

import pytest

from repro.apps import SimApp
from repro.core import Machine
from repro.xserver.errors import BadAccess
from repro.xserver.window import Geometry

SECRET_PIXELS = b"E-BANKING-BALANCE-9000"


def rig(machine):
    victim = SimApp(machine, "/usr/bin/bank-app", comm="bank-app")
    victim.paint(SECRET_PIXELS)
    # Beside the victim, not over it: a spy mapped at the default geometry
    # would occlude the victim's pixels on the 2D screen.
    spy = SimApp(machine, "/usr/bin/screenspy", comm="screenspy", map_window=False,
                 geometry=Geometry(760, 100, 640, 480))
    machine.settle()
    return victim, spy


class TestBaselineExfiltration:
    """The stock X server leaks through all four routes."""

    @pytest.fixture
    def setup(self):
        machine = Machine.baseline()
        victim, spy = rig(machine)
        return machine, victim, spy

    def test_root_getimage(self, setup):
        machine, victim, spy = setup
        assert SECRET_PIXELS in spy.capture_screen()

    def test_victim_window_getimage(self, setup):
        machine, victim, spy = setup
        assert spy.capture_window(victim.window) == SECRET_PIXELS

    def test_mit_shm_getimage(self, setup):
        machine, victim, spy = setup
        assert SECRET_PIXELS in spy.capture_screen(via="mit-shm")

    def test_copyarea_sidechannel(self, setup):
        machine, victim, spy = setup
        pixmap = machine.xserver.create_pixmap(spy.client)
        machine.xserver.copy_area(spy.client, victim.window.drawable_id, pixmap.drawable_id)
        assert bytes(pixmap.content) == SECRET_PIXELS


class TestOverhaulMediation:
    """Under Overhaul the same routes require recent interaction."""

    @pytest.fixture
    def setup(self):
        machine = Machine.with_overhaul()
        victim, spy = rig(machine)
        return machine, victim, spy

    def test_root_getimage_blocked(self, setup):
        machine, victim, spy = setup
        with pytest.raises(BadAccess):
            spy.capture_screen()

    def test_victim_window_getimage_blocked(self, setup):
        machine, victim, spy = setup
        with pytest.raises(BadAccess):
            spy.capture_window(victim.window)

    def test_mit_shm_blocked_identically(self, setup):
        """'or the XShmGetImage request provided by the MIT shared memory
        extension' -- same gate, different request."""
        machine, victim, spy = setup
        with pytest.raises(BadAccess):
            spy.capture_screen(via="mit-shm")
        assert machine.xserver.screen_captures_denied >= 1

    def test_copyarea_foreign_source_blocked(self, setup):
        machine, victim, spy = setup
        pixmap = machine.xserver.create_pixmap(spy.client)
        with pytest.raises(BadAccess):
            machine.xserver.copy_area(
                spy.client, victim.window.drawable_id, pixmap.drawable_id
            )
        assert bytes(pixmap.content) == b""  # nothing leaked

    def test_copyplane_foreign_source_blocked(self, setup):
        machine, victim, spy = setup
        pixmap = machine.xserver.create_pixmap(spy.client)
        with pytest.raises(BadAccess):
            machine.xserver.copy_plane(
                spy.client, victim.window.drawable_id, pixmap.drawable_id
            )

    def test_same_owner_copyarea_unmediated(self, setup):
        """'If the owners of both buffers are identical... the request is
        allowed to proceed' -- no interaction needed for self-copies."""
        machine, victim, spy = setup
        own = machine.xserver.create_pixmap(spy.client)
        own.draw(b"my-own-pixels")
        destination = machine.xserver.create_pixmap(spy.client)
        machine.xserver.copy_area(spy.client, own.drawable_id, destination.drawable_id)
        assert bytes(destination.content) == b"my-own-pixels"

    def test_own_window_getimage_unmediated(self, setup):
        machine, victim, spy = setup
        # The spy reading its own (unmapped) window content: not a capture.
        assert spy.capture_window(spy.window) == b""

    def test_interaction_opens_all_routes_with_alerts(self, setup):
        machine, victim, spy = setup
        machine.xserver.map_window(spy.client, spy.window.drawable_id)
        machine.settle()
        spy.click()
        assert SECRET_PIXELS in spy.capture_screen()
        pixmap = machine.xserver.create_pixmap(spy.client)
        machine.xserver.copy_area(spy.client, victim.window.drawable_id, pixmap.drawable_id)
        assert bytes(pixmap.content) == SECRET_PIXELS
        # Granted captures are alerted (the V-D recorder appeared in logs).
        assert any(
            a.operation == "screen" for a in machine.xserver.overlay.alerts_for_pid(spy.pid)
        )

    def test_granted_capture_includes_alert_band(self, setup):
        """A capture that was itself alerted contains the alert: the
        overlay is above everything, including what screengrabs see."""
        machine, victim, spy = setup
        machine.xserver.map_window(spy.client, spy.window.drawable_id)
        machine.settle()
        spy.click()
        image = spy.capture_screen()
        assert machine.xserver.overlay.shared_secret.encode() in image
