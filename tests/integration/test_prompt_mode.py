"""Integration tests for prompt mode (Section IV-A's verified extension).

The paper implemented-but-did-not-explore a prompt-based policy on top of
Overhaul's two trusted paths.  These tests pin the security properties that
make the prompt *unforgeable*: only hardware input answers it, only the
display manager can respond to the kernel, and answers are scoped to one
(process, operation) pair for one threshold window.
"""

import pytest

from repro.apps import SimApp, Spyware
from repro.core import Machine, OverhaulConfig
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds
from repro.xserver.events import EventKind


@pytest.fixture
def machine():
    m = Machine.with_overhaul(OverhaulConfig(prompt_mode=True))
    m.settle()
    return m


@pytest.fixture
def daemon(machine):
    """A non-interactive app that legitimately needs occasional device
    access -- the use case prompts exist for."""
    return SimApp(machine, "/usr/bin/voiced", comm="voiced", with_window=False)


def prompt_manager(machine):
    return machine.overhaul.extension.prompt_manager


class TestPromptFlow:
    def test_denied_access_raises_prompt(self, machine, daemon):
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        assert prompt_manager(machine).active is not None
        assert prompt_manager(machine).active.comm == "voiced"

    def test_prompt_composited_above_everything(self, machine, daemon):
        painter = SimApp(machine, "/usr/bin/painter", comm="painter")
        painter.paint(b"WINDOW")
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        composed = machine.xserver.compose_screen()
        assert b"PROMPT[" in composed
        assert composed.index(b"PROMPT[") > composed.index(b"WINDOW")

    def test_prompt_carries_shared_secret(self, machine, daemon):
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        banner = prompt_manager(machine).banner()
        assert machine.xserver.overlay.shared_secret.encode() in banner

    def test_approve_then_retry_succeeds(self, machine, daemon):
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(100, 10)  # approve region
        fd = daemon.open_device("mic0")
        assert fd >= 3

    def test_deny_then_retry_still_denied(self, machine, daemon):
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(machine.xserver.width - 50, 10)  # deny region
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        # ...and the denial is remembered: no immediate re-prompt.
        assert prompt_manager(machine).active is None

    def test_approval_expires_after_threshold(self, machine, daemon):
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(100, 10)
        daemon.open_device("mic0")
        machine.run_for(machine.overhaul.config.interaction_threshold + 1)
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")

    def test_duplicate_attempts_do_not_stack_prompts(self, machine, daemon):
        for _ in range(5):
            with pytest.raises(OverhaulDenied):
                daemon.open_device("mic0")
        manager = prompt_manager(machine)
        assert manager.active is not None
        assert not manager.queue  # one outstanding question, not five

    def test_prompts_queue_across_processes(self, machine, daemon):
        other = SimApp(machine, "/usr/bin/camd", comm="camd", with_window=False)
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        with pytest.raises(OverhaulDenied):
            other.open_device("video0")
        manager = prompt_manager(machine)
        assert manager.active.comm == "voiced"
        assert len(manager.queue) == 1
        machine.mouse.click(100, 10)  # answer the first
        assert manager.active.comm == "camd"


class TestPromptUnforgeability:
    def test_xtest_click_cannot_answer(self, machine, daemon):
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.xserver.xtest_fake_input(
            daemon.client, EventKind.BUTTON_PRESS, detail=1, x=100, y=10
        )
        assert prompt_manager(machine).active is not None
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")

    def test_sendevent_click_cannot_answer(self, machine, daemon):
        target = SimApp(machine, "/usr/bin/any", comm="any")
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.xserver.send_event(
            daemon.client, target.window.drawable_id, EventKind.BUTTON_PRESS, detail=1
        )
        assert prompt_manager(machine).active is not None

    def test_approval_scoped_to_operation(self, machine, daemon):
        """Approving the microphone does not bless the camera."""
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(100, 10)
        daemon.open_device("mic0")
        with pytest.raises(OverhaulDenied):
            daemon.open_device("video0")

    def test_approval_scoped_to_process(self, machine, daemon):
        """Approving one process does not bless another asking for the
        same resource."""
        freeloader = Spyware(machine)
        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        machine.mouse.click(100, 10)
        daemon.open_device("mic0")
        assert freeloader.attempt_microphone() is None

    def test_non_display_manager_cannot_inject_responses(self, machine, daemon):
        """Only the authenticated display-manager channel may answer."""
        from repro.core.prompt_mode import MSG_PROMPT_RESPONSE
        from repro.kernel.devfs import UdevHelper  # noqa: F401 (context)
        from repro.kernel.errors import OperationNotPermitted

        with pytest.raises(OverhaulDenied):
            daemon.open_device("mic0")
        helper = machine.kernel.udev_helper
        with pytest.raises(OperationNotPermitted):
            helper._channel.send_to_kernel(
                helper.task,
                MSG_PROMPT_RESPONSE,
                {
                    "prompt_id": 1,
                    "pid": daemon.pid,
                    "operation": "microphone:/dev/mic0",
                    "approved": True,
                    "timestamp": machine.now,
                },
            )


class TestPromptModeCoexistence:
    def test_normal_temporal_grants_skip_prompting(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        fd = app.open_device("mic0")
        assert fd >= 3
        assert prompt_manager(machine).prompts_shown == 0

    def test_traced_task_never_prompts(self, machine, daemon):
        parent = SimApp(machine, "/usr/bin/dbg", comm="dbg", map_window=True)
        machine.settle()
        child = machine.kernel.sys_fork(parent.task)
        machine.kernel.ptrace.attach(parent.task, child)
        with pytest.raises(OverhaulDenied):
            machine.kernel.sys_open(child, machine.kernel.device_path("mic0"))
        assert prompt_manager(machine).active is None

    def test_prompt_mode_off_by_default(self):
        machine = Machine.with_overhaul()
        assert machine.overhaul.extension.prompt_manager is None
        assert machine.overhaul.monitor.prompt_arbiter is None
