"""Integration tests for the gray-box intent extension (Section VII).

The black-box gap (any recent input blesses any operation) is closed for
profiled applications: the blessing input must match the operation's
intent rule.  Unprofiled applications keep stock Overhaul behaviour.
"""

import pytest

from repro.apps import SimApp
from repro.core import Machine, OverhaulConfig
from repro.core.graybox import (
    InputDescriptor,
    IntentProfile,
    IntentProfileLearner,
    Region,
)
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds
from repro.xserver.input_drivers import KEYCODE_PRINTSCREEN


@pytest.fixture
def machine():
    m = Machine.with_overhaul(OverhaulConfig(graybox_enabled=True))
    m.settle()
    return m


def voicenote_with_profile(machine):
    """An app whose mic use is profiled to its record button."""
    app = SimApp(machine, "/usr/bin/voicenote", comm="voicenote")
    machine.settle()
    geometry = app.window.geometry
    record_button = Region(
        geometry.width - 100, geometry.height - 50, geometry.width, geometry.height
    )
    profile = IntentProfile("voicenote").allow_region("microphone", record_button)
    machine.overhaul.monitor.graybox.install_profile(profile)
    return app, record_button


class TestIntentConjunct:
    def test_wrong_button_click_does_not_bless_profiled_op(self, machine):
        """The ACG gap, closed: a 'save' click no longer opens the mic."""
        app, _ = voicenote_with_profile(machine)
        geometry = app.window.geometry
        machine.mouse.click(geometry.x + 10, geometry.y + 10)
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")
        assert machine.overhaul.monitor.graybox.intent_denials == 1

    def test_record_button_click_blesses(self, machine):
        app, button = voicenote_with_profile(machine)
        geometry = app.window.geometry
        machine.mouse.click(
            geometry.x + (button.x0 + button.x1) // 2,
            geometry.y + (button.y0 + button.y1) // 2,
        )
        assert app.open_device("mic0") >= 3

    def test_unprofiled_operations_stay_black_box(self, machine):
        """The profile narrows only what it names: screen capture still
        works from any click."""
        app, _ = voicenote_with_profile(machine)
        geometry = app.window.geometry
        machine.mouse.click(geometry.x + 10, geometry.y + 10)
        assert app.capture_screen() is not None

    def test_unprofiled_apps_stay_black_box(self, machine):
        other = SimApp(machine, "/usr/bin/legacy", comm="legacy")
        machine.settle()
        other.click()
        assert other.open_device("mic0") >= 3

    def test_temporal_rule_still_applies(self, machine):
        """Intent match cannot resurrect an expired interaction."""
        app, button = voicenote_with_profile(machine)
        geometry = app.window.geometry
        machine.mouse.click(
            geometry.x + button.x0 + 5, geometry.y + button.y0 + 5
        )
        machine.run_for(from_seconds(3.0))
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")

    def test_keycode_rules(self, machine):
        """A screenshot tool profiled to the PrintScreen key."""
        tool = SimApp(machine, "/usr/bin/shotkey", comm="shotkey")
        machine.settle()
        profile = IntentProfile("shotkey").allow_keycode("screen", KEYCODE_PRINTSCREEN)
        machine.overhaul.monitor.graybox.install_profile(profile)
        tool.focus()
        machine.keyboard.type_text("x")  # ordinary typing: not intent
        from repro.xserver.errors import BadAccess

        with pytest.raises(BadAccess):
            tool.capture_screen()
        machine.keyboard.press(KEYCODE_PRINTSCREEN)
        assert tool.capture_screen() is not None

    def test_graybox_off_by_default(self):
        machine = Machine.with_overhaul()
        assert machine.overhaul.monitor.graybox is None


class TestProfileLearner:
    def test_learned_profile_reproduces_training_behaviour(self, machine):
        learner = IntentProfileLearner("voicenote")
        # Training trace: mic always follows a click at ~(540, 430).
        learner.observe_input(InputDescriptor("button", 540, 430), timestamp=100)
        learner.observe_operation("microphone:/dev/mic0", timestamp=150)
        learner.observe_input(InputDescriptor("button", 545, 432), timestamp=300)
        learner.observe_operation("microphone:/dev/mic0", timestamp=320)
        profile = learner.build_profile()

        near = InputDescriptor("button", 542, 428)
        far = InputDescriptor("button", 10, 10)
        assert profile.permits("microphone:/dev/mic0", near)
        assert not profile.permits("microphone:/dev/mic0", far)

    def test_operations_without_preceding_input_unattributed(self):
        learner = IntentProfileLearner("daemon")
        learner.observe_operation("microphone:/dev/mic0", timestamp=50)
        profile = learner.build_profile()
        # Nothing learned: the operation stays unconstrained by the profile.
        assert profile.rule_for("microphone:/dev/mic0") is None

    def test_key_driven_operations_learned(self):
        learner = IntentProfileLearner("shotkey")
        learner.observe_input(InputDescriptor("key", keycode=107), timestamp=10)
        learner.observe_operation("screen", timestamp=12)
        profile = learner.build_profile()
        assert profile.permits("screen", InputDescriptor("key", keycode=107))
        assert not profile.permits("screen", InputDescriptor("key", keycode=42))

    def test_end_to_end_learn_then_enforce(self, machine):
        """Train on the live system, install the learned profile, verify
        enforcement -- the full dynamic-analysis loop."""
        app = SimApp(machine, "/usr/bin/trainee", comm="trainee")
        machine.settle()
        geometry = app.window.geometry
        learner = IntentProfileLearner("trainee")

        # Training session: the user clicks the mic button, app records.
        machine.mouse.click(geometry.x + 500, geometry.y + 400)
        learner.observe_input(InputDescriptor("button", 500, 400), machine.now)
        app.open_device("mic0")
        learner.observe_operation("microphone:/dev/mic0", machine.now)

        machine.overhaul.monitor.graybox.install_profile(learner.build_profile())

        # Enforcement: same button works, another button does not.
        machine.run_for(from_seconds(3.0))
        machine.mouse.click(geometry.x + 502, geometry.y + 398)
        assert app.open_device("mic0") >= 3
        machine.run_for(from_seconds(3.0))
        machine.mouse.click(geometry.x + 20, geometry.y + 20)
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")
