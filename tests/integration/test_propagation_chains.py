"""Arbitrary-length propagation chains (Section III-D).

"OVERHAUL can support process spawns and IPC chains of arbitrary length and
complexity, and remain transparent to the applications and oblivious to the
application-level communication protocols."
"""

import pytest

from repro.apps import SimApp
from repro.core import Machine
from repro.sim.time import NEVER, from_seconds


@pytest.fixture
def machine():
    m = Machine.with_overhaul()
    m.settle()
    return m


def fresh_task(machine, name):
    task, _ = machine.launch(f"/usr/bin/{name}", comm=name, connect_x=False)
    return task


class TestMixedChains:
    def test_fork_then_pipe_then_socket_chain(self, machine):
        """click -> A --fork--> B --pipe--> C --socket--> D -> device."""
        app = SimApp(machine, "/usr/bin/a", comm="a")
        machine.settle()
        app.click()
        click_time = machine.now

        b = machine.kernel.sys_fork(app.task)  # P1
        c = fresh_task(machine, "c")
        d = fresh_task(machine, "d")

        pipe = machine.kernel.pipes.create_pipe()
        pipe.write(b, b"job")
        pipe.read(c, 3)  # P2 via pipe

        conn = machine.kernel.sockets.socketpair(c, d)
        conn.send(c, b"job")
        conn.receive(d)  # P2 via socket

        assert d.interaction_ts == click_time
        fd = machine.kernel.sys_open(d, machine.kernel.device_path("mic0"))
        assert fd >= 3

    def test_five_hop_chain_preserves_timestamp(self, machine):
        app = SimApp(machine, "/usr/bin/origin", comm="origin")
        machine.settle()
        app.click()
        click_time = machine.now

        current = app.task
        for hop in range(5):
            nxt = fresh_task(machine, f"hop{hop}")
            queue = machine.kernel.msg_queues.msgget(1000 + hop)
            queue.send(current, b"m")
            queue.receive(nxt)
            current = nxt
        assert current.interaction_ts == click_time

    def test_chain_through_fifo_and_pty(self, machine):
        app = SimApp(machine, "/usr/bin/origin", comm="origin")
        machine.settle()
        app.click()
        click_time = machine.now

        machine.kernel.filesystem.create_fifo(
            "/tmp/chain.fifo", owner=app.task.creds
        )
        fifo = machine.kernel.pipes.open_fifo("/tmp/chain.fifo")
        middle = fresh_task(machine, "middle")
        fifo.write(app.task, b"x")
        fifo.read(middle, 1)

        pty = machine.kernel.pty.openpty()
        final = fresh_task(machine, "final")
        pty.write(middle, b"run\n", from_master=True)
        pty.read(final, 10, from_master=False)

        assert final.interaction_ts == click_time

    def test_stale_link_in_chain_does_not_refresh(self, machine):
        """A message sent *before* the click cannot deliver the click's
        timestamp: the embed happens at send time."""
        app = SimApp(machine, "/usr/bin/origin", comm="origin")
        receiver = fresh_task(machine, "recv")
        machine.settle()
        pipe = machine.kernel.pipes.create_pipe()
        pipe.write(app.task, b"early")  # embeds NEVER
        app.click()
        pipe.read(receiver, 5)
        assert receiver.interaction_ts == NEVER

    def test_timestamps_merge_not_overwrite(self, machine):
        """A receiver with a fresher own timestamp keeps it no matter how
        many stale messages it reads."""
        stale_app = SimApp(machine, "/usr/bin/stale", comm="stale")
        fresh = fresh_task(machine, "fresh")
        machine.settle()
        stale_app.click()
        machine.run_for(from_seconds(1.0))
        pipe = machine.kernel.pipes.create_pipe()
        pipe.write(stale_app.task, b"old")
        fresh.record_interaction(machine.now)
        own_time = fresh.interaction_ts
        pipe.read(fresh, 3)
        assert fresh.interaction_ts == own_time


class TestBaselineChainsCarryNothing:
    def test_chain_on_baseline_machine_propagates_no_state(self):
        machine = Machine.baseline()
        machine.settle()
        app = SimApp(machine, "/usr/bin/a", comm="a")
        machine.settle()
        app.click()  # delivered, but nothing records interactions
        receiver, _ = machine.launch("/usr/bin/b", connect_x=False)
        pipe = machine.kernel.pipes.create_pipe()
        pipe.write(app.task, b"x")
        pipe.read(receiver, 1)
        assert receiver.interaction_ts == NEVER
