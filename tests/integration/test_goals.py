"""The paper's security goals S1-S4 (Section II) as executable tests."""

import pytest

from repro.apps import (
    ClickjackingMalware,
    FakeAlertMalware,
    InputForgeryMalware,
    SimApp,
    Spyware,
    TextEditor,
)
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds
from repro.xserver.errors import BadAccess


class TestS1AccessRequiresRecentInteraction:
    """S1: access to privacy-sensitive resources only if the user explicitly
    interacted with that application immediately before the request."""

    def test_hardware_devices(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")
        app.click()
        fd = app.open_device("mic0")
        assert fd >= 3

    def test_virtual_resources_clipboard(self, machine):
        app = TextEditor(machine)
        donor = TextEditor(machine, comm="donor")
        machine.settle()
        donor.user_copy(b"data")
        machine.run_for(from_seconds(3.0))
        with pytest.raises(BadAccess):
            app.paste_text()
        app.click()
        assert app.paste_text() == b"data"

    def test_virtual_resources_screen(self, machine):
        app = SimApp(machine, "/usr/bin/cap", comm="cap")
        machine.settle()
        with pytest.raises(BadAccess):
            app.capture_screen()
        app.click()
        assert app.capture_screen() is not None

    def test_immediately_before_means_within_delta(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        machine.run_for(machine.overhaul.config.interaction_threshold + 1)
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")

    def test_interaction_with_one_app_does_not_bless_another(self, machine):
        """The binding is per-process: clicking app A grants nothing to B."""
        a = SimApp(machine, "/usr/bin/a", comm="a")
        b = SimApp(machine, "/usr/bin/b", comm="b")
        machine.settle()
        a.click()
        fd = a.open_device("mic0")
        assert fd >= 3
        with pytest.raises(OverhaulDenied):
            b.open_device("mic0")


class TestS2NoForgedInput:
    """S2: programs cannot forge input events to escalate privileges."""

    def test_sendevent_cannot_escalate(self, machine):
        malware = InputForgeryMalware(machine)
        machine.settle()
        assert not malware.forge_with_sendevent()

    def test_xtest_cannot_escalate(self, machine):
        malware = InputForgeryMalware(machine)
        machine.settle()
        assert not malware.forge_with_xtest()

    def test_synthetic_events_still_delivered_to_apps(self, machine):
        """Filtering is for the trusted path only; GUI testing still works
        (transparency)."""
        from repro.xserver.events import EventKind

        app = SimApp(machine, "/usr/bin/app", comm="app")
        machine.settle()
        before = app.client.events_received
        machine.xserver.xtest_fake_input(
            app.client, EventKind.BUTTON_PRESS, detail=1,
            x=app.window.geometry.x + 1, y=app.window.geometry.y + 1,
        )
        assert app.client.events_received == before + 1

    def test_forged_escalation_on_behalf_of_other_app(self, machine):
        """Malware aiming fake clicks at a *victim's* window also must not
        bless the victim (which the malware could then ptrace or exploit)."""
        from repro.sim.time import NEVER
        from repro.xserver.events import EventKind

        victim = SimApp(machine, "/usr/bin/victim", comm="victim")
        malware = InputForgeryMalware(machine)
        machine.settle()
        machine.xserver.xtest_fake_input(
            malware.client, EventKind.BUTTON_PRESS, detail=1,
            x=victim.window.geometry.x + 5, y=victim.window.geometry.y + 5,
        )
        assert victim.task.interaction_ts == NEVER


class TestS3NoInteractionHijacking:
    """S3: legitimate user interaction cannot be hijacked."""

    def test_transparent_overlay_click_theft_yields_nothing(self, machine):
        victim = TextEditor(machine)
        machine.settle()
        jacker = ClickjackingMalware(machine, victim.window)
        machine.settle()
        jacker.pop_over_and_wait()
        machine.mouse.click_window(victim.window)
        assert not jacker.try_microphone()

    def test_popup_ambush_window_yields_nothing(self, machine):
        """'periodically display a previously invisible window over other
        applications': the fresh window fails the visibility threshold."""
        ambusher = SimApp(machine, "/usr/bin/ambush", comm="ambush", map_window=False)
        machine.settle()
        # The ambush: map right before the user's click lands.
        machine.xserver.map_window(ambusher.client, ambusher.window.drawable_id)
        machine.mouse.click_window(ambusher.window)
        with pytest.raises(OverhaulDenied):
            ambusher.open_device("mic0")

    def test_notifications_bound_to_receiving_pid(self, machine):
        """A background process cannot hijack another app's notification:
        the PID binding comes from the kernel, not from client claims."""
        foreground = SimApp(machine, "/usr/bin/fg", comm="fg")
        background = Spyware(machine)
        machine.settle()
        foreground.click()
        assert foreground.task.interaction_ts == machine.now
        assert background.attempt_microphone() is None


class TestS4TrustedAlerts:
    """S4: successful accesses are notified via an unforgeable, unobscurable
    output path."""

    def test_granted_device_access_always_alerts(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        app.open_device("mic0")
        alerts = machine.xserver.overlay.alerts_for_pid(app.pid)
        assert len(alerts) == 1
        assert alerts[0].shared_secret == machine.xserver.overlay.shared_secret

    def test_alert_rides_above_all_windows_in_composition(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.paint(b"WINDOW-CONTENT")
        app.click()
        app.open_device("mic0")
        composed = machine.xserver.compose_screen()
        secret = machine.xserver.overlay.shared_secret.encode()
        assert secret in composed
        assert composed.index(secret) > composed.index(b"WINDOW-CONTENT")

    def test_clients_cannot_trigger_or_forge_real_alerts(self, machine):
        faker = FakeAlertMalware(machine)
        machine.settle()
        faker.display_fake_alert()
        # Nothing reached the real overlay.
        assert machine.xserver.overlay.total_shown == 0

    def test_alert_expires_after_a_few_seconds(self, machine):
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        app.open_device("mic0")
        assert machine.xserver.overlay.is_alert_visible(machine.now)
        machine.run_for(machine.overhaul.config.alert_duration + 1)
        assert not machine.xserver.overlay.is_alert_visible(machine.now)
