"""The autostart path that produced the paper's spurious Skype alert."""

import pytest

from repro.apps import Spyware, VideoConfApp
from repro.apps.session import SessionManager
from repro.core import Machine
from repro.sim.time import NEVER


@pytest.fixture
def machine():
    m = Machine.with_overhaul()
    m.settle()
    return m


class TestAutostart:
    def test_autostarted_apps_have_no_interaction_provenance(self, machine):
        session = SessionManager(machine)
        session.add_autostart(
            "skype",
            lambda m, parent: VideoConfApp(m, parent_task=parent),
        )
        (skype,) = session.login()
        assert skype.task.interaction_ts == NEVER
        assert skype.task.is_descendant_of(session.task)

    def test_autostart_skype_probe_blocked_with_alert(self, machine):
        """The exact V-C scenario: boot -> session -> Skype -> camera probe
        -> blocked + alert; later user-driven calls unaffected."""
        session = SessionManager(machine)
        session.add_autostart(
            "skype",
            lambda m, parent: VideoConfApp(
                m, parent_task=parent, startup_camera_check=True
            ),
        )
        (skype,) = session.login()
        assert skype.startup_blocked
        assert any(
            "BLOCKED" in alert.message
            for alert in machine.xserver.overlay.alerts_for_pid(skype.pid)
        )
        machine.settle()
        skype.click_call_button()
        assert skype.call_active

    def test_autostarted_spyware_is_just_another_blocked_daemon(self, machine):
        """Persistence via autostart (the classic malware trick) gains the
        spyware nothing under Overhaul."""
        session = SessionManager(machine)
        session.add_autostart("spyd", lambda m, parent: Spyware(m, parent_task=parent))
        (spy,) = session.login()
        spy.attempt_all()
        assert spy.stolen == []
        assert sum(spy.blocked.values()) == 3

    def test_multiple_entries_start_in_order(self, machine):
        session = SessionManager(machine)
        session.add_autostart("a", lambda m, p: VideoConfApp(m, comm="appa", parent_task=p))
        session.add_autostart("b", lambda m, p: VideoConfApp(m, comm="appb", parent_task=p))
        started = session.login()
        assert [app.comm for app in started] == ["appa", "appb"]
