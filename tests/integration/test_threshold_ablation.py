"""The delta-threshold trade-off (Section IV-B).

"We empirically determined that setting a threshold of less than 1 second
could lead to falsely revoked permissions, but 2 seconds is sufficient to
prevent incorrectly denying access to legitimate processes."

The reproduction models the latency between a user's click and the
application's device request as a distribution (UI dispatch + process
scheduling + app logic); sweeping delta shows false revocations appear as
the threshold shrinks below the latency tail.
"""

import pytest

from repro.apps import SimApp
from repro.core import Machine, OverhaulConfig
from repro.kernel.errors import OverhaulDenied
from repro.sim.rng import RandomSource
from repro.sim.time import from_millis, from_seconds


def false_revocation_rate(delta_seconds: float, trials: int = 60, seed: int = 42) -> float:
    """Fraction of legitimate click->open sequences denied at this delta.

    The click-to-open latency model: mostly fast (~150 ms), with a heavy
    tail up to ~1.5 s (slow app startup paths, GC pauses, disk waits) --
    the kind of real-world lag the authors observed.
    """
    config = OverhaulConfig(
        interaction_threshold=from_seconds(delta_seconds),
        shm_waitlist=min(from_millis(500), from_seconds(delta_seconds) // 2),
    )
    machine = Machine.with_overhaul(config)
    app = SimApp(machine, "/usr/bin/app", comm="app")
    machine.settle()
    rng = RandomSource(seed, "latency")
    denied = 0
    for _ in range(trials):
        app.click()
        # Latency draw: 80% fast, 20% tail.
        if rng.chance(0.8):
            latency = rng.uniform(0.05, 0.4)
        else:
            latency = rng.uniform(0.4, 1.5)
        machine.run_for(from_seconds(latency))
        try:
            fd = app.open_device("mic0")
            machine.kernel.sys_close(app.task, fd)
        except OverhaulDenied:
            denied += 1
    return denied / trials


class TestDeltaAblation:
    def test_two_seconds_is_sufficient(self):
        """At the paper's delta = 2 s, no legitimate access is denied."""
        assert false_revocation_rate(2.0) == 0.0

    def test_sub_second_threshold_falsely_revokes(self):
        """Below 1 s, the latency tail causes false revocations."""
        assert false_revocation_rate(0.5) > 0.05

    def test_rate_monotonically_improves_with_delta(self):
        rates = [false_revocation_rate(delta) for delta in (0.25, 0.5, 1.0, 2.0)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))
        assert rates[0] > rates[-1]

    def test_one_second_borderline(self):
        """1 s sits at the edge: better than 0.5 s, not yet clean."""
        rate_1s = false_revocation_rate(1.0)
        assert rate_1s < false_revocation_rate(0.5)
        assert rate_1s > 0.0


class TestTighterDeltaStillBlocksSpyware:
    def test_security_independent_of_delta_for_idle_malware(self):
        """Background spyware has *no* interaction, so any delta blocks it;
        the threshold only trades off usability."""
        from repro.apps import Spyware

        for delta in (0.25, 2.0, 10.0):
            config = OverhaulConfig(
                interaction_threshold=from_seconds(delta),
                shm_waitlist=from_millis(100),
            )
            machine = Machine.with_overhaul(config)
            machine.settle()
            spy = Spyware(machine)
            spy.attempt_all()
            assert spy.stolen == []
