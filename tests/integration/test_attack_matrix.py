"""The full attack matrix on both machine configurations.

The strongest single statement of the reproduction: every attack class the
paper analyses succeeds on the simulated stock system and is defeated under
Overhaul -- i.e. the substrate genuinely contains the holes, and the
defence genuinely closes them.
"""

import pytest

from repro.core import Machine
from repro.workloads.attacks import FLIPPABLE_ATTACKS, run_attack_matrix


@pytest.fixture(scope="module")
def baseline_matrix():
    return run_attack_matrix(Machine.baseline())


@pytest.fixture(scope="module")
def overhaul_matrix():
    return run_attack_matrix(Machine.with_overhaul())


class TestAttackMatrix:
    def test_every_attack_succeeds_on_baseline(self, baseline_matrix):
        outcomes = baseline_matrix.by_name()
        for name in FLIPPABLE_ATTACKS:
            assert outcomes[name].succeeded, f"{name} should work on stock X11/Linux"

    def test_every_attack_blocked_under_overhaul(self, overhaul_matrix):
        outcomes = overhaul_matrix.by_name()
        for name in FLIPPABLE_ATTACKS:
            assert not outcomes[name].succeeded, f"{name} should be blocked by Overhaul"

    def test_matrices_cover_same_attacks(self, baseline_matrix, overhaul_matrix):
        assert set(baseline_matrix.by_name()) == set(overhaul_matrix.by_name())
        assert set(FLIPPABLE_ATTACKS) == set(baseline_matrix.by_name())

    def test_render(self, overhaul_matrix):
        text = overhaul_matrix.render()
        assert "OVERHAUL" in text
        assert "blocked" in text

    def test_matrix_is_deterministic(self, overhaul_matrix):
        rerun = run_attack_matrix(Machine.with_overhaul())
        assert [o.succeeded for o in rerun.outcomes] == [
            o.succeeded for o in overhaul_matrix.outcomes
        ]
