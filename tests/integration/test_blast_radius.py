"""The interaction blast-radius analysis (Section III-E's trade-off)."""

import pytest

from repro.workloads.blast_radius import measure_blast_radius, sweep_topologies


class TestBlastRadius:
    @pytest.fixture(scope="class")
    def chatty(self):
        return measure_blast_radius(services=8, chatter_interval_s=0.3)

    def test_click_initially_blesses_only_the_clicked_app(self, chatty):
        assert chatty.samples[0].blessed_tasks == 1

    def test_ipc_spreads_the_blessing(self, chatty):
        """Within the threshold, chatter carries the click to the hub and
        every service: 1 app + 1 hub + 8 services = 10."""
        assert chatty.peak_blessed == 10

    def test_everything_expires_after_threshold(self, chatty):
        """The radius is bounded in *time*: by t+2.5 s nothing can use the
        click any more."""
        late = [s for s in chatty.samples if s.at_offset >= 2_500_000]
        assert late and all(s.blessed_tasks == 0 for s in late)

    def test_isolated_app_has_radius_one(self):
        quiet = measure_blast_radius(services=6, chatter_interval_s=10.0)
        assert quiet.peak_blessed == 1  # no chatter fired within delta

    def test_radius_grows_with_chattiness(self):
        results = sweep_topologies()
        peaks = [r.peak_blessed for r in results]
        assert peaks[0] < peaks[1] < peaks[2]

    def test_trusted_processes_never_blessed_by_chatter(self, chatty):
        """X server, init, and the udev helper take part in no user IPC
        here; the blessed count must exclude them (10 of 13 live tasks)."""
        assert chatty.samples[1].total_tasks == 13
        assert chatty.peak_blessed <= chatty.samples[1].total_tasks - 3

    def test_render(self, chatty):
        assert "blast radius" in chatty.render()
