"""Integration tests reproducing the protocol figures (1-4, 6).

Each test runs the complete pictured interaction through the real stack --
hardware input driver -> X dispatch -> netlink -> kernel permission monitor
-> mediated resource -- and checks both the outcome and the intermediate
protocol artifacts the figure shows.
"""

import pytest

from repro.apps import Browser, Launcher, PasswordManager, TextEditor, VideoConfApp
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import NEVER, from_seconds
from repro.workloads.scenarios import (
    all_figure_scenarios,
    figure1_hardware_device,
    figure2_clipboard_paste,
    figure3_launcher_spawn,
    figure4_browser_ipc,
    figure6_selection_protocol,
)
from repro.xserver.selection import TransferState


class TestFigure1HardwareDevice:
    def test_scenario_grants(self):
        trace = figure1_hardware_device()
        assert trace.succeeded
        assert len(trace.steps) == 6

    def test_notification_precedes_grant_and_alert_follows(self, machine):
        skype = VideoConfApp(machine)
        machine.settle()
        monitor = machine.overhaul.monitor
        skype.click()
        assert monitor.notifications_received >= 1  # step 2 happened
        skype.place_call()  # steps 4-5
        assert monitor.grant_count >= 2  # mic + cam opens
        alerts = machine.xserver.overlay.alerts_for_pid(skype.pid)  # step 6
        operations = {alert.operation for alert in alerts}
        assert any("microphone" in op for op in operations)
        assert any("camera" in op for op in operations)

    def test_no_interaction_no_grant(self, machine):
        skype = VideoConfApp(machine)
        machine.settle()
        with pytest.raises(OverhaulDenied):
            skype.place_call()

    def test_expired_interaction_denied(self, machine):
        skype = VideoConfApp(machine)
        machine.settle()
        skype.click()
        machine.run_for(from_seconds(2.5))  # past delta = 2 s
        with pytest.raises(OverhaulDenied):
            skype.place_call()


class TestFigure2Clipboard:
    def test_scenario_grants(self):
        trace = figure2_clipboard_paste()
        assert trace.succeeded

    def test_paste_requires_query_round_trip(self, machine):
        vault = PasswordManager(machine)
        editor = TextEditor(machine)
        machine.settle()
        vault.user_copy_password("email")
        machine.run_for(from_seconds(0.2))
        queries_before = machine.overhaul.extension.queries_sent
        data = editor.user_paste()
        assert data == vault.vault["email"]
        assert machine.overhaul.extension.queries_sent > queries_before

    def test_copy_without_input_denied(self, machine):
        from repro.xserver.errors import BadAccess

        editor = TextEditor(machine)
        machine.settle()
        with pytest.raises(BadAccess):
            editor.copy_text(b"sneaky")  # SetSelection without user input

    def test_paste_without_input_denied(self, machine):
        from repro.xserver.errors import BadAccess

        vault = PasswordManager(machine)
        editor = TextEditor(machine)
        machine.settle()
        vault.user_copy_password("bank")
        machine.run_for(from_seconds(5.0))
        with pytest.raises(BadAccess):
            editor.paste_text()


class TestFigure3LauncherSpawn:
    def test_scenario_grants(self):
        trace = figure3_launcher_spawn()
        assert trace.succeeded

    def test_child_screenshot_rides_p1(self, machine):
        launcher = Launcher(machine)
        machine.settle()
        child = launcher.launch_program("/usr/bin/shot", comm="shot")
        assert child.interaction_ts == launcher.task.interaction_ts != NEVER
        client = machine.xserver.connect(child)
        image = machine.xserver.get_image(client, machine.xserver.root_window.drawable_id)
        assert image is not None

    def test_uninteracted_launcher_child_denied(self, machine):
        from repro.xserver.errors import BadAccess

        launcher = Launcher(machine)
        machine.settle()
        child = launcher.launch_without_interaction("/usr/bin/shot", comm="shot")
        client = machine.xserver.connect(child)
        with pytest.raises(BadAccess):
            machine.xserver.get_image(client, machine.xserver.root_window.drawable_id)

    def test_stale_launcher_interaction_denied_for_child(self, machine):
        from repro.xserver.errors import BadAccess

        launcher = Launcher(machine)
        machine.settle()
        child = launcher.launch_program("/usr/bin/shot", comm="shot")
        machine.run_for(from_seconds(3.0))  # delta expires before capture
        client = machine.xserver.connect(child)
        with pytest.raises(BadAccess):
            machine.xserver.get_image(client, machine.xserver.root_window.drawable_id)


class TestFigure4BrowserIpc:
    def test_scenario_grants(self):
        trace = figure4_browser_ipc()
        assert trace.succeeded

    def test_camera_grant_depends_on_shm_propagation(self, machine):
        """The tab forked before the click; only the shm message carries
        the fresh timestamp (P2), not fork inheritance (P1)."""
        browser = Browser(machine)
        machine.settle()
        tab = browser.open_tab()
        assert tab.task.interaction_ts == NEVER  # P1 gave it nothing useful
        browser.click()
        click_time = machine.now
        browser.command_tab(tab, b"\x01")
        assert tab.task.interaction_ts == click_time  # arrived via shm (P2)
        assert tab.camera_fd is not None

    def test_shm_fault_path_was_exercised(self, machine):
        browser = Browser(machine)
        machine.settle()
        tab = browser.open_tab()
        faults_before = machine.kernel.shm.total_faults
        browser.click()
        browser.command_tab(tab, b"\x01")
        assert machine.kernel.shm.total_faults > faults_before

    def test_tab_denied_without_browser_click(self, machine):
        browser = Browser(machine)
        machine.settle()
        tab = browser.open_tab()
        with pytest.raises(OverhaulDenied):
            browser.command_tab(tab, b"\x01")


class TestFigure6SelectionProtocol:
    def test_scenario_completes_all_steps(self):
        trace = figure6_selection_protocol()
        assert trace.succeeded
        numbers = [step.number for step in trace.steps]
        assert numbers == ["1", "2", "3-4", "5", "6", "7", "8", "9", "10", "11-12", "13"]

    def test_transfer_reaches_completed_state(self, machine):
        source = TextEditor(machine, comm="src")
        target = TextEditor(machine, comm="dst")
        machine.settle()
        source.user_copy(b"payload")
        machine.run_for(from_seconds(0.2))
        target.focus()
        target.user_paste()
        assert machine.xserver.selections.completed_transfers == 1
        assert not machine.xserver.selections.active_transfers()


class TestAllScenarios:
    def test_every_figure_scenario_succeeds(self):
        traces = all_figure_scenarios()
        assert len(traces) == 5
        assert all(trace.succeeded for trace in traces)

    def test_traces_render(self):
        for trace in all_figure_scenarios():
            text = trace.render()
            assert trace.figure in text
            assert "GRANTED" in text
