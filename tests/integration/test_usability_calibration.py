"""Statistical calibration of the usability-study model.

One seeded run is a single draw; the claim that the model reproduces the
paper's 24/16/6 split is statistical.  Aggregating many seeds, the mean
reaction counts must converge on the calibration targets.
"""

import statistics

import pytest

from repro.workloads.usability import run_usability_study


@pytest.fixture(scope="module")
def cohort_runs():
    """Thirty independent 46-participant studies."""
    return [run_usability_study(seed=seed) for seed in range(30)]


class TestCalibration:
    def test_mean_counts_match_paper(self, cohort_runs):
        mean_interrupted = statistics.fmean(r.interrupted for r in cohort_runs)
        mean_noticed = statistics.fmean(r.noticed for r in cohort_runs)
        mean_missed = statistics.fmean(r.missed for r in cohort_runs)
        # Binomial SE over 30x46 draws is ~0.6; allow 2 counts of slack.
        assert mean_interrupted == pytest.approx(24, abs=2.0)
        assert mean_noticed == pytest.approx(16, abs=2.0)
        assert mean_missed == pytest.approx(6, abs=2.0)

    def test_every_run_is_fully_protective(self, cohort_runs):
        """The *system* outcomes are deterministic across all seeds: the
        camera is always blocked and alerted; only the human reaction
        varies."""
        for run in cohort_runs:
            assert all(o.camera_blocked for o in run.outcomes)
            assert all(o.alert_displayed for o in run.outcomes)
            assert run.identical_experience_count == 46

    def test_variance_is_binomial_scale(self, cohort_runs):
        """Sanity on the model: the spread across seeds looks like
        sampling noise, not a broken generator (stdev within ~3x the
        binomial expectation, and nonzero)."""
        interrupted = [r.interrupted for r in cohort_runs]
        observed = statistics.stdev(interrupted)
        binomial_sd = (46 * (24 / 46) * (1 - 24 / 46)) ** 0.5  # ~3.4
        assert 0.5 < observed < 3 * binomial_sd
