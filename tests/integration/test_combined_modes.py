"""The optional modes compose: gray-box intent + prompt mode together."""

import pytest

from repro.apps import SimApp
from repro.core import Machine, OverhaulConfig
from repro.core.graybox import IntentProfile, Region
from repro.kernel.errors import OverhaulDenied


@pytest.fixture
def machine():
    m = Machine.with_overhaul(
        OverhaulConfig(graybox_enabled=True, prompt_mode=True)
    )
    m.settle()
    return m


class TestComposition:
    def test_intent_mismatch_falls_through_to_prompt(self, machine):
        """A profiled app clicked on the wrong control: the gray-box layer
        denies, prompt mode turns the denial into a user question, and a
        hardware approval overrides -- the user outranks the profile."""
        app = SimApp(machine, "/usr/bin/voicenote", comm="voicenote")
        machine.settle()
        geometry = app.window.geometry
        machine.overhaul.monitor.graybox.install_profile(
            IntentProfile("voicenote").allow_region(
                "microphone", Region(500, 400, 600, 450)
            )
        )
        machine.mouse.click(geometry.x + 10, geometry.y + 60)  # wrong control
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")
        manager = machine.overhaul.extension.prompt_manager
        assert manager.active is not None
        machine.mouse.click(100, 10)  # approve on the trusted prompt
        assert app.open_device("mic0") >= 3

    def test_matching_intent_needs_no_prompt(self, machine):
        app = SimApp(machine, "/usr/bin/voicenote", comm="voicenote")
        machine.settle()
        geometry = app.window.geometry
        machine.overhaul.monitor.graybox.install_profile(
            IntentProfile("voicenote").allow_region(
                "microphone", Region(500, 400, 600, 450)
            )
        )
        machine.mouse.click(geometry.x + 550, geometry.y + 420)
        assert app.open_device("mic0") >= 3
        assert machine.overhaul.extension.prompt_manager.prompts_shown == 0

    def test_prompt_denial_holds_until_fresh_intent(self, machine):
        """A user Deny blocks retries -- but a subsequent *authentic,
        intent-matching* click re-authorises: the user's latest expressed
        intent always wins, in either direction."""
        app = SimApp(machine, "/usr/bin/voicenote", comm="voicenote")
        machine.settle()
        geometry = app.window.geometry
        machine.overhaul.monitor.graybox.install_profile(
            IntentProfile("voicenote").allow_region(
                "microphone", Region(500, 400, 600, 450)
            )
        )
        machine.mouse.click(geometry.x + 10, geometry.y + 60)  # mismatch -> prompt
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")
        machine.mouse.click(machine.xserver.width - 20, 10)  # user denies
        # Retries without new intent stay denied (the remembered answer)...
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")
        # ...but a genuine click on the record button is fresh user intent,
        # and the temporal+intent conjunct grants without consulting the
        # stale denial.
        machine.mouse.click(geometry.x + 550, geometry.y + 420)
        assert app.open_device("mic0") >= 3
