"""Failure injection: Overhaul must fail closed.

The paper's design places the display manager and the udev helper in the
TCB.  These tests verify what happens when pieces of that TCB disappear or
misbehave at runtime: denied-by-default semantics must hold everywhere.
"""

import pytest

from repro.apps import SimApp, Spyware
from repro.core import Machine
from repro.kernel.device import Device, DeviceClass
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds


class TestDisplayManagerLoss:
    def test_no_notifications_means_no_grants(self, machine):
        """With the netlink channel closed (display manager crashed), no
        new interactions can be recorded -> every fresh request is denied:
        fail-closed, not fail-open."""
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        machine.overhaul.channel.close()
        app.click()  # the X server's notification send will fail silently?
        with pytest.raises(OverhaulDenied):
            app.open_device("mic0")

    def test_alert_requests_survive_missing_channel(self, machine):
        """Kernel-side alert requests with no live channel are dropped,
        not fatal -- mediation itself keeps working."""
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        app.click()
        machine.overhaul.channel.close()
        # The grant path calls request_visual_alert; it must not raise.
        fd = app.open_device("mic0")
        assert fd >= 3

    def test_spyware_still_blocked_without_display_manager(self, machine):
        machine.settle()
        spy = Spyware(machine)
        machine.overhaul.channel.close()
        assert spy.attempt_microphone() is None


class TestUdevHelperDependence:
    def test_hotplugged_device_is_protected_via_helper(self, machine):
        """A camera plugged in mid-session lands in the sensitive map
        through the helper's netlink update and is mediated immediately."""
        new_cam = Device("usb-cam", DeviceClass.CAMERA)
        path = machine.kernel.devfs.add_device(new_cam, machine.now)
        spy = SimApp(machine, "/usr/bin/spy", comm="spy", with_window=False)
        with pytest.raises(OverhaulDenied):
            machine.kernel.sys_open(spy.task, path)

    def test_dead_helper_degrades_new_devices_only(self, machine):
        """If the helper dies, *existing* mappings keep protecting, but a
        newly-plugged device never reaches the map -- the documented
        TCB dependence of the udev scheme."""
        machine.kernel.devfs.attach_helper(None)  # helper process gone
        machine.kernel.devfs._helper = None
        spy = SimApp(machine, "/usr/bin/spy", comm="spy", with_window=False)
        # Existing device: still protected.
        with pytest.raises(OverhaulDenied):
            machine.kernel.sys_open(spy.task, machine.kernel.device_path("mic0"))
        # New device after helper death: unmapped, hence unmediated.
        orphan = Device("late-cam", DeviceClass.CAMERA)
        path = machine.kernel.devfs.add_device(orphan, machine.now)
        fd = machine.kernel.sys_open(spy.task, path)
        assert fd >= 3  # the degradation is real and observable

    def test_unplug_closes_the_filesystem_window(self, machine):
        machine.kernel.devfs.remove_device("mic0", machine.now)
        spy = SimApp(machine, "/usr/bin/spy", comm="spy", with_window=False)
        from repro.kernel.errors import FileNotFound

        with pytest.raises(FileNotFound):
            machine.kernel.sys_open(spy.task, "/dev/mic0")


class TestProcessChurn:
    def test_pid_reuse_cannot_inherit_interaction(self, machine):
        """A process exits right after being blessed; later processes must
        not see its timestamp (pids are never recycled in the simulation,
        and timestamps live in the task_struct, which dies with it)."""
        app = SimApp(machine, "/usr/bin/short-lived", comm="short")
        machine.settle()
        app.click()
        blessed_pid = app.pid
        app.exit()
        newcomer, _ = machine.launch("/usr/bin/newcomer", connect_x=False)
        assert newcomer.pid != blessed_pid
        with pytest.raises(OverhaulDenied):
            machine.kernel.sys_open(newcomer, machine.kernel.device_path("mic0"))

    def test_notification_racing_client_exit_is_dropped(self, machine):
        """The display manager may notify about a pid that just exited;
        the monitor must ignore it rather than crash or misattribute."""
        from repro.core.notifications import MSG_INTERACTION

        app = SimApp(machine, "/usr/bin/racer", comm="racer")
        machine.settle()
        dead_pid = app.pid
        app.exit()
        machine.overhaul.channel.send_to_kernel(
            machine.xserver_task,
            MSG_INTERACTION,
            {"pid": dead_pid, "timestamp": machine.now},
        )
        assert machine.overhaul.monitor.notifications_received == 0

    def test_exited_app_frees_exclusive_device(self, machine):
        exclusive_cam = Device("excl-cam", DeviceClass.CAMERA, exclusive=True)
        path = machine.kernel.devfs.add_device(exclusive_cam, machine.now)
        first = SimApp(machine, "/usr/bin/one", comm="one")
        machine.settle()
        first.click()
        machine.kernel.sys_open(first.task, path)
        first.exit()  # closes fds, releasing the device
        second = SimApp(machine, "/usr/bin/two", comm="two")
        machine.settle()
        second.click()
        fd = machine.kernel.sys_open(second.task, path)
        assert fd >= 3
