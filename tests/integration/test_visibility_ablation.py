"""Ablation: the clickjacking visibility threshold (Section IV-A).

The paper requires the event's target window to have "stayed visible above
a predefined time threshold" but names no value.  This sweep exposes the
trade-off the parameter controls:

- security: a pop-over ambush window (mapped right before the user's click
  lands) succeeds exactly when the threshold is zero;
- usability: clicks on *young* legitimate windows are suppressed while the
  window is younger than the threshold.
"""

import pytest

from repro.apps import SimApp
from repro.core import Machine, OverhaulConfig
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import Timestamp, from_seconds


def click_after_window_age(threshold: Timestamp, window_age: Timestamp) -> bool:
    """Map a window, wait *window_age*, click, try the mic.  True = granted."""
    machine = Machine.with_overhaul(
        OverhaulConfig(window_visibility_threshold=threshold)
    )
    app = SimApp(machine, "/usr/bin/app", comm="app")
    machine.run_for(window_age)
    app.click()
    try:
        app.open_device("mic0")
        return True
    except OverhaulDenied:
        return False


def ambush_succeeds(threshold: Timestamp) -> bool:
    """The pop-over attack: window appears an instant before the click."""
    machine = Machine.with_overhaul(
        OverhaulConfig(window_visibility_threshold=threshold)
    )
    ambusher = SimApp(machine, "/usr/bin/ambush", comm="ambush", map_window=False)
    machine.settle()
    machine.xserver.map_window(ambusher.client, ambusher.window.drawable_id)
    machine.mouse.click_window(ambusher.window)
    try:
        ambusher.open_device("mic0")
        return True
    except OverhaulDenied:
        return False


class TestSecuritySide:
    def test_zero_threshold_is_vulnerable(self):
        assert ambush_succeeds(0)

    @pytest.mark.parametrize("seconds", [0.25, 0.5, 1.0, 2.0])
    def test_any_positive_threshold_stops_the_ambush(self, seconds):
        assert not ambush_succeeds(from_seconds(seconds))


class TestUsabilitySide:
    def test_clicks_on_old_windows_always_work(self):
        for threshold_s in (0.25, 1.0, 2.0):
            assert click_after_window_age(
                from_seconds(threshold_s), from_seconds(threshold_s * 3)
            )

    def test_clicks_on_young_windows_suppressed(self):
        """The cost of a large threshold: a user clicking a window 0.5 s
        after it opened is ignored under a 2 s threshold."""
        assert not click_after_window_age(from_seconds(2.0), from_seconds(0.5))
        assert click_after_window_age(from_seconds(0.25), from_seconds(0.5))

    def test_boundary_is_exact(self):
        threshold = from_seconds(1.0)
        assert not click_after_window_age(threshold, threshold - 1)
        assert click_after_window_age(threshold, threshold)

    def test_default_threshold_balances_both(self):
        """The repo default (1 s): ambush blocked, patient users fine."""
        default = OverhaulConfig().window_visibility_threshold
        assert not ambush_succeeds(default)
        assert click_after_window_age(default, default * 2)
