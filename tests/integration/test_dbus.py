"""Higher-level IPC (D-Bus) is covered automatically (Section IV-B).

The bus daemon and the services contain zero Overhaul code; propagation
happens entirely in the underlying UNIX-socket layer.
"""

import pytest

from repro.apps import SimApp
from repro.apps.dbus import DBusDaemon, VoiceAssistantService
from repro.core import Machine
from repro.sim.time import NEVER, from_seconds


@pytest.fixture
def bus_rig():
    machine = Machine.with_overhaul()
    daemon = DBusDaemon(machine)
    service = VoiceAssistantService(machine, daemon)
    ui = SimApp(machine, "/usr/bin/assistant-ui", comm="assistant-ui")
    ui_bus = daemon.connect(ui.task)
    machine.settle()
    return machine, daemon, service, ui, ui_bus


class TestBusPlumbing:
    def test_publish_subscribe_roundtrip(self, bus_rig):
        machine, daemon, service, ui, ui_bus = bus_rig
        ui_bus.publish("assistant.listen", b"hello")
        message = service.bus.poll()
        assert message is not None
        assert message.topic == "assistant.listen"
        assert message.payload == b"hello"
        assert message.sender_pid == ui.pid

    def test_topic_isolation(self, bus_rig):
        machine, daemon, service, ui, ui_bus = bus_rig
        ui_bus.publish("unrelated.topic", b"noise")
        assert service.bus.poll() is None

    def test_publisher_does_not_hear_itself(self, bus_rig):
        machine, daemon, service, ui, ui_bus = bus_rig
        ui_bus.subscribe("assistant.listen")
        ui_bus.publish("assistant.listen", b"echo?")
        assert ui_bus.poll() is None

    def test_multiple_subscribers(self, bus_rig):
        machine, daemon, service, ui, ui_bus = bus_rig
        second = VoiceAssistantService(machine, daemon)
        ui_bus.publish("assistant.listen", b"x")
        assert service.bus.poll() is not None
        assert second.bus.poll() is not None


class TestBusPropagation:
    def test_clicked_ui_blesses_service_through_the_bus(self, bus_rig):
        """click -> UI -> socket -> daemon -> socket -> service -> mic."""
        machine, daemon, service, ui, ui_bus = bus_rig
        assert service.task.interaction_ts == NEVER
        ui.click()
        click_time = machine.now
        ui_bus.publish(VoiceAssistantService.LISTEN_TOPIC, b"wake")
        service.process_pending()
        assert service.task.interaction_ts == click_time
        assert len(service.recordings) == 1
        assert service.denied == 0

    def test_unclicked_ui_cannot_bless_service(self, bus_rig):
        machine, daemon, service, ui, ui_bus = bus_rig
        ui_bus.publish(VoiceAssistantService.LISTEN_TOPIC, b"wake")
        service.process_pending()
        assert service.recordings == []
        assert service.denied == 1

    def test_stale_click_does_not_bless(self, bus_rig):
        machine, daemon, service, ui, ui_bus = bus_rig
        ui.click()
        machine.run_for(from_seconds(3.0))
        ui_bus.publish(VoiceAssistantService.LISTEN_TOPIC, b"wake")
        service.process_pending()
        assert service.denied == 1

    def test_daemon_task_itself_gets_blessed_in_passing(self, bus_rig):
        """The relay naturally stamps the daemon's task_struct too -- the
        conservative over-approximation inherent to black-box tracking
        (Section III-E's 'strictly weaker guarantees')."""
        machine, daemon, service, ui, ui_bus = bus_rig
        ui.click()
        ui_bus.publish(VoiceAssistantService.LISTEN_TOPIC, b"wake")
        assert daemon.task.interaction_ts == ui.task.interaction_ts

    def test_on_baseline_bus_works_but_carries_nothing(self):
        machine = Machine.baseline()
        daemon = DBusDaemon(machine)
        service = VoiceAssistantService(machine, daemon)
        ui = SimApp(machine, "/usr/bin/assistant-ui", comm="assistant-ui")
        ui_bus = daemon.connect(ui.task)
        machine.settle()
        ui.click()
        ui_bus.publish(VoiceAssistantService.LISTEN_TOPIC, b"wake")
        service.process_pending()
        # Message arrived and the mic opened (no protection at all)...
        assert len(service.recordings) == 1
        # ...but no timestamps moved: the kernel is unmodified.
        assert service.task.interaction_ts == NEVER
