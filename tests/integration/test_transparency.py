"""Design goals D1/D3: application and user transparency.

The same unmodified application code must run on baseline and protected
machines, with identical observable behaviour for legitimate use -- no new
APIs, no prompts, only EACCES-style failures for illegitimate access.
"""

import pytest

from repro.apps import Browser, SimApp, TerminalEmulator, TextEditor, VideoConfApp
from repro.core import Machine
from repro.sim.time import from_seconds


def run_legit_workflow(machine: Machine) -> dict:
    """One representative user session; returns observable outcomes."""
    outcome = {}
    skype = VideoConfApp(machine)
    editor = TextEditor(machine)
    donor = TextEditor(machine, comm="donor")
    browser = Browser(machine)
    terminal = TerminalEmulator(machine)
    machine.settle()

    skype.click_call_button()
    outcome["call_active"] = skype.call_active
    outcome["media"] = skype.sample_call_media(count=32)
    skype.hang_up()

    donor.user_copy(b"shared-text")
    machine.run_for(from_seconds(0.2))
    outcome["pasted"] = editor.user_paste()

    tab = browser.open_tab()
    browser.click()
    browser.command_tab(tab, b"\x01")
    outcome["tab_camera"] = tab.camera_fd is not None

    task = terminal.run_command("arecord", "/usr/bin/arecord")
    from repro.apps.recorder import CommandLineRecorder

    outcome["cli_sample"] = CommandLineRecorder(machine, task).record_once(count=32)
    return outcome


class TestD1ApplicationTransparency:
    def test_identical_outcomes_on_both_machines(self):
        baseline = run_legit_workflow(Machine.baseline())
        protected = run_legit_workflow(Machine.with_overhaul())
        assert baseline["call_active"] == protected["call_active"] is True
        assert baseline["pasted"] == protected["pasted"] == b"shared-text"
        assert baseline["tab_camera"] == protected["tab_camera"] is True
        # Device data streams are generated identically per machine.
        assert len(baseline["media"]) == len(protected["media"]) == 32
        assert len(baseline["cli_sample"]) == len(protected["cli_sample"]) == 32

    def test_apps_contain_no_overhaul_code(self):
        """The application package must not import from repro.core --
        that would violate the unmodified-application premise."""
        import pathlib

        import repro.apps as apps_pkg

        package_dir = pathlib.Path(apps_pkg.__file__).parent
        for source_file in package_dir.glob("*.py"):
            text = source_file.read_text()
            assert "from repro.core import" not in text, source_file
            assert "import repro.core" not in text, source_file


class TestD3NoPrompts:
    def test_no_blocking_prompts_exist(self, machine):
        """Overhaul never halts an operation waiting for user input: every
        mediated call returns synchronously (grant or EACCES), and the only
        UI artifact is the passive overlay alert."""
        app = SimApp(machine, "/usr/bin/rec", comm="rec")
        machine.settle()
        pending_before = machine.scheduler.pending_count
        app.click()
        app.open_device("mic0")
        # No deferred approval machinery was scheduled.
        assert machine.scheduler.pending_count == pending_before

    def test_denial_surfaces_as_classic_errno(self, machine):
        from repro.kernel.errors import OverhaulDenied, PermissionDenied

        app = SimApp(machine, "/usr/bin/spy", comm="spy")
        machine.settle()
        with pytest.raises(PermissionDenied) as exc_info:
            app.open_device("mic0")
        assert isinstance(exc_info.value, OverhaulDenied)
        assert exc_info.value.errno_name == "EACCES"
