"""The fleet acceptance properties, end to end on the real studies.

1. Aggregate JSON is byte-identical regardless of ``--workers`` -- the
   hierarchical-seed contract (`RandomSource.spawn`) holding across
   process boundaries;
2. A killed run resumes from its spool completing only unfinished shards,
   and the resumed aggregate matches an uninterrupted run's exactly;
3. Fleet shards agree with the single-process reference implementations.
"""

from repro.fleet import Spool, run_fleet
from repro.workloads.longterm import run_longterm_study
from repro.workloads.usability import run_usability_study


class TestWorkerCountInvariance:
    def test_longterm_aggregate_byte_identical_across_worker_counts(self):
        serial = run_fleet("longterm", population=4, seed=11, params={"days": 1})
        pooled = run_fleet("longterm", population=4, seed=11, workers=2, params={"days": 1})
        assert serial.aggregate_json() == pooled.aggregate_json()

    def test_usability_aggregate_byte_identical_across_worker_counts(self):
        serial = run_fleet("usability", population=10, seed=5)
        pooled = run_fleet("usability", population=10, seed=5, workers=3)
        assert serial.aggregate_json() == pooled.aggregate_json()

    def test_usability_aggregate_independent_of_shard_size(self):
        coarse = run_fleet("usability", population=10, seed=5)
        fine = run_fleet("usability", population=10, seed=5, params={"shard_size": 3})
        # Shard layout appears in the meta block but the population-level
        # numbers must not move.
        assert {k: v for k, v in coarse.aggregate.items() if k != "meta"} == {
            k: v for k, v in fine.aggregate.items() if k != "meta"
        }


class TestResumeOnRealStudy:
    def test_killed_run_resumes_only_unfinished_shards(self, tmp_path):
        spool_dir = str(tmp_path / "spool")
        reference = run_fleet(
            "longterm", population=4, seed=3, params={"days": 1}, spool_dir=spool_dir
        )
        # Simulate the kill: two shards never checkpointed.
        spool = Spool(spool_dir)
        spool.shard_path(0).unlink()
        spool.shard_path(3).unlink()
        resumed = run_fleet(
            "longterm", population=4, seed=3, params={"days": 1}, spool_dir=spool_dir
        )
        assert resumed.executed == [0, 3]
        assert resumed.resumed == [1, 2]
        assert resumed.aggregate_json() == reference.aggregate_json()


class TestAgreementWithReferenceImplementations:
    def test_fleet_population_of_one_day_matches_inline_study(self):
        report = run_fleet("longterm", population=2, seed=11, params={"days": 1})
        shard_seed = report.aggregate["protected"]  # aggregate of both arms
        # Reference: recompute machine 0's pair directly from its spec seed.
        from repro.fleet.studies import get_study

        spec = get_study("longterm").build_shards(2, 11, {"days": 1})[0]
        direct = run_longterm_study(True, seed=spec.seed, days=1)
        envelope_machines = report.aggregate["protected"]["machines"]
        assert envelope_machines == 2
        # The population totals include machine 0's exact numbers.
        assert direct.legit_actions <= shard_seed["legit_actions"]
        assert shard_seed["legit_failures"] == 0  # paper: zero false positives

    def test_fleet_usability_matches_study_for_same_participants(self):
        population = 8
        report = run_fleet("usability", population=population, seed=7)
        study = run_usability_study(seed=7, participants=population)
        aggregate = report.aggregate
        assert aggregate["participants"] == population
        assert (
            aggregate["identical_experience"]["successes"]
            == study.identical_experience_count
        )
        reactions = aggregate["reactions"]
        assert reactions.get("INTERRUPTED_AND_REPORTED", 0) == study.interrupted
        assert reactions.get("NOTICED_CONTINUED_TASK", 0) == study.noticed
        assert reactions.get("DID_NOT_NOTICE", 0) == study.missed


class TestStealOrderInvariance:
    """Byte-identity under the two-level lease/steal engine.

    Clustered stragglers (the first shards sleep) force real steals; the
    aggregate JSON must not move by a byte for any worker count, lease
    size, or steal history, and the streaming reducer must agree with the
    materialise-everything path exactly.
    """

    PARAMS = {
        "shard_size": 4,
        "work": 2,
        "straggler_first": 4,
        "straggler_ms": 80.0,
    }
    POPULATION = 64  # 16 shards of 4 users

    def run(self, workers, **overrides):
        return run_fleet(
            "synthetic",
            population=self.POPULATION,
            seed=29,
            workers=workers,
            params=self.PARAMS,
            **overrides,
        )

    def test_w1_w2_w8_byte_identical_with_forced_steals(self):
        serial = self.run(workers=1)
        duo = self.run(workers=2, lease_size=8)
        octet = self.run(workers=8, lease_size=2)
        assert duo.steals + octet.steals > 0, (
            "clustered stragglers should force at least one steal"
        )
        assert serial.aggregate_json() == duo.aggregate_json()
        assert serial.aggregate_json() == octet.aggregate_json()

    def test_streaming_and_materialised_agree_exactly(self):
        streamed = self.run(workers=2, lease_size=4)
        legacy = self.run(workers=2, lease_size=4, streaming=False)
        assert streamed.streamed and not legacy.streamed
        assert streamed.aggregate_json() == legacy.aggregate_json()

    def test_steal_off_matches_steal_on(self):
        static = self.run(workers=4, lease_size=4, steal=False)
        stolen = self.run(workers=4, lease_size=4, steal=True)
        assert static.steals == 0
        assert static.aggregate_json() == stolen.aggregate_json()
