"""Integration tests for the Section V evaluation studies (B, C, D)."""

import pytest

from repro.workloads.app_catalog import (
    build_clipboard_app_pool,
    build_device_app_pool,
    run_applicability_sweep,
)
from repro.workloads.longterm import run_longterm_study
from repro.workloads.usability import run_usability_study


class TestApplicabilitySweep:
    """Section V-C: 58 device/screen + 50 clipboard applications."""

    @pytest.fixture(scope="class")
    def summary(self):
        return run_applicability_sweep()

    def test_total_matches_paper_pools(self, summary):
        assert summary.total == 108

    def test_zero_false_positives(self, summary):
        assert summary.false_positives == []

    def test_single_spurious_alert_is_skype(self, summary):
        assert [r.spec.name for r in summary.spurious_alerts] == ["skype"]

    def test_only_delayed_screenshot_limitation(self, summary):
        names = {r.spec.name for r in summary.limitations}
        assert names == {"shutter", "flameshot"}

    def test_everything_else_functions(self, summary):
        non_functional = [r.spec.name for r in summary.results if not r.functioned]
        # Only the delayed-capture tools fail, by documented design.
        assert sorted(non_functional) == ["flameshot", "shutter"]

    def test_clipboard_pool_fully_clean(self):
        summary = run_applicability_sweep(build_clipboard_app_pool())
        assert summary.functioned == 50
        assert not summary.false_positives
        assert not summary.spurious_alerts


class TestUsabilityStudy:
    """Section V-B: 46 participants, two tasks."""

    @pytest.fixture(scope="class")
    def results(self):
        return run_usability_study(seed=2016)

    def test_cohort_size(self, results):
        assert results.participants == 46

    def test_task1_unanimously_transparent(self, results):
        """'all 46 participants found the experience to be identical.'"""
        assert results.identical_experience_count == 46
        assert all(o.behaviour_differences == 0 for o in results.outcomes)

    def test_task2_camera_always_blocked_and_alerted(self, results):
        assert all(o.camera_blocked for o in results.outcomes)
        assert all(o.alert_displayed for o in results.outcomes)

    def test_task2_reaction_distribution_shape(self, results):
        """Paper: 24 interrupted / 16 noticed / 6 missed.  Our cohort is a
        seeded draw from the calibrated model, so we assert the shape
        (interrupted > noticed > missed, few misses) rather than the exact
        published integers."""
        assert results.interrupted + results.noticed + results.missed == 46
        assert results.missed <= 12
        assert results.interrupted >= 15
        assert results.interrupted + results.noticed >= 34  # most users notice

    def test_study_is_reproducible(self):
        a = run_usability_study(seed=7, participants=10)
        b = run_usability_study(seed=7, participants=10)
        assert [o.reaction for o in a.outcomes] == [o.reaction for o in b.outcomes]

    def test_render(self, results):
        text = results.render()
        assert "participants" in text


class TestLongTermStudy:
    """Section V-D: the two-machine spyware comparison (shortened to 2 days
    for test runtime; the 21-day run is the benchmark/example)."""

    @pytest.fixture(scope="class")
    def pair(self):
        return (
            run_longterm_study(True, seed=2016, days=2),
            run_longterm_study(False, seed=2016, days=2),
        )

    def test_protected_machine_leaks_nothing(self, pair):
        protected, _ = pair
        assert protected.total_stolen == 0
        assert protected.stolen_passwords == []

    def test_protected_machine_blocked_every_attempt(self, pair):
        protected, _ = pair
        assert sum(protected.blocked_counts.values()) == protected.spy_rounds * 3

    def test_protected_machine_no_false_positives(self, pair):
        """'we did not encounter any cases of legitimate applications being
        incorrectly blocked.'"""
        protected, _ = pair
        assert protected.legit_failures == 0
        assert protected.legit_actions > 0

    def test_unprotected_machine_bleeds_data(self, pair):
        _, unprotected = pair
        assert unprotected.stolen_counts["screen"] == unprotected.spy_rounds
        assert unprotected.stolen_counts["microphone"] == unprotected.spy_rounds
        assert unprotected.stolen_counts["clipboard"] > 0

    def test_unprotected_machine_loses_passwords(self, pair):
        """'The data sampled from the clipboard included passwords copied
        from the password manager.'"""
        _, unprotected = pair
        assert len(unprotected.stolen_passwords) > 0

    def test_identical_workloads(self, pair):
        protected, unprotected = pair
        assert protected.legit_actions == unprotected.legit_actions
        assert protected.spy_rounds == unprotected.spy_rounds

    def test_protected_logs_show_legitimate_grants(self, pair):
        """'We also investigated OVERHAUL's logs to see which applications
        were granted access' -- grants exist and belong to the legit apps."""
        protected, _ = pair
        assert protected.device_grants > 0
        assert protected.alerts_shown > 0

    def test_render(self, pair):
        for results in pair:
            assert "spyware rounds" in results.render()
