"""End-to-end determinism: whole experiments replay bit-identically.

The reproduction's core engineering guarantee (DESIGN.md): given a seed,
every experiment produces identical results -- across runs and across
processes (stable RNG forking, virtual time only).
"""

from repro.core import Machine
from repro.obs import collect_counters, render_decision_report, run_traced_quickstart
from repro.workloads.attacks import run_attack_matrix
from repro.workloads.longterm import run_longterm_study
from repro.workloads.scenarios import figure4_browser_ipc
from repro.workloads.usability import run_usability_study


class TestStudyDeterminism:
    def test_longterm_study_replays_identically(self):
        first = run_longterm_study(True, seed=5, days=2)
        second = run_longterm_study(True, seed=5, days=2)
        assert first.stolen_counts == second.stolen_counts
        assert first.blocked_counts == second.blocked_counts
        assert first.legit_actions == second.legit_actions
        assert first.legit_failures == second.legit_failures
        assert first.device_grants == second.device_grants
        assert first.alerts_shown == second.alerts_shown
        assert first.spy_rounds == second.spy_rounds

    def test_different_seeds_differ(self):
        a = run_longterm_study(False, seed=1, days=2)
        b = run_longterm_study(False, seed=2, days=2)
        # Workload draws differ, so at least one observable count differs.
        assert (
            a.legit_actions != b.legit_actions
            or a.stolen_counts != b.stolen_counts
            or a.spy_rounds != b.spy_rounds
        )

    def test_usability_outcomes_replay(self):
        a = run_usability_study(seed=3, participants=12)
        b = run_usability_study(seed=3, participants=12)
        assert [o.reaction for o in a.outcomes] == [o.reaction for o in b.outcomes]
        assert [o.camera_blocked for o in a.outcomes] == [
            o.camera_blocked for o in b.outcomes
        ]

    def test_scenario_traces_replay(self):
        first = figure4_browser_ipc()
        second = figure4_browser_ipc()
        assert [s.render() for s in first.steps] == [s.render() for s in second.steps]

    def test_attack_matrix_replays(self):
        a = run_attack_matrix(Machine.baseline())
        b = run_attack_matrix(Machine.baseline())
        assert [(o.name, o.succeeded) for o in a.outcomes] == [
            (o.name, o.succeeded) for o in b.outcomes
        ]


class TestTraceConsistency:
    """The determinism contract extends to the observability layer: two
    same-seed runs must emit byte-identical span trees even though window,
    client and VM-area identifiers come from process-global counters (the
    renderer interns them in first-seen order)."""

    def test_span_trees_are_byte_identical(self):
        first = run_traced_quickstart()
        second = run_traced_quickstart()
        tree_a = first.tracer.render_tree()
        tree_b = second.tracer.render_tree()
        assert tree_a == tree_b
        assert tree_a  # non-trivial: the scenario actually traced something

    def test_raw_ids_differ_but_renders_agree(self):
        """The normalisation is doing real work: raw drawable ids differ
        across the two machines (global XID counter), yet the rendered
        trees above agreed."""
        first = run_traced_quickstart()
        second = run_traced_quickstart()
        raw_a = [s.attrs["window"] for s in first.tracer.find("input.route")]
        raw_b = [s.attrs["window"] for s in second.tracer.find("input.route")]
        assert raw_a and raw_b
        assert raw_a != raw_b  # process-global counters advanced in between
        assert first.tracer.render_tree() == second.tracer.render_tree()

    def test_decision_reports_replay(self):
        a = run_traced_quickstart()
        b = run_traced_quickstart()
        assert render_decision_report(a) == render_decision_report(b)

    def test_counters_replay(self):
        a = collect_counters(run_traced_quickstart()).snapshot()
        b = collect_counters(run_traced_quickstart()).snapshot()
        assert a == b
        assert a["monitor.grants"] >= 1
        assert a["monitor.denials"] >= 2


class TestVirtualTimeIsolation:
    def test_experiments_do_not_consume_wall_clock_state(self):
        """Two machines built back-to-back start at the identical epoch --
        nothing reads the host clock."""
        first = Machine.with_overhaul()
        second = Machine.with_overhaul()
        assert first.now == second.now == 0

    def test_audit_timestamps_are_virtual(self):
        machine = Machine.with_overhaul()
        from repro.apps import Spyware

        machine.settle()
        spy = Spyware(machine)
        spy.attempt_microphone()
        record = machine.kernel.audit.denials()[0]
        assert record.timestamp == machine.now  # not a wall-clock value
