"""The campaign determinism contract, and its fleet integration.

Trial streams are keyed by (scenario, arm, trial index) -- never by
shard layout or worker identity -- so the fleet aggregate must be
byte-identical for any worker count, resumable mid-run, and immune to
counter-registry sharing between shards.
"""

import pytest

from repro.fleet.engine import run_fleet
from repro.fleet.spool import Spool
from repro.obs.counters import Counters
from repro.redteam import run_campaign
from repro.redteam.engine import run_redteam_shard


class TestTrialDeterminism:
    def test_shard_is_pure_and_idempotent(self):
        first = run_redteam_shard("flood-sendevent", 7, 0, 2)
        second = run_redteam_shard("flood-sendevent", 7, 0, 2)
        assert first == second

    def test_shard_split_invariance(self):
        """Trials 0..3 in one block == the same trials in two blocks."""
        whole = run_redteam_shard("launder-pipe-chain", 11, 0, 4)
        left = run_redteam_shard("launder-pipe-chain", 11, 0, 2)
        right = run_redteam_shard("launder-pipe-chain", 11, 2, 2)
        for key in ("false_grants", "blocked", "detected_blocked", "baseline_successes"):
            assert whole[key] == left[key] + right[key]
        merged = Counters.merged(
            [left["counters"]["protected"], right["counters"]["protected"]]
        )
        assert merged.snapshot() == whole["counters"]["protected"]

    def test_campaign_repeats_identically(self):
        one = run_campaign(families=["overlay"], trials=3, seed=5)
        two = run_campaign(families=["overlay"], trials=3, seed=5)
        assert one.to_json() == two.to_json()

    def test_fresh_registries_per_trial(self):
        """Counters must come from each trial's own machine.  The ptrace
        injection scenario performs a fixed operation sequence (only its
        delays are drawn), so N trials report exactly N times one trial's
        denial count -- a shared or cumulative registry would report the
        triangular sum instead."""
        single = run_redteam_shard(
            "ptrace-inject-blessed", 3, 0, 1, include_baseline=False
        )
        triple = run_redteam_shard(
            "ptrace-inject-blessed", 3, 0, 3, include_baseline=False
        )
        per_trial = single["counters"]["protected"]["monitor.denials"]
        assert per_trial >= 1
        assert triple["counters"]["protected"]["monitor.denials"] == 3 * per_trial


class TestFleetIntegration:
    def test_aggregate_byte_identical_across_worker_counts(self):
        kwargs = dict(population=2, seed=2016, params={"baseline": 0})
        inline = run_fleet("redteam", workers=1, **kwargs)
        pooled = run_fleet("redteam", workers=2, **kwargs)
        assert inline.aggregate_json() == pooled.aggregate_json()
        assert not inline.quarantined and not pooled.quarantined

    def test_family_slice_param(self):
        report = run_fleet(
            "redteam",
            population=2,
            seed=1,
            workers=1,
            params={"families": "ptrace", "baseline": 0},
        )
        names = [entry["scenario"] for entry in report.aggregate["scenarios"]]
        assert names == ["ptrace-inject-blessed", "ptrace-detach-race"]

    def test_resume_counts_each_shard_once(self, tmp_path):
        """Resuming a finished spool re-executes nothing and aggregates
        the same bytes -- no double-counting of resumed shards."""
        spool_dir = str(tmp_path / "spool")
        kwargs = dict(
            population=2, seed=3, workers=1,
            params={"families": "flood", "baseline": 0}, spool_dir=spool_dir,
        )
        first = run_fleet("redteam", **kwargs)
        second = run_fleet("redteam", **kwargs)
        assert second.executed == []
        assert second.resumed == sorted(first.executed)
        assert first.aggregate_json() == second.aggregate_json()
        # The merged counters are sums over exactly population trials.
        scenarios = {e["scenario"]: e for e in second.aggregate["scenarios"]}
        assert scenarios["flood-sendevent"]["trials"] == 2
