"""The sweep integration tests: the paper's trade-off as checkable curves.

The sweeps replay identical timing draws at every grid value, so the
curves are *exactly* monotone -- asserted outright, not statistically.
The delta sweep reproduces the Section IV-B argument (2 s is enough for
users, small enough to bound staleness); the visibility sweep charts the
clickjacking ablation as ROC data with a discriminating AUC.
"""

import pytest

from repro.analysis.roc import auc_trapezoid
from repro.redteam.sweeps import (
    DELTA_GRID,
    VISIBILITY_GRID,
    sweep_delta,
    sweep_visibility,
)
from repro.sim.time import from_seconds

TRIALS = 12
SEED = 2016


@pytest.fixture(scope="module")
def delta():
    return sweep_delta(trials=TRIALS, seed=SEED)


@pytest.fixture(scope="module")
def visibility():
    return sweep_visibility(trials=TRIALS, seed=SEED)


class TestDeltaSweep:
    def test_grid_order_preserved(self, delta):
        assert [p.value for p in delta.points] == list(DELTA_GRID)

    def test_false_grants_monotone_in_delta(self, delta):
        """A larger delta admits every stamp a smaller one admitted."""
        rates = [p.attack_successes for p in delta.points]
        assert rates == sorted(rates)

    def test_benign_grants_monotone_in_delta(self, delta):
        rates = [p.benign_grants for p in delta.points]
        assert rates == sorted(rates)

    def test_endpoints_bracket_the_tradeoff(self, delta):
        tight, loose = delta.points[0], delta.points[-1]
        assert tight.false_grant_rate < loose.false_grant_rate
        assert tight.benign_grant_rate < loose.benign_grant_rate
        # 4 s admits every stale stamp the adversary population holds.
        assert loose.false_grant_rate == 1.0

    def test_paper_default_balances(self, delta):
        """At delta = 2 s most users succeed while most stale stamps die --
        the Section IV-B justification, now measured."""
        by_value = {p.value: p for p in delta.points}
        point = by_value[from_seconds(2.0)]
        assert point.benign_grant_rate >= 0.5
        assert point.false_grant_rate <= 0.5

    def test_curve_above_chance(self, delta):
        assert delta.auc() > 0.5

    def test_json_roundtrip_and_roc_keys(self, delta):
        data = delta.to_dict()
        assert len(data["roc"]) == len(DELTA_GRID)
        assert all(set(entry) == {"fpr", "tpr"} for entry in data["roc"])
        assert data["auc"] == delta.auc()
        assert delta.to_json() == sweep_delta(trials=TRIALS, seed=SEED).to_json()


class TestVisibilitySweep:
    def test_grid_order_preserved(self, visibility):
        assert [p.value for p in visibility.points] == list(VISIBILITY_GRID)

    def test_ambush_success_antitone_in_threshold(self, visibility):
        rates = [p.attack_successes for p in visibility.points]
        assert rates == sorted(rates, reverse=True)

    def test_benign_grants_antitone_in_threshold(self, visibility):
        rates = [p.benign_grants for p in visibility.points]
        assert rates == sorted(rates, reverse=True)

    def test_zero_threshold_is_defenceless(self, visibility):
        assert visibility.points[0].false_grant_rate == 1.0

    def test_repo_default_blocks_every_ambush(self, visibility):
        """The 1 s default sits past the ambusher's exposure budget."""
        by_value = {p.value: p for p in visibility.points}
        point = by_value[from_seconds(1.0)]
        assert point.false_grant_rate == 0.0
        assert point.benign_grant_rate > 0.0

    def test_threshold_discriminates(self, visibility):
        """Exposure-minimising ambushes separate from honest windows."""
        assert visibility.auc() > 0.75


class TestAucTrapezoid:
    def test_diagonal_is_half(self):
        assert auc_trapezoid([(0.5, 0.5)]) == 0.5

    def test_perfect_curve_is_one(self):
        assert auc_trapezoid([(0.0, 1.0)]) == 1.0

    def test_anchors_added_once(self):
        assert auc_trapezoid([(0.0, 0.0), (1.0, 1.0)]) == 0.5

    def test_duplicate_fpr_zero_width(self):
        assert auc_trapezoid([(0.5, 0.2), (0.5, 0.8)]) == pytest.approx(0.5)
