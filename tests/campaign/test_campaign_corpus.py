"""The campaign tier: every scenario asserts its expected verdict envelope.

One campaign run (module-scoped) scores the whole corpus; each scenario
then gets its own test so a drifting scenario fails by name.  This is the
suite that makes the paper's security argument regress loudly: weaken the
provenance filter, the visibility gate, the stamp max-merge, or the
ptrace revocation and the corresponding family escapes its envelope.
"""

import pytest

from repro.redteam import (
    CORPUS,
    FAMILIES,
    run_campaign,
    scenario_by_name,
    scenarios_for_families,
)

TRIALS = 12
SEED = 2016


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(trials=TRIALS, seed=SEED)


class TestCorpusShape:
    def test_at_least_six_families(self):
        assert len(FAMILIES) >= 6

    def test_every_family_has_a_scenario(self):
        assert {s.family for s in CORPUS} == set(FAMILIES)

    def test_scenario_names_unique(self):
        names = [s.name for s in CORPUS]
        assert len(names) == len(set(names))

    def test_family_slicing(self):
        sliced = scenarios_for_families(["ptrace"])
        assert [s.name for s in sliced] == [
            "ptrace-inject-blessed",
            "ptrace-detach-race",
        ]
        with pytest.raises(KeyError):
            scenarios_for_families(["no-such-family"])
        with pytest.raises(KeyError):
            scenario_by_name("no-such-scenario")


@pytest.mark.parametrize("scenario", CORPUS, ids=lambda s: s.name)
def test_scenario_inside_envelope(campaign, scenario):
    score = campaign.score_for(scenario.name)
    assert score.trials == TRIALS
    violations = score.envelope_violations(scenario.expected)
    assert not violations, f"{scenario.name}: {violations}"


def test_campaign_reports_no_violations(campaign):
    assert campaign.violations() == {}


class TestHeadlineVerdicts:
    """The three load-bearing rates, asserted directly so the numbers the
    docs quote cannot drift from what the suite enforces."""

    def test_airtight_families_have_zero_false_grants(self, campaign):
        for name in (
            "flood-sendevent",
            "flood-xtest",
            "infer-overlay-keylog",
            "overlay-click-steal",
            "launder-pipe-chain",
            "launder-msgqueue-relay",
            "ptrace-inject-blessed",
        ):
            assert campaign.score_for(name).false_grants == 0, name

    def test_every_blocked_trial_left_an_artifact(self, campaign):
        for score in campaign.scores:
            assert score.detected_blocked == score.blocked, score.scenario

    def test_no_scenario_costs_benign_usability(self, campaign):
        for score in campaign.scores:
            assert score.benign_denials == 0, score.scenario

    def test_every_attack_viable_on_baseline(self, campaign):
        for score in campaign.scores:
            assert score.baseline_successes == score.baseline_trials, score.scenario

    def test_race_residual_is_calibrated_not_airtight(self, campaign):
        score = campaign.score_for("race-visibility-window")
        assert 0 < score.false_grants < score.trials

    def test_detach_race_residual_always_wins(self, campaign):
        """The documented ptrace residual: the envelope REQUIRES success."""
        score = campaign.score_for("ptrace-detach-race")
        assert score.false_grants == score.trials

    def test_counters_travel_with_scores(self, campaign):
        score = campaign.score_for("flood-sendevent")
        assert score.counters["protected"]["dm.synthetic_filtered"] > 0
        assert score.counters["baseline"].get("dm.synthetic_filtered", 0) == 0
