"""Shared fixtures for the Overhaul reproduction test suite."""

from __future__ import annotations

import pytest

from repro.core import Machine, OverhaulConfig, paper_config
from repro.kernel.credentials import DEFAULT_USER
from repro.sim.scheduler import EventScheduler


@pytest.fixture
def scheduler() -> EventScheduler:
    """A fresh event scheduler at time zero."""
    return EventScheduler()


@pytest.fixture
def machine() -> Machine:
    """A protected machine with the paper's default configuration,
    settled past the window-visibility threshold."""
    m = Machine.with_overhaul()
    m.settle()
    return m


@pytest.fixture
def baseline_machine() -> Machine:
    """An unmodified machine (no Overhaul)."""
    m = Machine.baseline()
    m.settle()
    return m


@pytest.fixture
def user_creds():
    return DEFAULT_USER


@pytest.fixture
def config() -> OverhaulConfig:
    return paper_config()
