"""Model-based property tests for the P2 interaction-stamp protocol.

The paper's three-step protocol (Section IV-B) is, semantically, a max-merge
lattice walk: a receiver's ``interaction_ts`` must always equal the maximum
over (a) interactions authentically delivered to it and (b) stamps it
adopted from channels -- and it must never move backwards.  These tests
check the implementation against an explicit reference model under
arbitrary interleavings of interactions, sends, receives, and channel
expiry (teardown + re-establishment, which re-embeds an *expired* stamp per
protocol step 1).

Complements ``test_propagation_properties.py``: that file checks global
safety invariants ("no minted timestamps"); this one checks *exact*
step-by-step equivalence with the protocol's specification.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task
from repro.sim.time import NEVER

N_TASKS = 4
N_CHANNELS = 3

#: One protocol step:
#:   ("interact", task_index, timestamp)  -- authentic input notification
#: | ("send",     task_index, channel)    -- protocol step (2), embed
#: | ("recv",     task_index, channel)    -- protocol step (3), adopt
#: | ("expire",   channel,    0)          -- channel torn down + recreated,
#:                                           i.e. protocol step (1) again
steps = st.lists(
    st.one_of(
        st.tuples(st.just("interact"), st.integers(0, N_TASKS - 1), st.integers(0, 50_000)),
        st.tuples(st.just("send"), st.integers(0, N_TASKS - 1), st.integers(0, N_CHANNELS - 1)),
        st.tuples(st.just("recv"), st.integers(0, N_TASKS - 1), st.integers(0, N_CHANNELS - 1)),
        st.tuples(st.just("expire"), st.integers(0, N_CHANNELS - 1), st.just(0)),
    ),
    max_size=100,
)


def make_tasks():
    return [
        Task(i + 1, None, f"t{i}", DEFAULT_USER, "/usr/bin/t", 0) for i in range(N_TASKS)
    ]


@given(script=steps)
@settings(max_examples=300)
def test_implementation_matches_reference_model(script):
    """After every step, tasks and channels match the max-merge model, and
    the embed/adopt return values report advancement exactly."""
    policy = TrackingPolicy(enabled=True)
    tasks = make_tasks()
    channels = [InteractionStamp(policy) for _ in range(N_CHANNELS)]
    model_task = [NEVER] * N_TASKS
    model_chan = [NEVER] * N_CHANNELS

    for op, first, second in script:
        if op == "interact":
            tasks[first].record_interaction(second)
            model_task[first] = max(model_task[first], second)
        elif op == "send":
            advanced = channels[second].embed_from(tasks[first])
            expected = model_task[first] > model_chan[second]
            assert advanced == expected
            model_chan[second] = max(model_chan[second], model_task[first])
        elif op == "recv":
            advanced = channels[second].adopt_to(tasks[first])
            expected = model_chan[second] > model_task[first]
            assert advanced == expected
            model_task[first] = max(model_task[first], model_chan[second])
        else:  # expire: fresh resource, fresh *expired* stamp (step 1)
            channels[first] = InteractionStamp(policy)
            model_chan[first] = NEVER

        assert [t.interaction_ts for t in tasks] == model_task
        assert [c.timestamp for c in channels] == model_chan


@given(script=steps)
@settings(max_examples=200)
def test_receiver_timestamp_is_max_merge_of_authentic_stamps(script):
    """The ISSUE property, stated directly: each task's final timestamp is
    the max over its own authentic interactions and every stamp value at
    the moment it adopted -- nothing else."""
    policy = TrackingPolicy(enabled=True)
    tasks = make_tasks()
    channels = [InteractionStamp(policy) for _ in range(N_CHANNELS)]
    #: per task: every value that may lawfully contribute to its timestamp.
    contributions = [[NEVER] for _ in range(N_TASKS)]

    for op, first, second in script:
        if op == "interact":
            tasks[first].record_interaction(second)
            contributions[first].append(second)
        elif op == "send":
            channels[second].embed_from(tasks[first])
        elif op == "recv":
            before = channels[second].timestamp
            channels[second].adopt_to(tasks[first])
            contributions[first].append(before)
        else:
            channels[first] = InteractionStamp(policy)

    for index, task in enumerate(tasks):
        assert task.interaction_ts == max(contributions[index])


@given(script=steps)
@settings(max_examples=200)
def test_timestamps_never_move_backwards(script):
    """No step -- including channel expiry -- ever lowers any task's
    interaction timestamp."""
    policy = TrackingPolicy(enabled=True)
    tasks = make_tasks()
    channels = [InteractionStamp(policy) for _ in range(N_CHANNELS)]
    for op, first, second in script:
        before = [t.interaction_ts for t in tasks]
        if op == "interact":
            tasks[first].record_interaction(second)
        elif op == "send":
            channels[second].embed_from(tasks[first])
        elif op == "recv":
            channels[second].adopt_to(tasks[first])
        else:
            channels[first] = InteractionStamp(policy)
        after = [t.interaction_ts for t in tasks]
        assert all(b <= a for b, a in zip(before, after))


@given(script=steps)
@settings(max_examples=150)
def test_expired_channels_contribute_nothing(script):
    """A freshly (re-)established channel carries an expired stamp: adopting
    from it before any send cannot advance anyone."""
    policy = TrackingPolicy(enabled=True)
    tasks = make_tasks()
    channels = [InteractionStamp(policy) for _ in range(N_CHANNELS)]
    #: Channels with no send since their last (re-)creation.
    untouched = set(range(N_CHANNELS))
    for op, first, second in script:
        if op == "interact":
            tasks[first].record_interaction(second)
        elif op == "send":
            channels[second].embed_from(tasks[first])
            untouched.discard(second)
        elif op == "recv":
            before = tasks[first].interaction_ts
            advanced = channels[second].adopt_to(tasks[first])
            if second in untouched:
                assert not advanced
                assert tasks[first].interaction_ts == before
        else:
            channels[first] = InteractionStamp(policy)
            untouched.add(first)
