"""Property-based tests for the temporal-proximity decision rule.

The rule (Section III-B / IV-B): grant iff an authentic interaction exists
and ``0 <= op_time - interaction_time < delta``.  These properties pin the
rule against every integer combination hypothesis can find.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Machine, OverhaulConfig
from repro.kernel.credentials import DEFAULT_USER
from repro.sim.time import NEVER, from_millis, from_seconds

DELTA = from_seconds(2.0)

#: One shared machine: decisions are pure reads of (task state, op time).
_MACHINE = Machine.with_overhaul(
    OverhaulConfig(interaction_threshold=DELTA, shm_waitlist=from_millis(500))
)
_MACHINE.settle()
_MONITOR = _MACHINE.overhaul.monitor
_TASK = _MACHINE.kernel.sys_spawn(
    _MACHINE.kernel.process_table.init, "/usr/bin/prop", creds=DEFAULT_USER
)

times = st.integers(min_value=0, max_value=from_seconds(3600.0))


@given(interaction=times, op=times)
@settings(max_examples=300)
def test_grant_iff_within_window(interaction, op):
    _TASK.interaction_ts = interaction
    response = _MONITOR.decide(_TASK, op, "prop")
    expected = 0 <= op - interaction < DELTA
    assert response.granted == expected


@given(op=times)
@settings(max_examples=100)
def test_never_interacted_always_denied(op):
    _TASK.interaction_ts = NEVER
    assert not _MONITOR.decide(_TASK, op, "prop").granted


@given(interaction=times, delay=st.integers(min_value=0, max_value=DELTA - 1))
@settings(max_examples=200)
def test_all_operations_within_delta_granted(interaction, delay):
    _TASK.interaction_ts = interaction
    assert _MONITOR.decide(_TASK, interaction + delay, "prop").granted


@given(
    interaction=times,
    overshoot=st.integers(min_value=0, max_value=from_seconds(1000.0)),
)
@settings(max_examples=200)
def test_all_operations_at_or_past_delta_denied(interaction, overshoot):
    _TASK.interaction_ts = interaction
    assert not _MONITOR.decide(_TASK, interaction + DELTA + overshoot, "prop").granted


@given(interaction=times, op=times)
@settings(max_examples=200)
def test_decision_is_deterministic(interaction, op):
    _TASK.interaction_ts = interaction
    first = _MONITOR.decide(_TASK, op, "prop")
    second = _MONITOR.decide(_TASK, op, "prop")
    assert first.granted == second.granted
    assert first.interaction_age == second.interaction_age


@given(interaction=times, op=times)
@settings(max_examples=200)
def test_reported_age_is_exact(interaction, op):
    _TASK.interaction_ts = interaction
    response = _MONITOR.decide(_TASK, op, "prop")
    assert response.interaction_age == op - interaction


@given(interaction=times, op=times)
@settings(max_examples=150)
def test_grants_monotone_in_delta(interaction, op):
    """If an operation is granted at threshold d, it is granted at any
    d' > d (loosening the policy never revokes)."""
    from repro.kernel.credentials import DEFAULT_USER

    deltas = [from_seconds(0.5), from_seconds(2.0), from_seconds(8.0)]
    grants = []
    for delta in deltas:
        machine = Machine.with_overhaul(
            OverhaulConfig(interaction_threshold=delta, shm_waitlist=delta // 4)
        )
        task = machine.kernel.sys_spawn(
            machine.kernel.process_table.init, "/usr/bin/p", creds=DEFAULT_USER
        )
        task.interaction_ts = interaction
        grants.append(machine.overhaul.monitor.decide(task, op, "prop").granted)
    for tighter, looser in zip(grants, grants[1:]):
        assert not (tighter and not looser)


@given(
    interaction=times,
    op=times,
    delta_seconds=st.floats(min_value=0.2, max_value=60.0, allow_nan=False),
)
@settings(max_examples=150)
def test_rule_holds_for_any_delta(interaction, op, delta_seconds):
    delta = from_seconds(delta_seconds)
    machine = Machine.with_overhaul(
        OverhaulConfig(interaction_threshold=delta, shm_waitlist=min(from_millis(100), delta // 2))
    )
    task = machine.kernel.sys_spawn(
        machine.kernel.process_table.init, "/usr/bin/p", creds=DEFAULT_USER
    )
    task.interaction_ts = interaction
    response = machine.overhaul.monitor.decide(task, op, "prop")
    assert response.granted == (0 <= op - interaction < delta)
