"""Property tests for `RandomSource.spawn`: the fleet determinism primitive.

Two properties carry the whole fleet engine:

1. *Determinism* -- the same (parent seed, key) pair always yields the
   same stream, in any process, at any time;
2. *Independence* -- sibling streams (same parent, different keys) are
   uncorrelated, so a 1000-machine population is a real population, not
   1000 echoes of one machine.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RandomSource

_keys = st.one_of(
    st.integers(-(2**31), 2**31),
    st.text(max_size=20),
    st.tuples(st.text(max_size=8), st.integers(0, 10_000)),
)

_seeds = st.integers(0, 2**62)


@given(seed=_seeds, key=_keys)
@settings(max_examples=200)
def test_spawn_deterministic(seed, key):
    a = RandomSource(seed).spawn(key)
    b = RandomSource(seed).spawn(key)
    assert a.seed == b.seed
    assert [a.random() for _ in range(16)] == [b.random() for _ in range(16)]


@given(seed=_seeds, key1=_keys, key2=_keys)
@settings(max_examples=200)
def test_sibling_streams_diverge(seed, key1, key2):
    root = RandomSource(seed)
    a, b = root.spawn(key1), root.spawn(key2)
    draws_a = [a.random() for _ in range(16)]
    draws_b = [b.random() for _ in range(16)]
    if key1 == key2:
        assert draws_a == draws_b
    else:
        # 16 consecutive identical uniform draws from distinct SHA-256
        # derived seeds would be a 2^-500 coincidence.
        assert draws_a != draws_b


@given(seed=_seeds, key=_keys)
@settings(max_examples=100)
def test_spawn_leaves_parent_stream_untouched(seed, key):
    lone = RandomSource(seed)
    expected = [lone.random() for _ in range(8)]
    spawning = RandomSource(seed)
    spawning.spawn(key)
    assert [spawning.random() for _ in range(8)] == expected


@given(seed=_seeds)
@settings(max_examples=50)
def test_sibling_streams_uncorrelated(seed):
    """Pearson correlation between sibling streams stays small.

    A weak statistical check on top of the exact divergence test: across
    200 paired draws the sample correlation of independent uniforms
    concentrates near 0; |r| >= 0.35 at n=200 is a > 5-sigma outlier.
    """
    root = RandomSource(seed)
    a = root.spawn(("machine", 0))
    b = root.spawn(("machine", 1))
    n = 200
    xs = [a.random() for _ in range(n)]
    ys = [b.random() for _ in range(n)]
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    r = cov / (var_x * var_y) ** 0.5
    assert abs(r) < 0.35


@given(seed=_seeds, indexes=st.sets(st.integers(0, 10_000), min_size=2, max_size=32))
@settings(max_examples=100)
def test_spawned_seeds_collision_free_in_practice(seed, indexes):
    root = RandomSource(seed)
    seeds = [root.spawn(("longterm", index)).seed for index in sorted(indexes)]
    assert len(set(seeds)) == len(seeds)
