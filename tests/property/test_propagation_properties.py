"""Property-based tests for the P1/P2 propagation invariants.

The safety property behind both policies: a task's interaction timestamp is
always either NEVER or the timestamp of some *actual* authentic interaction
delivered to an ancestor-or-peer it transitively communicated with -- and
propagation can only move timestamps **forward**, never invent or inflate
them.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task
from repro.sim.time import NEVER


def make_tasks(count):
    return [Task(i + 1, None, f"t{i}", DEFAULT_USER, "/usr/bin/t", 0) for i in range(count)]


#: An operation script: each item is
#:   ("interact", task_index, timestamp)
#: | ("send",     task_index, channel_index)
#: | ("recv",     task_index, channel_index)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("interact"), st.integers(0, 4), st.integers(0, 10_000)),
        st.tuples(st.just("send"), st.integers(0, 4), st.integers(0, 2)),
        st.tuples(st.just("recv"), st.integers(0, 4), st.integers(0, 2)),
    ),
    max_size=60,
)


def run_script(script):
    policy = TrackingPolicy(enabled=True)
    tasks = make_tasks(5)
    channels = [InteractionStamp(policy) for _ in range(3)]
    recorded = []
    for op, task_index, arg in script:
        task = tasks[task_index]
        if op == "interact":
            task.record_interaction(arg)
            recorded.append(arg)
        elif op == "send":
            channels[arg].embed_from(task)
        else:
            channels[arg].adopt_to(task)
    return tasks, channels, recorded


@given(script=operations)
@settings(max_examples=300)
def test_timestamps_only_from_real_interactions(script):
    """No propagation sequence can mint a timestamp that was never the
    argument of a record_interaction call."""
    tasks, channels, recorded = run_script(script)
    legal = set(recorded) | {NEVER}
    for task in tasks:
        assert task.interaction_ts in legal
    for channel in channels:
        assert channel.timestamp in legal


@given(script=operations)
@settings(max_examples=300)
def test_no_timestamp_exceeds_global_maximum(script):
    tasks, channels, recorded = run_script(script)
    ceiling = max(recorded) if recorded else NEVER
    for task in tasks:
        assert task.interaction_ts <= ceiling
    for channel in channels:
        assert channel.timestamp <= ceiling


@given(script=operations)
@settings(max_examples=200)
def test_monotonicity_under_any_suffix(script):
    """Replaying any script prefix then continuing never lowers a task's
    timestamp: propagation is a join-semilattice walk."""
    policy = TrackingPolicy(enabled=True)
    tasks = make_tasks(5)
    channels = [InteractionStamp(policy) for _ in range(3)]
    for op, task_index, arg in script:
        task = tasks[task_index]
        before = [t.interaction_ts for t in tasks]
        if op == "interact":
            task.record_interaction(arg)
        elif op == "send":
            channels[arg].embed_from(task)
        else:
            channels[arg].adopt_to(task)
        after = [t.interaction_ts for t in tasks]
        assert all(b <= a for b, a in zip(before, after))


@given(script=operations)
@settings(max_examples=150)
def test_disabled_tracking_is_total_isolation(script):
    """With tracking off (baseline kernel), no send/recv sequence moves any
    timestamp anywhere."""
    policy = TrackingPolicy(enabled=False)
    tasks = make_tasks(5)
    channels = [InteractionStamp(policy) for _ in range(3)]
    direct = {}
    for op, task_index, arg in script:
        task = tasks[task_index]
        if op == "interact":
            task.record_interaction(arg)
            direct[task_index] = max(direct.get(task_index, NEVER), arg)
        elif op == "send":
            channels[arg].embed_from(task)
        else:
            channels[arg].adopt_to(task)
    for index, task in enumerate(tasks):
        assert task.interaction_ts == direct.get(index, NEVER)
    assert all(channel.timestamp == NEVER for channel in channels)


@given(
    parent_ts=st.one_of(st.just(NEVER), st.integers(0, 10_000)),
    fork_count=st.integers(1, 8),
)
@settings(max_examples=100)
def test_p1_fork_trees_inherit_exactly(parent_ts, fork_count):
    """Every task in a fork tree built after the interaction carries exactly
    the root's timestamp."""
    from repro.kernel.process_table import ProcessTable
    from repro.sim.scheduler import EventScheduler

    table = ProcessTable(EventScheduler())
    root = table.spawn(table.init, "/usr/bin/root")
    if parent_ts != NEVER:
        root.record_interaction(parent_ts)
    frontier = [root]
    for _ in range(fork_count):
        child = table.fork(frontier[-1])
        frontier.append(child)
    assert all(task.interaction_ts == root.interaction_ts for task in frontier)
