"""Property-based tests for the damage-rect algebra and its coalescer.

The display pipeline's caches are only as safe as the geometry under
them: ``Rect.overlaps``/``union``/``span`` feed the per-drawable
coalescer, and the coalescer's pending set is what the incremental
snapshot splice trusts to cover every dirty byte.  These properties pin
the algebra (symmetry, bounding, linear-only spans), the coalescer's
invariants (bounded pending set, full coverage), and the splice path's
equivalence to a naive 2D cell model.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xserver.window import _MAX_PENDING_RECTS, Geometry, Pixmap, Rect, Window

#: Small coordinates keep the cell-level coverage checks cheap while still
#: exercising every adjacency/containment case.
rects = st.builds(
    Rect,
    x=st.integers(0, 12),
    y=st.integers(0, 12),
    width=st.integers(1, 8),
    height=st.integers(1, 8),
)

#: Single-row rects on a linear (stride-0) drawable -- the only shape
#: ``span()`` is defined for since the 2D framebuffer landed.
linear_rects = st.builds(
    Rect,
    x=st.integers(0, 12),
    y=st.just(0),
    width=st.integers(1, 8),
    height=st.just(1),
)

#: Raw (possibly out-of-bounds, possibly zero-area) draw requests, as a
#: client would issue them before clipping.
raw_requests = st.tuples(
    st.integers(-6, 20),
    st.integers(-6, 20),
    st.integers(0, 10),
    st.integers(0, 10),
)


def cells(rect):
    """The set of (x, y) cells a rect covers -- the ground-truth geometry."""
    return {
        (x, y)
        for x in range(rect.x, rect.x + rect.width)
        for y in range(rect.y, rect.y + rect.height)
    }


class TestRectAlgebra:
    @given(a=rects, b=rects)
    @settings(max_examples=200, deadline=None)
    def test_overlaps_is_symmetric_and_matches_cells(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.overlaps(b) == bool(cells(a) & cells(b))

    @given(a=rects)
    @settings(max_examples=50, deadline=None)
    def test_nonempty_rect_overlaps_itself(self, a):
        assert a.overlaps(a)
        assert a.union(a) == a

    @given(a=rects, b=rects)
    @settings(max_examples=200, deadline=None)
    def test_union_is_commutative_and_bounding(self, a, b):
        u = a.union(b)
        assert u == b.union(a)
        assert cells(a) <= cells(u)
        assert cells(b) <= cells(u)

    @given(a=rects, b=rects, c=rects)
    @settings(max_examples=200, deadline=None)
    def test_union_is_associative(self, a, b, c):
        assert a.union(b).union(c) == a.union(b.union(c))

    @given(a=rects)
    @settings(max_examples=200, deadline=None)
    def test_span_is_linear_only(self, a):
        """``span()`` covers exactly a single row's cells; a multi-row
        rect has no single byte range (the bounding band it used to
        collapse into is exactly the over-approximation the 2D
        framebuffer's per-row blits removed), so it must refuse."""
        if a.height == 1:
            assert a.span() == (a.x, a.x + a.width)
        else:
            with pytest.raises(ValueError):
                a.span()

    @given(a=linear_rects, b=linear_rects)
    @settings(max_examples=200, deadline=None)
    def test_overlap_implies_span_overlap(self, a, b):
        """On linear drawables a shared cell maps to a byte offset inside
        both spans, so the splice path can never miss a dirty byte by
        treating rects independently."""
        if a.overlaps(b):
            alo, ahi = a.span()
            blo, bhi = b.span()
            assert alo < bhi and blo < ahi


class TestClipping:
    @given(req=raw_requests)
    @settings(max_examples=200, deadline=None)
    def test_clip_is_sound_and_idempotent(self, req):
        window = Window(1, Geometry(0, 0, 16, 16))
        clipped = window._clip(*req)
        if clipped is None:
            return
        # Inside the bounds, and a subset of the request's own cells.
        assert cells(clipped) <= cells(Rect(0, 0, 16, 16))
        x, y, w, h = req
        lo_x, lo_y = max(x, 0), max(y, 0)
        assert cells(clipped) <= {
            (cx, cy) for cx in range(lo_x, x + w) for cy in range(lo_y, y + h)
        }
        assert window._clip(*clipped) == clipped

    @given(req=raw_requests)
    @settings(max_examples=100, deadline=None)
    def test_linear_drawables_clip_to_one_row(self, req):
        clipped = Pixmap(1)._clip(*req)
        if clipped is not None:
            assert clipped.y == 0 and clipped.height == 1


class TestCoalescer:
    @given(damage=st.lists(rects, min_size=1, max_size=24))
    @settings(max_examples=200, deadline=None)
    def test_pending_set_is_bounded_and_covering(self, damage):
        """After any damage sequence: at most ``_MAX_PENDING_RECTS``
        pending rects, jointly covering every cell ever damaged.  (The
        tight-union/least-waste coalescer may keep overlapping rects --
        splice and blit are idempotent per cell, so coverage, not
        disjointness, is the safety property.)"""
        window = Window(1, Geometry(0, 0, 24, 24))
        window.content_bytes()  # seed the snapshot so rects accumulate
        submitted = set()
        for rect in damage:
            window.mark_damaged(rect)
            submitted |= cells(rect)
        pending = window.damage_rects
        assert len(pending) <= _MAX_PENDING_RECTS
        covered = set()
        for rect in pending:
            covered |= cells(rect)
        assert submitted <= covered

    @given(damage=st.lists(rects, max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_full_damage_dominates(self, damage):
        """A whole-drawable invalidation absorbs region rects in either
        order: once full, later rects must not resurrect the region path
        with stale coverage."""
        window = Window(1, Geometry(0, 0, 24, 24))
        window.mark_damaged()
        for rect in damage:
            window.mark_damaged(rect)
        assert window._damage_full
        assert window.damage_rects == []
        assert window.damage == 1 + len(damage)


#: Scripts interleave region draws with snapshot reads, so the incremental
#: splice path (refresh only dirty spans of the previous snapshot) is
#: exercised mid-sequence, not just at the end.
draw_scripts = st.lists(
    st.one_of(
        st.tuples(st.just("draw"), raw_requests, st.binary(min_size=0, max_size=64)),
        st.tuples(st.just("snap"), st.none(), st.none()),
    ),
    max_size=30,
)


class TestSnapshotEquivalence:
    @given(script=draw_scripts)
    @settings(max_examples=200, deadline=None)
    def test_spliced_snapshots_match_naive_model(self, script):
        """Differential: the damage-tracked drawable must produce byte-for-
        byte the content of a dumb bytearray model, no matter how reads
        interleave with region draws."""
        window = Window(1, Geometry(0, 0, 16, 16))
        model = bytearray()
        stride = 16
        for action, req, data in script:
            if action == "snap":
                assert window.content_bytes() == bytes(model)
                continue
            rect = window.draw_rect(*req, data)
            if rect is None:
                continue
            # The 2D contract: data is row-major at the *rect's* width,
            # zero-padded/truncated to its area; only the rect's cells
            # change (cells between its rows are untouched).
            need = rect.width * rect.height
            payload = bytes(data[:need])
            payload += b"\x00" * (need - len(payload))
            hi = (rect.y + rect.height - 1) * stride + rect.x + rect.width
            if len(model) < hi:
                model.extend(b"\x00" * (hi - len(model)))
            for row in range(rect.height):
                lo = (rect.y + row) * stride + rect.x
                model[lo : lo + rect.width] = payload[
                    row * rect.width : (row + 1) * rect.width
                ]
        assert window.content_bytes() == bytes(model)

    @given(script=draw_scripts)
    @settings(max_examples=100, deadline=None)
    def test_unchanged_snapshot_is_the_same_object(self, script):
        """Zero-copy contract: reads without intervening damage return the
        identical ``bytes`` object."""
        window = Window(1, Geometry(0, 0, 16, 16))
        for action, req, data in script:
            if action == "draw":
                window.draw_rect(*req, data)
        first = window.content_bytes()
        assert window.content_bytes() is first
