"""Property-based tests for VFS consistency under random file churn."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.errors import FileExists, FileNotFound
from repro.kernel.vfs import Filesystem

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=8
)

#: A churn script: (action, name) pairs over a single directory --
#: exactly the Bonnie++ workload shape of Table I row 5.
scripts = st.lists(
    st.tuples(st.sampled_from(["create", "unlink", "stat"]), names), max_size=80
)


@given(script=scripts)
@settings(max_examples=200)
def test_directory_tracks_model(script):
    """The filesystem agrees with a dict-based model under any script."""
    fs = Filesystem()
    fs.makedirs("/home/user", owner=DEFAULT_USER)
    model = set()
    for action, name in script:
        path = f"/home/user/{name}"
        if action == "create":
            if name in model:
                try:
                    fs.create_file(path, owner=DEFAULT_USER)
                    raise AssertionError("expected EEXIST")
                except FileExists:
                    pass
            else:
                fs.create_file(path, owner=DEFAULT_USER)
                model.add(name)
        elif action == "unlink":
            if name in model:
                fs.unlink(path, DEFAULT_USER)
                model.discard(name)
            else:
                try:
                    fs.unlink(path, DEFAULT_USER)
                    raise AssertionError("expected ENOENT")
                except FileNotFound:
                    pass
        else:  # stat
            if name in model:
                assert fs.stat(path).size == 0
            else:
                try:
                    fs.stat(path)
                    raise AssertionError("expected ENOENT")
                except FileNotFound:
                    pass
    assert sorted(fs.listdir("/home/user")) == sorted(model)


@given(
    data_chunks=st.lists(st.binary(min_size=0, max_size=64), min_size=1, max_size=10)
)
@settings(max_examples=150)
def test_sequential_writes_concatenate(data_chunks):
    from repro.kernel.vfs import OpenFile, OpenMode

    fs = Filesystem()
    fs.makedirs("/home/user", owner=DEFAULT_USER)
    inode = fs.create_file("/home/user/f", owner=DEFAULT_USER)
    writer = OpenFile("/home/user/f", inode, OpenMode.WRITE, 1)
    for chunk in data_chunks:
        writer.write(chunk)
    expected = b"".join(data_chunks)
    reader = OpenFile("/home/user/f", inode, OpenMode.READ, 1)
    assert reader.read(len(expected) + 10) == expected


@given(parts=st.lists(names, min_size=1, max_size=6))
@settings(max_examples=150)
def test_makedirs_then_resolve_round_trip(parts):
    fs = Filesystem()
    path = "/" + "/".join(parts)
    fs.makedirs(path)
    assert fs.exists(path)
    assert fs.stat(path).kind.value == "directory"
