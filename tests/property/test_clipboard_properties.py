"""Property-based tests over random clipboard interleavings.

A script of user actions (clicked copies and clicked pastes by several
apps, interleaved with idle time) must satisfy, under Overhaul:

- every user-initiated paste within the threshold returns exactly the most
  recent successful copy's payload (or None when nothing was ever copied);
- no in-flight data is ever observable by a third party;
- the selection bookkeeping never leaks transfers (everything started is
  completed or failed).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import TextEditor
from repro.core import Machine
from repro.sim.time import from_seconds

#: Script steps: ("copy", app, payload_byte) | ("paste", app) | ("idle", seconds)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("copy"), st.integers(0, 2), st.integers(0, 255)),
        st.tuples(st.just("paste"), st.integers(0, 2), st.just(0)),
        st.tuples(st.just("idle"), st.integers(1, 4), st.just(0)),
    ),
    min_size=1,
    max_size=12,
)


@given(script=steps)
@settings(max_examples=60, deadline=None)
def test_user_driven_clipboard_linearises(script):
    machine = Machine.with_overhaul()
    apps = [TextEditor(machine, comm=f"ed{i}") for i in range(3)]
    machine.settle()

    current_clipboard = None
    for action, arg, extra in script:
        if action == "copy":
            payload = bytes([extra]) * 4
            apps[arg].user_copy(payload)
            current_clipboard = payload
        elif action == "paste":
            result = apps[arg].user_paste()
            assert result == current_clipboard
        else:
            machine.run_for(from_seconds(float(arg)))

    selections = machine.xserver.selections
    assert not selections.active_transfers()  # nothing left dangling


@given(script=steps)
@settings(max_examples=40, deadline=None)
def test_background_observer_sees_nothing_ever(script):
    """However the users interleave copies and pastes, a background process
    polling the clipboard concurrently never obtains a payload."""
    from repro.apps import Spyware

    machine = Machine.with_overhaul()
    apps = [TextEditor(machine, comm=f"ed{i}") for i in range(3)]
    spy = Spyware(machine)
    machine.settle()

    for action, arg, extra in script:
        if action == "copy":
            apps[arg].user_copy(bytes([extra]) * 4)
        elif action == "paste":
            apps[arg].user_paste()
        else:
            machine.run_for(from_seconds(float(arg)))
        spy.attempt_clipboard()

    assert spy.stolen == []
