"""Property-based tests for the event scheduler's ordering guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.scheduler import EventScheduler


@given(times=st.lists(st.integers(0, 100_000), min_size=1, max_size=50))
@settings(max_examples=200)
def test_events_fire_in_non_decreasing_time_order(times):
    scheduler = EventScheduler()
    fired = []
    for t in times:
        scheduler.schedule_at(t, lambda t=t: fired.append(t))
    scheduler.run_until(100_000)
    assert fired == sorted(fired)
    assert sorted(fired) == sorted(times)


@given(
    times=st.lists(st.integers(0, 1000), min_size=1, max_size=30),
    horizon=st.integers(0, 1000),
)
@settings(max_examples=200)
def test_exactly_events_at_or_before_horizon_fire(times, horizon):
    scheduler = EventScheduler()
    fired = []
    for t in times:
        scheduler.schedule_at(t, lambda t=t: fired.append(t))
    scheduler.run_until(horizon)
    assert sorted(fired) == sorted(t for t in times if t <= horizon)
    assert scheduler.now == horizon


@given(
    times=st.lists(st.integers(0, 1000), min_size=2, max_size=30),
    cancel_indices=st.sets(st.integers(0, 29)),
)
@settings(max_examples=200)
def test_cancelled_events_never_fire(times, cancel_indices):
    scheduler = EventScheduler()
    fired = []
    handles = [
        scheduler.schedule_at(t, lambda i=i: fired.append(i)) for i, t in enumerate(times)
    ]
    cancelled = {i for i in cancel_indices if i < len(handles)}
    for i in cancelled:
        handles[i].cancel()
    scheduler.run_until(1000)
    assert set(fired) == set(range(len(times))) - cancelled


@given(ticks=st.lists(st.integers(1, 1000), min_size=1, max_size=20))
@settings(max_examples=100)
def test_clock_equals_sum_of_run_for_ticks(ticks):
    scheduler = EventScheduler()
    for tick in ticks:
        scheduler.run_for(tick)
    assert scheduler.now == sum(ticks)


@given(times=st.lists(st.integers(0, 100), min_size=1, max_size=20))
@settings(max_examples=100)
def test_same_instant_events_fire_in_insertion_order(times):
    scheduler = EventScheduler()
    fired = []
    instant = 50
    for index in range(len(times)):
        scheduler.schedule_at(instant, lambda i=index: fired.append(i))
    scheduler.run_until(instant)
    assert fired == list(range(len(times)))
