"""Property-based tests for the shared-memory interception state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.credentials import DEFAULT_USER
from repro.kernel.ipc.base import TrackingPolicy
from repro.kernel.ipc.shared_memory import SharedMemorySubsystem
from repro.kernel.mm import AddressSpace, PAGE_SIZE
from repro.kernel.task import Task
from repro.sim.scheduler import EventScheduler
from repro.sim.time import from_millis


def make_task(pid):
    task = Task(pid, None, f"t{pid}", DEFAULT_USER, "/usr/bin/t", 0)
    task.address_space = AddressSpace()
    return task


#: A script of (actor, action, argument) over one 4-page segment:
#: action in {"write", "read", "wait_ms"}.
scripts = st.lists(
    st.one_of(
        st.tuples(st.integers(0, 1), st.just("write"), st.integers(0, 4 * PAGE_SIZE - 8)),
        st.tuples(st.integers(0, 1), st.just("read"), st.integers(0, 4 * PAGE_SIZE - 8)),
        st.tuples(st.just(0), st.just("wait_ms"), st.integers(1, 800)),
    ),
    max_size=40,
)


def run(script, enabled=True):
    scheduler = EventScheduler()
    shm = SharedMemorySubsystem(TrackingPolicy(enabled=enabled), scheduler)
    tasks = [make_task(1), make_task(2)]
    segment = shm.shmget(1, 4)
    areas = [shm.attach(task, segment) for task in tasks]
    for actor, action, arg in script:
        if action == "write":
            shm.write(tasks[actor], areas[actor], arg, b"12345678")
        elif action == "read":
            shm.read(tasks[actor], areas[actor], arg, 8)
        else:
            scheduler.run_for(from_millis(arg))
    return shm, scheduler, tasks, areas, segment


@given(script=scripts)
@settings(max_examples=200, deadline=None)
def test_accesses_always_succeed_despite_interception(script):
    """Transparency: no access ever fails because of the revocation state
    machine -- faults are serviced invisibly."""
    run(script)  # must not raise


@given(script=scripts)
@settings(max_examples=200, deadline=None)
def test_open_window_invariant(script):
    """At every step: an area is either revoked, or it has a pending
    re-revocation timer (the wait list), or tracking is disabled.  No
    mapping is ever permanently open."""
    scheduler = EventScheduler()
    shm = SharedMemorySubsystem(TrackingPolicy(enabled=True), scheduler)
    tasks = [make_task(1), make_task(2)]
    segment = shm.shmget(1, 4)
    areas = [shm.attach(task, segment) for task in tasks]
    for actor, action, arg in script:
        if action == "write":
            shm.write(tasks[actor], areas[actor], arg, b"12345678")
        elif action == "read":
            shm.read(tasks[actor], areas[actor], arg, 8)
        else:
            scheduler.run_for(from_millis(arg))
        for area in areas:
            assert area.protection_revoked or area.waitlist_event is not None


@given(script=scripts)
@settings(max_examples=150, deadline=None)
def test_fault_count_bounded_by_accesses(script):
    shm, _, _, _, _ = run(script)
    assert shm.total_faults <= shm.total_accesses


@given(script=scripts)
@settings(max_examples=150, deadline=None)
def test_baseline_never_faults(script):
    shm, _, _, _, _ = run(script, enabled=False)
    assert shm.total_faults == 0


@given(
    offsets=st.lists(st.integers(0, 4 * PAGE_SIZE - 8), min_size=1, max_size=20),
)
@settings(max_examples=150, deadline=None)
def test_data_integrity_under_interception(offsets):
    """What a writer stores, any reader sees -- byte for byte -- regardless
    of fault servicing in between."""
    scheduler = EventScheduler()
    shm = SharedMemorySubsystem(TrackingPolicy(enabled=True), scheduler)
    writer, reader = make_task(1), make_task(2)
    segment = shm.shmget(1, 4)
    w_area = shm.attach(writer, segment)
    r_area = shm.attach(reader, segment)
    for index, offset in enumerate(offsets):
        payload = bytes([index % 256]) * 8
        shm.write(writer, w_area, offset, payload)
        assert shm.read(reader, r_area, offset, 8) == payload
