"""Machine-level property: end-to-end mediation matches the paper's rule.

Hypothesis drives whole protected machines through random interleavings of
user clicks, idle time, and device-open attempts by three applications.
The oracle is the paper's sentence: an open is granted iff *that* app was
clicked less than delta ago.  This exercises the entire stack -- mouse
driver, X dispatch, clickjack checks, netlink, monitor, augmented open --
against the two-line model.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import SimApp
from repro.core import Machine
from repro.kernel.errors import OverhaulDenied
from repro.sim.time import from_seconds
from repro.xserver.window import Geometry

#: Script steps: ("click", app) | ("open", app) | ("idle", tenths-of-seconds)
steps = st.lists(
    st.one_of(
        st.tuples(st.just("click"), st.integers(0, 2)),
        st.tuples(st.just("open"), st.integers(0, 2)),
        st.tuples(st.just("idle"), st.integers(1, 30)),
    ),
    min_size=1,
    max_size=25,
)


@given(script=steps)
@settings(max_examples=60, deadline=None)
def test_device_mediation_matches_the_oracle(script):
    machine = Machine.with_overhaul()
    # Non-overlapping windows so clicks land unambiguously.
    apps = [
        SimApp(
            machine,
            f"/usr/bin/app{i}",
            comm=f"app{i}",
            geometry=Geometry(i * 400, 100, 300, 200),
        )
        for i in range(3)
    ]
    machine.settle()
    delta = machine.overhaul.config.interaction_threshold

    last_click = [None, None, None]
    for action, arg in script:
        if action == "click":
            apps[arg].click()
            last_click[arg] = machine.now
        elif action == "open":
            expected = (
                last_click[arg] is not None
                and machine.now - last_click[arg] < delta
            )
            try:
                fd = apps[arg].open_device("mic0")
                apps[arg].close_fd(fd)
                granted = True
            except OverhaulDenied:
                granted = False
            assert granted == expected, (
                f"app{arg} open at {machine.now}: expected "
                f"{'grant' if expected else 'deny'} (last click {last_click[arg]})"
            )
        else:
            machine.run_for(from_seconds(arg / 10.0))


@given(script=steps)
@settings(max_examples=30, deadline=None)
def test_baseline_machine_always_grants(script):
    """The same scripts on an unmodified machine: every open succeeds."""
    machine = Machine.baseline()
    apps = [
        SimApp(
            machine,
            f"/usr/bin/app{i}",
            comm=f"app{i}",
            geometry=Geometry(i * 400, 100, 300, 200),
        )
        for i in range(3)
    ]
    machine.settle()
    for action, arg in script:
        if action == "click":
            apps[arg].click()
        elif action == "open":
            fd = apps[arg].open_device("mic0")
            apps[arg].close_fd(fd)
        else:
            machine.run_for(from_seconds(arg / 10.0))
