"""Differential property test: fast paths vs the reference implementation.

Two protected machines run the same random script of protocol operations --
interaction notifications, permission queries, device opens, forks, process
exits, ptrace attach/detach, and protection toggles.  One machine has every
hot-path optimisation on (the default configuration: zero-copy netlink,
epoch decision cache, batched audit appends); the other runs the reference
configuration with all of them off.

The assertion is total: every query response, the full decision log, the
full audit log, and every Table I counter must be byte-identical.  This is
the contract that lets the optimisations exist at all -- they may change
how fast a decision is made, never which decision, what gets logged, or
what the experiments count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Machine, paper_config, reference_config
from repro.core.notifications import MSG_INTERACTION, MSG_PERMISSION_QUERY
from repro.kernel.credentials import ROOT
from repro.kernel.errors import (
    InvalidArgument,
    OperationNotPermitted,
    OverhaulDenied,
)
from repro.sim.time import from_seconds

#: Operations a script step can issue (timestamps offsets in microseconds
#: straddle the 2 s threshold in both directions).
_OFFSETS = st.integers(-int(from_seconds(3.0)), int(from_seconds(3.0)))

script_steps = st.lists(
    st.one_of(
        st.tuples(st.just("interact"), st.integers(0, 5), _OFFSETS),
        st.tuples(st.just("query"), st.integers(0, 5), st.integers(0, 2), _OFFSETS),
        st.tuples(st.just("device"), st.integers(0, 5)),
        st.tuples(st.just("advance"), st.integers(1, int(from_seconds(2.5)))),
        st.tuples(st.just("fork"), st.integers(0, 5)),
        st.tuples(st.just("kill"), st.integers(0, 5)),
        st.tuples(st.just("attach"), st.integers(0, 5)),
        st.tuples(st.just("detach"), st.integers(0, 5)),
        st.tuples(st.just("toggle_protection"),),
    ),
    min_size=1,
    max_size=40,
)

_QUERY_OPS = ["copy", "paste", "screen.capture"]


def _build(config):
    machine = Machine.with_overhaul(config)
    machine.settle()
    kernel = machine.kernel
    # A superuser debugger for the ptrace steps and three seed apps; forks
    # extend the task list identically on both machines (pids are assigned
    # by the same deterministic counter).
    debugger = kernel.sys_spawn(kernel.process_table.init, "/usr/bin/gdb",
                                comm="gdb", creds=ROOT)
    tasks = [
        machine.launch(f"/usr/bin/app{i}", comm=f"app{i}")[0] for i in range(3)
    ]
    return machine, debugger, tasks


def _apply(machine, debugger, tasks, script):
    """Run *script*; return the observable transcript."""
    kernel = machine.kernel
    channel = machine.overhaul.channel
    xtask = machine.xserver_task
    transcript = []
    for step in script:
        action = step[0]
        if action == "interact":
            task = tasks[step[1] % len(tasks)]
            channel.send_to_kernel(
                xtask, MSG_INTERACTION,
                {"pid": task.pid, "timestamp": machine.now + step[2]},
            )
        elif action == "query":
            task = tasks[step[1] % len(tasks)]
            response = channel.send_to_kernel(
                xtask, MSG_PERMISSION_QUERY,
                {
                    "pid": task.pid,
                    "operation": _QUERY_OPS[step[2]],
                    "timestamp": machine.now + step[3],
                },
            )
            transcript.append(("response", response))
        elif action == "device":
            task = tasks[step[1] % len(tasks)]
            try:
                kernel.device_mediator.gate_open(task, "/dev/mic0")
                transcript.append(("device", task.pid, "granted"))
            except OverhaulDenied:
                transcript.append(("device", task.pid, "denied"))
        elif action == "advance":
            machine.run_for(step[1])
        elif action == "fork":
            parent = tasks[step[1] % len(tasks)]
            if parent.is_alive:
                child = kernel.sys_spawn(parent, parent.exe_path, comm=parent.comm)
                tasks.append(child)
                transcript.append(("fork", parent.pid, child.pid))
        elif action == "kill":
            task = tasks[step[1] % len(tasks)]
            if task.is_alive:
                kernel.process_table.exit(task)
                transcript.append(("kill", task.pid))
        elif action == "attach":
            task = tasks[step[1] % len(tasks)]
            try:
                kernel.ptrace.attach(debugger, task)
                transcript.append(("attach", task.pid))
            except (OperationNotPermitted, InvalidArgument):
                transcript.append(("attach-denied", task.pid))
        elif action == "detach":
            task = tasks[step[1] % len(tasks)]
            try:
                kernel.ptrace.detach(debugger, task)
                transcript.append(("detach", task.pid))
            except OperationNotPermitted:
                transcript.append(("detach-denied", task.pid))
        elif action == "toggle_protection":
            ptrace = kernel.ptrace
            ptrace.protection_enabled = not ptrace.protection_enabled
    return transcript


def _observable_state(machine):
    monitor = machine.monitor
    return {
        "decisions": list(monitor.decisions),
        "audit": list(machine.kernel.audit),
        "audit_total": machine.kernel.audit.total_recorded,
        "notifications_received": monitor.notifications_received,
        "queries_answered": monitor.queries_answered,
        "grant_count": monitor.grant_count,
        "deny_count": monitor.deny_count,
        "alerts_requested": monitor.alerts_requested,
        "alerts_coalesced": monitor.alerts_coalesced,
        "mediator_checks": machine.kernel.device_mediator.checks_performed,
        "mediator_denials": machine.kernel.device_mediator.denials,
    }


@given(script=script_steps)
@settings(max_examples=50, deadline=None)
def test_fast_and_reference_paths_are_byte_identical(script):
    fast_machine, fast_dbg, fast_tasks = _build(paper_config())
    ref_machine, ref_dbg, ref_tasks = _build(reference_config())

    # Sanity: the toggles actually selected different code paths.
    assert fast_machine.kernel.netlink.fast_path
    assert not ref_machine.kernel.netlink.fast_path

    fast_transcript = _apply(fast_machine, fast_dbg, fast_tasks, script)
    ref_transcript = _apply(ref_machine, ref_dbg, ref_tasks, script)

    assert fast_transcript == ref_transcript
    assert _observable_state(fast_machine) == _observable_state(ref_machine)


@given(script=script_steps)
@settings(max_examples=25, deadline=None)
def test_tracing_forces_the_reference_path_with_identical_results(script):
    """With the tracer on, a fast-configured machine must behave like the
    reference machine too (the span tree rides on the reference path)."""
    traced_machine, traced_dbg, traced_tasks = _build(paper_config())
    traced_machine.tracer.enabled = True
    ref_machine, ref_dbg, ref_tasks = _build(reference_config())

    traced_transcript = _apply(traced_machine, traced_dbg, traced_tasks, script)
    ref_transcript = _apply(ref_machine, ref_dbg, ref_tasks, script)

    assert traced_transcript == ref_transcript
    assert _observable_state(traced_machine) == _observable_state(ref_machine)


# -- display-pipeline differential tests --------------------------------------
#
# The damage-tracked display pipeline (composition cache, zero-copy drawable
# snapshots, banner cache, selection-transfer reuse) must be invisible in
# everything but host time.  These scripts drive window lifecycle, painting,
# captures (core and MIT-SHM), CopyArea/CopyPlane, the full ICCCM clipboard,
# property traffic including snooping subscriptions, and overlay alerts on a
# fast and a reference machine, and require byte-identical screens, pixmap
# contents, properties, pasted data, denial texts, and counters.
#
# Transcripts deliberately never record raw drawable ids: the id counter is
# process-global, so the two machines allocate different ids for the same
# windows.  Pids, by contrast, are per-machine deterministic.

from repro.apps.base import SELECTION_PROPERTY, SimApp
from repro.xserver.errors import BadAccess
from repro.xserver.events import EventKind
from repro.xserver.selection import CLIPBOARD
from repro.xserver.window import Geometry

display_steps = st.lists(
    st.one_of(
        st.tuples(st.just("click"), st.integers(0, 2)),
        st.tuples(st.just("draw"), st.integers(0, 2), st.integers(0, 255)),
        # Region draws on 200x200 windows: coordinates range past the
        # bounds and sizes include zero, so clipping, no-op rejection, and
        # coalescing all get exercised.
        st.tuples(st.just("draw_rect"), st.integers(0, 2),
                  st.integers(0, 220), st.integers(0, 220),
                  st.integers(0, 40), st.integers(0, 40),
                  st.integers(0, 255)),
        st.tuples(st.just("map"), st.integers(0, 2)),
        st.tuples(st.just("unmap"), st.integers(0, 2)),
        st.tuples(st.just("raise"), st.integers(0, 2)),
        st.tuples(st.just("capture"), st.integers(0, 2), st.integers(0, 1)),
        st.tuples(st.just("capture_win"), st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.just("copy_area"), st.integers(0, 2), st.integers(0, 3)),
        st.tuples(st.just("copy_plane"), st.integers(0, 2), st.integers(0, 3)),
        st.tuples(st.just("copy"), st.integers(0, 2), st.integers(0, 255)),
        st.tuples(st.just("paste"), st.integers(0, 2)),
        st.tuples(st.just("sendevent"), st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.just("prop"), st.integers(0, 2), st.integers(0, 2), st.integers(0, 255)),
        st.tuples(st.just("prop_del"), st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.just("subscribe"), st.integers(0, 2), st.integers(0, 2)),
        st.tuples(st.just("alert"), st.integers(0, 3)),
        st.tuples(st.just("advance"), st.integers(1, int(from_seconds(4.0)))),
    ),
    min_size=1,
    max_size=40,
)

_CAPTURE_VIAS = ["core", "mit-shm"]


def _build_display(config):
    machine = Machine.with_overhaul(config)
    apps = [
        SimApp(
            machine,
            f"/usr/bin/winapp{i}",
            comm=f"winapp{i}",
            geometry=Geometry(60 * i, 60 * i, 200, 200),
        )
        for i in range(3)
    ]
    for i, app in enumerate(apps):
        machine.xserver.draw(app.client, app.window.drawable_id, bytes([i + 1]) * 24)
        app.pixmap = machine.xserver.create_pixmap(app.client)
    machine.settle()
    return machine, apps


def _apply_display(machine, apps, script):
    """Run *script*; return the observable display transcript."""
    xserver = machine.xserver
    transcript = []
    for step in script:
        action = step[0]
        app = apps[step[1] % len(apps)]
        if action == "click":
            app.click()
        elif action == "draw":
            xserver.draw(app.client, app.window.drawable_id, bytes([step[2]]) * 24)
        elif action == "draw_rect":
            rect = xserver.draw_rect(
                app.client, app.window.drawable_id,
                step[2], step[3], step[4], step[5], bytes([step[6]]) * 16,
            )
            # Clipped rects are machine-independent coordinates, so the
            # transcript can compare them directly (None for no-ops).
            transcript.append(("draw-rect", rect))
        elif action == "map":
            xserver.map_window(app.client, app.window.drawable_id)
        elif action == "unmap":
            xserver.unmap_window(app.client, app.window.drawable_id)
        elif action == "raise":
            xserver.raise_window(app.client, app.window.drawable_id)
        elif action == "capture":
            via = _CAPTURE_VIAS[step[2]]
            try:
                transcript.append(("capture", via, app.capture_screen(via=via)))
            except BadAccess as exc:
                transcript.append(("capture-denied", via, str(exc)))
        elif action == "capture_win":
            other = apps[step[2] % len(apps)]
            try:
                transcript.append(("capture-win", app.capture_window(other.window)))
            except BadAccess as exc:
                transcript.append(("capture-win-denied", str(exc)))
        elif action in ("copy_area", "copy_plane"):
            src_sel = step[2]
            if src_sel == 0:
                src_id = xserver.root_window.drawable_id
            else:
                src_id = apps[(src_sel - 1) % len(apps)].window.drawable_id
            request = xserver.copy_area if action == "copy_area" else xserver.copy_plane
            try:
                request(app.client, src_id, app.pixmap.drawable_id)
                transcript.append((action, bytes(app.pixmap.content)))
            except BadAccess as exc:
                transcript.append((action + "-denied", str(exc)))
        elif action == "copy":
            try:
                app.copy_text(bytes([step[2]]) * 12)
                transcript.append(("copy", "ok"))
            except BadAccess as exc:
                transcript.append(("copy-denied", str(exc)))
        elif action == "paste":
            try:
                transcript.append(("paste", app.paste_text()))
            except BadAccess as exc:
                transcript.append(("paste-denied", str(exc)))
        elif action == "sendevent":
            other = apps[step[2] % len(apps)]
            try:
                xserver.send_event(
                    app.client,
                    other.window.drawable_id,
                    EventKind.SELECTION_NOTIFY,
                    payload={"selection": CLIPBOARD, "property": SELECTION_PROPERTY},
                )
                transcript.append(("sendevent", "ok"))
            except BadAccess as exc:
                transcript.append(("sendevent-denied", str(exc)))
        elif action == "prop":
            other = apps[step[2] % len(apps)]
            xserver.change_property(
                app.client,
                other.window.drawable_id,
                SELECTION_PROPERTY,
                bytes([step[3]]) * 8,
            )
        elif action == "prop_del":
            other = apps[step[2] % len(apps)]
            try:
                data = xserver.get_property(
                    app.client, other.window.drawable_id, SELECTION_PROPERTY, delete=True
                )
                transcript.append(("prop-del", data))
            except BadAccess as exc:
                transcript.append(("prop-del-denied", str(exc)))
        elif action == "subscribe":
            other = apps[step[2] % len(apps)]
            xserver.subscribe_property_events(app.client, other.window.drawable_id)
        elif action == "alert":
            k = step[1] % 4
            xserver.display_alert(f"alert {k}", f"op{k}", pid=9000 + k, comm=f"daemon{k}")
        elif action == "advance":
            machine.run_for(step[1])
    return transcript


def _display_observable_state(machine, apps):
    xserver = machine.xserver
    monitor = machine.monitor
    extension = machine.overhaul.extension
    return {
        "decisions": list(monitor.decisions),
        "audit": list(machine.kernel.audit),
        "audit_total": machine.kernel.audit.total_recorded,
        "queries_answered": monitor.queries_answered,
        "grant_count": monitor.grant_count,
        "deny_count": monitor.deny_count,
        "queries_sent": extension.queries_sent,
        "alerts_displayed": extension.alerts_displayed,
        "notifications_sent": extension.notifications_sent,
        "requests_processed": xserver.requests_processed,
        "captures_served": xserver.screen_captures_served,
        "captures_denied": xserver.screen_captures_denied,
        "sendevent_blocked": xserver.sendevent_blocked,
        "property_snoops_blocked": xserver.property_snoops_blocked,
        "copy_requests": dict(xserver.copy_requests),
        "completed_transfers": xserver.selections.completed_transfers,
        "failed_transfers": xserver.selections.failed_transfers,
        "overlay_shown": xserver.overlay.total_shown,
        "overlay_coalesced": xserver.overlay.total_coalesced,
        # Rect coalescing happens at damage-record time, before any
        # fast-path gate, so fast and reference machines must agree.
        "damage_rects_coalesced": xserver.damage_rects_coalesced,
        "events_received": [app.client.events_received for app in apps],
        "pasted": [list(app.pasted) for app in apps],
        "window_properties": [dict(app.window.properties) for app in apps],
        "screen": xserver.compose_screen(),
    }


@given(script=display_steps)
@settings(max_examples=50, deadline=None)
def test_display_fast_paths_are_byte_identical(script):
    fast_machine, fast_apps = _build_display(paper_config())
    ref_machine, ref_apps = _build_display(reference_config())

    # Sanity: the toggle actually selected different code paths.
    assert fast_machine.xserver._fast_display_active()
    assert not ref_machine.xserver._fast_display_active()
    assert not ref_machine.xserver.overlay.fast_banner_cache

    fast_transcript = _apply_display(fast_machine, fast_apps, script)
    ref_transcript = _apply_display(ref_machine, ref_apps, script)

    assert fast_transcript == ref_transcript
    assert _display_observable_state(fast_machine, fast_apps) == _display_observable_state(
        ref_machine, ref_apps
    )


@given(script=display_steps)
@settings(max_examples=25, deadline=None)
def test_tracing_forces_the_reference_display_path(script):
    """A fast-configured machine with the tracer on must match the
    reference machine: tracing disables every display fast path at call
    time (composition cache, snapshot handoff, banner cache, transfer
    reuse), so the span tree always describes the reference protocol."""
    traced_machine, traced_apps = _build_display(paper_config())
    traced_machine.tracer.enabled = True
    ref_machine, ref_apps = _build_display(reference_config())

    assert not traced_machine.xserver._fast_display_active()

    traced_transcript = _apply_display(traced_machine, traced_apps, script)
    ref_transcript = _apply_display(ref_machine, ref_apps, script)

    assert traced_transcript == ref_transcript
    assert _display_observable_state(traced_machine, traced_apps) == _display_observable_state(
        ref_machine, ref_apps
    )
    # The fast machine must not have used any cache while traced.
    assert traced_machine.xserver.compose_cache_hits == 0
    assert traced_machine.xserver.compose_partial_hits == 0
    assert traced_machine.xserver.selections.transfer_reuses == 0
