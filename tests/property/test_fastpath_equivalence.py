"""Differential property test: fast paths vs the reference implementation.

Two protected machines run the same random script of protocol operations --
interaction notifications, permission queries, device opens, forks, process
exits, ptrace attach/detach, and protection toggles.  One machine has every
hot-path optimisation on (the default configuration: zero-copy netlink,
epoch decision cache, batched audit appends); the other runs the reference
configuration with all of them off.

The assertion is total: every query response, the full decision log, the
full audit log, and every Table I counter must be byte-identical.  This is
the contract that lets the optimisations exist at all -- they may change
how fast a decision is made, never which decision, what gets logged, or
what the experiments count.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Machine, paper_config, reference_config
from repro.core.notifications import MSG_INTERACTION, MSG_PERMISSION_QUERY
from repro.kernel.credentials import ROOT
from repro.kernel.errors import (
    InvalidArgument,
    OperationNotPermitted,
    OverhaulDenied,
)
from repro.sim.time import from_seconds

#: Operations a script step can issue (timestamps offsets in microseconds
#: straddle the 2 s threshold in both directions).
_OFFSETS = st.integers(-int(from_seconds(3.0)), int(from_seconds(3.0)))

script_steps = st.lists(
    st.one_of(
        st.tuples(st.just("interact"), st.integers(0, 5), _OFFSETS),
        st.tuples(st.just("query"), st.integers(0, 5), st.integers(0, 2), _OFFSETS),
        st.tuples(st.just("device"), st.integers(0, 5)),
        st.tuples(st.just("advance"), st.integers(1, int(from_seconds(2.5)))),
        st.tuples(st.just("fork"), st.integers(0, 5)),
        st.tuples(st.just("kill"), st.integers(0, 5)),
        st.tuples(st.just("attach"), st.integers(0, 5)),
        st.tuples(st.just("detach"), st.integers(0, 5)),
        st.tuples(st.just("toggle_protection"),),
    ),
    min_size=1,
    max_size=40,
)

_QUERY_OPS = ["copy", "paste", "screen.capture"]


def _build(config):
    machine = Machine.with_overhaul(config)
    machine.settle()
    kernel = machine.kernel
    # A superuser debugger for the ptrace steps and three seed apps; forks
    # extend the task list identically on both machines (pids are assigned
    # by the same deterministic counter).
    debugger = kernel.sys_spawn(kernel.process_table.init, "/usr/bin/gdb",
                                comm="gdb", creds=ROOT)
    tasks = [
        machine.launch(f"/usr/bin/app{i}", comm=f"app{i}")[0] for i in range(3)
    ]
    return machine, debugger, tasks


def _apply(machine, debugger, tasks, script):
    """Run *script*; return the observable transcript."""
    kernel = machine.kernel
    channel = machine.overhaul.channel
    xtask = machine.xserver_task
    transcript = []
    for step in script:
        action = step[0]
        if action == "interact":
            task = tasks[step[1] % len(tasks)]
            channel.send_to_kernel(
                xtask, MSG_INTERACTION,
                {"pid": task.pid, "timestamp": machine.now + step[2]},
            )
        elif action == "query":
            task = tasks[step[1] % len(tasks)]
            response = channel.send_to_kernel(
                xtask, MSG_PERMISSION_QUERY,
                {
                    "pid": task.pid,
                    "operation": _QUERY_OPS[step[2]],
                    "timestamp": machine.now + step[3],
                },
            )
            transcript.append(("response", response))
        elif action == "device":
            task = tasks[step[1] % len(tasks)]
            try:
                kernel.device_mediator.gate_open(task, "/dev/mic0")
                transcript.append(("device", task.pid, "granted"))
            except OverhaulDenied:
                transcript.append(("device", task.pid, "denied"))
        elif action == "advance":
            machine.run_for(step[1])
        elif action == "fork":
            parent = tasks[step[1] % len(tasks)]
            if parent.is_alive:
                child = kernel.sys_spawn(parent, parent.exe_path, comm=parent.comm)
                tasks.append(child)
                transcript.append(("fork", parent.pid, child.pid))
        elif action == "kill":
            task = tasks[step[1] % len(tasks)]
            if task.is_alive:
                kernel.process_table.exit(task)
                transcript.append(("kill", task.pid))
        elif action == "attach":
            task = tasks[step[1] % len(tasks)]
            try:
                kernel.ptrace.attach(debugger, task)
                transcript.append(("attach", task.pid))
            except (OperationNotPermitted, InvalidArgument):
                transcript.append(("attach-denied", task.pid))
        elif action == "detach":
            task = tasks[step[1] % len(tasks)]
            try:
                kernel.ptrace.detach(debugger, task)
                transcript.append(("detach", task.pid))
            except OperationNotPermitted:
                transcript.append(("detach-denied", task.pid))
        elif action == "toggle_protection":
            ptrace = kernel.ptrace
            ptrace.protection_enabled = not ptrace.protection_enabled
    return transcript


def _observable_state(machine):
    monitor = machine.monitor
    return {
        "decisions": list(monitor.decisions),
        "audit": list(machine.kernel.audit),
        "audit_total": machine.kernel.audit.total_recorded,
        "notifications_received": monitor.notifications_received,
        "queries_answered": monitor.queries_answered,
        "grant_count": monitor.grant_count,
        "deny_count": monitor.deny_count,
        "alerts_requested": monitor.alerts_requested,
        "alerts_coalesced": monitor.alerts_coalesced,
        "mediator_checks": machine.kernel.device_mediator.checks_performed,
        "mediator_denials": machine.kernel.device_mediator.denials,
    }


@given(script=script_steps)
@settings(max_examples=50, deadline=None)
def test_fast_and_reference_paths_are_byte_identical(script):
    fast_machine, fast_dbg, fast_tasks = _build(paper_config())
    ref_machine, ref_dbg, ref_tasks = _build(reference_config())

    # Sanity: the toggles actually selected different code paths.
    assert fast_machine.kernel.netlink.fast_path
    assert not ref_machine.kernel.netlink.fast_path

    fast_transcript = _apply(fast_machine, fast_dbg, fast_tasks, script)
    ref_transcript = _apply(ref_machine, ref_dbg, ref_tasks, script)

    assert fast_transcript == ref_transcript
    assert _observable_state(fast_machine) == _observable_state(ref_machine)


@given(script=script_steps)
@settings(max_examples=25, deadline=None)
def test_tracing_forces_the_reference_path_with_identical_results(script):
    """With the tracer on, a fast-configured machine must behave like the
    reference machine too (the span tree rides on the reference path)."""
    traced_machine, traced_dbg, traced_tasks = _build(paper_config())
    traced_machine.tracer.enabled = True
    ref_machine, ref_dbg, ref_tasks = _build(reference_config())

    traced_transcript = _apply(traced_machine, traced_dbg, traced_tasks, script)
    ref_transcript = _apply(ref_machine, ref_dbg, ref_tasks, script)

    assert traced_transcript == ref_transcript
    assert _observable_state(traced_machine) == _observable_state(ref_machine)
