"""Property-based differential for the 2D framebuffer blitter.

``Framebuffer.blit`` is the single primitive under every composed frame,
so it gets the strongest check in the suite: any sequence of blits must
leave the buffer byte-identical to a naive per-cell model (clip each
cell, zero-extend past the content, last-writer-wins), and the numpy
path -- when the optional dependency is importable -- must be
indistinguishable from the pure-python loop, including its epoch
bookkeeping and return values.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xserver.framebuffer import NUMPY_AVAILABLE, Framebuffer

#: Screen dimensions small enough for the quadratic cell model.
dims = st.tuples(st.integers(1, 12), st.integers(1, 10))

#: A single blit request: window origin (possibly offscreen), stride,
#: content, and a window-local rect.  Nothing is pre-clipped -- the
#: blitter owns all boundary handling.
blits = st.tuples(
    st.integers(-6, 14),            # wx
    st.integers(-6, 12),            # wy
    st.integers(1, 12),             # stride
    st.binary(min_size=0, max_size=96),  # content
    st.integers(0, 10),             # rx
    st.integers(0, 10),             # ry
    st.integers(0, 8),              # rw
    st.integers(0, 8),              # rh
)


def _model_blit(model, width, height, wx, wy, stride, content, rx, ry, rw, rh):
    """The ground truth: write each rect cell independently."""
    wrote = False
    for row in range(rh):
        sy = wy + ry + row
        if not 0 <= sy < height:
            continue
        for col in range(rw):
            sx = wx + rx + col
            if not 0 <= sx < width:
                continue
            offset = (ry + row) * stride + rx + col
            value = content[offset] if offset < len(content) else 0
            model[sy * width + sx] = value
            wrote = True
    return wrote


class TestBlitDifferential:
    @given(dims=dims, script=st.lists(blits, max_size=12))
    @settings(max_examples=200, deadline=None)
    def test_blit_matches_naive_cell_model(self, dims, script):
        width, height = dims
        fb = Framebuffer(width, height)
        model = bytearray(width * height)
        for step in script:
            wrote = fb.blit(*step)
            expected = _model_blit(model, width, height, *step)
            assert wrote == expected
            assert fb.snapshot() == bytes(model)

    @given(dims=dims, script=st.lists(blits, max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_numpy_path_is_byte_identical_to_pure_python(self, dims, script):
        """When numpy is absent this degenerates to pure-vs-pure (both
        flags resolve to the slice loop), which is still a valid -- if
        trivial -- run; with numpy installed the engaged path must agree
        on every byte, every return value, and every epoch bump."""
        width, height = dims
        fast = Framebuffer(width, height, use_numpy=True)
        pure = Framebuffer(width, height, use_numpy=False)
        assert fast.use_numpy == NUMPY_AVAILABLE
        for step in script:
            assert fast.blit(*step) == pure.blit(*step)
            assert fast.snapshot() == pure.snapshot()
        assert fast.epoch == pure.epoch

    @given(dims=dims, step=blits)
    @settings(max_examples=200, deadline=None)
    def test_epoch_bumps_exactly_on_writes(self, dims, step):
        fb = Framebuffer(*dims)
        before = fb.epoch
        wrote = fb.blit(*step)
        assert fb.epoch == before + (1 if wrote else 0)
        if not wrote:
            assert fb.snapshot() == bytes(dims[0] * dims[1])
