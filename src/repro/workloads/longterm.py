"""The Section V-D empirical study: 21 days, two machines, live spyware.

The original setup: the authors' own spyware sample (periodic clipboard
retrieval, screenshots, microphone recording) installed on two actively-used
personal computers -- one running Overhaul, one unmodified -- for 21 days.
Findings:

- the protected machine's malware "could not collect any information";
- the unprotected machine's malware stole bank screenshots, emails, and
  "passwords copied from the password manager";
- Overhaul's logs showed the legitimate users of each resource (video
  conferencing, the screenshot tool, a desktop recorder, many clipboard
  users) and **zero** incorrectly blocked applications over the whole
  period.

The reproduction drives both machines through identical seeded daily
workloads (:class:`~repro.workloads.user_model.DailyUsageModel`) with the
same :class:`~repro.apps.malware.Spyware` running throughout, then compares
what was stolen, what was blocked, and whether any legitimate action failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.clipboard_apps import PasswordManager, TextEditor
from repro.apps.malware import Spyware
from repro.apps.screenshot import DesktopRecorder, ScreenshotTool
from repro.apps.videoconf import VideoConfApp
from repro.kernel.audit import AuditCategory
from repro.kernel.errors import KernelError
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.sim.rng import RandomSource, default_source
from repro.sim.time import Timestamp, from_seconds
from repro.workloads.user_model import DailyUsageModel, DayPlan

#: The study length from the paper.
STUDY_DAYS = 21

#: Spyware sampling cadence: every ~10 simulated minutes while the machine
#: is in use (the paper says only "periodically").
SPYWARE_INTERVAL: Timestamp = from_seconds(600.0)


@dataclass
class LongTermResults:
    """Everything the Section V-D comparison reports for one machine."""

    machine_name: str
    protected: bool
    days: int
    stolen_counts: Dict[str, int] = field(default_factory=dict)
    blocked_counts: Dict[str, int] = field(default_factory=dict)
    stolen_passwords: List[bytes] = field(default_factory=list)
    legit_actions: int = 0
    legit_failures: int = 0  # false positives over the whole study
    device_grants: int = 0
    device_denials: int = 0
    alerts_shown: int = 0
    spy_rounds: int = 0

    @property
    def total_stolen(self) -> int:
        return sum(self.stolen_counts.values())

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe, order-stable dict (bytes rendered as hex).

        This is the serialisation fleet shards ship home and the payload
        behind ``python -m repro longterm --json``.
        """
        return {
            "machine_name": self.machine_name,
            "protected": self.protected,
            "days": self.days,
            "stolen_counts": dict(sorted(self.stolen_counts.items())),
            "blocked_counts": dict(sorted(self.blocked_counts.items())),
            "total_stolen": self.total_stolen,
            "stolen_passwords_hex": [item.hex() for item in self.stolen_passwords],
            "passwords_captured": len(self.stolen_passwords),
            "legit_actions": self.legit_actions,
            "legit_failures": self.legit_failures,
            "device_grants": self.device_grants,
            "device_denials": self.device_denials,
            "alerts_shown": self.alerts_shown,
            "spy_rounds": self.spy_rounds,
        }

    def render(self) -> str:
        mode = "OVERHAUL" if self.protected else "unprotected"
        return "\n".join(
            [
                f"machine {self.machine_name!r} ({mode}), {self.days} days:",
                f"  spyware rounds            : {self.spy_rounds}",
                f"  items stolen              : {self.total_stolen} {self.stolen_counts}",
                f"  attempts blocked          : {sum(self.blocked_counts.values())} "
                f"{self.blocked_counts}",
                f"  passwords captured        : {len(self.stolen_passwords)}",
                f"  legitimate actions        : {self.legit_actions}",
                f"  legitimate failures (FPs) : {self.legit_failures}",
                f"  device grants / denials   : {self.device_grants} / {self.device_denials}",
                f"  alerts shown              : {self.alerts_shown}",
            ]
        )


class _DailyDriver:
    """Executes one machine's daily plans with the spyware running."""

    def __init__(self, machine: Machine, rng: RandomSource) -> None:
        self.machine = machine
        self.rng = rng
        self.skype = VideoConfApp(machine, comm="skype")
        self.password_manager = PasswordManager(machine)
        self.editor = TextEditor(machine)
        self.screenshot = ScreenshotTool(machine, comm="gnome-screenshot")
        self.recorder = DesktopRecorder(machine)
        self.spyware = Spyware(machine)
        machine.settle()
        self.spyware.start(SPYWARE_INTERVAL, rng.fork("spyware-jitter"))
        self.legit_actions = 0
        self.legit_failures = 0

    def _legit(self, action) -> None:
        """Run one legitimate user action, tallying false positives."""
        from repro.xserver.errors import XError

        self.legit_actions += 1
        try:
            action()
        except (KernelError, XError):
            self.legit_failures += 1

    def run_day(self, plan: DayPlan) -> None:
        current: Timestamp = 0
        for activity in plan.activities:
            if activity.at_offset > current:
                self.machine.run_for(activity.at_offset - current)
                current = activity.at_offset
            self._perform(activity.kind)
            self.machine.run_for(activity.duration)
            current += activity.duration
        # Idle out the remainder of the active day.
        day_span = from_seconds(DailyUsageModel.ACTIVE_HOURS * 3600.0)
        if day_span > current:
            self.machine.run_for(day_span - current)

    def _perform(self, kind: str) -> None:
        if kind == "video_call":
            def call() -> None:
                self.skype.click_call_button()
                self.skype.sample_call_media()
                self.skype.hang_up()

            self._legit(call)
        elif kind == "password_paste":
            entry = self.rng.choice(["bank", "email"])

            def paste_password() -> None:
                self.password_manager.user_copy_password(entry)
                self.machine.run_for(from_seconds(0.4))
                self.editor.user_paste()

            self._legit(paste_password)
        elif kind == "document_edit":
            snippet = f"meeting notes {self.machine.now}".encode()

            def edit() -> None:
                self.editor.user_copy(snippet)
                self.machine.run_for(from_seconds(0.2))
                self.editor.user_paste()

            self._legit(edit)
        elif kind == "screenshot":
            self._legit(lambda: self.screenshot.click_and_shoot())
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown activity kind {kind!r}")


def run_longterm_study(
    protected: bool,
    seed: Optional[int] = None,
    days: int = STUDY_DAYS,
    config: Optional[OverhaulConfig] = None,
) -> LongTermResults:
    """Run the full study on one machine (protected or baseline).

    The same seed produces the *same user workload* on both machines, so a
    protected/unprotected pair differs only in the installed defence --
    matching the paper's two-computer design as closely as a simulation can.
    """
    results, _machine = _run_study_with_machine(
        protected, seed=seed, days=days, config=config
    )
    return results


def _run_study_with_machine(
    protected: bool,
    seed: Optional[int] = None,
    days: int = STUDY_DAYS,
    config: Optional[OverhaulConfig] = None,
    machine_name: str = "author-workstation",
) -> Tuple[LongTermResults, Machine]:
    """The study body, also handing back the machine for counter collection."""
    rng = default_source(seed).fork("longterm")
    machine = (
        Machine.with_overhaul(config, name=machine_name)
        if protected
        else Machine.baseline(name=machine_name)
    )
    driver = _DailyDriver(machine, rng.fork("driver"))
    usage = DailyUsageModel(rng.fork("usage"))
    for plan in usage.plan_study(days):
        driver.run_day(plan)
    driver.spyware.stop()

    results = LongTermResults(
        machine_name=machine.name,
        protected=protected,
        days=days,
        legit_actions=driver.legit_actions,
        legit_failures=driver.legit_failures,
        spy_rounds=driver.spyware.rounds,
    )
    for kind in ("clipboard", "screen", "microphone"):
        results.stolen_counts[kind] = len(driver.spyware.stolen_by_kind(kind))
        results.blocked_counts[kind] = driver.spyware.blocked[kind]
    vault_secrets = set(driver.password_manager.vault.values())
    results.stolen_passwords = [
        item.data
        for item in driver.spyware.stolen_by_kind("clipboard")
        if item.data in vault_secrets
    ]
    audit = machine.kernel.audit
    results.device_grants = len(audit.grants(AuditCategory.DEVICE))
    results.device_denials = len(audit.denials(AuditCategory.DEVICE))
    results.alerts_shown = len(machine.xserver.overlay.history)
    return results, machine


def run_longterm_shard(
    machine_index: int,
    seed: int,
    days: int = STUDY_DAYS,
    config: Optional[OverhaulConfig] = None,
) -> Dict[str, Any]:
    """One fleet shard: a full protected/unprotected machine pair.

    *seed* is the shard's own derived seed (see
    :meth:`repro.sim.rng.RandomSource.spawn`), so every simulated machine
    in a population lives a *different* 21 days -- unlike
    :func:`run_comparison`, which replays one fixed household.  The return
    value is a picklable, JSON-safe envelope: study results for both arms
    plus each machine's cross-layer counter snapshot, ready for
    :func:`repro.analysis.population.aggregate_longterm`.
    """
    from repro.obs.counters import collect_counters

    name = f"fleet-machine-{machine_index:05d}"
    protected, protected_machine = _run_study_with_machine(
        True, seed=seed, days=days, config=config, machine_name=name
    )
    unprotected, unprotected_machine = _run_study_with_machine(
        False, seed=seed, days=days, config=config, machine_name=name
    )
    return {
        "machine_index": machine_index,
        "seed": seed,
        "days": days,
        "protected": protected.to_dict(),
        "unprotected": unprotected.to_dict(),
        "counters": {
            "protected": collect_counters(protected_machine).snapshot(),
            "unprotected": collect_counters(unprotected_machine).snapshot(),
        },
    }


def run_comparison(
    seed: Optional[int] = None,
    days: int = STUDY_DAYS,
) -> Dict[str, LongTermResults]:
    """Both machines of the study, identical workloads."""
    return {
        "protected": run_longterm_study(True, seed=seed, days=days),
        "unprotected": run_longterm_study(False, seed=seed, days=days),
    }
