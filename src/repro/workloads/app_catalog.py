"""The Section V-C application pools and the applicability sweep.

The paper compiled 58 device/screen applications (from Ubuntu Software
Center "Top Rated" + Arch repositories) and a further 50 clipboard
applications, exercised each one manually under Overhaul, and recorded:

- exactly **one** spurious alert: Skype probing the camera at launch,
  before any interaction (blocked; subsequent calls unaffected);
- one **limitation**: delayed-screenshot options cannot work, because the
  interaction expires before the timer fires;
- **zero** broken applications and zero clipboard false positives.

Here each real application is modelled by its *access pattern* -- when it
touches the protected resource relative to user input -- which is the only
property the Overhaul decision depends on.  The sweep instantiates each
pattern on a fresh protected machine and reproduces the same tallies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps.base import SimApp
from repro.apps.browser import Browser
from repro.apps.recorder import CommandLineRecorder
from repro.apps.screenshot import DelayedScreenshotTool, DesktopRecorder, ScreenshotTool
from repro.apps.terminal import TerminalEmulator
from repro.apps.videoconf import VideoConfApp
from repro.kernel.errors import OverhaulDenied
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.sim.time import from_seconds
from repro.xserver.errors import BadAccess


class AccessPattern(enum.Enum):
    """When an application touches its protected resource."""

    INTERACTION_THEN_DEVICE = "interaction-then-device"  # GUI recorder/viewer
    STARTUP_DEVICE_PROBE = "startup-device-probe"  # Skype's launch probe
    GUI_SCREENSHOT = "gui-screenshot"  # one-shot capture on click
    DELAYED_SCREENSHOT = "delayed-screenshot"  # timer past the threshold
    SCREENCAST = "screencast"  # periodic capture, user active
    CLI_DEVICE = "cli-device"  # terminal-launched recorder
    CLI_SCREENSHOT = "cli-screenshot"  # terminal-launched scrot
    BROWSER_WEBAPP = "browser-webapp"  # web video chat via tab IPC
    CLIPBOARD = "clipboard"  # copy & paste round trip


@dataclass(frozen=True)
class AppSpec:
    """One catalogued application."""

    name: str
    category: str
    pattern: AccessPattern
    device: str = "mic0"  # which device the pattern touches, if any


@dataclass
class AppTestResult:
    """Outcome of exercising one application under Overhaul."""

    spec: AppSpec
    functioned: bool  # did the app's user-facing purpose work?
    spurious_alert: bool = False  # alert w/o user-intended access (Skype probe)
    limitation_hit: bool = False  # documented delayed-capture limitation
    false_positive: bool = False  # a user-intended access was denied
    notes: str = ""


def build_device_app_pool() -> List[AppSpec]:
    """The 58-application device/screen pool of Section V-C."""
    specs: List[AppSpec] = []

    def add(category: str, pattern: AccessPattern, device: str, names: List[str]) -> None:
        for name in names:
            specs.append(AppSpec(name, category, pattern, device))

    # Video conferencing (paper: "e.g., Skype, Jitsi").  Skype carries the
    # startup camera probe the authors observed; the rest open devices on
    # the call click.
    add("video-conferencing", AccessPattern.STARTUP_DEVICE_PROBE, "video0", ["skype"])
    add(
        "video-conferencing",
        AccessPattern.INTERACTION_THEN_DEVICE,
        "video0",
        [
            "jitsi",
            "ekiga",
            "linphone",
            "empathy-call",
            "mumble",
            "jami",
            "tox-qt",
            "wire-desktop",
            "telegram-call",
            "signal-call",
        ],
    )
    # Audio/video editors (paper: "e.g., Audacity, Kwave").
    add(
        "audio-editor",
        AccessPattern.INTERACTION_THEN_DEVICE,
        "mic0",
        ["audacity", "kwave", "ardour", "qtractor", "sweep", "rezound", "ocenaudio"],
    )
    # Audio/video recorders (paper: "Cheese, ZArt").
    add(
        "av-recorder",
        AccessPattern.INTERACTION_THEN_DEVICE,
        "video0",
        ["cheese", "zart", "guvcview", "kamoso", "webcamoid", "qtcam"],
    )
    add(
        "av-recorder",
        AccessPattern.INTERACTION_THEN_DEVICE,
        "mic0",
        ["gnome-sound-recorder", "audio-recorder", "krecord"],
    )
    add(
        "av-recorder-cli",
        AccessPattern.CLI_DEVICE,
        "mic0",
        ["arecord", "sox-rec", "ffmpeg-alsa", "parecord"],
    )
    # Screenshot utilities (paper: "Shutter, GNOME Screenshot").  Shutter
    # and flameshot expose the delay option -- the documented limitation.
    add(
        "screenshot",
        AccessPattern.GUI_SCREENSHOT,
        "screen",
        [
            "gnome-screenshot",
            "ksnapshot",
            "spectacle",
            "xfce4-screenshooter",
            "deepin-screenshot",
            "lximage-screenshot",
        ],
    )
    add("screenshot-delayed", AccessPattern.DELAYED_SCREENSHOT, "screen", ["shutter", "flameshot"])
    add(
        "screenshot-cli",
        AccessPattern.CLI_SCREENSHOT,
        "screen",
        ["scrot", "import-im", "xwd", "maim"],
    )
    # Screencasting (paper: "e.g., Istanbul, recordMyDesktop").
    add(
        "screencast",
        AccessPattern.SCREENCAST,
        "screen",
        [
            "istanbul",
            "recordmydesktop",
            "simplescreenrecorder",
            "kazam",
            "vokoscreen",
            "byzanz",
            "obs-studio",
            "peek",
        ],
    )
    add("screencast-cli", AccessPattern.CLI_SCREENSHOT, "screen", ["ffmpeg-x11grab"])
    # Web browsers running video-chat web apps (paper: "e.g., Firefox,
    # Chrome... tested with various web-based video chat applications").
    add(
        "browser",
        AccessPattern.BROWSER_WEBAPP,
        "video0",
        ["firefox", "chrome", "chromium", "opera", "vivaldi", "midori"],
    )
    assert len(specs) == 58, f"device pool must have 58 apps, got {len(specs)}"
    return specs


def build_clipboard_app_pool() -> List[AppSpec]:
    """The 50-application clipboard pool of Section V-C."""
    names = [
        # Office suites.
        "libreoffice-writer", "libreoffice-calc", "libreoffice-impress",
        "abiword", "gnumeric", "calligra-words", "onlyoffice", "wps-writer",
        # Text and code editors.
        "gedit", "kate", "gvim", "emacs", "geany", "mousepad", "leafpad",
        "sublime-text", "atom", "kwrite", "pluma", "featherpad",
        # Media/graphics editors.
        "gimp", "inkscape", "krita", "darktable", "blender", "scribus",
        # Web browsers.
        "firefox-clip", "chrome-clip", "chromium-clip", "opera-clip",
        # Email clients.
        "thunderbird", "evolution", "kmail", "claws-mail", "geary", "sylpheed",
        # Terminal emulators.
        "xterm-clip", "gnome-terminal", "konsole", "urxvt", "terminator",
        "xfce4-terminal", "alacritty", "st-term",
        # Clipboard utilities and misc.
        "xclip", "xsel", "parcellite", "klipper", "clipman", "copyq",
    ]
    assert len(names) == 50, f"clipboard pool must have 50 apps, got {len(names)}"
    return [AppSpec(name, "clipboard", AccessPattern.CLIPBOARD) for name in names]


# -- per-pattern exercise routines ------------------------------------------------


def _exercise_interaction_then_device(machine: Machine, spec: AppSpec) -> AppTestResult:
    app = SimApp(machine, f"/usr/bin/{spec.name}", comm=spec.name)
    machine.settle()
    app.click()
    try:
        data = app.record_from_device(spec.device)
    except OverhaulDenied:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=len(data) > 0)


def _exercise_startup_probe(machine: Machine, spec: AppSpec) -> AppTestResult:
    app = VideoConfApp(machine, comm=spec.name, startup_camera_check=True)
    machine.settle()
    try:
        app.click_call_button()
    except OverhaulDenied:
        return AppTestResult(
            spec, functioned=False, spurious_alert=app.startup_blocked, false_positive=True
        )
    return AppTestResult(
        spec,
        functioned=app.call_active,
        spurious_alert=app.startup_blocked,
        notes="startup camera probe blocked; calls unaffected" if app.startup_blocked else "",
    )


def _exercise_gui_screenshot(machine: Machine, spec: AppSpec) -> AppTestResult:
    app = ScreenshotTool(machine, comm=spec.name)
    machine.settle()
    try:
        shot = app.click_and_shoot()
    except BadAccess:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=shot is not None)


def _exercise_delayed_screenshot(machine: Machine, spec: AppSpec) -> AppTestResult:
    app = DelayedScreenshotTool(machine, delay=from_seconds(5.0), comm=spec.name)
    machine.settle()
    app.click_and_shoot_delayed()
    machine.run_for(from_seconds(6.0))
    if app.delayed_denied:
        return AppTestResult(
            spec,
            functioned=False,
            limitation_hit=True,
            notes="delay exceeds interaction threshold (documented limitation)",
        )
    return AppTestResult(spec, functioned=app.delayed_result is not None)


def _exercise_screencast(machine: Machine, spec: AppSpec) -> AppTestResult:
    app = DesktopRecorder(machine, comm=spec.name)
    machine.settle()
    app.record(frames=3, interval=from_seconds(1.0), keep_interacting=True)
    if app.denied_frames:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=len(app.frames) == 3)


def _exercise_cli_device(machine: Machine, spec: AppSpec) -> AppTestResult:
    terminal = TerminalEmulator(machine)
    machine.settle()
    task = terminal.run_command(spec.name, f"/usr/bin/{spec.name}")
    recorder = CommandLineRecorder(machine, task)
    try:
        data = recorder.record_once(spec.device)
    except OverhaulDenied:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=len(data) > 0)


def _exercise_cli_screenshot(machine: Machine, spec: AppSpec) -> AppTestResult:
    terminal = TerminalEmulator(machine)
    machine.settle()
    task = terminal.run_command(spec.name, f"/usr/bin/{spec.name}")
    client = machine.xserver.connect(task)
    try:
        image = machine.xserver.get_image(client, machine.xserver.root_window.drawable_id)
    except BadAccess:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=image is not None)


def _exercise_browser_webapp(machine: Machine, spec: AppSpec) -> AppTestResult:
    browser = Browser(machine, comm=spec.name)
    machine.settle()
    tab = browser.open_tab()
    browser.click()
    try:
        browser.command_tab(tab, b"\x01")
    except OverhaulDenied:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=tab.camera_fd is not None)


def _exercise_clipboard(machine: Machine, spec: AppSpec) -> AppTestResult:
    from repro.apps.clipboard_apps import TextEditor

    source = TextEditor(machine, comm=spec.name)
    target = TextEditor(machine, comm=f"{spec.name}-target")
    machine.settle()
    payload = f"clipboard-payload:{spec.name}".encode()
    try:
        source.user_copy(payload)
        machine.run_for(from_seconds(0.3))
        pasted = target.user_paste()
    except BadAccess:
        return AppTestResult(spec, functioned=False, false_positive=True)
    return AppTestResult(spec, functioned=pasted == payload)


_EXERCISERS: Dict[AccessPattern, Callable[[Machine, AppSpec], AppTestResult]] = {
    AccessPattern.INTERACTION_THEN_DEVICE: _exercise_interaction_then_device,
    AccessPattern.STARTUP_DEVICE_PROBE: _exercise_startup_probe,
    AccessPattern.GUI_SCREENSHOT: _exercise_gui_screenshot,
    AccessPattern.DELAYED_SCREENSHOT: _exercise_delayed_screenshot,
    AccessPattern.SCREENCAST: _exercise_screencast,
    AccessPattern.CLI_DEVICE: _exercise_cli_device,
    AccessPattern.CLI_SCREENSHOT: _exercise_cli_screenshot,
    AccessPattern.BROWSER_WEBAPP: _exercise_browser_webapp,
    AccessPattern.CLIPBOARD: _exercise_clipboard,
}


@dataclass
class SweepSummary:
    """Aggregated V-C reproduction results."""

    results: List[AppTestResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def functioned(self) -> int:
        return sum(1 for r in self.results if r.functioned)

    @property
    def spurious_alerts(self) -> List[AppTestResult]:
        return [r for r in self.results if r.spurious_alert]

    @property
    def limitations(self) -> List[AppTestResult]:
        return [r for r in self.results if r.limitation_hit]

    @property
    def false_positives(self) -> List[AppTestResult]:
        return [r for r in self.results if r.false_positive]

    def render(self) -> str:
        lines = [
            f"applications exercised : {self.total}",
            f"functioned normally    : {self.functioned}",
            f"spurious alerts        : {len(self.spurious_alerts)} "
            f"({', '.join(r.spec.name for r in self.spurious_alerts) or 'none'})",
            f"limitation hits        : {len(self.limitations)} "
            f"({', '.join(r.spec.name for r in self.limitations) or 'none'})",
            f"false positives        : {len(self.false_positives)} "
            f"({', '.join(r.spec.name for r in self.false_positives) or 'none'})",
        ]
        return "\n".join(lines)


def exercise_app(spec: AppSpec, config: Optional[OverhaulConfig] = None) -> AppTestResult:
    """Run one catalogued app on a fresh protected machine."""
    machine = Machine.with_overhaul(config)
    return _EXERCISERS[spec.pattern](machine, spec)


def run_applicability_sweep(
    specs: Optional[List[AppSpec]] = None,
    config: Optional[OverhaulConfig] = None,
) -> SweepSummary:
    """The full Section V-C experiment: every app, fresh machine each."""
    if specs is None:
        specs = build_device_app_pool() + build_clipboard_app_pool()
    summary = SweepSummary()
    for spec in specs:
        summary.results.append(exercise_app(spec, config))
    return summary
