"""The Section V-B usability study, as a seeded simulation.

The original: 46 computer-science students, two tasks.

Task 1 -- place a Skype call on an Overhaul machine, then rate the
difficulty vs. ordinary Skype on a 5-point Likert scale (1 = identical).
Result: *all 46* rated it identical, confirming transparency.

Task 2 -- perform a web search while a hidden background process triggers a
camera access at a random time; Overhaul blocks it and shows an alert.
Result: 24 interrupted the task and reported immediately, 16 noticed but
continued until prompted, 6 noticed nothing.

The reproduction runs the *actual system* for both tasks -- a real Skype
call scenario (counting observable behaviour differences) and a real hidden
camera-probe process (with the alert genuinely displayed by the overlay) --
and models only the human reaction with
:class:`~repro.workloads.user_model.AlertAttentionModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.apps.base import SimApp
from repro.apps.videoconf import VideoConfApp
from repro.kernel.errors import OverhaulDenied
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.sim.rng import RandomSource, default_source
from repro.sim.time import from_seconds
from repro.workloads.user_model import AlertAttentionModel, AlertReaction

#: The study's cohort size.
PARTICIPANT_COUNT = 46


@dataclass
class ParticipantOutcome:
    """One participant's results across both tasks."""

    participant_id: int
    #: Task 1 Likert score (1 = identical to unmodified Skype).
    likert_score: int
    #: Observable behaviour differences during the call (should be zero).
    behaviour_differences: int
    #: Task 2: was the hidden camera access blocked?
    camera_blocked: bool
    #: Task 2: was an alert actually displayed on screen?
    alert_displayed: bool
    #: Task 2 reaction.
    reaction: AlertReaction

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict (the reaction enum by name)."""
        return {
            "participant_id": self.participant_id,
            "likert_score": self.likert_score,
            "behaviour_differences": self.behaviour_differences,
            "camera_blocked": self.camera_blocked,
            "alert_displayed": self.alert_displayed,
            "reaction": self.reaction.name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ParticipantOutcome":
        """Rebuild an outcome from :meth:`to_dict` (fleet aggregation path)."""
        return cls(
            participant_id=data["participant_id"],
            likert_score=data["likert_score"],
            behaviour_differences=data["behaviour_differences"],
            camera_blocked=data["camera_blocked"],
            alert_displayed=data["alert_displayed"],
            reaction=AlertReaction[data["reaction"]],
        )


@dataclass
class UsabilityStudyResults:
    """Aggregate results matching the paper's reporting."""

    outcomes: List[ParticipantOutcome] = field(default_factory=list)

    @property
    def participants(self) -> int:
        return len(self.outcomes)

    @property
    def identical_experience_count(self) -> int:
        """Task 1: participants who rated the experience identical (score 1)."""
        return sum(1 for o in self.outcomes if o.likert_score == 1)

    def reaction_counts(self) -> Dict[AlertReaction, int]:
        counts = {reaction: 0 for reaction in AlertReaction}
        for outcome in self.outcomes:
            counts[outcome.reaction] += 1
        return counts

    @property
    def interrupted(self) -> int:
        return self.reaction_counts()[AlertReaction.INTERRUPTED_AND_REPORTED]

    @property
    def noticed(self) -> int:
        return self.reaction_counts()[AlertReaction.NOTICED_CONTINUED_TASK]

    @property
    def missed(self) -> int:
        return self.reaction_counts()[AlertReaction.DID_NOT_NOTICE]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict: the aggregate counts plus every outcome."""
        return {
            "participants": self.participants,
            "identical_experience": self.identical_experience_count,
            "interrupted": self.interrupted,
            "noticed": self.noticed,
            "missed": self.missed,
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        return "\n".join(
            [
                f"participants                         : {self.participants}",
                f"task 1 'identical experience' (of {self.participants}) : "
                f"{self.identical_experience_count}",
                f"task 2 interrupted & reported        : {self.interrupted}",
                f"task 2 noticed, continued task       : {self.noticed}",
                f"task 2 did not notice                : {self.missed}",
            ]
        )


def _run_task1_skype_call(machine: Machine) -> ParticipantOutcome:
    """Task 1 on a real protected machine; returns a partial outcome.

    Behaviour differences a participant could observe: a failed call, an
    unexpected prompt (Overhaul has none), or a visible denial.  With zero
    differences the participant's rating is 1 ("almost identical").
    """
    skype = VideoConfApp(machine, comm="skype")
    machine.settle()
    differences = 0
    try:
        skype.click_call_button()
        skype.sample_call_media()
        skype.hang_up()
    except OverhaulDenied:
        differences += 1
    # Overhaul never prompts; the only on-screen artifact is the alert,
    # which the paper's task-1 participants did not flag as friction.
    likert = 1 if differences == 0 else 3
    return ParticipantOutcome(
        participant_id=-1,  # filled by caller
        likert_score=likert,
        behaviour_differences=differences,
        camera_blocked=False,
        alert_displayed=False,
        reaction=AlertReaction.DID_NOT_NOTICE,
    )


def _run_task2_hidden_camera(machine: Machine, rng: RandomSource) -> ParticipantOutcome:
    """Task 2 on a real protected machine; returns a partial outcome."""
    # The participant is busy searching the web: a browser app with focus
    # and periodic interactions.
    browser_shim = SimApp(machine, "/usr/bin/firefox", comm="firefox")
    machine.settle()
    browser_shim.click()

    # The hidden background process fires its camera access at a random
    # time while the user is occupied.
    hidden = SimApp(machine, "/usr/bin/.hidden-cam", comm=".hidden-cam", with_window=False)
    hidden_client = machine.xserver.connect(hidden.task)  # unused, but realistic
    del hidden_client
    trigger_delay = from_seconds(rng.uniform(2.0, 20.0))
    state = {"blocked": False}

    def trigger() -> None:
        try:
            machine.kernel.sys_open(hidden.task, machine.kernel.device_path("video0"))
        except OverhaulDenied:
            state["blocked"] = True

    machine.scheduler.schedule_after(trigger_delay, trigger, label="hidden-camera-probe")
    machine.run_for(trigger_delay + from_seconds(1.0))

    alert_displayed = any(
        alert.pid == hidden.pid for alert in machine.xserver.overlay.history
    )
    attention = AlertAttentionModel(rng)
    reaction = attention.react() if alert_displayed else AlertReaction.DID_NOT_NOTICE
    return ParticipantOutcome(
        participant_id=-1,
        likert_score=0,
        behaviour_differences=0,
        camera_blocked=state["blocked"],
        alert_displayed=alert_displayed,
        reaction=reaction,
    )


def run_participant(
    index: int,
    rng: RandomSource,
    config: Optional[OverhaulConfig] = None,
) -> ParticipantOutcome:
    """Both tasks for one participant, each on a fresh protected machine.

    The participant's entire stochastic behaviour comes from *rng*, so a
    participant produces the same outcome whether they are run in the
    46-person in-process study or as one of 10 000 fleet-sharded users.
    """
    task1 = _run_task1_skype_call(Machine.with_overhaul(config))
    task2 = _run_task2_hidden_camera(Machine.with_overhaul(config), rng)
    return ParticipantOutcome(
        participant_id=index,
        likert_score=task1.likert_score,
        behaviour_differences=task1.behaviour_differences,
        camera_blocked=task2.camera_blocked,
        alert_displayed=task2.alert_displayed,
        reaction=task2.reaction,
    )


def participant_rng(seed: Optional[int], index: int) -> RandomSource:
    """The canonical per-participant stream: derived from the *study* seed
    and the participant index only, never from shard boundaries -- the
    property that keeps fleet output independent of ``--workers`` and
    shard size."""
    return default_source(seed).fork("usability-study").fork(f"participant-{index}")


def run_usability_study(
    seed: Optional[int] = None,
    participants: int = PARTICIPANT_COUNT,
    config: Optional[OverhaulConfig] = None,
) -> UsabilityStudyResults:
    """Run both tasks for every participant on fresh protected machines."""
    results = UsabilityStudyResults()
    for index in range(participants):
        results.outcomes.append(
            run_participant(index, participant_rng(seed, index), config)
        )
    return results


def run_usability_shard(
    seed: Optional[int],
    participant_ids: Iterable[int],
    config: Optional[OverhaulConfig] = None,
) -> Dict[str, Any]:
    """One fleet shard: a contiguous batch of participants.

    Returns a picklable, JSON-safe envelope consumed by
    :func:`repro.analysis.population.aggregate_usability`.
    """
    outcomes = [
        run_participant(index, participant_rng(seed, index), config)
        for index in participant_ids
    ]
    return {"outcomes": [outcome.to_dict() for outcome in outcomes]}
