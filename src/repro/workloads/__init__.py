"""Experiment workloads: the paper's evaluation, executable.

- :mod:`repro.workloads.user_model` -- stochastic user behaviour (alert
  attention, daily desktop usage), seeded and replayable;
- :mod:`repro.workloads.scenarios` -- the protocol walkthroughs of
  Figures 1-4 and 6;
- :mod:`repro.workloads.app_catalog` -- the Section V-C applicability and
  false-positive sweep (58 device/screen apps + 50 clipboard apps);
- :mod:`repro.workloads.usability` -- the Section V-B 46-participant study;
- :mod:`repro.workloads.longterm` -- the Section V-D 21-day two-machine
  spyware study.
"""

from repro.workloads.blast_radius import (
    BlastRadiusResult,
    RadiusSample,
    measure_blast_radius,
    sweep_topologies,
)
from repro.workloads.attacks import (
    FLIPPABLE_ATTACKS,
    AttackMatrix,
    AttackOutcome,
    run_attack_matrix,
)
from repro.workloads.app_catalog import (
    AccessPattern,
    AppSpec,
    AppTestResult,
    SweepSummary,
    build_clipboard_app_pool,
    build_device_app_pool,
    exercise_app,
    run_applicability_sweep,
)
from repro.workloads.longterm import (
    STUDY_DAYS,
    LongTermResults,
    run_comparison,
    run_longterm_shard,
    run_longterm_study,
)
from repro.workloads.scenarios import (
    ScenarioStep,
    ScenarioTrace,
    all_figure_scenarios,
    figure1_hardware_device,
    figure2_clipboard_paste,
    figure3_launcher_spawn,
    figure4_browser_ipc,
    figure6_selection_protocol,
)
from repro.workloads.usability import (
    PARTICIPANT_COUNT,
    ParticipantOutcome,
    UsabilityStudyResults,
    run_participant,
    run_usability_shard,
    run_usability_study,
)
from repro.workloads.user_model import (
    AlertAttentionModel,
    AlertReaction,
    DailyUsageModel,
    DayPlan,
)

__all__ = [
    "AccessPattern",
    "AttackMatrix",
    "AttackOutcome",
    "BlastRadiusResult",
    "RadiusSample",
    "measure_blast_radius",
    "sweep_topologies",
    "FLIPPABLE_ATTACKS",
    "run_attack_matrix",
    "AlertAttentionModel",
    "AlertReaction",
    "AppSpec",
    "AppTestResult",
    "DailyUsageModel",
    "DayPlan",
    "LongTermResults",
    "PARTICIPANT_COUNT",
    "ParticipantOutcome",
    "STUDY_DAYS",
    "ScenarioStep",
    "ScenarioTrace",
    "SweepSummary",
    "UsabilityStudyResults",
    "all_figure_scenarios",
    "build_clipboard_app_pool",
    "build_device_app_pool",
    "exercise_app",
    "figure1_hardware_device",
    "figure2_clipboard_paste",
    "figure3_launcher_spawn",
    "figure4_browser_ipc",
    "figure6_selection_protocol",
    "run_applicability_sweep",
    "run_comparison",
    "run_longterm_shard",
    "run_longterm_study",
    "run_participant",
    "run_usability_shard",
    "run_usability_study",
]
