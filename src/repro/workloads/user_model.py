"""Synthetic user behaviour models.

The paper's evaluation involves humans in two places: the 46-participant
usability study (Section V-B) and the author's three-week daily use of the
protected machine (Section V-D).  We cannot re-run humans, so both are
modelled as seeded stochastic processes whose parameters come from the
paper's own reported outcomes (the substitution is documented in DESIGN.md).

Two models:

- :class:`AlertAttentionModel` -- does a user notice an overlay alert while
  occupied with another task, and do they interrupt their task to report
  it?  Calibrated from the paper's 24 / 16 / 6 split over 46 participants:
  P(notice) = 40/46, P(interrupt | notice) = 24/40.
- :class:`DailyUsageModel` -- what a normal desktop day looks like for the
  long-term study: work sessions containing video calls, password
  copy/pastes, screenshots, and idle gaps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.sim.rng import RandomSource
from repro.sim.time import Timestamp, from_seconds

#: Calibration from the published study outcomes (Section V-B).
P_NOTICE_ALERT = 40 / 46
P_INTERRUPT_GIVEN_NOTICE = 24 / 40


class AlertReaction(enum.Enum):
    """The three observed behaviours in the usability study."""

    INTERRUPTED_AND_REPORTED = "interrupted"  # 24 of 46
    NOTICED_CONTINUED_TASK = "noticed"  # 16 of 46
    DID_NOT_NOTICE = "missed"  # 6 of 46


class AlertAttentionModel:
    """Two-stage Bernoulli model of alert noticing while task-occupied."""

    def __init__(
        self,
        rng: RandomSource,
        p_notice: float = P_NOTICE_ALERT,
        p_interrupt: float = P_INTERRUPT_GIVEN_NOTICE,
    ) -> None:
        self._rng = rng
        self.p_notice = p_notice
        self.p_interrupt = p_interrupt

    def react(self, alert_is_authentic: bool = True) -> AlertReaction:
        """One participant's reaction to a displayed alert.

        ``alert_is_authentic`` lets S4 experiments model forged alerts: a
        fake alert lacking the visual shared secret is *recognised as fake*
        by a user who notices it, so it is never trusted -- we still return
        the raw noticing behaviour and let callers interpret.
        """
        if not self._rng.chance(self.p_notice):
            return AlertReaction.DID_NOT_NOTICE
        if self._rng.chance(self.p_interrupt):
            return AlertReaction.INTERRUPTED_AND_REPORTED
        return AlertReaction.NOTICED_CONTINUED_TASK


@dataclass
class DailyActivity:
    """One planned user activity within a simulated day."""

    kind: str  # "video_call" | "password_paste" | "screenshot" | "document_edit"
    at_offset: Timestamp  # offset from the day's start
    duration: Timestamp


@dataclass
class DayPlan:
    """The activity schedule for one simulated day."""

    day_index: int
    activities: List[DailyActivity] = field(default_factory=list)


class DailyUsageModel:
    """Generates realistic desktop days for the 21-day study.

    A day holds a configurable number of activities spread over ~8 active
    hours: a couple of video calls, several password pastes (the paper's
    spyware stole "passwords copied from the password manager"), document
    editing with copy/paste, and occasional screenshots -- matching the
    application mix the authors report granting access in their logs.
    """

    ACTIVE_HOURS = 8

    def __init__(self, rng: RandomSource) -> None:
        self._rng = rng

    def plan_day(self, day_index: int) -> DayPlan:
        """Draw the activity schedule for one day."""
        plan = DayPlan(day_index)
        day_span = from_seconds(self.ACTIVE_HOURS * 3600.0)

        def add(kind: str, count: int, duration_s: float) -> None:
            for _ in range(count):
                offset = int(self._rng.uniform(0, day_span - from_seconds(duration_s)))
                plan.activities.append(
                    DailyActivity(kind, offset, from_seconds(duration_s))
                )

        add("video_call", self._rng.randint(1, 3), duration_s=600.0)
        add("password_paste", self._rng.randint(2, 6), duration_s=5.0)
        add("document_edit", self._rng.randint(3, 8), duration_s=120.0)
        add("screenshot", self._rng.randint(0, 3), duration_s=3.0)
        plan.activities.sort(key=lambda activity: activity.at_offset)
        return plan

    def plan_study(self, days: int) -> List[DayPlan]:
        """Plan the whole multi-day study."""
        return [self.plan_day(index) for index in range(days)]
