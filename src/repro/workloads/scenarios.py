"""Scripted protocol scenarios reproducing the paper's figures.

Each function runs the pictured interaction on a (fresh or supplied)
protected machine and returns a :class:`ScenarioTrace` -- an ordered list of
protocol steps mirroring the numbered arrows of the figure, plus the
outcome.  Examples print them; integration tests assert on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.browser import Browser
from repro.apps.clipboard_apps import PasswordManager, TextEditor
from repro.apps.launcher import Launcher
from repro.apps.videoconf import VideoConfApp
from repro.kernel.errors import OverhaulDenied
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.sim.time import format_timestamp, from_seconds
from repro.xserver.selection import TransferState


@dataclass
class ScenarioStep:
    """One arrow of a protocol figure."""

    number: str
    label: str
    detail: str = ""

    def render(self) -> str:
        suffix = f" -- {self.detail}" if self.detail else ""
        return f"({self.number}) {self.label}{suffix}"


@dataclass
class ScenarioTrace:
    """The recorded run of one figure's scenario."""

    name: str
    figure: str
    steps: List[ScenarioStep] = field(default_factory=list)
    succeeded: bool = False
    notes: str = ""

    def add(self, number: str, label: str, detail: str = "") -> None:
        self.steps.append(ScenarioStep(number, label, detail))

    def render(self) -> str:
        header = f"=== {self.figure}: {self.name} ==="
        body = "\n".join(step.render() for step in self.steps)
        outcome = f"outcome: {'GRANTED' if self.succeeded else 'DENIED'}"
        if self.notes:
            outcome += f" ({self.notes})"
        return "\n".join([header, body, outcome])


def _machine(machine: Optional[Machine], config: Optional[OverhaulConfig]) -> Machine:
    return machine if machine is not None else Machine.with_overhaul(config)


def figure1_hardware_device(
    machine: Optional[Machine] = None, config: Optional[OverhaulConfig] = None
) -> ScenarioTrace:
    """Figure 1: dynamic access control over the microphone."""
    m = _machine(machine, config)
    trace = ScenarioTrace("microphone access after a button click", "Figure 1")
    app = VideoConfApp(m, comm="skype")
    m.settle()

    before = m.overhaul.extension.notifications_sent if m.overhaul else 0
    app.click()
    trace.add("1", f"user clicks the 'call' button of {app.comm}",
              f"E_A,t at {format_timestamp(m.now)}")
    sent = (m.overhaul.extension.notifications_sent if m.overhaul else 0) - before
    trace.add("2", "display manager verifies hardware provenance and notifies the kernel",
              f"{sent} interaction notification(s) N_A,t sent over netlink")
    trace.add("3", "event forwarded to the application",
              f"client queue depth {app.client.pending_events()}")
    m.run_for(from_seconds(0.3))
    try:
        app.place_call()
        trace.add("4", "application opens /dev/mic0 (mic_t+n)",
                  f"n = 0.3 s < delta")
        trace.add("5", "permission monitor correlates open() with the interaction: GRANT")
        alerts = m.xserver.overlay.alerts_for_pid(app.pid)
        trace.add("6", "kernel requests a visual alert (V_A,mic)",
                  f"{len(alerts)} alert(s) now on the overlay")
        trace.succeeded = True
    except OverhaulDenied as error:
        trace.add("5", "permission monitor: DENY", str(error))
    return trace


def figure2_clipboard_paste(
    machine: Optional[Machine] = None, config: Optional[OverhaulConfig] = None
) -> ScenarioTrace:
    """Figure 2: a paste mediated by a permission query."""
    m = _machine(machine, config)
    trace = ScenarioTrace("clipboard paste with permission query", "Figure 2")
    source = PasswordManager(m)
    target = TextEditor(m)
    m.settle()

    source.user_copy_password("bank")
    trace.add("0", "password manager copies a credential (its own mediated copy)")
    m.run_for(from_seconds(0.5))

    target.focus()
    from repro.xserver.input_drivers import KEYCODE_V, MODIFIER_CTRL

    target.machine.keyboard.combo(KEYCODE_V, MODIFIER_CTRL)
    trace.add("1", "user presses Ctrl+V in the editor", f"E_A,t at {format_timestamp(m.now)}")
    trace.add("2", "display manager authenticates the input, sends N_A,t to the kernel")
    trace.add("3", "key event forwarded to the editor")
    queries_before = m.overhaul.extension.queries_sent if m.overhaul else 0
    try:
        data = target.paste_text()
        queries = (m.overhaul.extension.queries_sent if m.overhaul else 0) - queries_before
        trace.add("4", "editor issues the paste request (ConvertSelection)")
        trace.add("5", "display manager sends permission query Q_A,t+n over netlink",
                  f"{queries} query round trip(s)")
        trace.add("6", "permission monitor correlates and replies R_A,t+n = grant")
        trace.add("7", "clipboard data returned to the editor",
                  f"{len(data or b'')} bytes")
        trace.succeeded = data is not None
    except Exception as error:  # BadAccess on denial
        trace.add("6", "permission monitor replies R_A,t+n = deny", str(error))
    return trace


def figure3_launcher_spawn(
    machine: Optional[Machine] = None, config: Optional[OverhaulConfig] = None
) -> ScenarioTrace:
    """Figure 3: the launcher spawns a screen-capture program (P1)."""
    m = _machine(machine, config)
    trace = ScenarioTrace("program launcher executes a screenshot tool", "Figure 3")
    launcher = Launcher(m)
    m.settle()

    launcher.click()
    trace.add("1", "user clicks the launcher 'Run'",
              f"E_Run,t at {format_timestamp(m.now)}")
    trace.add("2", "display manager sends N_Run,t to the permission monitor")
    child = launcher.launch_program("/usr/bin/shot", comm="shot")
    trace.add("3", "user types 'shot'; launcher receives the keystrokes")
    trace.add("4", "Run forks and execs Shot",
              f"child pid {child.pid} inherits interaction "
              f"{format_timestamp(child.interaction_ts)} (P1)")
    client = m.xserver.connect(child)
    try:
        image = m.xserver.get_image(client, m.xserver.root_window.drawable_id)
        trace.add("5", "Shot requests the screen contents (scr_t+n): GRANT",
                  f"{len(image)} bytes captured")
        trace.succeeded = True
    except Exception as error:
        trace.add("5", "Shot requests the screen contents: DENY", str(error))
    return trace


def figure4_browser_ipc(
    machine: Optional[Machine] = None, config: Optional[OverhaulConfig] = None
) -> ScenarioTrace:
    """Figure 4: a multi-process browser starts a video conference (P2)."""
    m = _machine(machine, config)
    trace = ScenarioTrace("browser tab opens the camera via shared-memory IPC", "Figure 4")
    browser = Browser(m)
    m.settle()
    tab = browser.open_tab()
    trace.add("0", "browser forked a tab renderer at startup",
              f"tab pid {tab.task.pid}, shm segment {tab._area.backing_object.name}")

    browser.click()
    trace.add("1", "user clicks 'start video conference' in the Browser window",
              f"E_Browser,t at {format_timestamp(m.now)}")
    trace.add("2", "display manager sends N_Browser,t to the permission monitor")
    trace.add("3", "click forwarded to the Browser")
    faults_before = m.kernel.shm.total_faults
    try:
        browser.command_tab(tab, b"\x01")
        trace.add("4", "Browser commands Tab over shared memory",
                  f"{m.kernel.shm.total_faults - faults_before} page fault(s) ran the "
                  "propagation protocol (P2)")
        trace.add("5", "Tab opens the camera (cam_t+n): GRANT",
                  f"camera fd {tab.camera_fd}")
        trace.succeeded = tab.camera_fd is not None
    except OverhaulDenied as error:
        trace.add("5", "Tab opens the camera: DENY", str(error))
    return trace


def figure6_selection_protocol(
    machine: Optional[Machine] = None, config: Optional[OverhaulConfig] = None
) -> ScenarioTrace:
    """Figure 6: the full 13-step X11 copy & paste protocol."""
    m = _machine(machine, config)
    trace = ScenarioTrace("ICCCM copy & paste, modified steps in bold", "Figure 6")
    source = TextEditor(m, comm="source-editor")
    target = TextEditor(m, comm="target-editor")
    m.settle()
    payload = b"figure-six-payload"

    source.user_copy(payload)
    trace.add("1", "copy initiated by user input (hardware keystroke)", "*modified*: verified authentic")
    trace.add("2", "source client issues SetSelection", "*modified*: permission query precedes it")
    owner_window = m.xserver.get_selection_owner(source.client, "CLIPBOARD")
    trace.add("3-4", "source confirms selection ownership",
              f"owner window {owner_window:#x}")
    m.run_for(from_seconds(0.4))

    target.focus()
    from repro.xserver.input_drivers import KEYCODE_V, MODIFIER_CTRL

    m.keyboard.combo(KEYCODE_V, MODIFIER_CTRL)
    trace.add("5", "paste initiated by user input", "*modified*: verified authentic")
    transfer = m.xserver.convert_selection(
        target.client, "CLIPBOARD", "STRING", "XSEL_DATA", target.window.drawable_id
    )
    trace.add("6", "target sends ConvertSelection", "*modified*: permission query precedes it")
    trace.add("7", "server issues SelectionRequest to the owner")
    trace.add("8", "owner stores the data with ChangeProperty",
              f"transfer state {transfer.state.value}")
    trace.add("9", "owner asks the server (SendEvent) to send SelectionNotify",
              "validated against the pending transfer")
    trace.add("10", "target notified that the data is available")
    data = m.xserver.get_property(
        target.client, target.window.drawable_id, "XSEL_DATA", delete=True
    )
    trace.add("11-12", "target retrieves the data with GetProperty",
              f"{len(data or b'')} bytes")
    trace.add("13", "property deleted; transfer complete",
              f"state {transfer.state.value}")
    trace.succeeded = data == payload and transfer.state is TransferState.COMPLETED
    return trace


def all_figure_scenarios(config: Optional[OverhaulConfig] = None) -> List[ScenarioTrace]:
    """Run every figure scenario on fresh machines."""
    return [
        figure1_hardware_device(config=config),
        figure2_clipboard_paste(config=config),
        figure3_launcher_spawn(config=config),
        figure4_browser_ipc(config=config),
        figure6_selection_protocol(config=config),
    ]
