"""The attack matrix: every attack from the paper's analysis, as a harness.

Running the same eight attacks against a baseline and a protected machine
produces the security-evaluation matrix the threat analysis implies: each
row must read PWNED on stock Linux/X11 and BLOCKED under Overhaul (except
alert forgery, which is a user-discernibility property on the baseline,
and mimicry, which stays out of scope on both).

Used by ``examples/attack_gallery.py`` and
``tests/integration/test_attack_matrix.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.apps import (
    ClickjackingMalware,
    ClipboardProtocolAttacker,
    FakeAlertMalware,
    InputForgeryMalware,
    PtraceInjectionMalware,
    Spyware,
    TextEditor,
)
from repro.core.system import Machine
from repro.sim.time import from_seconds
from repro.xserver.errors import BadAccess


@dataclass
class AttackOutcome:
    """One attack's result on one machine."""

    name: str
    succeeded: bool  # True = the attacker got what they wanted
    detail: str = ""


@dataclass
class AttackMatrix:
    """All outcomes for one machine configuration."""

    machine_name: str
    protected: bool
    outcomes: List[AttackOutcome] = field(default_factory=list)

    def by_name(self) -> Dict[str, AttackOutcome]:
        return {outcome.name: outcome for outcome in self.outcomes}

    def successes(self) -> List[str]:
        return [o.name for o in self.outcomes if o.succeeded]

    def render(self) -> str:
        mode = "OVERHAUL" if self.protected else "baseline"
        lines = [f"attack matrix ({mode}):"]
        for outcome in self.outcomes:
            verdict = "PWNED  " if outcome.succeeded else "blocked"
            suffix = f" -- {outcome.detail}" if outcome.detail else ""
            lines.append(f"  {verdict} {outcome.name}{suffix}")
        return "\n".join(lines)


def run_attack_matrix(machine: Machine) -> AttackMatrix:
    """Execute the full attack suite on *machine*."""
    matrix = AttackMatrix(machine.name, machine.protected)
    editor = TextEditor(machine)
    machine.settle()
    editor.user_copy(b"password-in-clipboard")
    machine.run_for(from_seconds(3.0))  # user idle; data at rest

    # 1. Background spyware across all three channels.
    spy = Spyware(machine)
    spy.attempt_all()
    matrix.outcomes.append(
        AttackOutcome(
            "background-spyware",
            succeeded=bool(spy.stolen),
            detail=f"{len(spy.stolen)}/3 channels leaked",
        )
    )

    # 2a/2b. Input forgery.
    forger = InputForgeryMalware(machine)
    machine.settle()
    matrix.outcomes.append(
        AttackOutcome("input-forgery-sendevent", forger.forge_with_sendevent())
    )
    matrix.outcomes.append(
        AttackOutcome("input-forgery-xtest", forger.forge_with_xtest())
    )

    # 3. Clickjacking via transparent overlay.
    jacker = ClickjackingMalware(machine, editor.window)
    machine.settle()
    jacker.pop_over_and_wait()
    machine.mouse.click_window(editor.window)
    matrix.outcomes.append(AttackOutcome("clickjacking", jacker.try_microphone()))

    # 4. Alert forgery.  On a stock system nothing distinguishes real system
    # UI, so the forgery trivially "succeeds"; under Overhaul the fake
    # cannot carry the shared secret nor render above the overlay.
    faker = FakeAlertMalware(machine)
    machine.settle()
    faker.display_fake_alert()
    if machine.protected:
        secret = machine.xserver.overlay.shared_secret.encode()
        forged = secret in bytes(faker.window.content)
    else:
        forged = True
    matrix.outcomes.append(AttackOutcome("alert-forgery", forged))

    # 5. SendEvent clipboard-protocol bypass.
    snoop = ClipboardProtocolAttacker(machine)
    machine.settle()
    stolen = snoop.solicit_owner_directly(editor)
    matrix.outcomes.append(
        AttackOutcome("clipboard-sendevent-bypass", stolen is not None)
    )

    # 6. In-flight property snooping during a legitimate paste.
    watcher = ClipboardProtocolAttacker(machine, comm="watcher")
    machine.settle()
    watcher.watch_window_properties(editor.window.drawable_id)
    editor.user_copy(b"fresh-secret")
    machine.run_for(from_seconds(0.2))
    editor.user_paste()
    matrix.outcomes.append(
        AttackOutcome("clipboard-property-snoop", b"fresh-secret" in watcher.sniffed)
    )

    # 7. CopyArea screen theft from a foreign window.
    thief = Spyware(machine, comm="copythief")
    pixmap = machine.xserver.create_pixmap(thief.client)
    try:
        machine.xserver.copy_area(
            thief.client, editor.window.drawable_id, pixmap.drawable_id
        )
        matrix.outcomes.append(AttackOutcome("copyarea-screen-theft", True))
    except BadAccess:
        matrix.outcomes.append(AttackOutcome("copyarea-screen-theft", False))

    # 8. ptrace code injection into a user-blessed child.
    injector = PtraceInjectionMalware(machine, map_window=True)
    machine.settle()
    injector.click()
    matrix.outcomes.append(
        AttackOutcome("ptrace-injection", injector.launch_and_inject())
    )

    return matrix


#: Attacks that must flip from PWNED (baseline) to blocked (Overhaul).
FLIPPABLE_ATTACKS = [
    "background-spyware",
    "input-forgery-sendevent",
    "input-forgery-xtest",
    "clickjacking",
    "alert-forgery",
    "clipboard-sendevent-bypass",
    "clipboard-property-snoop",
    "copyarea-screen-theft",
    "ptrace-injection",
]
