"""Interaction blast radius: quantifying the black-box over-approximation.

Section III-E concedes that Overhaul's transparent, black-box design yields
"strictly weaker security guarantees than prior work [ACGs]... a stronger
connection between user intent and program behavior".  Concretely: P1/P2
propagate a single click to *every* process the clicked application
transitively communicates with before the threshold expires -- not just to
the process the user meant to authorise.

This experiment measures that over-approximation.  A synthetic desktop runs
N background services exchanging periodic IPC with a hub process; the user
clicks one application once; we then count how many live tasks hold a
fresh (grant-capable) interaction timestamp at sampling points after the
click.  The result is the paper's trade-off made visible: chattier systems
have larger blast radii, bounded by the threshold's expiry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.apps.base import SimApp
from repro.core.config import OverhaulConfig
from repro.core.system import Machine
from repro.sim.time import Timestamp, from_seconds


@dataclass
class RadiusSample:
    """Blessed-task count at one instant after the click."""

    at_offset: Timestamp
    blessed_tasks: int
    total_tasks: int

    @property
    def fraction(self) -> float:
        return self.blessed_tasks / self.total_tasks if self.total_tasks else 0.0


@dataclass
class BlastRadiusResult:
    """The full sweep for one topology."""

    services: int
    chatter_interval: Timestamp
    samples: List[RadiusSample] = field(default_factory=list)

    @property
    def peak_blessed(self) -> int:
        return max(sample.blessed_tasks for sample in self.samples)

    @property
    def final_blessed(self) -> int:
        return self.samples[-1].blessed_tasks

    def render(self) -> str:
        header = (
            f"blast radius: {self.services} services, chatter every "
            f"{self.chatter_interval / 1_000_000:.2f}s"
        )
        rows = [
            f"  t+{sample.at_offset / 1_000_000:4.1f}s : "
            f"{sample.blessed_tasks:3d} / {sample.total_tasks} tasks grant-capable"
            for sample in self.samples
        ]
        return "\n".join([header] + rows)


def measure_blast_radius(
    services: int = 8,
    chatter_interval_s: float = 0.3,
    config: Optional[OverhaulConfig] = None,
    sample_offsets_s: Optional[List[float]] = None,
) -> BlastRadiusResult:
    """Run the topology and sample the blessed-task count over time.

    Topology: one clicked *app*, one *hub* it talks to, and *services*
    background processes that each exchange a message with the hub every
    ``chatter_interval_s`` -- a caricature of a session bus ecosystem.
    """
    machine = Machine.with_overhaul(config)
    app = SimApp(machine, "/usr/bin/clicked-app", comm="clicked-app")
    hub, _ = machine.launch("/usr/bin/hub", comm="hub", connect_x=False)
    service_tasks = [
        machine.launch(f"/usr/bin/svc{i}", comm=f"svc{i}", connect_x=False)[0]
        for i in range(services)
    ]
    machine.settle()

    kernel = machine.kernel
    app_hub_pipe = kernel.pipes.create_pipe()
    hub_links = [kernel.sockets.socketpair(hub, task) for task in service_tasks]

    interval = from_seconds(chatter_interval_s)

    def chatter() -> None:
        # The clicked app pings the hub; the hub fans out to every service.
        app_hub_pipe.write(app.task, b"ping")
        app_hub_pipe.read(hub, 4)
        for link, task in zip(hub_links, service_tasks):
            link.send(hub, b"fanout")
            link.receive(task)
        machine.scheduler.schedule_after(interval, chatter, label="chatter")

    machine.scheduler.schedule_after(interval, chatter, label="chatter")

    app.click()
    click_time = machine.now
    threshold = machine.overhaul.config.interaction_threshold

    offsets = sample_offsets_s if sample_offsets_s is not None else [
        0.0, 0.5, 1.0, 1.9, 2.5, 4.0
    ]
    result = BlastRadiusResult(services=services, chatter_interval=interval)
    for offset_s in offsets:
        target = click_time + from_seconds(offset_s)
        if target > machine.now:
            machine.scheduler.run_until(target)
        live = kernel.process_table.live_tasks()
        blessed = sum(
            1
            for task in live
            if task.interaction_ts != -(2**62)
            and 0 <= machine.now - task.interaction_ts < threshold
        )
        result.samples.append(
            RadiusSample(
                at_offset=machine.now - click_time,
                blessed_tasks=blessed,
                total_tasks=len(live),
            )
        )
    return result


def sweep_topologies() -> List[BlastRadiusResult]:
    """The comparison the analysis section wants: quiet vs chatty systems."""
    return [
        measure_blast_radius(services=0, chatter_interval_s=10.0),  # isolated app
        measure_blast_radius(services=4, chatter_interval_s=0.5),
        measure_blast_radius(services=16, chatter_interval_s=0.2),
    ]
