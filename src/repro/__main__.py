"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``demo``          -- the quickstart grant/deny walkthrough;
- ``figures``       -- print the Figure 1-4/6 protocol traces;
- ``table1``        -- regenerate Table I (accepts ``--scale``/``--repeats``);
- ``usability``     -- run the V-B study (accepts ``--seed``);
- ``longterm``      -- run the V-D study (accepts ``--days``/``--seed``);
- ``applicability`` -- run the V-C sweep;
- ``report``        -- regenerate the full evaluation report;
- ``trace``         -- replay the quickstart with tracing on and print the
  decision-path report (``--tree`` adds the raw span forest,
  ``--counters`` the cross-layer counter table).
"""

from __future__ import annotations

import argparse
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overhaul (DSN 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart walkthrough")
    sub.add_parser("figures", help="figure protocol traces")
    sub.add_parser("applicability", help="Section V-C sweep")

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--scale", type=float, default=1.0)
    table1.add_argument("--repeats", type=int, default=5)

    usability = sub.add_parser("usability", help="Section V-B study")
    usability.add_argument("--seed", type=int, default=2016)

    longterm = sub.add_parser("longterm", help="Section V-D study")
    longterm.add_argument("--days", type=int, default=21)
    longterm.add_argument("--seed", type=int, default=2016)

    report = sub.add_parser("report", help="full evaluation report")
    report.add_argument("--full", action="store_true")

    trace = sub.add_parser("trace", help="traced quickstart decision-path report")
    trace.add_argument("--tree", action="store_true", help="also print the span forest")
    trace.add_argument("--counters", action="store_true", help="also print counters")

    args = parser.parse_args(argv)

    if args.command == "demo":
        run_demo()
        return 0
    if args.command == "figures":
        from repro.workloads.scenarios import all_figure_scenarios

        for trace in all_figure_scenarios():
            print(trace.render())
            print()
        return 0
    if args.command == "table1":
        from repro.analysis.tables import measure_table_i

        print(measure_table_i(scale=args.scale, repeats=args.repeats).render())
        return 0
    if args.command == "usability":
        from repro.workloads.usability import run_usability_study

        print(run_usability_study(seed=args.seed).render())
        return 0
    if args.command == "longterm":
        from repro.workloads.longterm import run_comparison

        for results in run_comparison(seed=args.seed, days=args.days).values():
            print(results.render())
            print()
        return 0
    if args.command == "applicability":
        from repro.workloads.app_catalog import run_applicability_sweep

        print(run_applicability_sweep().render())
        return 0
    if args.command == "trace":
        from repro.obs import collect_counters, render_decision_report, run_traced_quickstart

        machine = run_traced_quickstart()
        print(render_decision_report(machine))
        if args.tree:
            print()
            print(machine.tracer.render_tree())
        if args.counters:
            print()
            print(collect_counters(machine).render())
        return 0
    if args.command == "report":
        from repro.analysis.report import build_report

        print(
            build_report(
                table_scale=2.0 if args.full else 0.5,
                longterm_days=21 if args.full else 5,
            )
        )
        return 0
    return 1  # pragma: no cover


def run_demo() -> None:
    """The quickstart flow, inline (keeps `repro demo` dependency-free)."""
    from repro import Machine
    from repro.apps import AudioRecorder, Spyware
    from repro.kernel.errors import OverhaulDenied
    from repro.sim.time import from_seconds

    machine = Machine.with_overhaul()
    recorder = AudioRecorder(machine)
    spy = Spyware(machine)
    machine.settle()
    print("spyware mic attempt ->", spy.attempt_microphone())
    recorder.click_record()
    print("recorder after click ->", len(recorder.capture_samples(16)), "bytes")
    recorder.stop_recording()
    machine.run_for(from_seconds(2.5))
    try:
        recorder.start_recording()
    except OverhaulDenied as error:
        print("after expiry ->", error)
    print("alerts shown:", machine.xserver.overlay.total_shown)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
