"""Command-line entry point: ``python -m repro <command>``.

Commands:

- ``demo``          -- the quickstart grant/deny walkthrough;
- ``figures``       -- print the Figure 1-4/6 protocol traces;
- ``table1``        -- regenerate Table I (accepts ``--scale``/``--repeats``);
- ``usability``     -- run the V-B study (accepts ``--seed``);
- ``longterm``      -- run the V-D study (accepts ``--days``/``--seed``);
- ``fleet``         -- run a study over a sharded *population* of simulated
  machines/users on a multiprocessing worker pool (``--machines``/
  ``--users``/``--workers``/``--resume``); aggregate output is
  byte-identical for any worker count;
- ``redteam``       -- run the adversarial campaign corpus (six attack
  families scored as false-grant / false-deny / detection rates;
  ``--families``/``--trials``/``--workers``) or, with ``--sweep delta`` /
  ``--sweep visibility``, the security/usability parameter sweep as ROC
  curve data; ``--json`` output is byte-identical for any worker count;
- ``applicability`` -- run the V-C sweep;
- ``report``        -- regenerate the full evaluation report;
- ``trace``         -- replay the quickstart with tracing on and print the
  decision-path report (``--tree`` adds the raw span forest,
  ``--counters`` the cross-layer counter table);
- ``profile``       -- cProfile a hot-path scenario and print per-span
  timings (``--ops``/``--top``/``--no-spans``); see
  :mod:`repro.analysis.profiling`.
- ``serve``         -- run the long-lived multi-tenant permission daemon
  over UNIX and/or TCP sockets (``--unix``/``--tcp``/``--max-pending``/
  ``--batch-limit``/``--max-frame``); see :mod:`repro.service`.

Every command exits 141 (the conventional ``128 + SIGPIPE``) when its
output pipe closes early -- ``python -m repro redteam --json | head``
must not traceback.
"""

from __future__ import annotations

import argparse
from typing import List, Optional


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Overhaul (DSN 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart walkthrough")
    sub.add_parser("figures", help="figure protocol traces")
    sub.add_parser("applicability", help="Section V-C sweep")

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--scale", type=float, default=1.0)
    table1.add_argument("--repeats", type=int, default=5)
    table1.add_argument("--json", action="store_true", help="machine-readable output")

    usability = sub.add_parser("usability", help="Section V-B study")
    usability.add_argument("--seed", type=int, default=2016)
    usability.add_argument("--json", action="store_true", help="machine-readable output")

    longterm = sub.add_parser("longterm", help="Section V-D study")
    longterm.add_argument("--days", type=int, default=21)
    longterm.add_argument("--seed", type=int, default=2016)
    longterm.add_argument("--json", action="store_true", help="machine-readable output")

    fleet = sub.add_parser("fleet", help="sharded population run of a study")
    fleet.add_argument("study", help="study to shard (longterm, usability)")
    fleet.add_argument("--machines", type=int, default=16, help="longterm population")
    fleet.add_argument("--users", type=int, default=None, help="usability population")
    fleet.add_argument("--days", type=int, default=21, help="days per longterm machine")
    fleet.add_argument("--seed", type=int, default=2016)
    fleet.add_argument("--workers", type=int, default=None, help="default: CPU count")
    fleet.add_argument(
        "--resume", metavar="DIR", default=None,
        help="checkpoint spool directory; an interrupted run restarted with "
        "the same DIR re-executes only unfinished shards",
    )
    fleet.add_argument("--timeout", type=float, default=300.0, help="per-shard seconds")
    fleet.add_argument("--retries", type=int, default=2, help="retries per failing shard")
    fleet.add_argument(
        "--lease", type=int, default=None,
        help="micro-shards per worker lease (default: auto-sized from the queue)",
    )
    fleet.add_argument(
        "--no-steal", action="store_true",
        help="disable work stealing (static leases)",
    )
    fleet.add_argument(
        "--no-streaming", action="store_true",
        help="disable streaming reduction; materialise every shard record "
        "from the spool before aggregating (debug / A-B comparison)",
    )
    fleet.add_argument(
        "--shard-size", type=int, default=None,
        help="users per shard for user-sharded studies (usability, synthetic)",
    )
    fleet.add_argument(
        "--straggler-every", type=int, default=None,
        help="synthetic study: every Nth shard sleeps --straggler-ms",
    )
    fleet.add_argument(
        "--straggler-first", type=int, default=None,
        help="synthetic study: the first N shards each sleep --straggler-ms "
        "(clusters stragglers into one worker's opening lease)",
    )
    fleet.add_argument(
        "--straggler-ms", type=float, default=None,
        help="synthetic study: straggler sleep in milliseconds",
    )
    fleet.add_argument("--json", action="store_true", help="print the aggregate as JSON")

    redteam = sub.add_parser("redteam", help="adversarial campaign corpus")
    redteam.add_argument(
        "--families", default=None,
        help="comma-separated family slice (default: the whole corpus)",
    )
    redteam.add_argument("--trials", type=int, default=8, help="trials per scenario")
    redteam.add_argument("--seed", type=int, default=2016)
    redteam.add_argument("--workers", type=int, default=1)
    redteam.add_argument(
        "--no-baseline", action="store_true",
        help="skip the unprotected viability arm",
    )
    redteam.add_argument(
        "--sweep", choices=("delta", "visibility"), default=None,
        help="sweep a parameter instead of running the corpus",
    )
    redteam.add_argument("--json", action="store_true", help="canonical JSON output")

    report = sub.add_parser("report", help="full evaluation report")
    report.add_argument("--full", action="store_true")

    trace = sub.add_parser("trace", help="traced quickstart decision-path report")
    trace.add_argument("--tree", action="store_true", help="also print the span forest")
    trace.add_argument("--counters", action="store_true", help="also print counters")

    profile = sub.add_parser("profile", help="cProfile a hot-path scenario")
    profile.add_argument(
        "scenario",
        help="decision-path, device-access, clipboard, screen-capture, "
        "shared-memory, or quickstart",
    )
    profile.add_argument("--ops", type=int, default=0, help="op count (0: scenario default)")
    profile.add_argument("--top", type=int, default=25, help="cProfile rows to print")
    profile.add_argument("--no-spans", action="store_true",
                         help="skip the traced per-span pass")

    serve = sub.add_parser("serve", help="multi-tenant permission service daemon")
    serve.add_argument("--unix", metavar="PATH", default=None,
                       help="UNIX socket path to listen on")
    serve.add_argument("--tcp", metavar="HOST:PORT", default=None,
                       help="TCP address to listen on (port 0: kernel-assigned)")
    serve.add_argument("--max-pending", type=int, default=256,
                       help="per-connection in-flight budget before RETRY_LATER")
    serve.add_argument("--batch-limit", type=int, default=512,
                       help="max requests coalesced into one core pass")
    serve.add_argument("--max-frame", type=int, default=64 * 1024,
                       help="max frame body bytes before FRAME_TOO_LARGE")
    serve.add_argument("--max-tenants", type=int, default=1024,
                       help="tenant partition table bound")
    serve.add_argument("--shard-workers", type=int, default=0, metavar="N",
                       help="shard tenants across N worker processes behind "
                            "this front door (0: single in-process daemon)")
    serve.add_argument("--snapshot-dir", metavar="DIR", default=None,
                       help="persist tenant snapshots here on drain and "
                            "restore them on start (warm restart)")

    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        return _exit_broken_pipe()


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "demo":
        run_demo()
        return 0
    if args.command == "figures":
        from repro.workloads.scenarios import all_figure_scenarios

        for trace in all_figure_scenarios():
            print(trace.render())
            print()
        return 0
    if args.command == "table1":
        import json

        from repro.analysis.tables import measure_table_i

        table = measure_table_i(scale=args.scale, repeats=args.repeats)
        if args.json:
            print(json.dumps(table.to_dict(), sort_keys=True, indent=2))
        else:
            print(table.render())
        return 0
    if args.command == "usability":
        import json

        from repro.workloads.usability import run_usability_study

        study = run_usability_study(seed=args.seed)
        if args.json:
            print(json.dumps(study.to_dict(), sort_keys=True, indent=2))
        else:
            print(study.render())
        return 0
    if args.command == "longterm":
        import json

        from repro.workloads.longterm import run_comparison

        comparison = run_comparison(seed=args.seed, days=args.days)
        if args.json:
            payload = {name: results.to_dict() for name, results in comparison.items()}
            print(json.dumps(payload, sort_keys=True, indent=2))
        else:
            for results in comparison.values():
                print(results.render())
                print()
        return 0
    if args.command == "fleet":
        return run_fleet_command(args)
    if args.command == "redteam":
        return run_redteam_command(args)
    if args.command == "applicability":
        from repro.workloads.app_catalog import run_applicability_sweep

        print(run_applicability_sweep().render())
        return 0
    if args.command == "trace":
        from repro.obs import collect_counters, render_decision_report, run_traced_quickstart

        machine = run_traced_quickstart()
        print(render_decision_report(machine))
        if args.tree:
            print()
            print(machine.tracer.render_tree())
        if args.counters:
            print()
            print(collect_counters(machine).render())
        return 0
    if args.command == "profile":
        from repro.analysis.profiling import run_profile

        return run_profile(
            args.scenario, ops=args.ops, top=args.top, spans=not args.no_spans
        )
    if args.command == "report":
        from repro.analysis.report import build_report

        print(
            build_report(
                table_scale=2.0 if args.full else 0.5,
                longterm_days=21 if args.full else 5,
            )
        )
        return 0
    if args.command == "serve":
        return run_serve_command(args)
    return 1  # pragma: no cover


def _exit_broken_pipe() -> int:
    """Finish a pipe-closed-early run without a traceback.

    The reader (``| head``) is gone; nothing more can be said on stdout.
    Note it on stderr, point stdout's fd at devnull so the interpreter's
    exit-time flush of the dead pipe stays quiet, and exit with the
    conventional 128 + SIGPIPE status.
    """
    import os
    import sys

    try:
        sys.stderr.write("repro: output pipe closed early\n")
        sys.stderr.flush()
    except (OSError, ValueError):  # pragma: no cover - stderr gone too
        pass
    try:
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        os.close(devnull)
    except (OSError, ValueError, AttributeError):
        pass  # no real stdout fd (e.g. captured streams); nothing to silence
    return 141


def run_serve_command(args: argparse.Namespace) -> int:
    """Drive one ``python -m repro serve`` invocation."""
    import asyncio
    import sys

    from repro.service import PermissionService, ServiceDaemon, ShardedDaemon

    if args.unix is None and args.tcp is None:
        print("serve: pass --unix PATH and/or --tcp HOST:PORT", file=sys.stderr)
        return 2
    tcp_host: Optional[str] = None
    tcp_port = 0
    if args.tcp is not None:
        host, sep, port = args.tcp.rpartition(":")
        if not sep or not host or not port.isdigit():
            print(f"serve: --tcp wants HOST:PORT, got {args.tcp!r}", file=sys.stderr)
            return 2
        tcp_host, tcp_port = host, int(port)

    async def body() -> None:
        if args.shard_workers > 0:
            daemon = ShardedDaemon(
                args.shard_workers,
                unix_path=args.unix,
                tcp_host=tcp_host,
                tcp_port=tcp_port,
                max_pending=args.max_pending,
                max_frame=args.max_frame,
                worker_batch_limit=args.batch_limit,
                snapshot_dir=args.snapshot_dir,
            )
        else:
            daemon = ServiceDaemon(
                PermissionService(
                    max_tenants=args.max_tenants,
                    journal=args.snapshot_dir is not None,
                ),
                unix_path=args.unix,
                tcp_host=tcp_host,
                tcp_port=tcp_port,
                max_pending=args.max_pending,
                batch_limit=args.batch_limit,
                max_frame=args.max_frame,
                snapshot_dir=args.snapshot_dir,
            )
        await daemon.start()
        listeners = []
        if args.unix is not None:
            listeners.append(f"unix:{args.unix}")
        if tcp_host is not None:
            listeners.append(f"tcp:{tcp_host}:{daemon.tcp_port}")
        # The ready line is load-bearing: scripts wait for it before
        # connecting, and it is where a --tcp 0 port gets announced.
        print(f"overhaul service ready on {' '.join(listeners)}", flush=True)
        await daemon.run_until_signalled()
        print("overhaul service drained", flush=True)

    asyncio.run(body())
    return 0


def run_fleet_command(args: argparse.Namespace) -> int:
    """Drive one ``python -m repro fleet <study>`` invocation."""
    import os
    import sys

    from repro.fleet import FleetError, run_fleet, study_names

    if args.study not in study_names():
        print(
            f"unknown study {args.study!r}; available: {', '.join(study_names())}",
            file=sys.stderr,
        )
        return 2

    params = {}
    if args.study == "longterm":
        population = args.machines
        params["days"] = args.days
    else:  # usability-style studies shard a population of users
        population = args.users if args.users is not None else args.machines
        if args.shard_size is not None:
            params["shard_size"] = args.shard_size
    if args.study == "synthetic":
        for name in ("straggler_every", "straggler_first", "straggler_ms"):
            value = getattr(args, name)
            if value is not None:
                params[name] = value
    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)

    try:
        report = run_fleet(
            args.study,
            population=population,
            seed=args.seed,
            workers=workers,
            params=params,
            spool_dir=args.resume,
            timeout_seconds=args.timeout,
            max_retries=args.retries,
            lease_size=args.lease,
            steal=not args.no_steal,
            streaming=False if args.no_streaming else None,
        )
    except FleetError as error:
        print(f"fleet error: {error}", file=sys.stderr)
        return 2

    if args.json:
        # Canonical aggregate only -- byte-identical across worker counts.
        sys.stdout.write(report.aggregate_json())
    else:
        print(report.render())
        print()
        import json

        print(json.dumps(report.aggregate, sort_keys=True, indent=2))
    return 0 if not report.quarantined else 3


def run_redteam_command(args: argparse.Namespace) -> int:
    """Drive one ``python -m repro redteam`` invocation."""
    import sys

    if args.sweep is not None:
        from repro.redteam.sweeps import sweep_delta, sweep_visibility

        sweep = sweep_delta if args.sweep == "delta" else sweep_visibility
        result = sweep(trials=args.trials, seed=args.seed)
        if args.json:
            sys.stdout.write(result.to_json())
        else:
            print(result.render())
        return 0

    from repro.fleet import FleetError, run_fleet

    params = {"baseline": 0 if args.no_baseline else 1}
    if args.families:
        params["families"] = args.families
    try:
        # Campaigns always ride the fleet engine (even --workers 1) so the
        # --json aggregate is the one byte-stable serialisation CI diffs
        # across worker counts.
        report = run_fleet(
            "redteam",
            population=args.trials,
            seed=args.seed,
            workers=args.workers,
            params=params,
        )
    except (FleetError, KeyError) as error:
        print(f"redteam error: {error}", file=sys.stderr)
        return 2
    if args.json:
        sys.stdout.write(report.aggregate_json())
    else:
        from repro.redteam.engine import CampaignReport, ScenarioScore

        campaign = CampaignReport(seed=args.seed, trials=args.trials)
        campaign.scores = [
            ScenarioScore(
                scenario=entry["scenario"],
                family=entry["family"],
                trials=entry["trials"],
                false_grants=entry["false_grant"]["successes"],
                blocked=entry["detection"]["trials"],
                detected_blocked=entry["detection"]["successes"],
                benign_trials=entry["false_deny"]["trials"],
                benign_denials=entry["false_deny"]["successes"],
                baseline_trials=entry["baseline_success"]["trials"],
                baseline_successes=entry["baseline_success"]["successes"],
            )
            for entry in report.aggregate["scenarios"]
        ]
        print(campaign.render())
    violations = report.aggregate.get("violations", {})
    return 3 if violations else 0


def run_demo() -> None:
    """The quickstart flow, inline (keeps `repro demo` dependency-free)."""
    from repro import Machine
    from repro.apps import AudioRecorder, Spyware
    from repro.kernel.errors import OverhaulDenied
    from repro.sim.time import from_seconds

    machine = Machine.with_overhaul()
    recorder = AudioRecorder(machine)
    spy = Spyware(machine)
    machine.settle()
    print("spyware mic attempt ->", spy.attempt_microphone())
    recorder.click_record()
    print("recorder after click ->", len(recorder.capture_samples(16)), "bytes")
    recorder.stop_recording()
    machine.run_for(from_seconds(2.5))
    try:
        recorder.start_recording()
    except OverhaulDenied as error:
        print("after expiry ->", error)
    print("alerts shown:", machine.xserver.overlay.total_shown)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
