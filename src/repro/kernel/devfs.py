"""The device filesystem (`/dev`) and the trusted device-mapping helper.

Section IV-B ("Device mediation"): "modern Linux distributions often make
use of dynamic device name assignments at runtime using frameworks such as
udev.  Therefore, our prototype relies on a trusted helper application,
owned by the superuser and protected against unauthorized modification using
normal user-based access control, to manage this mapping.  It is invoked in
response to changes in the device filesystem... and propagates these changes
to the kernel via an authenticated netlink channel."

Three pieces reproduce that:

- :class:`SensitiveDeviceMap` -- the kernel-side map from filesystem path to
  device class; the *only* writer is the authenticated udev-helper channel.
- :class:`DevfsManager` -- mounts ``/dev``, creates nodes with dynamic names
  (``video0``, ``video1``, ...), and emits change events.
- :class:`UdevHelper` -- the superuser-owned userspace helper that reacts to
  devfs changes and pushes map updates over netlink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kernel.device import Device, DeviceClass, DeviceInventory
from repro.kernel.errors import InvalidArgument, NoDevice, OperationNotPermitted
from repro.kernel.netlink import (
    UDEV_HELPER_PATH,
    NetlinkChannel,
    NetlinkMessage,
    NetlinkSubsystem,
)
from repro.kernel.task import Task
from repro.kernel.vfs import DeviceNode, Filesystem
from repro.sim.time import Timestamp

DEV_DIR = "/dev"

#: netlink message type used by the helper.
MSG_DEVICE_MAP_UPDATE = "overhaul.device-map-update"


class SensitiveDeviceMap:
    """Kernel-side map: device path -> :class:`DeviceClass`.

    Consulted by the augmented ``open()`` to decide whether a path is a
    sensitive device.  Updates are accepted only from the udev-helper
    netlink channel; that restriction is enforced in the kernel handler
    (:meth:`DevfsManager.install_kernel_handler`), not here.
    """

    def __init__(self) -> None:
        self._by_path: Dict[str, DeviceClass] = {}
        #: path -> "label:path" mediation operation string, maintained by
        #: the two write paths below so the augmented-open hot path answers
        #: "sensitive? and under what name?" with a single dict probe.
        #: Keyed per *current* registration: re-registering a path under a
        #: different class replaces the entry, so the index can never serve
        #: a stale operation name (unlike a fill-on-first-use cache).
        self._operation_names: Dict[str, str] = {}
        self.update_count = 0

    def set_mapping(self, path: str, device_class: DeviceClass) -> None:
        self._by_path[path] = device_class
        if device_class.sensitive:
            self._operation_names[path] = f"{device_class.label}:{path}"
        else:
            self._operation_names.pop(path, None)
        self.update_count += 1

    def drop_mapping(self, path: str) -> None:
        self._by_path.pop(path, None)
        self._operation_names.pop(path, None)
        self.update_count += 1

    def classify(self, path: str) -> Optional[DeviceClass]:
        """The device class registered for *path*, or None."""
        return self._by_path.get(path)

    def operation_name(self, path: str) -> Optional[str]:
        """The mediation operation string for *path*, or None.

        None means "not a sensitive device" (unknown path or a registered
        non-sensitive class) -- the augmented open passes it untouched.
        """
        return self._operation_names.get(path)

    def is_sensitive(self, path: str) -> bool:
        """True if *path* maps to a class Overhaul protects."""
        device_class = self._by_path.get(path)
        return device_class is not None and device_class.sensitive

    def sensitive_paths(self) -> List[str]:
        """All currently-registered sensitive device paths, sorted."""
        return sorted(p for p, c in self._by_path.items() if c.sensitive)


@dataclass
class DevfsChange:
    """One hotplug-style event: a node appeared or disappeared."""

    action: str  # "add" | "remove"
    path: str
    device_class: DeviceClass
    timestamp: Timestamp


_CLASS_NAME_PREFIXES = {
    DeviceClass.MICROPHONE: "mic",
    DeviceClass.CAMERA: "video",
    DeviceClass.SPEAKER: "audio-out",
    DeviceClass.KEYBOARD: "input-kbd",
    DeviceClass.MOUSE: "input-mouse",
    DeviceClass.DISK: "sd",
}


class DevfsManager:
    """Mounts ``/dev`` and manages dynamic device node naming."""

    def __init__(self, filesystem: Filesystem, netlink: NetlinkSubsystem) -> None:
        self._filesystem = filesystem
        self._netlink = netlink
        self.sensitive_map = SensitiveDeviceMap()
        self._next_index: Dict[DeviceClass, int] = {}
        self._node_paths: Dict[str, str] = {}  # device name -> /dev path
        self._helper: Optional["UdevHelper"] = None
        if not filesystem.exists(DEV_DIR):
            filesystem.mkdir(DEV_DIR)
        self.install_kernel_handler()

    def install_kernel_handler(self) -> None:
        """Register the netlink handler that applies device-map updates.

        Only the channel authenticated as the udev helper may update the
        map; the display-manager channel (or any other) is refused.
        """

        def handle_update(channel: NetlinkChannel, message: NetlinkMessage) -> None:
            if channel.label != "udev-helper":
                raise OperationNotPermitted(
                    f"device-map updates only accepted from the udev helper, "
                    f"not {channel.label!r}"
                )
            payload = message.payload
            device_class = payload["device_class"]
            if not isinstance(device_class, DeviceClass):
                raise InvalidArgument("device_class payload must be a DeviceClass")
            if payload["action"] == "add":
                self.sensitive_map.set_mapping(payload["path"], device_class)
            elif payload["action"] == "remove":
                self.sensitive_map.drop_mapping(payload["path"])
            else:
                raise InvalidArgument(f"unknown devfs action {payload['action']!r}")

        self._netlink.register_kernel_handler(MSG_DEVICE_MAP_UPDATE, handle_update)

    def attach_helper(self, helper: "UdevHelper") -> None:
        """Wire the userspace helper that receives devfs change events."""
        self._helper = helper

    def node_path(self, device_name: str) -> str:
        """The /dev path currently assigned to *device_name*."""
        try:
            return self._node_paths[device_name]
        except KeyError:
            raise NoDevice(f"device {device_name!r} has no /dev node") from None

    def _create_node(self, device: Device, now: Timestamp) -> DevfsChange:
        """Create the /dev node for *device*; return the change event."""
        prefix = _CLASS_NAME_PREFIXES[device.device_class]
        index = self._next_index.get(device.device_class, 0)
        self._next_index[device.device_class] = index + 1
        path = f"{DEV_DIR}/{prefix}{index}"
        # Desktop distributions grant the seated user device access via
        # logind ACLs / the audio+video groups; 0o666 models that, and is
        # the paper's premise -- classic UNIX checks *pass* for user-level
        # malware, which is exactly the gap Overhaul closes.
        self._filesystem.create_device_node(path, device, mode=0o666, now=now)
        self._node_paths[device.name] = path
        return DevfsChange("add", path, device.device_class, now)

    def add_device(self, device: Device, now: Timestamp) -> str:
        """Create a /dev node for *device* with a dynamic name.

        Returns the assigned path and notifies the helper (which, in turn,
        updates the kernel's sensitive map over netlink -- the full udev
        round trip, so a compromised or missing helper genuinely degrades
        mediation, as it would on the real system).
        """
        change = self._create_node(device, now)
        if self._helper is not None:
            self._helper.on_devfs_change(change)
        return change.path

    def remove_device(self, device_name: str, now: Timestamp) -> None:
        """Remove the node for *device_name* (device unplugged)."""
        path = self.node_path(device_name)
        inode = self._filesystem.resolve(path)
        if not isinstance(inode, DeviceNode):
            raise NoDevice(f"{path} is not a device node")
        device = inode.device
        parent, name = self._filesystem.resolve_parent(path)
        del parent.entries[name]
        del self._node_paths[device_name]
        if self._helper is not None:
            self._helper.on_devfs_change(
                DevfsChange("remove", path, device.device_class, now)  # type: ignore[union-attr]
            )

    def populate(self, inventory: DeviceInventory, now: Timestamp) -> Dict[str, str]:
        """Create nodes for every device in *inventory*; name -> path map.

        The coldplug burst: all nodes are created first and the helper is
        notified with one batched flush (one authenticated netlink round
        instead of one per device), matching how udev replays the backlog
        of kernel uevents at boot.  Map contents and update counts are
        identical to per-device delivery.
        """
        paths: Dict[str, str] = {}
        changes: List[DevfsChange] = []
        for name, device in sorted(inventory.devices.items()):
            change = self._create_node(device, now)
            paths[name] = change.path
            changes.append(change)
        if self._helper is not None and changes:
            self._helper.on_devfs_changes(changes)
        return paths


class UdevHelper:
    """The trusted userspace helper managing the device map.

    It runs as a superuser-owned task whose executable lives at
    :data:`~repro.kernel.netlink.UDEV_HELPER_PATH`; the netlink subsystem
    authenticates it by that mapping.  All it does is translate devfs change
    events into kernel map updates -- deliberately tiny TCB.
    """

    def __init__(self, task: Task, netlink: NetlinkSubsystem) -> None:
        if task.exe_path != UDEV_HELPER_PATH:
            raise OperationNotPermitted(
                f"udev helper must run the trusted binary {UDEV_HELPER_PATH}, "
                f"got {task.exe_path}"
            )
        self.task = task
        self._channel = netlink.connect(task)
        self.updates_sent = 0

    def on_devfs_change(self, change: DevfsChange) -> None:
        """Push one devfs change to the kernel map via netlink."""
        self._channel.send_to_kernel(
            self.task,
            MSG_DEVICE_MAP_UPDATE,
            {
                "action": change.action,
                "path": change.path,
                "device_class": change.device_class,
            },
        )
        self.updates_sent += 1

    def on_devfs_changes(self, changes: List[DevfsChange]) -> None:
        """Push a burst of devfs changes in one batched netlink flush.

        Used for the boot-time coldplug replay; per-change map effects and
        the ``updates_sent`` count match a loop of single pushes.
        """
        payloads = [
            {
                "action": change.action,
                "path": change.path,
                "device_class": change.device_class,
            }
            for change in changes
        ]
        self._channel.send_many_to_kernel(self.task, MSG_DEVICE_MAP_UPDATE, payloads)
        self.updates_sent += len(payloads)
