"""A small but real virtual filesystem.

The VFS exists for four concrete reasons, all tied to the paper:

1. **Device mediation** (Section IV-B) works by augmenting ``open()`` on
   device nodes under ``/dev`` -- so we need path resolution, inodes, and an
   open path that the Overhaul hook can interpose on.
2. **Netlink endpoint authentication** inspects whether the peer's
   executable "is loaded from the well-known, and superuser-owned,
   filesystem path for the X binaries" -- so files carry owners and paths.
3. The **Bonnie++ benchmark row** of Table I (create/stat/delete of 102 400
   files) exercises exactly this module.
4. FIFOs and pty device nodes live in the filesystem namespace.

The design is classic: :class:`Inode` subclasses for each file kind, a
:class:`Filesystem` owning the tree and path resolution, and
:class:`OpenFile` as the per-open kernel object referenced by descriptor
tables.
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, List, Optional, Tuple

from repro.kernel.credentials import ROOT, Credentials, can_access
from repro.kernel.errors import (
    BadFileDescriptor,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    PermissionDenied,
)
from repro.sim.time import Timestamp


class FileKind(enum.Enum):
    """Inode types supported by the simulation."""

    REGULAR = "regular"
    DIRECTORY = "directory"
    DEVICE = "device"
    FIFO = "fifo"


class OpenMode(enum.Flag):
    """Subset of open(2) flags the simulation models."""

    READ = enum.auto()
    WRITE = enum.auto()
    CREATE = enum.auto()

    @property
    def wants_read(self) -> bool:
        return bool(self & OpenMode.READ)

    @property
    def wants_write(self) -> bool:
        return bool(self & OpenMode.WRITE)


_inode_numbers = itertools.count(1)


class Inode:
    """Base inode: identity, ownership, mode bits, timestamps."""

    kind = FileKind.REGULAR

    def __init__(self, owner: Credentials, mode: int, created_at: Timestamp) -> None:
        self.ino = next(_inode_numbers)
        self.owner = owner
        self.mode = mode
        self.created_at = created_at
        self.modified_at = created_at

    def check_access(self, subject: Credentials, want: int) -> None:
        """Classic UNIX permission gate; raises EACCES on failure."""
        if not can_access(subject, self.owner, self.mode, want):
            raise PermissionDenied(
                f"{subject} lacks {want:o} on inode {self.ino} "
                f"(owner {self.owner}, mode {self.mode:o})"
            )


class RegularFile(Inode):
    """A byte-array file."""

    kind = FileKind.REGULAR

    def __init__(self, owner: Credentials, mode: int, created_at: Timestamp) -> None:
        super().__init__(owner, mode, created_at)
        self.data = bytearray()

    @property
    def size(self) -> int:
        return len(self.data)


class Directory(Inode):
    """A name -> inode mapping."""

    kind = FileKind.DIRECTORY

    def __init__(self, owner: Credentials, mode: int, created_at: Timestamp) -> None:
        super().__init__(owner, mode, created_at)
        self.entries: Dict[str, Inode] = {}


class DeviceNode(Inode):
    """An inode referencing a hardware device object.

    The referenced device is an object from :mod:`repro.kernel.device`; the
    node itself only provides the filesystem presence (``/dev/video0``).
    """

    kind = FileKind.DEVICE

    def __init__(
        self,
        owner: Credentials,
        mode: int,
        created_at: Timestamp,
        device: object,
    ) -> None:
        super().__init__(owner, mode, created_at)
        self.device = device


class FifoNode(Inode):
    """A named pipe inode; the channel object is attached lazily."""

    kind = FileKind.FIFO

    def __init__(self, owner: Credentials, mode: int, created_at: Timestamp) -> None:
        super().__init__(owner, mode, created_at)
        self.channel: Optional[object] = None  # repro.kernel.ipc.pipe.PipeChannel


class StatResult:
    """Subset of ``struct stat`` the experiments need."""

    __slots__ = ("ino", "kind", "owner", "mode", "size", "created_at", "modified_at")

    def __init__(self, inode: Inode) -> None:
        self.ino = inode.ino
        self.kind = inode.kind
        self.owner = inode.owner
        self.mode = inode.mode
        self.size = inode.size if isinstance(inode, RegularFile) else 0
        self.created_at = inode.created_at
        self.modified_at = inode.modified_at


class OpenFile:
    """Kernel-side open-file object, shared by dup'd descriptors.

    For device nodes, ``device_handle`` holds the per-open handle returned by
    the device's open routine; reads are delegated to it.
    """

    def __init__(self, path: str, inode: Inode, mode: OpenMode, opener_pid: int) -> None:
        self.path = path
        self.inode = inode
        self.mode = mode
        self.opener_pid = opener_pid
        self.offset = 0
        self.closed = False
        self.device_handle: Optional[object] = None

    def _ensure_open(self) -> None:
        if self.closed:
            raise BadFileDescriptor(f"file {self.path} already closed")

    def read(self, count: int) -> bytes:
        """Read up to *count* bytes from the current offset."""
        self._ensure_open()
        if not self.mode.wants_read:
            raise PermissionDenied(f"{self.path} not opened for reading")
        if self.device_handle is not None:
            return self.device_handle.read(count)  # type: ignore[attr-defined]
        inode = self.inode
        if not isinstance(inode, RegularFile):
            raise InvalidArgument(f"cannot read() inode kind {inode.kind.value}")
        data = bytes(inode.data[self.offset : self.offset + count])
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write *data* at the current offset (extending the file)."""
        self._ensure_open()
        if not self.mode.wants_write:
            raise PermissionDenied(f"{self.path} not opened for writing")
        inode = self.inode
        if not isinstance(inode, RegularFile):
            raise InvalidArgument(f"cannot write() inode kind {inode.kind.value}")
        end = self.offset + len(data)
        if end > len(inode.data):
            inode.data.extend(b"\x00" * (end - len(inode.data)))
        inode.data[self.offset : end] = data
        self.offset = end
        return len(data)

    def close(self) -> None:
        self._ensure_open()
        self.closed = True
        if self.device_handle is not None:
            release = getattr(self.device_handle, "release", None)
            if release is not None:
                release()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"OpenFile({self.path!r}, {state})"


def split_path(path: str) -> List[str]:
    """Split an absolute path into components, rejecting relative paths."""
    if not path.startswith("/"):
        raise InvalidArgument(f"paths must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


class Filesystem:
    """The mounted tree: resolution, creation, deletion, stat.

    Permission checking uses the caller's :class:`Credentials`; the
    *Overhaul* device gate is layered on top by
    :mod:`repro.kernel.mediation`, not here -- this module is deliberately a
    faithful *unmodified* UNIX-style VFS so the baseline benchmark
    configuration exercises the very same code.
    """

    def __init__(self, created_at: Timestamp = 0) -> None:
        self.root = Directory(ROOT, 0o755, created_at)

    # -- resolution ---------------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """Walk *path* from the root; raises ENOENT / ENOTDIR."""
        node: Inode = self.root
        for part in split_path(path):
            if not isinstance(node, Directory):
                raise NotADirectory(f"{path!r}: {part!r} crossed a non-directory")
            try:
                node = node.entries[part]
            except KeyError:
                raise FileNotFound(path) from None
        return node

    def resolve_parent(self, path: str) -> Tuple[Directory, str]:
        """Resolve the parent directory of *path*; return (dir, leaf name)."""
        parts = split_path(path)
        if not parts:
            raise InvalidArgument("path refers to the root directory")
        parent_path = "/" + "/".join(parts[:-1])
        parent = self.resolve(parent_path)
        if not isinstance(parent, Directory):
            raise NotADirectory(parent_path)
        return parent, parts[-1]

    def exists(self, path: str) -> bool:
        """True if *path* resolves."""
        try:
            self.resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    # -- creation -----------------------------------------------------------

    def _attach(self, path: str, inode: Inode) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise FileExists(path)
        parent.entries[name] = inode
        parent.modified_at = inode.created_at
        return inode

    def mkdir(
        self,
        path: str,
        owner: Credentials = ROOT,
        mode: int = 0o755,
        now: Timestamp = 0,
    ) -> Directory:
        """Create a directory."""
        directory = Directory(owner, mode, now)
        self._attach(path, directory)
        return directory

    def makedirs(self, path: str, owner: Credentials = ROOT, now: Timestamp = 0) -> Directory:
        """Create *path* and any missing ancestors (mkdir -p)."""
        node: Inode = self.root
        walked = ""
        for part in split_path(path):
            walked += "/" + part
            if isinstance(node, Directory) and part in node.entries:
                node = node.entries[part]
                continue
            node = self.mkdir(walked, owner=owner, now=now)
        if not isinstance(node, Directory):
            raise NotADirectory(path)
        return node

    def create_file(
        self,
        path: str,
        owner: Credentials,
        mode: int = 0o644,
        now: Timestamp = 0,
        data: bytes = b"",
    ) -> RegularFile:
        """Create a regular file with optional initial contents."""
        regular = RegularFile(owner, mode, now)
        if data:
            regular.data.extend(data)
        self._attach(path, regular)
        return regular

    def create_device_node(
        self,
        path: str,
        device: object,
        owner: Credentials = ROOT,
        mode: int = 0o660,
        now: Timestamp = 0,
    ) -> DeviceNode:
        """Create a device node referencing *device* (mknod equivalent)."""
        node = DeviceNode(owner, mode, now, device)
        self._attach(path, node)
        return node

    def create_fifo(
        self,
        path: str,
        owner: Credentials,
        mode: int = 0o644,
        now: Timestamp = 0,
    ) -> FifoNode:
        """Create a named pipe (mkfifo equivalent)."""
        node = FifoNode(owner, mode, now)
        self._attach(path, node)
        return node

    # -- deletion -----------------------------------------------------------

    def unlink(self, path: str, subject: Credentials) -> None:
        """Remove a non-directory entry; requires write access on the parent."""
        parent, name = self.resolve_parent(path)
        try:
            inode = parent.entries[name]
        except KeyError:
            raise FileNotFound(path) from None
        if isinstance(inode, Directory):
            raise IsADirectory(path)
        parent.check_access(subject, 0o2)
        del parent.entries[name]

    def rmdir(self, path: str, subject: Credentials) -> None:
        """Remove an empty directory."""
        parent, name = self.resolve_parent(path)
        try:
            inode = parent.entries[name]
        except KeyError:
            raise FileNotFound(path) from None
        if not isinstance(inode, Directory):
            raise NotADirectory(path)
        if inode.entries:
            raise DirectoryNotEmpty(path)
        parent.check_access(subject, 0o2)
        del parent.entries[name]

    # -- metadata -----------------------------------------------------------

    def stat(self, path: str) -> StatResult:
        """Return metadata for *path*."""
        return StatResult(self.resolve(path))

    def listdir(self, path: str) -> List[str]:
        """Names in a directory, sorted for determinism."""
        inode = self.resolve(path)
        if not isinstance(inode, Directory):
            raise NotADirectory(path)
        return sorted(inode.entries)

    def walk_count(self) -> int:
        """Total number of inodes reachable from the root (diagnostics)."""
        count = 0
        stack: List[Inode] = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if isinstance(node, Directory):
                stack.extend(node.entries.values())
        return count
