"""A minimal proc filesystem for runtime kernel knobs.

The paper exposes exactly one knob this way: the ptrace permission-
revocation hardening "could be toggled by the super user through a proc
filesystem node to facilitate legitimate debugging tasks" (Section IV-B).
We generalise slightly: every registered node is a (getter, setter) pair,
and *writes require superuser credentials* -- that requirement is the
security property, so it is enforced here rather than trusted to callers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.kernel.errors import FileNotFound, OperationNotPermitted
from repro.kernel.task import Task

#: Path of the paper's documented toggle.
PTRACE_PROTECTION_NODE = "/proc/sys/overhaul/ptrace_protection"


class ProcFilesystem:
    """Registry of virtual /proc nodes."""

    def __init__(self) -> None:
        self._nodes: Dict[str, Tuple[Callable[[], str], Callable[[str], None]]] = {}

    def register_node(
        self,
        path: str,
        getter: Callable[[], str],
        setter: Callable[[str], None],
    ) -> None:
        """Expose a kernel value at *path*."""
        self._nodes[path] = (getter, setter)

    def register_bool_node(
        self,
        path: str,
        getter: Callable[[], bool],
        setter: Callable[[bool], None],
    ) -> None:
        """Convenience for 0/1 toggle nodes (the common case)."""

        def read() -> str:
            return "1" if getter() else "0"

        def write(value: str) -> None:
            stripped = value.strip()
            if stripped not in ("0", "1"):
                raise OperationNotPermitted(f"{path}: expected '0' or '1', got {value!r}")
            setter(stripped == "1")

        self.register_node(path, read, write)

    def read(self, path: str) -> str:
        """Read a node (no privilege needed, like most sysctls)."""
        try:
            getter, _ = self._nodes[path]
        except KeyError:
            raise FileNotFound(path) from None
        return getter()

    def write(self, task: Task, path: str, value: str) -> None:
        """Write a node; superuser only."""
        try:
            _, setter = self._nodes[path]
        except KeyError:
            raise FileNotFound(path) from None
        if not task.creds.is_superuser:
            raise OperationNotPermitted(
                f"pid {task.pid} (uid {task.creds.uid}) may not write {path}"
            )
        setter(value)

    def nodes(self) -> List[str]:
        """All registered node paths, sorted."""
        return sorted(self._nodes)
