"""The simulated-kernel facade: boot, subsystem wiring, and the syscall API.

:class:`Kernel` assembles every kernel subsystem over one event scheduler
and exposes the syscall surface applications use.  It boots a recognisable
miniature Linux: a base filesystem tree with the superuser-owned trusted
binaries in place, an init task, a udev-style helper feeding the sensitive-
device map, and ``/dev`` populated from the machine's device inventory.

Two kernels are used throughout the evaluation:

- the **baseline** kernel (`permission_monitor is None`, interaction
  tracking disabled) -- an unmodified system;
- the **Overhaul** kernel, produced by
  :class:`repro.core.system.OverhaulSystem`, which installs the permission
  monitor and flips tracking on.

Both run the same code; the monitor and the :class:`TrackingPolicy` switch
are the only deltas, mirroring how the paper compares a patched and an
unpatched kernel.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.kernel.audit import AuditLog
from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials
from repro.kernel.device import DeviceInventory, standard_inventory
from repro.kernel.devfs import DevfsManager, UdevHelper
from repro.kernel.errors import InvalidArgument, IsADirectory
from repro.kernel.ipc import (
    MessageQueueSubsystem,
    PipeSubsystem,
    PtySubsystem,
    SharedMemorySubsystem,
    TrackingPolicy,
    UnixSocketSubsystem,
)
from repro.kernel.mediation import DeviceMediator
from repro.kernel.netlink import (
    DISPLAY_MANAGER_PATH,
    UDEV_HELPER_PATH,
    NetlinkSubsystem,
)
from repro.kernel.process_table import ProcessTable
from repro.kernel.procfs import PTRACE_PROTECTION_NODE, ProcFilesystem
from repro.kernel.ptrace import PtraceSubsystem
from repro.kernel.task import Task
from repro.kernel.vfs import (
    DeviceNode,
    Directory,
    Filesystem,
    OpenFile,
    OpenMode,
    StatResult,
)
from repro.obs.tracer import Tracer
from repro.sim.scheduler import EventScheduler
from repro.sim.time import Timestamp


class Kernel:
    """The assembled simulated kernel."""

    def __init__(
        self,
        scheduler: Optional[EventScheduler] = None,
        inventory: Optional[DeviceInventory] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.scheduler = scheduler if scheduler is not None else EventScheduler()
        #: The (machine-shared) decision-path tracer; disabled by default,
        #: so an unconfigured kernel pays only an `enabled` test per site.
        self.tracer = tracer if tracer is not None else Tracer()
        self.tracer.bind_clock(lambda: self.scheduler.now)
        self.filesystem = Filesystem()
        self.tracking = TrackingPolicy(enabled=False)
        self.tracking.tracer = self.tracer
        self.audit = AuditLog()
        self.process_table = ProcessTable(self.scheduler)
        self.netlink = NetlinkSubsystem(
            self.filesystem, lambda: self.scheduler.now, tracer=self.tracer
        )
        self.devfs = DevfsManager(self.filesystem, self.netlink)
        self.pipes = PipeSubsystem(self.tracking, self.filesystem)
        self.sockets = UnixSocketSubsystem(self.tracking)
        self.msg_queues = MessageQueueSubsystem(self.tracking)
        self.shm = SharedMemorySubsystem(self.tracking, self.scheduler)
        self.shm.tracer = self.tracer
        self.pty = PtySubsystem(self.tracking)
        self.ptrace = PtraceSubsystem()
        self.procfs = ProcFilesystem()
        self.device_mediator = DeviceMediator(self)

        #: Installed by OverhaulSystem; None means "unmodified kernel".
        self.permission_monitor: Optional[object] = None

        self.inventory = inventory if inventory is not None else standard_inventory()
        self._install_base_filesystem()
        self._register_procfs_nodes()
        self.process_table.on_exit(self.ptrace.on_task_exit)
        self.udev_helper = self._start_udev_helper()
        #: device name -> /dev path assigned at boot.
        self.device_paths: Dict[str, str] = self.devfs.populate(
            self.inventory, self.scheduler.now
        )

    # -- boot ---------------------------------------------------------------

    def _install_base_filesystem(self) -> None:
        """Create the directory skeleton and the trusted superuser binaries."""
        fs = self.filesystem
        for directory in ("/usr", "/usr/bin", "/usr/sbin", "/usr/lib", "/usr/lib/xorg",
                          "/sbin", "/home", "/var", "/var/log"):
            if not fs.exists(directory):
                fs.makedirs(directory)
        fs.mkdir("/tmp", owner=ROOT, mode=0o777)
        fs.mkdir("/home/user", owner=DEFAULT_USER, mode=0o755)
        fs.create_file("/sbin/init", owner=ROOT, mode=0o755, data=b"\x7fELF init")
        fs.create_file(DISPLAY_MANAGER_PATH, owner=ROOT, mode=0o755, data=b"\x7fELF Xorg")
        fs.create_file(UDEV_HELPER_PATH, owner=ROOT, mode=0o755, data=b"\x7fELF devmapd")

    def _register_procfs_nodes(self) -> None:
        def set_ptrace_protection(value: bool) -> None:
            self.ptrace.protection_enabled = value

        self.procfs.register_bool_node(
            PTRACE_PROTECTION_NODE,
            getter=lambda: self.ptrace.protection_enabled,
            setter=set_ptrace_protection,
        )

    def _start_udev_helper(self) -> UdevHelper:
        """Spawn the trusted device-map helper and wire it to devfs."""
        helper_task = self.process_table.spawn(
            self.process_table.init, UDEV_HELPER_PATH, comm="overhaul-devmapd", creds=ROOT
        )
        helper = UdevHelper(helper_task, self.netlink)
        self.devfs.attach_helper(helper)
        return helper

    # -- time ----------------------------------------------------------------

    @property
    def now(self) -> Timestamp:
        """Current simulated time."""
        return self.scheduler.now

    # -- Overhaul wiring -------------------------------------------------------

    def install_permission_monitor(self, monitor: object) -> None:
        """Attach the Overhaul permission monitor and enable tracking.

        Called by :class:`repro.core.system.OverhaulSystem`; flipping these
        two switches is the entire kernel-side delta between the baseline
        and Overhaul configurations.
        """
        self.permission_monitor = monitor
        self.tracking.enabled = True

    # -- process syscalls ---------------------------------------------------------

    def sys_fork(self, parent: Task) -> Task:
        """fork(2); P1 timestamp inheritance happens in the process table."""
        return self.process_table.fork(parent)

    def sys_exec(self, task: Task, exe_path: str, comm: Optional[str] = None) -> Task:
        """execve(2)."""
        return self.process_table.exec(task, exe_path, comm)

    def sys_spawn(
        self,
        parent: Task,
        exe_path: str,
        comm: Optional[str] = None,
        creds: Optional[Credentials] = None,
    ) -> Task:
        """fork+exec convenience."""
        return self.process_table.spawn(parent, exe_path, comm, creds)

    def sys_exit(self, task: Task, code: int = 0) -> None:
        """exit(2)."""
        self.process_table.exit(task, code)

    def sys_wait(self, parent: Task) -> Optional[Task]:
        """wait(2): reap one zombie child."""
        return self.process_table.wait(parent)

    # -- filesystem syscalls ---------------------------------------------------------

    def sys_open(self, task: Task, path: str, mode: OpenMode = OpenMode.READ) -> int:
        """The (possibly augmented) open(2).

        Order of checks mirrors the paper: classic UNIX access control
        first, then -- for sensitive device nodes -- the Overhaul
        interaction lookup.
        """
        fs = self.filesystem
        if mode & OpenMode.CREATE and not fs.exists(path):
            parent, _ = fs.resolve_parent(path)
            parent.check_access(task.creds, 0o2)
            fs.create_file(path, owner=task.creds, now=self.now)
        inode = fs.resolve(path)
        if isinstance(inode, Directory):
            raise IsADirectory(path)
        want = 0
        if mode.wants_read:
            want |= 0o4
        if mode.wants_write:
            want |= 0o2
        if want == 0:
            raise InvalidArgument("open() needs READ and/or WRITE")
        inode.check_access(task.creds, want)

        # Overhaul's augmented open(2): consulted on every open -- the
        # device-map lookup decides whether mediation applies.  On the
        # baseline kernel this returns immediately (monitor is None).
        self.device_mediator.gate_open(task, path)

        open_file = OpenFile(path, inode, mode, task.pid)
        if isinstance(inode, DeviceNode):
            open_file.device_handle = inode.device.open(  # type: ignore[attr-defined]
                task.pid, task.comm, self.now
            )
        return task.install_fd(open_file)

    def sys_read(self, task: Task, fd: int, count: int) -> bytes:
        """read(2)."""
        return task.lookup_fd(fd).read(count)

    def sys_write(self, task: Task, fd: int, data: bytes) -> int:
        """write(2)."""
        return task.lookup_fd(fd).write(data)

    def sys_close(self, task: Task, fd: int) -> None:
        """close(2)."""
        task.remove_fd(fd).close()

    def sys_creat(self, task: Task, path: str) -> int:
        """creat(2): create-and-open for writing."""
        return self.sys_open(task, path, OpenMode.WRITE | OpenMode.CREATE)

    def sys_stat(self, task: Task, path: str) -> StatResult:
        """stat(2).  Note: Overhaul does not interpose here (Table I row 5
        relies on this -- only file *creation* shows measurable overhead)."""
        return self.filesystem.stat(path)

    def sys_unlink(self, task: Task, path: str) -> None:
        """unlink(2); also not interposed by Overhaul."""
        self.filesystem.unlink(path, task.creds)

    def sys_mkdir(self, task: Task, path: str, mode: int = 0o755) -> None:
        """mkdir(2)."""
        parent, _ = self.filesystem.resolve_parent(path)
        parent.check_access(task.creds, 0o2)
        self.filesystem.mkdir(path, owner=task.creds, mode=mode, now=self.now)

    # -- device helpers -----------------------------------------------------------

    def device_path(self, device_name: str) -> str:
        """The /dev path assigned to a device at boot (e.g. 'mic0')."""
        return self.devfs.node_path(device_name)

    # -- clock helpers -----------------------------------------------------------

    def run_for(self, duration: Timestamp) -> int:
        """Advance simulated time, dispatching due events."""
        return self.scheduler.run_for(duration)
