"""The Overhaul decision/audit log.

Sections V-C and V-D lean on this: "we instead verified correct
functionality by inspecting the logs produced by our system" (clipboard
false-positive analysis) and "We checked OVERHAUL's logs and verified that
attempts to access the protected resources were detected and blocked"
(21-day study).  The log is append-only and carries enough context to answer
exactly those questions: who asked for what, when, and what was decided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.sim.time import Timestamp, format_timestamp


class AuditCategory(enum.Enum):
    """What kind of mediated event a record describes."""

    DEVICE = "device"  # hardware device open (mic, cam)
    CLIPBOARD = "clipboard"  # copy/paste (selection protocol)
    SCREEN = "screen"  # display-content capture
    INPUT = "input"  # input-event authenticity filtering
    ALERT = "alert"  # visual alerts displayed
    CHANNEL = "channel"  # netlink connection events
    PTRACE = "ptrace"  # debugging-related permission changes


class AuditDecision(enum.Enum):
    """Outcome of a mediated event."""

    GRANTED = "granted"
    DENIED = "denied"
    FILTERED = "filtered"  # e.g. synthetic input dropped
    INFO = "info"  # non-decision record


@dataclass(frozen=True)
class AuditRecord:
    """One immutable log line."""

    timestamp: Timestamp
    category: AuditCategory
    decision: AuditDecision
    pid: int
    comm: str
    detail: str

    def render(self) -> str:
        """Human-readable single-line rendering."""
        return (
            f"{format_timestamp(self.timestamp)} {self.category.value:9s} "
            f"{self.decision.value:8s} pid={self.pid} comm={self.comm} {self.detail}"
        )


class AuditLog:
    """Append-only record store with the query helpers experiments need."""

    #: Retention bound; ``total_recorded`` keeps the exact count.
    RECORD_LIMIT = 200_000

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        self.total_recorded = 0

    def record(
        self,
        timestamp: Timestamp,
        category: AuditCategory,
        decision: AuditDecision,
        pid: int,
        comm: str,
        detail: str,
    ) -> AuditRecord:
        """Append one record and return it."""
        entry = AuditRecord(timestamp, category, decision, pid, comm, detail)
        self._records.append(entry)
        self.total_recorded += 1
        if len(self._records) > self.RECORD_LIMIT:
            del self._records[: -self.RECORD_LIMIT // 2]
        return entry

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterable[AuditRecord]:
        return iter(self._records)

    def records(
        self,
        category: Optional[AuditCategory] = None,
        decision: Optional[AuditDecision] = None,
        pid: Optional[int] = None,
    ) -> List[AuditRecord]:
        """Filtered view of the log."""
        result = self._records
        if category is not None:
            result = [r for r in result if r.category is category]
        if decision is not None:
            result = [r for r in result if r.decision is decision]
        if pid is not None:
            result = [r for r in result if r.pid == pid]
        return list(result)

    def grants(self, category: Optional[AuditCategory] = None) -> List[AuditRecord]:
        """All GRANTED records (optionally per category)."""
        return self.records(category=category, decision=AuditDecision.GRANTED)

    def denials(self, category: Optional[AuditCategory] = None) -> List[AuditRecord]:
        """All DENIED records (optionally per category)."""
        return self.records(category=category, decision=AuditDecision.DENIED)

    def render(self) -> str:
        """The whole log as text (what the authors 'inspected')."""
        return "\n".join(record.render() for record in self._records)

    def clear(self) -> None:
        """Reset between experiment phases."""
        self._records.clear()
