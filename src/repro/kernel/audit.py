"""The Overhaul decision/audit log.

Sections V-C and V-D lean on this: "we instead verified correct
functionality by inspecting the logs produced by our system" (clipboard
false-positive analysis) and "We checked OVERHAUL's logs and verified that
attempts to access the protected resources were detected and blocked"
(21-day study).  The log is append-only and carries enough context to answer
exactly those questions: who asked for what, when, and what was decided.

Hot-path design: every mediated operation appends exactly one record, so
append cost is part of the decision critical path.  Two mechanisms keep it
cheap without changing what a reader ever sees:

- :class:`AuditRecord` is a ``NamedTuple`` (tuple-speed construction,
  immutable, field access by name -- same API as the former frozen
  dataclass).
- :meth:`AuditLog.record_deferred` batches appends: the hot path stores the
  raw field tuple and every read path (:meth:`records`, iteration, ``len``,
  :meth:`render`) flushes the batch first.  Flushing replays the records
  one by one through the same retention rule as :meth:`record`, so the
  retained window, ``total_recorded``, and record contents are byte-for-
  byte identical whichever append path produced them.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, NamedTuple, Optional, Tuple

from repro.sim.time import Timestamp, format_timestamp


class AuditCategory(enum.Enum):
    """What kind of mediated event a record describes."""

    DEVICE = "device"  # hardware device open (mic, cam)
    CLIPBOARD = "clipboard"  # copy/paste (selection protocol)
    SCREEN = "screen"  # display-content capture
    INPUT = "input"  # input-event authenticity filtering
    ALERT = "alert"  # visual alerts displayed
    CHANNEL = "channel"  # netlink connection events
    PTRACE = "ptrace"  # debugging-related permission changes


class AuditDecision(enum.Enum):
    """Outcome of a mediated event."""

    GRANTED = "granted"
    DENIED = "denied"
    FILTERED = "filtered"  # e.g. synthetic input dropped
    INFO = "info"  # non-decision record


class AuditRecord(NamedTuple):
    """One immutable log line."""

    timestamp: Timestamp
    category: AuditCategory
    decision: AuditDecision
    pid: int
    comm: str
    detail: str

    def render(self) -> str:
        """Human-readable single-line rendering."""
        return (
            f"{format_timestamp(self.timestamp)} {self.category.value:9s} "
            f"{self.decision.value:8s} pid={self.pid} comm={self.comm} {self.detail}"
        )


#: Deferred appends are flushed once the batch reaches this size, bounding
#: the memory held outside the retention window.
_FLUSH_BATCH_SIZE = 1024


class AuditLog:
    """Append-only record store with the query helpers experiments need."""

    #: Retention bound; ``total_recorded`` keeps the exact count.
    RECORD_LIMIT = 200_000

    def __init__(self) -> None:
        self._records: List[AuditRecord] = []
        self._pending: List[Tuple] = []
        self.total_recorded = 0

    def record(
        self,
        timestamp: Timestamp,
        category: AuditCategory,
        decision: AuditDecision,
        pid: int,
        comm: str,
        detail: str,
    ) -> AuditRecord:
        """Append one record and return it (the reference append path)."""
        if self._pending:
            self._flush()
        entry = AuditRecord(timestamp, category, decision, pid, comm, detail)
        self._records.append(entry)
        self.total_recorded += 1
        if len(self._records) > self.RECORD_LIMIT:
            del self._records[: -self.RECORD_LIMIT // 2]
        return entry

    def record_deferred(
        self,
        timestamp: Timestamp,
        category: AuditCategory,
        decision: AuditDecision,
        pid: int,
        comm: str,
        detail: str,
    ) -> None:
        """Batched append: store the raw fields, materialise on first read.

        Used by the mediation fast paths.  ``total_recorded`` stays exact
        immediately; the record itself joins the retained window at the
        next flush, producing the same final log as :meth:`record` would.
        """
        pending = self._pending
        pending.append((timestamp, category, decision, pid, comm, detail))
        self.total_recorded += 1
        if len(pending) >= _FLUSH_BATCH_SIZE:
            self._flush()

    def _flush(self) -> None:
        """Materialise deferred appends through the retention rule.

        Replays each pending tuple exactly as :meth:`record` would have
        appended it (append, then trim when the window exceeds the limit),
        so retention boundaries land on the same record indices regardless
        of batching.
        """
        records = self._records
        limit = self.RECORD_LIMIT
        keep = -(limit // 2)
        make = AuditRecord._make
        append = records.append
        for fields in self._pending:
            append(make(fields))
            if len(records) > limit:
                del records[:keep]
        self._pending.clear()

    def __len__(self) -> int:
        if self._pending:
            self._flush()
        return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        if self._pending:
            self._flush()
        return iter(self._records)

    def records(
        self,
        category: Optional[AuditCategory] = None,
        decision: Optional[AuditDecision] = None,
        pid: Optional[int] = None,
    ) -> List[AuditRecord]:
        """Filtered view of the log."""
        if self._pending:
            self._flush()
        result = self._records
        if category is not None:
            result = [r for r in result if r.category is category]
        if decision is not None:
            result = [r for r in result if r.decision is decision]
        if pid is not None:
            result = [r for r in result if r.pid == pid]
        return list(result)

    def grants(self, category: Optional[AuditCategory] = None) -> List[AuditRecord]:
        """All GRANTED records (optionally per category)."""
        return self.records(category=category, decision=AuditDecision.GRANTED)

    def denials(self, category: Optional[AuditCategory] = None) -> List[AuditRecord]:
        """All DENIED records (optionally per category)."""
        return self.records(category=category, decision=AuditDecision.DENIED)

    def render(self) -> str:
        """The whole log as text (what the authors 'inspected')."""
        if self._pending:
            self._flush()
        return "\n".join(record.render() for record in self._records)

    def clear(self) -> None:
        """Reset between experiment phases."""
        self._records.clear()
        self._pending.clear()
