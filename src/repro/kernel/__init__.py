"""Simulated Linux kernel substrate for the Overhaul reproduction.

This package is a faithful-in-structure miniature of the kernel surface the
paper modifies (Section IV-B): tasks and the process table (fork/exec with
P1 timestamp inheritance), a VFS with ``/dev`` and an augmented ``open()``,
every IPC facility the prototype covers (with P2 propagation), virtual
memory areas with page-fault-based shared-memory interception, the
authenticated netlink channel, ptrace hardening, and procfs toggles.

Entry point: :class:`repro.kernel.Kernel`.
"""

from repro.kernel.audit import AuditCategory, AuditDecision, AuditLog, AuditRecord
from repro.kernel.credentials import DEFAULT_USER, ROOT, Credentials
from repro.kernel.device import (
    Device,
    DeviceClass,
    DeviceHandle,
    DeviceInventory,
    standard_inventory,
)
from repro.kernel.devfs import DevfsManager, SensitiveDeviceMap, UdevHelper
from repro.kernel.errors import (
    BadFileDescriptor,
    BrokenPipe,
    ConnectionRefused,
    FileExists,
    FileNotFound,
    InvalidArgument,
    KernelError,
    NoSuchProcess,
    OperationNotPermitted,
    OverhaulDenied,
    PermissionDenied,
    SegmentationFault,
    WouldBlock,
)
from repro.kernel.kernel import Kernel
from repro.kernel.mm import PAGE_SIZE, AddressSpace, PageProtection, VMArea
from repro.kernel.netlink import (
    DISPLAY_MANAGER_PATH,
    UDEV_HELPER_PATH,
    NetlinkChannel,
    NetlinkMessage,
    NetlinkSubsystem,
)
from repro.kernel.process_table import ProcessTable
from repro.kernel.procfs import PTRACE_PROTECTION_NODE, ProcFilesystem
from repro.kernel.ptrace import PtraceSubsystem
from repro.kernel.task import Task, TaskState
from repro.kernel.vfs import Filesystem, OpenFile, OpenMode

__all__ = [
    "AddressSpace",
    "AuditCategory",
    "AuditDecision",
    "AuditLog",
    "AuditRecord",
    "BadFileDescriptor",
    "BrokenPipe",
    "ConnectionRefused",
    "Credentials",
    "DEFAULT_USER",
    "DISPLAY_MANAGER_PATH",
    "Device",
    "DeviceClass",
    "DeviceHandle",
    "DeviceInventory",
    "DevfsManager",
    "FileExists",
    "FileNotFound",
    "Filesystem",
    "InvalidArgument",
    "Kernel",
    "KernelError",
    "NetlinkChannel",
    "NetlinkMessage",
    "NetlinkSubsystem",
    "NoSuchProcess",
    "OpenFile",
    "OpenMode",
    "OperationNotPermitted",
    "OverhaulDenied",
    "PAGE_SIZE",
    "PTRACE_PROTECTION_NODE",
    "PageProtection",
    "PermissionDenied",
    "ProcFilesystem",
    "ProcessTable",
    "PtraceSubsystem",
    "ROOT",
    "SegmentationFault",
    "SensitiveDeviceMap",
    "Task",
    "TaskState",
    "UDEV_HELPER_PATH",
    "UdevHelper",
    "VMArea",
    "WouldBlock",
    "standard_inventory",
]
