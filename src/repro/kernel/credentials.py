"""User identity model: uids, gids, and credential records.

The paper's threat model (Section II) assumes classic UNIX user-based access
control remains in force -- malicious code runs *as the user*, not as root.
The simulation therefore keeps a real (if small) uid/gid model so tests can
demonstrate exactly that gap: UNIX checks pass for same-user spyware while
Overhaul's input-driven checks stop it.
"""

from __future__ import annotations

from dataclasses import dataclass

ROOT_UID = 0
ROOT_GID = 0

#: Conventional first ordinary-user uid on Linux systems.
FIRST_USER_UID = 1000


@dataclass(frozen=True)
class Credentials:
    """Immutable (uid, gid) pair carried by every task and inode."""

    uid: int
    gid: int

    def __post_init__(self) -> None:
        if self.uid < 0 or self.gid < 0:
            raise ValueError(f"uid/gid must be non-negative: {self}")

    @property
    def is_superuser(self) -> bool:
        """True for root, which bypasses classic permission checks."""
        return self.uid == ROOT_UID

    def __str__(self) -> str:
        return f"uid={self.uid},gid={self.gid}"


#: The superuser credential, owner of the trusted computing base (kernel
#: helpers, the X server binary).
ROOT = Credentials(ROOT_UID, ROOT_GID)

#: The default desktop user in scenarios and experiments.
DEFAULT_USER = Credentials(FIRST_USER_UID, FIRST_USER_UID)


def can_access(subject: Credentials, owner: Credentials, mode: int, want: int) -> bool:
    """Classic UNIX permission check.

    *mode* is a 9-bit rwxrwxrwx mask; *want* is the requested bits expressed
    in the **owner** triplet position (e.g. ``0o4`` for read, ``0o2`` for
    write, ``0o1`` for execute).  The function selects the owner, group, or
    other triplet based on the subject's identity.
    """
    if want not in (0o1, 0o2, 0o4, 0o3, 0o5, 0o6, 0o7):
        raise ValueError(f"invalid permission request: {want:o}")
    if subject.is_superuser:
        return True
    if subject.uid == owner.uid:
        triplet = (mode >> 6) & 0o7
    elif subject.gid == owner.gid:
        triplet = (mode >> 3) & 0o7
    else:
        triplet = mode & 0o7
    return (triplet & want) == want
