"""The simulated ``task_struct``.

Section IV-B of the paper stores the interaction timestamp "inside the
task_struct, which is the data structure Linux uses to represent a process".
:class:`Task` is our equivalent: one instance per process (and per thread --
like Linux, the simulation does not strictly distinguish the two; a thread
is a task sharing its parent's address space).

The two properties Overhaul relies on are implemented here:

- ``interaction_ts`` records the most recent *authentic* user interaction
  delivered to this task (:data:`~repro.sim.time.NEVER` until the first one).
- Timestamps only ever move forward (:meth:`record_interaction` is a
  max-merge), which makes propagation across fork and IPC idempotent and
  order-insensitive.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.kernel.credentials import Credentials
from repro.kernel.errors import BadFileDescriptor
from repro.sim.time import NEVER, Timestamp, format_timestamp

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints only
    from repro.kernel.vfs import OpenFile


class TaskState(enum.Enum):
    """Lifecycle states for a task."""

    RUNNING = "running"
    ZOMBIE = "zombie"  # exited, not yet reaped by parent
    DEAD = "dead"  # reaped; slot retained for diagnostics only


class Task:
    """A simulated process/thread control block.

    Instances are created exclusively by
    :class:`repro.kernel.process_table.ProcessTable`; tests and applications
    obtain them through the kernel's process APIs.
    """

    def __init__(
        self,
        pid: int,
        parent: Optional["Task"],
        comm: str,
        creds: Credentials,
        exe_path: str,
        start_time: Timestamp,
    ) -> None:
        self.pid = pid
        self.parent = parent
        self.comm = comm
        self.creds = creds
        self.exe_path = exe_path
        self.start_time = start_time
        self.state = TaskState.RUNNING
        self.exit_code: Optional[int] = None
        self.children: List["Task"] = []

        # Overhaul state (Section IV-B, "Process permission management").
        self.interaction_ts: Timestamp = NEVER
        #: Gray-box extension: what the latest authentic input actually was
        #: (None unless the gray-box mode enriches notifications).
        self.last_input_descriptor: object = None

        # File descriptor table.
        self._fd_table: Dict[int, "OpenFile"] = {}
        self._next_fd = 3  # 0-2 reserved by convention for std streams

        # ptrace relationships (Section IV-B, "Processes isolation...").
        self.traced_by: Optional["Task"] = None
        self.tracees: Set[int] = set()

        # Set by the environment wiring: True while this task is the
        # authenticated display-manager endpoint (used only for diagnostics;
        # authentication itself lives in repro.kernel.netlink).
        self.is_display_manager = False

    # -- Overhaul interaction state ----------------------------------------

    def record_interaction(self, timestamp: Timestamp) -> bool:
        """Merge an interaction timestamp; newer timestamps win.

        Returns True if the stored timestamp advanced.  This is the single
        write path for interaction state, used by the permission monitor for
        direct notifications (step 2 in Figures 1-2) and by every
        propagation rule (P1 fork inheritance, P2 IPC transfer, pty
        propagation).
        """
        if timestamp > self.interaction_ts:
            self.interaction_ts = timestamp
            return True
        return False

    def interaction_age(self, now: Timestamp) -> Timestamp:
        """Microseconds elapsed since the last recorded interaction.

        Returns a very large value when no interaction was ever recorded.
        """
        return now - self.interaction_ts

    # -- lifecycle ----------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the task can issue syscalls."""
        return self.state == TaskState.RUNNING

    def add_child(self, child: "Task") -> None:
        self.children.append(child)

    # -- file descriptors ----------------------------------------------------

    def install_fd(self, open_file: "OpenFile") -> int:
        """Allocate the lowest free descriptor slot for *open_file*."""
        fd = self._next_fd
        self._next_fd += 1
        self._fd_table[fd] = open_file
        return fd

    def lookup_fd(self, fd: int) -> "OpenFile":
        """Resolve a descriptor, raising EBADF for unknown ones."""
        try:
            return self._fd_table[fd]
        except KeyError:
            raise BadFileDescriptor(f"pid {self.pid} has no fd {fd}") from None

    def remove_fd(self, fd: int) -> "OpenFile":
        """Detach and return a descriptor (close path)."""
        open_file = self.lookup_fd(fd)
        del self._fd_table[fd]
        return open_file

    def open_fds(self) -> Dict[int, "OpenFile"]:
        """Snapshot of the descriptor table (copy; safe to iterate)."""
        return dict(self._fd_table)

    # -- ptrace -------------------------------------------------------------

    @property
    def is_traced(self) -> bool:
        """True while a debugger is attached to this task."""
        return self.traced_by is not None

    def is_descendant_of(self, ancestor: "Task") -> bool:
        """True if *ancestor* appears on this task's parent chain."""
        node = self.parent
        while node is not None:
            if node.pid == ancestor.pid:
                return True
            node = node.parent
        return False

    def __repr__(self) -> str:
        return (
            f"Task(pid={self.pid}, comm={self.comm!r}, state={self.state.value}, "
            f"interaction={format_timestamp(self.interaction_ts)})"
        )
