"""The secure kernel <-> userspace communication channel.

Section IV-B: "we used the Linux netlink facility to provide this channel...
Netlink, however, does not solve the authentication problem...  Once the
kernel establishes the netlink channel and receives a connection request
from X during server initialization, it examines the virtual memory maps to
check whether the process it is communicating with is indeed the X server.
In particular, it checks whether the executable code mapped into the process
is loaded from the well-known, and superuser-owned, filesystem path for the
X binaries."

:class:`NetlinkSubsystem` reproduces that scheme:

- Userspace tasks *request* a channel; the kernel authenticates them by
  introspecting their address space (:meth:`AddressSpace.executable_mapping`)
  and verifying the backing executable's filesystem path is on the trusted
  list **and** owned by the superuser.
- Unauthenticated connection attempts are refused -- the kernel "ignores
  communication attempts by other processes".
- Both directions are supported: userspace -> kernel messages dispatch to
  registered kernel handlers (interaction notifications, permission
  queries, device-map updates); kernel -> userspace messages invoke the
  endpoint's receive callback (visual alert requests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.kernel.errors import (
    InvalidArgument,
    OperationNotPermitted,
    PermissionDenied,
)
from repro.kernel.task import Task
from repro.kernel.vfs import Filesystem
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.time import Timestamp

#: Canonical trusted binary locations (superuser-owned in a stock install).
DISPLAY_MANAGER_PATH = "/usr/lib/xorg/Xorg"
UDEV_HELPER_PATH = "/usr/sbin/overhaul-devmapd"


@dataclass
class NetlinkMessage:
    """One datagram on a netlink channel."""

    msg_type: str
    payload: Dict[str, Any]
    sender_pid: Optional[int]  # None for kernel-originated messages
    timestamp: Timestamp


class NetlinkChannel:
    """An authenticated channel between one userspace task and the kernel."""

    def __init__(self, subsystem: "NetlinkSubsystem", owner: Task, label: str) -> None:
        self._subsystem = subsystem
        self.owner = owner
        self.label = label
        self.closed = False
        #: Callback invoked for kernel -> userspace messages.
        self.userspace_receiver: Optional[Callable[[NetlinkMessage], None]] = None
        self.sent_to_kernel: int = 0
        self.sent_to_userspace: int = 0
        #: Preallocated datagram reused by the pooled slow-handler path;
        #: ``None`` while lent out to a handler (re-entrancy guard).
        self._pool: Optional[NetlinkMessage] = NetlinkMessage("", {}, None, 0)

    def send_to_kernel(self, task: Task, msg_type: str, payload: Dict[str, Any]) -> Any:
        """Deliver a message from the owning task to the kernel.

        Only the authenticated owner may use the channel; this prevents a
        malicious process from piggybacking on the X server's link even if
        it somehow obtained a reference to it.

        Delivery picks one of three paths, cheapest first:

        1. **fast handler** -- for the dominant message types the kernel
           side registers a payload-level handler; no datagram object is
           built at all (the zero-copy path).
        2. **pooled datagram** -- a preallocated :class:`NetlinkMessage` is
           refilled and lent to the regular handler (kernel handlers do
           not retain datagrams; re-entrant sends fall back to a fresh
           allocation).
        3. **reference path** -- a fresh datagram per message, used
           whenever tracing is on or the fast path is toggled off, so the
           traced span tree and the equivalence tests see the unmodified
           protocol.
        """
        if self.closed:
            raise InvalidArgument(f"netlink channel {self.label!r} is closed")
        if task.pid != self.owner.pid:
            raise OperationNotPermitted(
                f"pid {task.pid} is not the authenticated owner "
                f"(pid {self.owner.pid}) of channel {self.label!r}"
            )
        if not task.is_alive:
            raise OperationNotPermitted(f"channel owner pid {task.pid} is dead")
        self.sent_to_kernel += 1
        subsystem = self._subsystem
        subsystem.messages_to_kernel += 1
        tracer = subsystem.tracer
        if subsystem.fast_path and not tracer.enabled:
            fast = subsystem._fast_handlers.get(msg_type)
            if fast is not None:
                return fast(self, payload, task.pid)
            handler = subsystem._kernel_handlers.get(msg_type)
            if handler is None:
                raise InvalidArgument(
                    f"no kernel handler for netlink type {msg_type!r}"
                )
            message = self._pool
            if message is None:  # re-entrant send: pool is lent out
                message = NetlinkMessage(msg_type, payload, task.pid, subsystem.now)
                return handler(self, message)
            self._pool = None
            try:
                message.msg_type = msg_type
                message.payload = payload
                message.sender_pid = task.pid
                message.timestamp = subsystem.now
                return handler(self, message)
            finally:
                self._pool = message
        message = NetlinkMessage(
            msg_type=msg_type,
            payload=payload,
            sender_pid=task.pid,
            timestamp=subsystem.now,
        )
        if tracer.enabled:
            # The span wraps dispatch, so kernel-side handler spans (the
            # monitor's verdicts) nest under the netlink hop that caused
            # them -- the cross-layer link the decision-path report walks.
            span = tracer.start(
                "netlink.to_kernel",
                "netlink",
                msg_type=msg_type,
                channel=self.label,
                pid=payload.get("pid", task.pid),
            )
            try:
                return subsystem.dispatch_to_kernel(self, message)
            finally:
                tracer.finish(span)
        return subsystem.dispatch_to_kernel(self, message)

    def send_many_to_kernel(
        self, task: Task, msg_type: str, payloads: List[Dict[str, Any]]
    ) -> List[Any]:
        """Deliver a burst of same-type messages in one authenticated flush.

        On the fast path the channel checks (closed/owner/liveness) and the
        handler lookup run once for the whole batch; each payload then
        dispatches in order, so counters and handler effects are identical
        to a loop of single sends.  With tracing on (or the fast path
        toggled off) the batch degrades to per-message sends so the span
        tree is unchanged.  Used by the udev helper to push the boot-time
        device map in one flush.
        """
        subsystem = self._subsystem
        if not subsystem.fast_path or subsystem.tracer.enabled:
            return [self.send_to_kernel(task, msg_type, p) for p in payloads]
        if self.closed:
            raise InvalidArgument(f"netlink channel {self.label!r} is closed")
        if task.pid != self.owner.pid:
            raise OperationNotPermitted(
                f"pid {task.pid} is not the authenticated owner "
                f"(pid {self.owner.pid}) of channel {self.label!r}"
            )
        if not task.is_alive:
            raise OperationNotPermitted(f"channel owner pid {task.pid} is dead")
        count = len(payloads)
        self.sent_to_kernel += count
        subsystem.messages_to_kernel += count
        fast = subsystem._fast_handlers.get(msg_type)
        if fast is not None:
            pid = task.pid
            return [fast(self, payload, pid) for payload in payloads]
        handler = subsystem._kernel_handlers.get(msg_type)
        if handler is None:
            raise InvalidArgument(f"no kernel handler for netlink type {msg_type!r}")
        message = NetlinkMessage(msg_type, {}, task.pid, subsystem.now)
        results = []
        for payload in payloads:
            message.payload = payload
            results.append(handler(self, message))
        return results

    def send_to_userspace(self, msg_type: str, payload: Dict[str, Any]) -> None:
        """Deliver a kernel-originated message to the userspace endpoint."""
        if self.closed:
            raise InvalidArgument(f"netlink channel {self.label!r} is closed")
        message = NetlinkMessage(
            msg_type=msg_type,
            payload=payload,
            sender_pid=None,
            timestamp=self._subsystem.now,
        )
        self.sent_to_userspace += 1
        subsystem = self._subsystem
        subsystem.messages_to_userspace += 1
        tracer = subsystem.tracer
        if tracer.enabled:
            span = tracer.start(
                "netlink.to_userspace",
                "netlink",
                msg_type=msg_type,
                channel=self.label,
                pid=payload.get("pid", -1),
            )
            try:
                if self.userspace_receiver is not None:
                    self.userspace_receiver(message)
            finally:
                tracer.finish(span)
            return
        if self.userspace_receiver is not None:
            self.userspace_receiver(message)

    def close(self) -> None:
        """Tear the channel down (endpoint exit)."""
        self.closed = True
        self._subsystem.forget_channel(self)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"NetlinkChannel(label={self.label!r}, owner=pid {self.owner.pid}, {state})"


class NetlinkSubsystem:
    """Kernel-side netlink: authentication, routing, handler registry."""

    def __init__(
        self,
        filesystem: Filesystem,
        now_fn: Callable[[], Timestamp],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._filesystem = filesystem
        self._now_fn = now_fn
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Hot-path switch (see OverhaulConfig.fast_netlink); with tracing
        #: enabled the reference path is used regardless.
        self.fast_path = True
        #: path -> label for binaries allowed to hold a trusted channel.
        self._trusted_binaries: Dict[str, str] = {
            DISPLAY_MANAGER_PATH: "display-manager",
            UDEV_HELPER_PATH: "udev-helper",
        }
        self._kernel_handlers: Dict[str, Callable[[NetlinkChannel, NetlinkMessage], Any]] = {}
        #: Payload-level handlers for the dominant message types; these
        #: bypass datagram construction entirely (the zero-copy path).
        #: Signature: handler(channel, payload, sender_pid) -> Any.
        self._fast_handlers: Dict[str, Callable[[NetlinkChannel, Dict[str, Any], int], Any]] = {}
        self._channels_by_label: Dict[str, NetlinkChannel] = {}
        self.rejected_connections: List[int] = []  # pids, for tests/audit
        #: Exact subsystem-wide message totals (survive channel teardown).
        self.messages_to_kernel = 0
        self.messages_to_userspace = 0

    @property
    def now(self) -> Timestamp:
        return self._now_fn()

    def register_trusted_binary(self, path: str, label: str) -> None:
        """Extend the trusted endpoint set (used by tests and custom rigs)."""
        self._trusted_binaries[path] = label

    def register_kernel_handler(
        self,
        msg_type: str,
        handler: Callable[[NetlinkChannel, NetlinkMessage], Any],
    ) -> None:
        """Bind a kernel-side handler for a userspace message type."""
        if msg_type in self._kernel_handlers:
            raise InvalidArgument(f"duplicate netlink handler for {msg_type!r}")
        self._kernel_handlers[msg_type] = handler

    def register_fast_handler(
        self,
        msg_type: str,
        handler: Callable[["NetlinkChannel", Dict[str, Any], int], Any],
    ) -> None:
        """Bind a payload-level fast handler for a hot message type.

        The fast handler must be observably equivalent to the regular
        handler registered for the same type: the regular one stays
        registered and serves the reference path (tracing on, fast path
        off), and the differential tests compare the two end to end.
        """
        if msg_type in self._fast_handlers:
            raise InvalidArgument(f"duplicate fast netlink handler for {msg_type!r}")
        self._fast_handlers[msg_type] = handler

    # -- authentication -------------------------------------------------------

    def _authenticate(self, task: Task) -> str:
        """The memory-map introspection check.  Returns the endpoint label.

        Raises :class:`PermissionDenied` when the peer is not a trusted,
        superuser-owned binary.
        """
        address_space = getattr(task, "address_space", None)
        mapping = address_space.executable_mapping() if address_space is not None else None
        if mapping is None or mapping.backing_path is None:
            raise PermissionDenied(
                f"pid {task.pid} has no mapped executable to authenticate"
            )
        exe_path = mapping.backing_path
        label = self._trusted_binaries.get(exe_path)
        if label is None:
            raise PermissionDenied(
                f"pid {task.pid} ({exe_path}) is not a trusted netlink endpoint"
            )
        # The trusted path must actually exist and be superuser-owned;
        # otherwise a user could drop their own binary at a stale path.
        stat = self._filesystem.stat(exe_path)
        if not stat.owner.is_superuser:
            raise PermissionDenied(
                f"trusted path {exe_path} is not superuser-owned "
                f"(owner {stat.owner}); refusing channel"
            )
        return label

    def connect(self, task: Task) -> NetlinkChannel:
        """Userspace connection request; authenticate and open a channel."""
        try:
            label = self._authenticate(task)
        except PermissionDenied:
            self.rejected_connections.append(task.pid)
            raise
        existing = self._channels_by_label.get(label)
        if existing is not None and not existing.closed and existing.owner.is_alive:
            raise OperationNotPermitted(
                f"a live {label!r} channel already exists (pid {existing.owner.pid})"
            )
        channel = NetlinkChannel(self, task, label)
        self._channels_by_label[label] = channel
        return channel

    def channel_for(self, label: str) -> Optional[NetlinkChannel]:
        """Kernel-side lookup of the live channel with *label*, if any."""
        channel = self._channels_by_label.get(label)
        if channel is None or channel.closed:
            return None
        return channel

    def forget_channel(self, channel: NetlinkChannel) -> None:
        """Drop a closed channel from the label registry."""
        current = self._channels_by_label.get(channel.label)
        if current is channel:
            del self._channels_by_label[channel.label]

    # -- routing ---------------------------------------------------------------

    def dispatch_to_kernel(self, channel: NetlinkChannel, message: NetlinkMessage) -> Any:
        """Route a userspace message to its registered kernel handler."""
        handler = self._kernel_handlers.get(message.msg_type)
        if handler is None:
            raise InvalidArgument(f"no kernel handler for netlink type {message.msg_type!r}")
        return handler(channel, message)
