"""The secure kernel <-> userspace communication channel.

Section IV-B: "we used the Linux netlink facility to provide this channel...
Netlink, however, does not solve the authentication problem...  Once the
kernel establishes the netlink channel and receives a connection request
from X during server initialization, it examines the virtual memory maps to
check whether the process it is communicating with is indeed the X server.
In particular, it checks whether the executable code mapped into the process
is loaded from the well-known, and superuser-owned, filesystem path for the
X binaries."

:class:`NetlinkSubsystem` reproduces that scheme:

- Userspace tasks *request* a channel; the kernel authenticates them by
  introspecting their address space (:meth:`AddressSpace.executable_mapping`)
  and verifying the backing executable's filesystem path is on the trusted
  list **and** owned by the superuser.
- Unauthenticated connection attempts are refused -- the kernel "ignores
  communication attempts by other processes".
- Both directions are supported: userspace -> kernel messages dispatch to
  registered kernel handlers (interaction notifications, permission
  queries, device-map updates); kernel -> userspace messages invoke the
  endpoint's receive callback (visual alert requests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.kernel.errors import (
    InvalidArgument,
    OperationNotPermitted,
    PermissionDenied,
)
from repro.kernel.task import Task
from repro.kernel.vfs import Filesystem
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.time import Timestamp

#: Canonical trusted binary locations (superuser-owned in a stock install).
DISPLAY_MANAGER_PATH = "/usr/lib/xorg/Xorg"
UDEV_HELPER_PATH = "/usr/sbin/overhaul-devmapd"


@dataclass
class NetlinkMessage:
    """One datagram on a netlink channel."""

    msg_type: str
    payload: Dict[str, Any]
    sender_pid: Optional[int]  # None for kernel-originated messages
    timestamp: Timestamp


class NetlinkChannel:
    """An authenticated channel between one userspace task and the kernel."""

    def __init__(self, subsystem: "NetlinkSubsystem", owner: Task, label: str) -> None:
        self._subsystem = subsystem
        self.owner = owner
        self.label = label
        self.closed = False
        #: Callback invoked for kernel -> userspace messages.
        self.userspace_receiver: Optional[Callable[[NetlinkMessage], None]] = None
        self.sent_to_kernel: int = 0
        self.sent_to_userspace: int = 0

    def send_to_kernel(self, task: Task, msg_type: str, payload: Dict[str, Any]) -> Any:
        """Deliver a message from the owning task to the kernel.

        Only the authenticated owner may use the channel; this prevents a
        malicious process from piggybacking on the X server's link even if
        it somehow obtained a reference to it.
        """
        if self.closed:
            raise InvalidArgument(f"netlink channel {self.label!r} is closed")
        if task.pid != self.owner.pid:
            raise OperationNotPermitted(
                f"pid {task.pid} is not the authenticated owner "
                f"(pid {self.owner.pid}) of channel {self.label!r}"
            )
        if not task.is_alive:
            raise OperationNotPermitted(f"channel owner pid {task.pid} is dead")
        message = NetlinkMessage(
            msg_type=msg_type,
            payload=payload,
            sender_pid=task.pid,
            timestamp=self._subsystem.now,
        )
        self.sent_to_kernel += 1
        subsystem = self._subsystem
        subsystem.messages_to_kernel += 1
        tracer = subsystem.tracer
        if tracer.enabled:
            # The span wraps dispatch, so kernel-side handler spans (the
            # monitor's verdicts) nest under the netlink hop that caused
            # them -- the cross-layer link the decision-path report walks.
            span = tracer.start(
                "netlink.to_kernel",
                "netlink",
                msg_type=msg_type,
                channel=self.label,
                pid=payload.get("pid", task.pid),
            )
            try:
                return subsystem.dispatch_to_kernel(self, message)
            finally:
                tracer.finish(span)
        return subsystem.dispatch_to_kernel(self, message)

    def send_to_userspace(self, msg_type: str, payload: Dict[str, Any]) -> None:
        """Deliver a kernel-originated message to the userspace endpoint."""
        if self.closed:
            raise InvalidArgument(f"netlink channel {self.label!r} is closed")
        message = NetlinkMessage(
            msg_type=msg_type,
            payload=payload,
            sender_pid=None,
            timestamp=self._subsystem.now,
        )
        self.sent_to_userspace += 1
        subsystem = self._subsystem
        subsystem.messages_to_userspace += 1
        tracer = subsystem.tracer
        if tracer.enabled:
            span = tracer.start(
                "netlink.to_userspace",
                "netlink",
                msg_type=msg_type,
                channel=self.label,
                pid=payload.get("pid", -1),
            )
            try:
                if self.userspace_receiver is not None:
                    self.userspace_receiver(message)
            finally:
                tracer.finish(span)
            return
        if self.userspace_receiver is not None:
            self.userspace_receiver(message)

    def close(self) -> None:
        """Tear the channel down (endpoint exit)."""
        self.closed = True
        self._subsystem.forget_channel(self)

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"NetlinkChannel(label={self.label!r}, owner=pid {self.owner.pid}, {state})"


class NetlinkSubsystem:
    """Kernel-side netlink: authentication, routing, handler registry."""

    def __init__(
        self,
        filesystem: Filesystem,
        now_fn: Callable[[], Timestamp],
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._filesystem = filesystem
        self._now_fn = now_fn
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: path -> label for binaries allowed to hold a trusted channel.
        self._trusted_binaries: Dict[str, str] = {
            DISPLAY_MANAGER_PATH: "display-manager",
            UDEV_HELPER_PATH: "udev-helper",
        }
        self._kernel_handlers: Dict[str, Callable[[NetlinkChannel, NetlinkMessage], Any]] = {}
        self._channels_by_label: Dict[str, NetlinkChannel] = {}
        self.rejected_connections: List[int] = []  # pids, for tests/audit
        #: Exact subsystem-wide message totals (survive channel teardown).
        self.messages_to_kernel = 0
        self.messages_to_userspace = 0

    @property
    def now(self) -> Timestamp:
        return self._now_fn()

    def register_trusted_binary(self, path: str, label: str) -> None:
        """Extend the trusted endpoint set (used by tests and custom rigs)."""
        self._trusted_binaries[path] = label

    def register_kernel_handler(
        self,
        msg_type: str,
        handler: Callable[[NetlinkChannel, NetlinkMessage], Any],
    ) -> None:
        """Bind a kernel-side handler for a userspace message type."""
        if msg_type in self._kernel_handlers:
            raise InvalidArgument(f"duplicate netlink handler for {msg_type!r}")
        self._kernel_handlers[msg_type] = handler

    # -- authentication -------------------------------------------------------

    def _authenticate(self, task: Task) -> str:
        """The memory-map introspection check.  Returns the endpoint label.

        Raises :class:`PermissionDenied` when the peer is not a trusted,
        superuser-owned binary.
        """
        address_space = getattr(task, "address_space", None)
        mapping = address_space.executable_mapping() if address_space is not None else None
        if mapping is None or mapping.backing_path is None:
            raise PermissionDenied(
                f"pid {task.pid} has no mapped executable to authenticate"
            )
        exe_path = mapping.backing_path
        label = self._trusted_binaries.get(exe_path)
        if label is None:
            raise PermissionDenied(
                f"pid {task.pid} ({exe_path}) is not a trusted netlink endpoint"
            )
        # The trusted path must actually exist and be superuser-owned;
        # otherwise a user could drop their own binary at a stale path.
        stat = self._filesystem.stat(exe_path)
        if not stat.owner.is_superuser:
            raise PermissionDenied(
                f"trusted path {exe_path} is not superuser-owned "
                f"(owner {stat.owner}); refusing channel"
            )
        return label

    def connect(self, task: Task) -> NetlinkChannel:
        """Userspace connection request; authenticate and open a channel."""
        try:
            label = self._authenticate(task)
        except PermissionDenied:
            self.rejected_connections.append(task.pid)
            raise
        existing = self._channels_by_label.get(label)
        if existing is not None and not existing.closed and existing.owner.is_alive:
            raise OperationNotPermitted(
                f"a live {label!r} channel already exists (pid {existing.owner.pid})"
            )
        channel = NetlinkChannel(self, task, label)
        self._channels_by_label[label] = channel
        return channel

    def channel_for(self, label: str) -> Optional[NetlinkChannel]:
        """Kernel-side lookup of the live channel with *label*, if any."""
        channel = self._channels_by_label.get(label)
        if channel is None or channel.closed:
            return None
        return channel

    def forget_channel(self, channel: NetlinkChannel) -> None:
        """Drop a closed channel from the label registry."""
        current = self._channels_by_label.get(channel.label)
        if current is channel:
            del self._channels_by_label[channel.label]

    # -- routing ---------------------------------------------------------------

    def dispatch_to_kernel(self, channel: NetlinkChannel, message: NetlinkMessage) -> Any:
        """Route a userspace message to its registered kernel handler."""
        handler = self._kernel_handlers.get(message.msg_type)
        if handler is None:
            raise InvalidArgument(f"no kernel handler for netlink type {message.msg_type!r}")
        return handler(channel, message)
