"""The augmented ``open()`` path: kernel mediation of sensitive devices.

Section IV-B ("Device mediation"): "it suffices on Linux to monitor open
system call invocations on device nodes exposed in the filesystem.
Therefore, our prototype implements an augmented open system call that, in
addition to normal UNIX access control checks, looks up the interaction
notification records received from the X server for the running process to
allow or deny access to the device accordingly."

The paper also notes the conscious choice to patch ``open()`` directly
rather than use an LSM (stacking limitations at the time); our equivalent of
that choice is that :class:`DeviceMediator` is invoked inline from
``Kernel.sys_open`` rather than through a generic hook framework.

In the hardware-device scenario (Figure 1) no explicit permission *query*
from the display manager is needed: "Since the kernel has full mediation
over hardware resources, the permission monitor can implicitly adjust the
permissions of A when necessary" -- the gate below is that implicit check,
and on success it triggers the visual alert request (step 6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel.audit import AuditCategory, AuditDecision
from repro.kernel.errors import OverhaulDenied
from repro.kernel.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class DeviceMediator:
    """Gatekeeper consulted by ``sys_open`` for device-node opens."""

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self.checks_performed = 0
        self.denials = 0
        #: Batched audit appends (set by the Overhaul wiring when
        #: ``OverhaulConfig.fast_audit_batch`` is on); the retained log is
        #: identical either way, see :mod:`repro.kernel.audit`.
        self.use_deferred_audit = False

    def gate_open(self, task: Task, path: str) -> None:
        """Decide whether *task* may open the device node at *path*.

        Non-sensitive devices (per the udev-maintained map) pass untouched.
        With no permission monitor installed the kernel is "unmodified" and
        everything passes -- that is the baseline configuration of Table I
        and the unprotected machine of the 21-day study.

        Raises :class:`OverhaulDenied` (which surfaces as EACCES, keeping
        the failure surface transparent to applications) on denial.
        """
        kernel = self._kernel
        monitor = kernel.permission_monitor
        if monitor is None:
            # Unmodified kernel: the open path has no Overhaul code at all.
            return
        # The augmented open runs for *every* open: the sensitive-device
        # lookup itself is the per-open cost the Bonnie++ row of Table I
        # measures (only file creation shows it; stat/unlink are untouched).
        # One dict probe answers both "is it sensitive?" and "what is the
        # operation string?"; the index is maintained by the map's only
        # writers, so a path re-registered under a different device class
        # can never serve a stale name.
        operation = kernel.devfs.sensitive_map.operation_name(path)
        if operation is None:
            return
        self.checks_performed += 1
        now = kernel.now
        tracer = kernel.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "device.gate", "decision", pid=task.pid, comm=task.comm, operation=operation
            )
        granted = False
        try:
            granted = monitor.authorize(task, now, operation)
            audit = kernel.audit
            append = audit.record_deferred if self.use_deferred_audit else audit.record
            append(
                now,
                AuditCategory.DEVICE,
                AuditDecision.GRANTED if granted else AuditDecision.DENIED,
                task.pid,
                task.comm,
                operation,
            )
            if not granted:
                self.denials += 1
                # The blocked access itself is alerted (the V-B user study's
                # hidden camera process produced exactly this alert).
                monitor.request_visual_alert(task, operation, blocked=True)
                raise OverhaulDenied(
                    f"pid {task.pid} ({task.comm}) denied {operation}: "
                    "no authentic user interaction within the threshold"
                )
            # Step (6) of Figure 1: the kernel asks the display manager to
            # alert the user.  This is kernel-initiated because, after
            # IPC/process indirection, the display manager may not know
            # which process actually touched the device.
            monitor.request_visual_alert(task, operation)
        finally:
            if span is not None:
                tracer.finish(span, granted=granted)
