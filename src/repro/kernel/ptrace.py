"""Process introspection/debugging (ptrace) and its Overhaul hardening.

Section IV-B ("Processes isolation and introspection"): Linux ptrace only
allows attaching to direct descendants (with matching credentials); Overhaul
goes further by "temporarily disabling all permissions for a debugged
process, with a trivial patch to the ptrace system call", defeating attacks
where malware launches a legitimate, input-blessed executable and injects
code into it.  The hardening "could be toggled by the super user through a
proc filesystem node" -- see :mod:`repro.kernel.procfs`.

The permission monitor consults :meth:`PtraceSubsystem.permissions_disabled`
before every grant, which is how the "trivial patch" manifests in the
simulation.

Hot-path note: the monitor's decision cache keys its validity on
:attr:`PtraceSubsystem.version`, a counter bumped by every state change that
can flip a ``permissions_disabled`` verdict (attach, detach, tracee exit,
and toggling :attr:`protection_enabled`).  That gives the cache O(1)
invalidation without subscribing to individual tasks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.kernel.errors import InvalidArgument, OperationNotPermitted
from repro.kernel.task import Task


class PtraceSubsystem:
    """Attach/detach bookkeeping plus the Overhaul permission-revocation rule."""

    def __init__(self, protection_enabled: bool = True) -> None:
        #: Monotonic counter of trace-state changes; cached permission
        #: decisions are valid only while this is unchanged.
        self.version = 0
        #: Overhaul hardening switch (procfs-toggleable, default on).
        self._protection_enabled = protection_enabled
        self.attach_log: List[Tuple[int, int]] = []  # (tracer_pid, tracee_pid)
        self.denied_attaches: List[Tuple[int, int]] = []
        #: Live trace links, tracee pid -> tracee Task.  ``Task.tracees``
        #: stays a plain pid set (procfs renders it); this index is what
        #: lets a dying *tracer* reach its tracee objects to sever their
        #: ``traced_by`` links.
        self._traced: Dict[int, Task] = {}

    @property
    def protection_enabled(self) -> bool:
        """Overhaul hardening switch (procfs-toggleable, default on)."""
        return self._protection_enabled

    @protection_enabled.setter
    def protection_enabled(self, value: bool) -> None:
        if value != self._protection_enabled:
            self._protection_enabled = value
            self.version += 1

    def attach(self, tracer: Task, tracee: Task) -> None:
        """ptrace(PTRACE_ATTACH) with stock-Linux eligibility rules.

        - self-attach is meaningless;
        - the tracee must be a direct-or-transitive descendant of the
          tracer (the containment the paper describes);
        - credentials must match unless the tracer is the superuser;
        - a task has at most one tracer.
        """
        if tracer.pid == tracee.pid:
            raise InvalidArgument("a process cannot ptrace itself")
        if tracee.is_traced:
            raise OperationNotPermitted(
                f"pid {tracee.pid} is already traced by pid {tracee.traced_by.pid}"
            )
        if not tracer.creds.is_superuser:
            if tracer.creds.uid != tracee.creds.uid:
                self.denied_attaches.append((tracer.pid, tracee.pid))
                raise OperationNotPermitted(
                    f"uid {tracer.creds.uid} cannot trace uid {tracee.creds.uid}"
                )
            if not tracee.is_descendant_of(tracer):
                self.denied_attaches.append((tracer.pid, tracee.pid))
                raise OperationNotPermitted(
                    f"pid {tracee.pid} is not a descendant of pid {tracer.pid}; "
                    "Linux debugging facilities do not allow attaching"
                )
        tracee.traced_by = tracer
        tracer.tracees.add(tracee.pid)
        self._traced[tracee.pid] = tracee
        self.version += 1
        self.attach_log.append((tracer.pid, tracee.pid))

    def detach(self, tracer: Task, tracee: Task) -> None:
        """ptrace(PTRACE_DETACH)."""
        if tracee.traced_by is None or tracee.traced_by.pid != tracer.pid:
            raise OperationNotPermitted(
                f"pid {tracer.pid} is not tracing pid {tracee.pid}"
            )
        tracee.traced_by = None
        tracer.tracees.discard(tracee.pid)
        self._traced.pop(tracee.pid, None)
        self.version += 1

    def permissions_disabled(self, task: Task) -> bool:
        """Overhaul rule: a traced task has *all* resource permissions revoked.

        Consulted by the permission monitor on every decision.  Returns
        False when the superuser has toggled the hardening off.
        """
        return self._protection_enabled and task.is_traced

    def on_task_exit(self, task: Task) -> None:
        """Cleanup hook: sever trace relationships of an exiting task.

        Both directions matter.  A dying *tracee* leaves its tracer's
        ``tracees`` set.  A dying *tracer* detaches every tracee it holds
        -- exactly what Linux does on tracer exit -- because a stale
        ``traced_by`` link would keep ``permissions_disabled`` (and any
        verdict cached under the current :attr:`version`) denying a task
        nobody is debugging anymore.
        """
        changed = False
        if task.traced_by is not None:
            task.traced_by.tracees.discard(task.pid)
            task.traced_by = None
            self._traced.pop(task.pid, None)
            changed = True
        if task.tracees:
            for pid in sorted(task.tracees):
                tracee = self._traced.pop(pid, None)
                if tracee is not None and tracee.traced_by is task:
                    tracee.traced_by = None
                    changed = True
            task.tracees.clear()
        if changed:
            self.version += 1
