"""Inter-process communication facilities with Overhaul timestamp propagation.

Section IV-B lists the facilities the prototype covers: "all of POSIX shared
memory and message queues, UNIX SysV shared memory and message queues,
FIFOs, anonymous pipes, and UNIX domain sockets", plus the pseudo-terminal
driver for CLI workflows.  Every one of them is implemented here, each
running the same three-step propagation protocol (policy P2):

1. a newly-established IPC resource embeds an *expired* timestamp;
2. a sender embeds its own interaction timestamp unless the resource already
   holds a more recent one;
3. a receiver adopts the resource's timestamp if it is newer than its own.

Shared memory is special: after ``mmap`` the kernel cannot see individual
accesses, so Overhaul revokes page permissions and recovers the protocol
from the page-fault handler, with a wait list that leaves pages open for
500 ms after each fault (see :mod:`repro.kernel.ipc.shared_memory`).
"""

from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.ipc.msg_queue import MessageQueue, MessageQueueSubsystem
from repro.kernel.ipc.pipe import PipeChannel, PipeSubsystem
from repro.kernel.ipc.pty import PseudoTerminalPair, PtySubsystem
from repro.kernel.ipc.shared_memory import SharedMemorySegment, SharedMemorySubsystem
from repro.kernel.ipc.unix_socket import UnixSocketConnection, UnixSocketSubsystem

__all__ = [
    "InteractionStamp",
    "MessageQueue",
    "MessageQueueSubsystem",
    "PipeChannel",
    "PipeSubsystem",
    "PseudoTerminalPair",
    "PtySubsystem",
    "SharedMemorySegment",
    "SharedMemorySubsystem",
    "TrackingPolicy",
    "UnixSocketConnection",
    "UnixSocketSubsystem",
]
