"""Anonymous pipes and named FIFOs.

Both are a single byte channel with one interaction stamp; a FIFO is the
same channel object attached to a :class:`repro.kernel.vfs.FifoNode` so it
is reachable by path.  The propagation protocol runs on every ``write``
(embed) and ``read`` (adopt) -- these are ordinary syscalls, so unlike
shared memory no page-fault machinery is needed.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.kernel.errors import BrokenPipe, InvalidArgument, WouldBlock
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task
from repro.kernel.vfs import FifoNode, Filesystem

_pipe_ids = itertools.count(1)


class PipeChannel:
    """One unidirectional byte channel (the kernel pipe buffer)."""

    def __init__(self, policy: TrackingPolicy, capacity: int = 65536) -> None:
        self.pipe_id = next(_pipe_ids)
        self.stamp = InteractionStamp(policy)
        self.capacity = capacity
        self._buffer = bytearray()
        self.read_side_open = True
        self.write_side_open = True
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def buffered(self) -> int:
        """Bytes currently sitting in the pipe buffer."""
        return len(self._buffer)

    def write(self, sender: Task, data: bytes) -> int:
        """Write *data*; runs propagation step (2).

        Raises EPIPE if the read side is closed, EAGAIN if the buffer is
        full (the simulation models non-blocking pipes).
        """
        if not self.write_side_open:
            raise InvalidArgument(f"pipe {self.pipe_id}: write side closed")
        if not self.read_side_open:
            raise BrokenPipe(f"pipe {self.pipe_id}: no readers")
        if len(self._buffer) + len(data) > self.capacity:
            raise WouldBlock(f"pipe {self.pipe_id}: buffer full")
        self.stamp.embed_from(sender)
        self._buffer.extend(data)
        self.bytes_written += len(data)
        return len(data)

    def read(self, receiver: Task, count: int) -> bytes:
        """Read up to *count* bytes; runs propagation step (3).

        Returns b"" at EOF (writers gone, buffer empty); raises EAGAIN when
        the buffer is empty but writers remain.
        """
        if count < 0:
            raise InvalidArgument(f"negative read count: {count}")
        if not self._buffer:
            if not self.write_side_open:
                return b""
            raise WouldBlock(f"pipe {self.pipe_id}: nothing to read")
        self.stamp.adopt_to(receiver)
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        self.bytes_read += len(data)
        return data

    def close_read(self) -> None:
        self.read_side_open = False

    def close_write(self) -> None:
        self.write_side_open = False

    def __repr__(self) -> str:
        return f"PipeChannel(id={self.pipe_id}, buffered={self.buffered})"


class PipeSubsystem:
    """Factory/registry for pipes and FIFOs."""

    def __init__(self, policy: TrackingPolicy, filesystem: Filesystem) -> None:
        self._policy = policy
        self._filesystem = filesystem
        self._fifo_channels: Dict[int, PipeChannel] = {}  # inode -> channel

    def create_pipe(self) -> PipeChannel:
        """pipe(2): a fresh anonymous channel."""
        return PipeChannel(self._policy)

    def open_fifo(self, path: str) -> PipeChannel:
        """Open (creating lazily) the channel behind a FIFO node at *path*."""
        inode = self._filesystem.resolve(path)
        if not isinstance(inode, FifoNode):
            raise InvalidArgument(f"{path} is not a FIFO")
        channel = self._fifo_channels.get(inode.ino)
        if channel is None:
            channel = PipeChannel(self._policy)
            self._fifo_channels[inode.ino] = channel
            inode.channel = channel
        return channel
