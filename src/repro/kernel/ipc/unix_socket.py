"""UNIX domain sockets (stream-style, message-preserving).

Higher-level IPC such as D-Bus "are also automatically covered" by the
kernel-level propagation (Section IV-B) because they sit on these sockets;
:mod:`repro.apps` exploits exactly that -- its toy D-Bus runs over this
module and inherits propagation for free.

Connections are bidirectional: each direction has its own message queue but
the *resource* (connection) carries one interaction stamp, matching the
per-resource embedding the paper describes.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional

from repro.kernel.errors import (
    BrokenPipe,
    ConnectionRefused,
    FileExists,
    InvalidArgument,
    WouldBlock,
)
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task

_connection_ids = itertools.count(1)


class UnixSocketConnection:
    """An established socket pair between two tasks."""

    def __init__(self, policy: TrackingPolicy, client_pid: int, server_pid: int) -> None:
        self.connection_id = next(_connection_ids)
        self.stamp = InteractionStamp(policy)
        self.client_pid = client_pid
        self.server_pid = server_pid
        self._to_server: Deque[bytes] = deque()
        self._to_client: Deque[bytes] = deque()
        self.open = True
        self.messages_sent = 0

    def _direction_for_sender(self, sender_pid: int) -> Deque[bytes]:
        if sender_pid == self.client_pid:
            return self._to_server
        if sender_pid == self.server_pid:
            return self._to_client
        raise InvalidArgument(
            f"pid {sender_pid} is not an endpoint of connection {self.connection_id}"
        )

    def _direction_for_receiver(self, receiver_pid: int) -> Deque[bytes]:
        if receiver_pid == self.client_pid:
            return self._to_client
        if receiver_pid == self.server_pid:
            return self._to_server
        raise InvalidArgument(
            f"pid {receiver_pid} is not an endpoint of connection {self.connection_id}"
        )

    def send(self, sender: Task, data: bytes) -> int:
        """Queue one message toward the peer; propagation step (2)."""
        if not self.open:
            raise BrokenPipe(f"connection {self.connection_id} is closed")
        queue = self._direction_for_sender(sender.pid)
        self.stamp.embed_from(sender)
        queue.append(bytes(data))
        self.messages_sent += 1
        return len(data)

    def receive(self, receiver: Task) -> bytes:
        """Dequeue one message addressed to *receiver*; propagation step (3)."""
        queue = self._direction_for_receiver(receiver.pid)
        if not queue:
            if not self.open:
                return b""
            raise WouldBlock(f"connection {self.connection_id}: no data")
        self.stamp.adopt_to(receiver)
        return queue.popleft()

    def pending_for(self, receiver_pid: int) -> int:
        """Messages queued toward *receiver_pid*."""
        return len(self._direction_for_receiver(receiver_pid))

    def close(self) -> None:
        self.open = False

    def __repr__(self) -> str:
        return (
            f"UnixSocketConnection(id={self.connection_id}, "
            f"client={self.client_pid}, server={self.server_pid})"
        )


class UnixSocketSubsystem:
    """bind/listen/connect registry keyed by socket path."""

    def __init__(self, policy: TrackingPolicy) -> None:
        self._policy = policy
        self._listeners: Dict[str, int] = {}  # path -> listening pid
        self._pending_accepts: Dict[str, List[UnixSocketConnection]] = {}
        self.connections: List[UnixSocketConnection] = []

    def listen(self, server: Task, path: str) -> None:
        """Bind *server* to *path* and start accepting connections."""
        if path in self._listeners:
            raise FileExists(f"socket path already bound: {path}")
        self._listeners[path] = server.pid
        self._pending_accepts[path] = []

    def connect(self, client: Task, path: str) -> UnixSocketConnection:
        """Connect to a listening socket; the connection is immediately usable.

        The server discovers it via :meth:`accept`; data sent before accept
        is queued (matching real UNIX socket backlog behaviour closely
        enough for the experiments).
        """
        server_pid = self._listeners.get(path)
        if server_pid is None:
            raise ConnectionRefused(f"nobody listening on {path}")
        connection = UnixSocketConnection(self._policy, client.pid, server_pid)
        self._pending_accepts[path].append(connection)
        self.connections.append(connection)
        return connection

    def accept(self, server: Task, path: str) -> Optional[UnixSocketConnection]:
        """Pop one pending connection for *server*; None if the backlog is empty."""
        if self._listeners.get(path) != server.pid:
            raise InvalidArgument(f"pid {server.pid} is not listening on {path}")
        backlog = self._pending_accepts[path]
        return backlog.pop(0) if backlog else None

    def unlisten(self, server: Task, path: str) -> None:
        """Stop listening (socket close / unlink)."""
        if self._listeners.get(path) != server.pid:
            raise InvalidArgument(f"pid {server.pid} is not listening on {path}")
        del self._listeners[path]
        del self._pending_accepts[path]

    def socketpair(self, left: Task, right: Task) -> UnixSocketConnection:
        """socketpair(2): an anonymous pre-connected pair."""
        connection = UnixSocketConnection(self._policy, left.pid, right.pid)
        self.connections.append(connection)
        return connection
