"""Pseudo-terminal pairs and CLI interaction propagation.

Section IV-B ("CLI interactions"): a terminal emulator receives the X input
events, but the command it launches is a descendant of the *shell*, which
never saw any input.  Overhaul therefore patches the pseudo-terminal device
driver:

    "Whenever a process writes to a terminal endpoint, that process embeds
    its timestamp into the kernel data structure representing the pseudo
    terminal device.  Subsequently, when another process reads from the
    corresponding terminal endpoint, that process copies the embedded
    timestamp to its task_struct, unless it already has a more recent
    timestamp."

A :class:`PseudoTerminalPair` is the kernel structure; the master side is
held by the terminal emulator, the slave side by the shell (and inherited by
its children).  The stamp lives on the *pair* -- one timestamp per device,
exactly as described.
"""

from __future__ import annotations

import itertools
from typing import Dict, List

from repro.kernel.errors import InvalidArgument, WouldBlock
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task

_pty_numbers = itertools.count(0)


class _PtyEndpoint:
    """One side (master or slave) of a pty pair: a byte buffer."""

    def __init__(self) -> None:
        self.buffer = bytearray()

    @property
    def pending(self) -> int:
        return len(self.buffer)


class PseudoTerminalPair:
    """The kernel object representing one master/slave pty device pair.

    Writing to the master appears on the slave's input and vice versa --
    standard pty plumbing -- and every write embeds the writer's interaction
    timestamp while every read adopts it (the Overhaul patch).
    """

    def __init__(self, policy: TrackingPolicy) -> None:
        self.number = next(_pty_numbers)
        self.stamp = InteractionStamp(policy)
        self._to_slave = _PtyEndpoint()  # data written by master
        self._to_master = _PtyEndpoint()  # data written by slave
        self.bytes_transferred = 0

    @property
    def master_path(self) -> str:
        return "/dev/ptmx"

    @property
    def slave_path(self) -> str:
        return f"/dev/pts/{self.number}"

    def _buffers(self, from_master: bool) -> _PtyEndpoint:
        return self._to_slave if from_master else self._to_master

    def write(self, writer: Task, data: bytes, from_master: bool) -> int:
        """Write through one endpoint; runs the embed half of the protocol."""
        if not data:
            return 0
        self.stamp.embed_from(writer)
        endpoint = self._buffers(from_master)
        endpoint.buffer.extend(data)
        self.bytes_transferred += len(data)
        return len(data)

    def read(self, reader: Task, count: int, from_master: bool) -> bytes:
        """Read from one endpoint; runs the adopt half of the protocol.

        ``from_master=True`` reads the data the *slave* wrote (i.e. the
        master's inbound stream).
        """
        if count < 0:
            raise InvalidArgument(f"negative read count: {count}")
        endpoint = self._to_master if from_master else self._to_slave
        if not endpoint.buffer:
            raise WouldBlock(f"pty {self.number}: no data")
        self.stamp.adopt_to(reader)
        data = bytes(endpoint.buffer[:count])
        del endpoint.buffer[:count]
        return data

    def __repr__(self) -> str:
        return f"PseudoTerminalPair(pts={self.number})"


class PtySubsystem:
    """Allocator/registry for pty pairs (the /dev/ptmx driver)."""

    def __init__(self, policy: TrackingPolicy) -> None:
        self._policy = policy
        self._pairs: Dict[int, PseudoTerminalPair] = {}

    def openpty(self) -> PseudoTerminalPair:
        """Allocate a fresh master/slave pair."""
        pair = PseudoTerminalPair(self._policy)
        self._pairs[pair.number] = pair
        return pair

    def lookup(self, number: int) -> PseudoTerminalPair:
        try:
            return self._pairs[number]
        except KeyError:
            raise InvalidArgument(f"no pty pair numbered {number}") from None

    def active_pairs(self) -> List[PseudoTerminalPair]:
        return list(self._pairs.values())
