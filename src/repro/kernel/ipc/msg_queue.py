"""SysV and POSIX message queues.

Both flavours share one implementation; they differ only in how the
resource is named (an integer key for SysV ``msgget``, a slash-name for
POSIX ``mq_open``) and are therefore two registries over the same
:class:`MessageQueue`.  Each queue is one IPC resource and carries one
interaction stamp, per the paper's protocol.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.kernel.errors import FileNotFound, InvalidArgument, WouldBlock
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.task import Task

_queue_ids = itertools.count(1)


class MessageQueue:
    """A bounded FIFO of (type, payload) messages."""

    def __init__(self, policy: TrackingPolicy, name: str, max_messages: int = 1024) -> None:
        self.queue_id = next(_queue_ids)
        self.name = name
        self.stamp = InteractionStamp(policy)
        self.max_messages = max_messages
        self._messages: Deque[Tuple[int, bytes]] = deque()
        self.total_sent = 0

    def send(self, sender: Task, payload: bytes, msg_type: int = 1) -> None:
        """msgsnd / mq_send; propagation step (2)."""
        if msg_type <= 0:
            raise InvalidArgument(f"message type must be positive: {msg_type}")
        if len(self._messages) >= self.max_messages:
            raise WouldBlock(f"queue {self.name!r} is full")
        self.stamp.embed_from(sender)
        self._messages.append((msg_type, bytes(payload)))
        self.total_sent += 1

    def receive(self, receiver: Task, msg_type: Optional[int] = None) -> Tuple[int, bytes]:
        """msgrcv / mq_receive; propagation step (3).

        With *msg_type* set, returns the first message of that type (SysV
        type-selective receive); otherwise the head of the queue.
        """
        if not self._messages:
            raise WouldBlock(f"queue {self.name!r} is empty")
        if msg_type is None:
            self.stamp.adopt_to(receiver)
            return self._messages.popleft()
        for index, (mtype, payload) in enumerate(self._messages):
            if mtype == msg_type:
                self.stamp.adopt_to(receiver)
                del self._messages[index]
                return (mtype, payload)
        raise WouldBlock(f"queue {self.name!r} has no message of type {msg_type}")

    @property
    def depth(self) -> int:
        return len(self._messages)

    def __repr__(self) -> str:
        return f"MessageQueue(name={self.name!r}, depth={self.depth})"


class MessageQueueSubsystem:
    """The two queue namespaces: SysV keys and POSIX names."""

    def __init__(self, policy: TrackingPolicy) -> None:
        self._policy = policy
        self._sysv: Dict[int, MessageQueue] = {}
        self._posix: Dict[str, MessageQueue] = {}

    # -- SysV ------------------------------------------------------------------

    def msgget(self, key: int, create: bool = True) -> MessageQueue:
        """SysV msgget: look up (or create) the queue for *key*."""
        queue = self._sysv.get(key)
        if queue is None:
            if not create:
                raise FileNotFound(f"no SysV queue with key {key}")
            queue = MessageQueue(self._policy, name=f"sysv:{key}")
            self._sysv[key] = queue
        return queue

    def msgctl_remove(self, key: int) -> None:
        """SysV IPC_RMID."""
        if key not in self._sysv:
            raise FileNotFound(f"no SysV queue with key {key}")
        del self._sysv[key]

    # -- POSIX -------------------------------------------------------------------

    def mq_open(self, name: str, create: bool = True) -> MessageQueue:
        """POSIX mq_open: names must start with '/'."""
        if not name.startswith("/"):
            raise InvalidArgument(f"POSIX mq names start with '/': {name!r}")
        queue = self._posix.get(name)
        if queue is None:
            if not create:
                raise FileNotFound(f"no POSIX queue named {name!r}")
            queue = MessageQueue(self._policy, name=f"posix:{name}")
            self._posix[name] = queue
        return queue

    def mq_unlink(self, name: str) -> None:
        if name not in self._posix:
            raise FileNotFound(f"no POSIX queue named {name!r}")
        del self._posix[name]
