"""POSIX and SysV shared memory with page-fault-based interception.

This is the facility the paper spends the most implementation effort on
(Section IV-B):

    "once the kernel allocates and maps a shared memory region with the mmap
    system call, writes and reads to these regions are regular memory
    operations that cannot be intercepted above the hardware level.  We
    overcome this obstacle by... interpos[ing] on virtual memory mapping
    operations inside the kernel, check[ing] whether the mapped area is
    flagged as shared... and if so, revoke read and write permissions for
    that memory area.  This causes subsequent accesses... to generate access
    violations, which allows OVERHAUL to capture the IPC attempt inside the
    page fault handler.  We then run the interaction propagation protocol...
    and temporarily restore the memory access permissions... after every
    access violation, we put the corresponding vm_area_struct on a wait list
    before its permissions are revoked once again... We configured this
    duration to 500 ms."

The simulation reproduces the full state machine, including its documented
*fidelity gap*: accesses during the 500 ms open window do **not** propagate
timestamps (the paper: "we would miss shared memory IPC attempts and fail to
propagate interaction timestamps during this period").  The ablation
benchmark sweeps the wait-list duration to expose the performance/coverage
trade-off the authors describe.
"""

from __future__ import annotations

import itertools
from typing import Dict

from repro.kernel.errors import FileNotFound, InvalidArgument, SegmentationFault
from repro.kernel.ipc.base import InteractionStamp, TrackingPolicy
from repro.kernel.mm import PAGE_SIZE, PageProtection, VMArea
from repro.kernel.task import Task
from repro.obs.tracer import NULL_TRACER
from repro.sim.scheduler import EventScheduler
from repro.sim.time import Timestamp, from_millis

_segment_ids = itertools.count(1)

#: Default wait-list duration: the paper's 500 ms.
DEFAULT_WAITLIST_DURATION: Timestamp = from_millis(500)


class SharedMemorySegment:
    """One shm object (SysV segment or POSIX shm file)."""

    def __init__(self, policy: TrackingPolicy, name: str, num_pages: int) -> None:
        if num_pages <= 0:
            raise InvalidArgument(f"segment needs at least one page: {num_pages}")
        self.segment_id = next(_segment_ids)
        self.name = name
        self.num_pages = num_pages
        self.data = bytearray(num_pages * PAGE_SIZE)
        self.stamp = InteractionStamp(policy)
        self.attach_count = 0

    @property
    def size_bytes(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"SharedMemorySegment(name={self.name!r}, pages={self.num_pages})"


class SharedMemorySubsystem:
    """shmget/shm_open, attach/detach, and the mediated access paths."""

    def __init__(
        self,
        policy: TrackingPolicy,
        scheduler: EventScheduler,
        waitlist_duration: Timestamp = DEFAULT_WAITLIST_DURATION,
    ) -> None:
        self._policy = policy
        self._scheduler = scheduler
        #: How long a faulted area stays open before re-revocation.
        #: Mutable so the ablation benchmark can sweep it.
        self.waitlist_duration = waitlist_duration
        self._sysv: Dict[int, SharedMemorySegment] = {}
        self._posix: Dict[str, SharedMemorySegment] = {}
        self.total_faults = 0
        self.total_accesses = 0
        #: Wait-list expiries that actually re-revoked an area's pages.
        self.total_rearms = 0
        #: Machine assembly swaps in the shared decision-path tracer.
        self.tracer = NULL_TRACER

    # -- naming ------------------------------------------------------------------

    def shmget(self, key: int, num_pages: int, create: bool = True) -> SharedMemorySegment:
        """SysV shmget."""
        segment = self._sysv.get(key)
        if segment is None:
            if not create:
                raise FileNotFound(f"no SysV shm segment with key {key}")
            segment = SharedMemorySegment(self._policy, f"sysv:{key}", num_pages)
            self._sysv[key] = segment
        return segment

    def shm_open(self, name: str, num_pages: int, create: bool = True) -> SharedMemorySegment:
        """POSIX shm_open."""
        if not name.startswith("/"):
            raise InvalidArgument(f"POSIX shm names start with '/': {name!r}")
        segment = self._posix.get(name)
        if segment is None:
            if not create:
                raise FileNotFound(f"no POSIX shm named {name!r}")
            segment = SharedMemorySegment(self._policy, f"posix:{name}", num_pages)
            self._posix[name] = segment
        return segment

    def shm_unlink(self, name: str) -> None:
        if name not in self._posix:
            raise FileNotFound(f"no POSIX shm named {name!r}")
        del self._posix[name]

    # -- mapping -----------------------------------------------------------------

    def attach(self, task: Task, segment: SharedMemorySegment) -> VMArea:
        """mmap the segment into *task*'s address space (MAP_SHARED).

        This is Overhaul's interception point on the mapping path: when
        tracking is enabled, the new shared area's permissions are revoked
        immediately so the first access faults.
        """
        area = task.address_space.map_area(  # type: ignore[attr-defined]
            num_pages=segment.num_pages,
            prot=PageProtection.rw(),
            shared=True,
            backing_object=segment,
        )
        segment.attach_count += 1
        if self._policy.enabled:
            area.revoke_protection()
        return area

    def detach(self, task: Task, area: VMArea) -> None:
        """munmap; cancels any pending wait-list timer."""
        if area.waitlist_event is not None:
            area.waitlist_event.cancel()  # type: ignore[attr-defined]
            area.waitlist_event = None
        task.address_space.unmap(area)  # type: ignore[attr-defined]

    # -- the fault machinery -------------------------------------------------------

    def _segment_of(self, area: VMArea) -> SharedMemorySegment:
        segment = area.backing_object
        if not isinstance(segment, SharedMemorySegment):
            raise InvalidArgument(f"area {area.area_id} is not a shm mapping")
        return segment

    def _service_fault(self, task: Task, area: VMArea, is_write: bool) -> None:
        """The page-fault handler: propagate, restore, arm the wait list."""
        self.total_faults += 1
        area.fault_count += 1
        area.last_fault_at = self._scheduler.now
        segment = self._segment_of(area)

        tracer = self.tracer
        span = None
        if tracer.enabled:
            span = tracer.start(
                "shm.fault",
                "ipc",
                pid=task.pid,
                area=area.area_id,
                segment=segment.segment_id,
                direction="write" if is_write else "read",
            )

        # The interaction-propagation protocol, direction-aware:
        # a faulting write is a send (embed), a faulting read is a receive
        # (adopt).  Running both merges would *strengthen* propagation
        # beyond the paper; we keep the documented semantics.
        if is_write:
            segment.stamp.embed_from(task)
        else:
            segment.stamp.adopt_to(task)

        # Temporarily restore permissions so the retried access succeeds,
        # then put the vm_area on the wait list for re-revocation.
        area.restore_protection()
        if area.waitlist_event is not None:
            area.waitlist_event.cancel()  # type: ignore[attr-defined]

        def re_revoke() -> None:
            area.waitlist_event = None
            area.revoke_protection()
            self.total_rearms += 1
            if self.tracer.enabled:
                self.tracer.event("shm.rearm", "ipc", area=area.area_id)

        area.waitlist_event = self._scheduler.schedule_after(
            self.waitlist_duration, re_revoke, label=f"shm-rearm(area={area.area_id})"
        )
        if span is not None:
            tracer.finish(span)

    def _access(
        self,
        task: Task,
        area: VMArea,
        offset: int,
        length: int,
        is_write: bool,
    ) -> SharedMemorySegment:
        """Common bounds/fault handling for read and write paths."""
        segment = self._segment_of(area)
        if offset < 0 or length < 0 or offset + length > segment.size_bytes:
            raise SegmentationFault(
                f"shm access out of bounds: offset={offset}, length={length}, "
                f"segment={segment.size_bytes} bytes"
            )
        self.total_accesses += 1
        want = PageProtection.WRITE if is_write else PageProtection.READ
        if area.protection_revoked or not area.permits(want):
            if area.protection_revoked:
                # Overhaul interception fault: recoverable.
                self._service_fault(task, area, is_write)
            else:
                raise SegmentationFault(
                    f"access violates protections on area {area.area_id}: "
                    f"want {want}, have {area.prot}"
                )
        return segment

    def write(self, task: Task, area: VMArea, offset: int, data: bytes) -> int:
        """A store instruction into the mapped segment."""
        segment = self._access(task, area, offset, len(data), is_write=True)
        segment.data[offset : offset + len(data)] = data
        return len(data)

    def read(self, task: Task, area: VMArea, offset: int, count: int) -> bytes:
        """A load from the mapped segment."""
        segment = self._access(task, area, offset, count, is_write=False)
        return bytes(segment.data[offset : offset + count])
