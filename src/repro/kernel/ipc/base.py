"""The shared propagation machinery for policy P2.

Every IPC resource embeds one :class:`InteractionStamp`.  The stamp
implements the exact protocol from Section IV-B ("Process creation and
IPC"):

    (1) When an IPC channel is first established, we embed inside the kernel
    data structures that correspond to the IPC resource an expired
    interaction timestamp.  (2) When a process wants to send data through an
    IPC link, it first embeds inside the IPC resource its own interaction
    timestamp, unless the structure already contains a more recent
    timestamp.  (3) When the receiving process reads the data from the
    channel, it compares its own interaction timestamp with that is embedded
    inside the IPC resource.  If the IPC channel has a more up-to-date
    timestamp, the process saves it in its task_struct.

A single :class:`TrackingPolicy` instance (owned by the kernel) gates the
whole mechanism: in the baseline configuration used for the Table I
comparisons, tracking is disabled and the send/receive fast paths skip the
stamp entirely -- mirroring an unmodified kernel.
"""

from __future__ import annotations

from repro.kernel.task import Task
from repro.obs.tracer import NULL_TRACER
from repro.sim.time import NEVER, Timestamp, format_timestamp


class TrackingPolicy:
    """Global switch + counters for interaction-timestamp propagation.

    ``enabled`` is flipped on by :class:`repro.core.system.OverhaulSystem`
    when Overhaul is active.  The counters feed the benchmark analysis
    (propagations per operation) and the property-based tests.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.stamps_embedded = 0
        self.stamps_adopted = 0
        #: Machine assembly swaps in the shared decision-path tracer.
        self.tracer = NULL_TRACER

    def reset_counters(self) -> None:
        self.stamps_embedded = 0
        self.stamps_adopted = 0

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"TrackingPolicy({state}, embedded={self.stamps_embedded}, "
            f"adopted={self.stamps_adopted})"
        )


class InteractionStamp:
    """The timestamp field embedded in an IPC resource's kernel structure."""

    __slots__ = ("timestamp", "_policy")

    def __init__(self, policy: TrackingPolicy) -> None:
        # Step (1): fresh resources carry an expired timestamp.
        self.timestamp: Timestamp = NEVER
        self._policy = policy
        if policy.tracer.enabled:
            policy.tracer.event("stamp.init_expired", "ipc")

    def embed_from(self, sender: Task) -> bool:
        """Step (2): merge the sender's interaction timestamp into the resource.

        Returns True if the embedded timestamp advanced.  No-op when
        tracking is disabled (baseline kernel).
        """
        policy = self._policy
        if not policy.enabled:
            return False
        if sender.interaction_ts > self.timestamp:
            self.timestamp = sender.interaction_ts
            policy.stamps_embedded += 1
            if policy.tracer.enabled:
                policy.tracer.event(
                    "stamp.embed", "ipc", pid=sender.pid, timestamp=sender.interaction_ts
                )
            return True
        return False

    def adopt_to(self, receiver: Task) -> bool:
        """Step (3): copy a newer embedded timestamp into the receiver's task.

        Returns True if the receiver's timestamp advanced.
        """
        policy = self._policy
        if not policy.enabled:
            return False
        if self.timestamp > receiver.interaction_ts:
            receiver.record_interaction(self.timestamp)
            policy.stamps_adopted += 1
            if policy.tracer.enabled:
                policy.tracer.event(
                    "stamp.adopt", "ipc", pid=receiver.pid, timestamp=self.timestamp
                )
            return True
        return False

    def __repr__(self) -> str:
        return f"InteractionStamp({format_timestamp(self.timestamp)})"
