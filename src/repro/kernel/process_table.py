"""Process lifecycle: fork, exec, exit, wait.

Propagation policy **P1** (Section III-D) is implemented here, exactly the
way the paper describes for Linux: "a new process is created by duplicating
an existing process... This operation duplicates the task_struct of the
parent... which includes the interaction timestamp stored in the same data
structure."  Fork therefore copies ``interaction_ts`` unconditionally -- it
is a property of task duplication, not an Overhaul-only hook, which is why
the paper needed *no additional kernel modification* for P1.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.kernel.credentials import Credentials, ROOT
from repro.kernel.errors import InvalidArgument, NoSuchProcess
from repro.kernel.mm import AddressSpace
from repro.kernel.task import Task, TaskState
from repro.sim.scheduler import EventScheduler

#: PID of the init task.
INIT_PID = 1


class ProcessTable:
    """Owns every :class:`Task` on the simulated machine."""

    def __init__(self, scheduler: EventScheduler) -> None:
        self._scheduler = scheduler
        self._tasks: Dict[int, Task] = {}
        self._next_pid = INIT_PID
        self._exit_hooks: List[Callable[[Task], None]] = []
        self.init = self._create_task(
            parent=None,
            comm="init",
            creds=ROOT,
            exe_path="/sbin/init",
        )

    # -- creation -----------------------------------------------------------

    def _allocate_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        return pid

    def _create_task(
        self,
        parent: Optional[Task],
        comm: str,
        creds: Credentials,
        exe_path: str,
    ) -> Task:
        task = Task(
            pid=self._allocate_pid(),
            parent=parent,
            comm=comm,
            creds=creds,
            exe_path=exe_path,
            start_time=self._scheduler.now,
        )
        task.address_space = AddressSpace()  # type: ignore[attr-defined]
        task.address_space.map_executable(exe_path)  # type: ignore[attr-defined]
        self._tasks[task.pid] = task
        if parent is not None:
            parent.add_child(task)
        return task

    def fork(self, parent: Task) -> Task:
        """Duplicate *parent*; returns the child task.

        The child inherits credentials, executable identity, the address
        space (clone semantics for shared mappings), and -- critically for
        P1 -- the parent's interaction timestamp.
        """
        if not parent.is_alive:
            raise NoSuchProcess(f"fork from dead pid {parent.pid}")
        child = Task(
            pid=self._allocate_pid(),
            parent=parent,
            comm=parent.comm,
            creds=parent.creds,
            exe_path=parent.exe_path,
            start_time=self._scheduler.now,
        )
        # P1: duplicating the task_struct carries the interaction timestamp.
        child.interaction_ts = parent.interaction_ts
        child.address_space = parent.address_space.clone()  # type: ignore[attr-defined]
        self._tasks[child.pid] = child
        parent.add_child(child)
        return child

    def exec(self, task: Task, exe_path: str, comm: Optional[str] = None) -> Task:
        """Replace the task's program image (execve).

        The task keeps its pid and task_struct -- including the interaction
        timestamp, which is how `launcher types name -> exec tool` workflows
        (Figure 3 after the fork) retain their interaction provenance.
        """
        if not task.is_alive:
            raise NoSuchProcess(f"exec in dead pid {task.pid}")
        if not exe_path.startswith("/"):
            raise InvalidArgument(f"exec path must be absolute: {exe_path!r}")
        task.exe_path = exe_path
        task.comm = comm if comm is not None else exe_path.rsplit("/", 1)[-1]
        task.address_space = AddressSpace()  # type: ignore[attr-defined]
        task.address_space.map_executable(exe_path)  # type: ignore[attr-defined]
        return task

    def spawn(
        self,
        parent: Task,
        exe_path: str,
        comm: Optional[str] = None,
        creds: Optional[Credentials] = None,
    ) -> Task:
        """fork + exec convenience used by launchers, shells, and tests."""
        child = self.fork(parent)
        if creds is not None:
            child.creds = creds
        return self.exec(child, exe_path, comm)

    # -- lookup --------------------------------------------------------------

    def get(self, pid: int) -> Task:
        """Resolve a live-or-zombie task by pid; ESRCH otherwise."""
        task = self._tasks.get(pid)
        if task is None or task.state == TaskState.DEAD:
            raise NoSuchProcess(f"pid {pid}")
        return task

    def get_live(self, pid: int) -> Task:
        """Resolve a pid that must still be running."""
        task = self.get(pid)
        if not task.is_alive:
            raise NoSuchProcess(f"pid {pid} is a zombie")
        return task

    def live_tasks(self) -> List[Task]:
        """All currently running tasks, in pid order."""
        return [t for t in self._tasks.values() if t.is_alive]

    def __contains__(self, pid: int) -> bool:
        task = self._tasks.get(pid)
        return task is not None and task.state != TaskState.DEAD

    def __len__(self) -> int:
        return len(self.live_tasks())

    # -- teardown ------------------------------------------------------------

    def on_exit(self, hook: Callable[[Task], None]) -> None:
        """Register a callback run when any task exits (used by IPC and
        ptrace layers to clean up endpoint state)."""
        self._exit_hooks.append(hook)

    def exit(self, task: Task, code: int = 0) -> None:
        """Terminate *task*: close fds, orphan children to init, zombify."""
        if not task.is_alive:
            raise NoSuchProcess(f"exit of dead pid {task.pid}")
        for fd, open_file in task.open_fds().items():
            task.remove_fd(fd)
            if not open_file.closed:
                open_file.close()
        for child in task.children:
            if child.is_alive:
                child.parent = self.init
                self.init.add_child(child)
        # Trace links are severed by the registered exit hooks (the ptrace
        # subsystem's on_task_exit), NOT inline here: the subsystem must
        # observe the link still in place so it can bump its version --
        # epoch-cached ptrace verdicts would otherwise survive the tracee's
        # death.
        task.state = TaskState.ZOMBIE
        task.exit_code = code
        for hook in self._exit_hooks:
            hook(task)

    def wait(self, parent: Task) -> Optional[Task]:
        """Reap one zombie child of *parent*; None if there is none."""
        for child in parent.children:
            if child.state == TaskState.ZOMBIE:
                child.state = TaskState.DEAD
                return child
        return None

    def reap_all(self, parent: Task) -> List[Task]:
        """Reap every zombie child (used at scenario teardown)."""
        reaped = []
        while True:
            child = self.wait(parent)
            if child is None:
                return reaped
            reaped.append(child)
