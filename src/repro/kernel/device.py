"""Simulated hardware devices: microphones, cameras, and friends.

The paper protects "sensitive hardware devices... typical examples on
desktop operating systems include the camera and microphone" (Section
III-C).  Devices here produce deterministic synthetic data streams so the
long-term empirical study (Section V-D) can verify *what* a spying process
actually captured -- e.g. the unprotected machine's malware log contains
real microphone sample bytes while the protected machine's contains none.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.errors import InvalidArgument, ResourceBusy
from repro.sim.time import Timestamp


class DeviceClass(enum.Enum):
    """Hardware device categories known to the simulation.

    ``sensitive`` marks the classes Overhaul mediates; the rest exist so the
    benchmarks and false-positive tests can show that non-sensitive device
    opens are untouched.
    """

    MICROPHONE = ("microphone", True)
    CAMERA = ("camera", True)
    SPEAKER = ("speaker", False)
    KEYBOARD = ("keyboard", False)
    MOUSE = ("mouse", False)
    DISK = ("disk", False)

    def __init__(self, label: str, sensitive: bool) -> None:
        self.label = label
        self.sensitive = sensitive


@dataclass
class DeviceAccessRecord:
    """One successful open of a device: who, when."""

    pid: int
    comm: str
    timestamp: Timestamp


_device_serials = itertools.count(0)


class DeviceHandle:
    """A per-open handle; reads produce the device's synthetic stream."""

    def __init__(self, device: "Device", pid: int) -> None:
        self._device = device
        self.pid = pid
        self.released = False

    def read(self, count: int) -> bytes:
        """Read *count* bytes of synthetic device data."""
        if self.released:
            raise InvalidArgument(f"read on released handle for {self._device.name}")
        if count < 0:
            raise InvalidArgument(f"negative read count: {count}")
        return self._device.generate(count)

    def release(self) -> None:
        """Close the handle.  Idempotent."""
        if not self.released:
            self.released = True
            self._device.handle_released(self)


class Device:
    """A hardware device attached to the simulated machine.

    Parameters
    ----------
    name:
        Stable identifier, e.g. ``"mic0"``.
    device_class:
        The :class:`DeviceClass`, which determines Overhaul sensitivity.
    exclusive:
        If True, only one open handle may exist at a time (models devices
        like some V4L cameras); further opens raise EBUSY.
    """

    def __init__(
        self,
        name: str,
        device_class: DeviceClass,
        exclusive: bool = False,
    ) -> None:
        self.name = name
        self.device_class = device_class
        self.exclusive = exclusive
        self.serial = next(_device_serials)
        self.access_log: List[DeviceAccessRecord] = []
        self._open_handles: List[DeviceHandle] = []
        self._stream_position = 0

    @property
    def sensitive(self) -> bool:
        """True if Overhaul mediates opens of this device."""
        return self.device_class.sensitive

    @property
    def open_count(self) -> int:
        """Number of live handles."""
        return len(self._open_handles)

    def open(self, pid: int, comm: str, now: Timestamp) -> DeviceHandle:
        """Open the device for *pid*; records the access.

        Classic UNIX permission checks happen at the VFS layer; Overhaul's
        input-driven check happens in :mod:`repro.kernel.mediation` *before*
        this method is reached.  By the time we are here, access is granted.
        """
        if self.exclusive and self._open_handles:
            raise ResourceBusy(f"device {self.name} is exclusively held")
        handle = DeviceHandle(self, pid)
        self._open_handles.append(handle)
        self.access_log.append(DeviceAccessRecord(pid, comm, now))
        return handle

    def handle_released(self, handle: DeviceHandle) -> None:
        """Internal: drop a released handle from the live set."""
        try:
            self._open_handles.remove(handle)
        except ValueError:
            pass  # already dropped; release is idempotent

    def generate(self, count: int) -> bytes:
        """Produce *count* bytes of deterministic synthetic stream data.

        The stream is a rolling byte pattern derived from the device serial
        and a monotone position counter, so captured data is attributable to
        (device, position) in experiment assertions.
        """
        start = self._stream_position
        self._stream_position += count
        return bytes((self.serial * 31 + (start + i)) % 256 for i in range(count))

    def __repr__(self) -> str:
        return f"Device({self.name!r}, class={self.device_class.label}, opens={self.open_count})"


@dataclass
class DeviceInventory:
    """The set of devices attached to a simulated machine."""

    devices: Dict[str, Device] = field(default_factory=dict)

    def add(self, device: Device) -> Device:
        if device.name in self.devices:
            raise InvalidArgument(f"duplicate device name: {device.name}")
        self.devices[device.name] = device
        return device

    def get(self, name: str) -> Optional[Device]:
        return self.devices.get(name)

    def by_class(self, device_class: DeviceClass) -> List[Device]:
        return [d for d in self.devices.values() if d.device_class is device_class]


def standard_inventory() -> DeviceInventory:
    """The default desktop machine: one mic, one camera, one speaker, a disk.

    Mirrors the paper's evaluation machine, which exercised "the microphone
    installed on our testing system" and a camera.
    """
    inventory = DeviceInventory()
    inventory.add(Device("mic0", DeviceClass.MICROPHONE))
    inventory.add(Device("video0", DeviceClass.CAMERA))
    inventory.add(Device("speaker0", DeviceClass.SPEAKER))
    inventory.add(Device("sda", DeviceClass.DISK))
    return inventory
