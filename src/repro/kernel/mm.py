"""Virtual memory areas and page protections.

Two Overhaul mechanisms live at this layer (Section IV-B):

1. **Shared-memory IPC interception.**  Writes/reads to a mapped shared
   segment are plain memory operations the kernel cannot see -- except by
   revoking page permissions so the first access faults.  The fault handler
   runs the timestamp-propagation protocol, restores permissions, and a
   *wait list* re-revokes them after 500 ms.  :class:`VMArea` carries the
   ``protection_revoked`` flag and the wait-list bookkeeping that
   :mod:`repro.kernel.ipc.shared_memory` drives.

2. **Netlink endpoint authentication.**  The kernel "examines the virtual
   memory maps to check whether the executable code mapped into the process
   is loaded from the well-known, and superuser-owned, filesystem path for
   the X binaries".  :meth:`AddressSpace.executable_mapping` is exactly that
   introspection point.

Pages are 4096 bytes, matching the paper's benchmark description.
"""

from __future__ import annotations

import enum
import itertools
from typing import List, Optional

from repro.kernel.errors import InvalidArgument, SegmentationFault
from repro.sim.time import NEVER, Timestamp

#: Bytes per simulated page.
PAGE_SIZE = 4096


class PageProtection(enum.Flag):
    """Page permission bits."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()

    @classmethod
    def rw(cls) -> "PageProtection":
        return cls.READ | cls.WRITE

    @classmethod
    def rx(cls) -> "PageProtection":
        return cls.READ | cls.EXEC


_area_ids = itertools.count(1)


class VMArea:
    """Simulated ``vm_area_struct``.

    ``shared`` marks MAP_SHARED mappings (the flag Overhaul checks to decide
    whether a mapping is an IPC channel needing interception).
    ``protection_revoked`` is Overhaul's interception state: while True, any
    access to the area faults into the kernel.  ``original_prot`` remembers
    the permissions to restore after a fault is serviced.
    """

    def __init__(
        self,
        start_page: int,
        num_pages: int,
        prot: PageProtection,
        shared: bool = False,
        backing_path: Optional[str] = None,
        backing_object: Optional[object] = None,
    ) -> None:
        if num_pages <= 0:
            raise InvalidArgument(f"mapping must cover at least one page: {num_pages}")
        self.area_id = next(_area_ids)
        self.start_page = start_page
        self.num_pages = num_pages
        self.prot = prot
        self.original_prot = prot
        self.shared = shared
        self.backing_path = backing_path
        self.backing_object = backing_object

        # Overhaul interception state.
        self.protection_revoked = False
        self.waitlist_event: Optional[object] = None  # ScheduledEvent handle
        self.last_fault_at: Timestamp = NEVER
        self.fault_count = 0

    @property
    def end_page(self) -> int:
        """One past the last page of the mapping."""
        return self.start_page + self.num_pages

    @property
    def size_bytes(self) -> int:
        return self.num_pages * PAGE_SIZE

    def contains_page(self, page: int) -> bool:
        return self.start_page <= page < self.end_page

    def revoke_protection(self) -> None:
        """Overhaul: arm interception by dropping all access permissions."""
        if not self.protection_revoked:
            self.original_prot = self.prot
            self.prot = PageProtection.NONE
            self.protection_revoked = True

    def restore_protection(self) -> None:
        """Overhaul: disarm interception, restoring the saved permissions."""
        if self.protection_revoked:
            self.prot = self.original_prot
            self.protection_revoked = False

    def permits(self, want: PageProtection) -> bool:
        """True if the current permissions cover the requested access."""
        return (self.prot & want) == want

    def __repr__(self) -> str:
        state = "revoked" if self.protection_revoked else "armed" if self.shared else "plain"
        return (
            f"VMArea(id={self.area_id}, pages=[{self.start_page},{self.end_page}), "
            f"prot={self.prot}, {state})"
        )


class AddressSpace:
    """Per-task virtual address space: an ordered list of :class:`VMArea`.

    A bump allocator hands out page ranges; the simulation never reuses
    addresses within one task, which keeps fault attribution unambiguous.
    """

    def __init__(self) -> None:
        self.areas: List[VMArea] = []
        self._next_free_page = 0x1000  # leave a guard gap below

    def map_area(
        self,
        num_pages: int,
        prot: PageProtection,
        shared: bool = False,
        backing_path: Optional[str] = None,
        backing_object: Optional[object] = None,
    ) -> VMArea:
        """Allocate and attach a new mapping (mmap equivalent)."""
        area = VMArea(
            start_page=self._next_free_page,
            num_pages=num_pages,
            prot=prot,
            shared=shared,
            backing_path=backing_path,
            backing_object=backing_object,
        )
        self._next_free_page += num_pages + 1  # +1 guard page
        self.areas.append(area)
        return area

    def map_executable(self, path: str, num_pages: int = 64) -> VMArea:
        """Map a file as the task's main executable image (exec path)."""
        return self.map_area(
            num_pages,
            PageProtection.rx(),
            shared=False,
            backing_path=path,
        )

    def unmap(self, area: VMArea) -> None:
        """Remove a mapping (munmap equivalent)."""
        try:
            self.areas.remove(area)
        except ValueError:
            raise InvalidArgument(f"area {area.area_id} is not mapped here") from None

    def find_area(self, page: int) -> VMArea:
        """Resolve the mapping covering *page*; SIGSEGV if none."""
        for area in self.areas:
            if area.contains_page(page):
                return area
        raise SegmentationFault(f"no mapping covers page {page:#x}")

    def executable_mapping(self) -> Optional[VMArea]:
        """The first executable file-backed mapping (netlink introspection).

        Returns None for tasks with no mapped executable (kernel threads).
        """
        for area in self.areas:
            if area.backing_path is not None and bool(area.original_prot & PageProtection.EXEC):
                return area
        return None

    def shared_areas(self) -> List[VMArea]:
        """All MAP_SHARED mappings (Overhaul's interception targets)."""
        return [area for area in self.areas if area.shared]

    def clone(self) -> "AddressSpace":
        """Duplicate for fork: private areas copied, shared areas aliased.

        Shared mappings keep pointing at the same backing object (that is
        what MAP_SHARED means); their Overhaul interception state starts
        re-armed in the child so the child's first access faults and picks
        up the propagation protocol independently.
        """
        child = AddressSpace()
        child._next_free_page = self._next_free_page
        for area in self.areas:
            duplicate = VMArea(
                start_page=area.start_page,
                num_pages=area.num_pages,
                prot=area.original_prot,
                shared=area.shared,
                backing_path=area.backing_path,
                backing_object=area.backing_object,
            )
            child.areas.append(duplicate)
        return child
