"""Errno-style error hierarchy for the simulated kernel.

Simulated syscalls raise these instead of returning negative integers; each
class carries the conventional errno name so traces and tests read like
strace output.  :class:`KernelError` is distinct from
:class:`repro.sim.errors.SimulationError` -- the former models the simulated
OS failing a request, the latter indicates the simulator itself was misused.
"""

from __future__ import annotations


class KernelError(Exception):
    """Base class for simulated-kernel failures."""

    errno_name = "EUNKNOWN"

    def __str__(self) -> str:
        message = super().__str__()
        return f"[{self.errno_name}] {message}" if message else self.errno_name


class PermissionDenied(KernelError):
    """The caller lacks permission (classic UNIX access control)."""

    errno_name = "EACCES"


class OverhaulDenied(PermissionDenied):
    """Overhaul's input-driven access control denied the operation.

    Subclass of :class:`PermissionDenied` so applications that only know
    classic UNIX semantics observe an ordinary access failure -- this is the
    transparency property (D1): no new error surface is exposed to apps.
    """

    errno_name = "EACCES"


class FileNotFound(KernelError):
    """Path resolution failed."""

    errno_name = "ENOENT"


class FileExists(KernelError):
    """Attempt to create an object that already exists."""

    errno_name = "EEXIST"


class NotADirectory(KernelError):
    """A path component that must be a directory is not."""

    errno_name = "ENOTDIR"


class IsADirectory(KernelError):
    """A file operation was applied to a directory."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(KernelError):
    """rmdir on a non-empty directory."""

    errno_name = "ENOTEMPTY"


class BadFileDescriptor(KernelError):
    """Operation on a closed or foreign file descriptor."""

    errno_name = "EBADF"


class InvalidArgument(KernelError):
    """A syscall argument was malformed."""

    errno_name = "EINVAL"


class NoSuchProcess(KernelError):
    """The referenced PID does not exist."""

    errno_name = "ESRCH"


class OperationNotPermitted(KernelError):
    """The operation is forbidden for this caller (e.g. ptrace rules)."""

    errno_name = "EPERM"


class ResourceBusy(KernelError):
    """The resource is in use (e.g. pty endpoint already claimed)."""

    errno_name = "EBUSY"


class WouldBlock(KernelError):
    """A non-blocking operation found no data / no space."""

    errno_name = "EAGAIN"


class BrokenPipe(KernelError):
    """Write to an IPC channel whose read side is gone."""

    errno_name = "EPIPE"


class ConnectionRefused(KernelError):
    """Connect to a socket nobody is listening on."""

    errno_name = "ECONNREFUSED"


class NoDevice(KernelError):
    """The referenced device does not exist or is unregistered."""

    errno_name = "ENODEV"


class SegmentationFault(KernelError):
    """A memory access violated page protections and was not recoverable.

    Recoverable faults (Overhaul's shared-memory interception) are handled
    inside the kernel and never surface as this error; this is raised only
    for genuinely invalid accesses (unmapped addresses, out-of-bounds).
    """

    errno_name = "SIGSEGV"
