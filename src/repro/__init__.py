"""Reproduction of *Overhaul: Input-Driven Access Control for Better
Privacy on Traditional Operating Systems* (Onarlioglu, Robertson, Kirda --
DSN 2016).

Overhaul retrofits dynamic, user-driven access control into traditional
OSes: an application may touch a privacy-sensitive resource (microphone,
camera, clipboard, screen contents) only in close temporal proximity to
authentic hardware user input delivered to it -- propagated across fork and
every IPC facility -- and every granted access is announced through an
unforgeable overlay alert.

Because the original is a patched Linux kernel + X.Org server, this
reproduction implements the complete stack as a deterministic discrete-event
simulation (see DESIGN.md for the substitution argument):

- :mod:`repro.sim` -- virtual time, event scheduling, seeded randomness;
- :mod:`repro.kernel` -- the simulated kernel (tasks, VFS, devices, all IPC
  facilities, VM with fault-based shm interception, netlink, ptrace);
- :mod:`repro.xserver` -- the simulated X server (windows, input
  provenance, ICCCM selections, screen capture, overlay alerts);
- :mod:`repro.core` -- Overhaul itself (permission monitor, display-manager
  extension, configuration, machine assembly);
- :mod:`repro.apps` -- simulated applications (browsers, video
  conferencing, launchers, terminals, spyware);
- :mod:`repro.workloads` -- the paper's experiments (usability study,
  applicability sweep, 21-day empirical study);
- :mod:`repro.analysis` -- tables and statistics (Table I regeneration).

Quickstart::

    from repro import Machine
    machine = Machine.with_overhaul()
"""

from repro.core import Machine, OverhaulConfig, OverhaulSystem, benchmark_config, paper_config

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "OverhaulConfig",
    "OverhaulSystem",
    "__version__",
    "benchmark_config",
    "paper_config",
]
