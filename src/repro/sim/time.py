"""Virtual timebase used throughout the simulation.

All simulated timestamps are integers counting **microseconds** since the
simulation epoch (time zero).  An integer timebase avoids floating-point
drift when comparing an interaction timestamp against Overhaul's
temporal-proximity threshold; the paper's thresholds (2 s interaction expiry,
500 ms shared-memory wait list) are all exact in this representation.
"""

from __future__ import annotations

from repro.sim.errors import TimeError

#: Type alias for simulated time.  A count of microseconds since epoch.
Timestamp = int

#: Number of microseconds per second of simulated time.
MICROSECONDS_PER_SECOND: int = 1_000_000

#: Number of microseconds per millisecond of simulated time.
MICROSECONDS_PER_MILLISECOND: int = 1_000

#: A timestamp guaranteed to be older than any event the simulation can
#: produce.  Used to initialise "expired" interaction timestamps, mirroring
#: how the paper embeds an expired timestamp in fresh IPC structures.
NEVER: Timestamp = -(2**62)


def from_seconds(seconds: float) -> Timestamp:
    """Convert a duration in seconds to a :data:`Timestamp` delta.

    >>> from_seconds(2.0)
    2000000
    """
    if seconds != seconds:  # NaN check without importing math
        raise TimeError("cannot convert NaN seconds to a timestamp")
    return round(seconds * MICROSECONDS_PER_SECOND)


def from_millis(millis: float) -> Timestamp:
    """Convert a duration in milliseconds to a :data:`Timestamp` delta.

    >>> from_millis(500)
    500000
    """
    if millis != millis:
        raise TimeError("cannot convert NaN milliseconds to a timestamp")
    return round(millis * MICROSECONDS_PER_MILLISECOND)


def to_seconds(timestamp: Timestamp) -> float:
    """Convert a :data:`Timestamp` (or delta) to float seconds.

    >>> to_seconds(2_000_000)
    2.0
    """
    return timestamp / MICROSECONDS_PER_SECOND


def format_timestamp(timestamp: Timestamp) -> str:
    """Render a timestamp as a human-readable ``[s.ususus]`` string.

    Used by the audit and decision logs so traces read naturally:

    >>> format_timestamp(1_500_000)
    '[1.500000s]'
    """
    if timestamp == NEVER:
        return "[never]"
    sign = "-" if timestamp < 0 else ""
    magnitude = abs(timestamp)
    seconds, micros = divmod(magnitude, MICROSECONDS_PER_SECOND)
    return f"[{sign}{seconds}.{micros:06d}s]"


def validate_duration(duration: Timestamp, name: str = "duration") -> Timestamp:
    """Validate that *duration* is a non-negative integer number of microseconds.

    Returns the duration unchanged so the function can be used inline.
    Raises :class:`TimeError` for negative or non-integer values.
    """
    if not isinstance(duration, int) or isinstance(duration, bool):
        raise TimeError(f"{name} must be an integer microsecond count, got {duration!r}")
    if duration < 0:
        raise TimeError(f"{name} must be non-negative, got {duration}")
    return duration
