"""Exception hierarchy for the simulation substrate.

Every error raised by the simulation layers derives from
:class:`SimulationError` so callers can distinguish simulator faults from
simulated-OS errors (which live in :mod:`repro.kernel.errors` and model
errno-style failures).
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulator-level errors."""


class TimeError(SimulationError):
    """An invalid timestamp or duration was supplied."""


class SchedulerError(SimulationError):
    """The event scheduler was used incorrectly.

    Examples: scheduling an event in the past, or re-entrantly running the
    event loop from inside an event callback.
    """


class DeterminismError(SimulationError):
    """A source of nondeterminism was detected.

    The reproduction requires every experiment to be replayable from its
    seed; this error fires when unseeded randomness or wall-clock access
    would silently break that guarantee.
    """
