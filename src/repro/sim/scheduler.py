"""Deterministic priority-queue event loop.

The scheduler is the engine behind every simulated scenario: user input
arrives as scheduled events, applications register timers (e.g. a spyware
process sampling the clipboard every 30 simulated minutes), and Overhaul's
shared-memory wait list re-arms page protections with a 500 ms timer.

Determinism guarantees:

- Events firing at the same instant run in insertion order (a monotonically
  increasing sequence number breaks ties).
- Callbacks may schedule or cancel further events freely; re-entrant *runs*
  of the loop are rejected.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.clock import VirtualClock
from repro.sim.errors import SchedulerError
from repro.sim.time import Timestamp, format_timestamp, validate_duration


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Instances are returned by :meth:`EventScheduler.schedule_at` /
    :meth:`EventScheduler.schedule_after` and compare by (time, sequence) so
    they can live directly in the scheduler's heap.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled")

    def __init__(
        self,
        time: Timestamp,
        seq: int,
        callback: Callable[[], Any],
        label: str,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent({self.label!r} at {format_timestamp(self.time)}, {state})"


class EventScheduler:
    """A discrete-event loop over a :class:`VirtualClock`.

    The scheduler owns its clock; subsystems read time through
    :attr:`now` and never mutate the clock directly.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self._clock = clock if clock is not None else VirtualClock()
        self._heap: List[ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._events_dispatched = 0

    @property
    def clock(self) -> VirtualClock:
        """The clock this scheduler advances."""
        return self._clock

    @property
    def now(self) -> Timestamp:
        """Current simulated time."""
        return self._clock.now

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_dispatched

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def schedule_at(
        self,
        time: Timestamp,
        callback: Callable[[], Any],
        label: str = "event",
    ) -> ScheduledEvent:
        """Schedule *callback* to run at absolute simulated *time*.

        Scheduling at the current instant is allowed (the event runs on the
        next loop iteration); scheduling in the past is an error.
        """
        if time < self._clock.now:
            raise SchedulerError(
                f"cannot schedule {label!r} in the past: "
                f"now={format_timestamp(self._clock.now)}, "
                f"requested={format_timestamp(time)}"
            )
        event = ScheduledEvent(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: Timestamp,
        callback: Callable[[], Any],
        label: str = "event",
    ) -> ScheduledEvent:
        """Schedule *callback* to run *delay* microseconds from now."""
        validate_duration(delay, "delay")
        return self.schedule_at(self._clock.now + delay, callback, label)

    def run_until(self, time: Timestamp) -> int:
        """Dispatch every event with ``event.time <= time``; advance clock to *time*.

        Returns the number of callbacks executed.  The clock always ends at
        exactly *time*, even if the queue drains early, so subsequent
        scheduling is relative to the requested horizon.
        """
        if self._running:
            raise SchedulerError("re-entrant scheduler run detected")
        if time < self._clock.now:
            raise SchedulerError(
                f"cannot run until the past: now={format_timestamp(self._clock.now)}, "
                f"requested={format_timestamp(time)}"
            )
        self._running = True
        dispatched = 0
        try:
            while self._heap and self._heap[0].time <= time:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._clock.advance_to(event.time)
                event.callback()
                dispatched += 1
                self._events_dispatched += 1
            self._clock.advance_to(time)
        finally:
            self._running = False
        return dispatched

    def run_for(self, duration: Timestamp) -> int:
        """Dispatch events for the next *duration* microseconds."""
        validate_duration(duration)
        return self.run_until(self._clock.now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (or *max_events* were dispatched).

        Raises :class:`SchedulerError` if the event budget is exhausted,
        which usually indicates a runaway self-rescheduling loop.
        """
        if self._running:
            raise SchedulerError("re-entrant scheduler run detected")
        self._running = True
        dispatched = 0
        try:
            while self._heap:
                event = heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if dispatched >= max_events:
                    raise SchedulerError(
                        f"drain exceeded event budget of {max_events}; "
                        f"likely a runaway timer loop (last label: {event.label!r})"
                    )
                self._clock.advance_to(event.time)
                event.callback()
                dispatched += 1
                self._events_dispatched += 1
        finally:
            self._running = False
        return dispatched

    def __repr__(self) -> str:
        return (
            f"EventScheduler(now={format_timestamp(self.now)}, "
            f"pending={self.pending_count})"
        )
