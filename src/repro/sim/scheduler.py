"""Deterministic priority-queue event loop.

The scheduler is the engine behind every simulated scenario: user input
arrives as scheduled events, applications register timers (e.g. a spyware
process sampling the clipboard every 30 simulated minutes), and Overhaul's
shared-memory wait list re-arms page protections with a 500 ms timer.

Determinism guarantees:

- Events firing at the same instant run in insertion order (a monotonically
  increasing sequence number breaks ties).
- Callbacks may schedule or cancel further events freely; re-entrant *runs*
  of the loop are rejected.

Hot-path properties (the shm wait list cancels and re-arms its 500 ms timer
on every fault, so schedule/cancel churn is the common case, not the edge
case):

- ``cancel`` is O(1) and lazily deleted entries are *compacted* once they
  make up more than half the heap, so the heap stays proportional to the
  number of live events rather than growing with total churn.
- ``pending_count`` is O(1) (live bookkeeping, not a heap scan).
- ``run_until`` with nothing due is a constant-time clock advance.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.sim.clock import VirtualClock
from repro.sim.errors import SchedulerError
from repro.sim.time import Timestamp, format_timestamp, validate_duration

#: Never compact heaps smaller than this; the rebuild would cost more than
#: the dead entries ever could.
_COMPACT_MIN_SIZE = 64


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    Instances are returned by :meth:`EventScheduler.schedule_at` /
    :meth:`EventScheduler.schedule_after` and compare by (time, sequence) so
    they can live directly in the scheduler's heap.
    """

    __slots__ = ("time", "seq", "callback", "label", "cancelled", "_scheduler")

    def __init__(
        self,
        time: Timestamp,
        seq: int,
        callback: Callable[[], Any],
        label: str,
        scheduler: Optional["EventScheduler"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent, O(1).

        The entry stays in the heap (lazy deletion) but is counted; the
        owning scheduler compacts the heap when dead entries dominate.
        Cancelling an event that already fired (or was already reaped) is
        a pure flag set -- the scheduler link is severed at pop time.
        """
        if self.cancelled:
            return
        self.cancelled = True
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent({self.label!r} at {format_timestamp(self.time)}, {state})"


class EventScheduler:
    """A discrete-event loop over a :class:`VirtualClock`.

    The scheduler owns its clock; subsystems read time through
    :attr:`now` and never mutate the clock directly.
    """

    __slots__ = ("_clock", "_heap", "_seq", "_running", "_events_dispatched",
                 "_cancelled", "compactions")

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self._clock = clock if clock is not None else VirtualClock()
        self._heap: List[ScheduledEvent] = []
        self._seq = 0
        self._running = False
        self._events_dispatched = 0
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._cancelled = 0
        #: Total heap compactions performed (diagnostics).
        self.compactions = 0

    @property
    def clock(self) -> VirtualClock:
        """The clock this scheduler advances."""
        return self._clock

    @property
    def now(self) -> Timestamp:
        """Current simulated time."""
        return self._clock._now

    @property
    def events_dispatched(self) -> int:
        """Total number of callbacks executed so far (for diagnostics)."""
        return self._events_dispatched

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._heap) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Raw heap length including lazily-deleted entries (diagnostics)."""
        return len(self._heap)

    def _note_cancelled(self) -> None:
        """Bookkeeping hook called by :meth:`ScheduledEvent.cancel`."""
        self._cancelled += 1
        heap = self._heap
        if self._cancelled * 2 > len(heap) and len(heap) >= _COMPACT_MIN_SIZE:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        O(n), triggered only when dead entries exceed half the heap, so the
        cost amortises to O(1) per cancellation.  (time, seq) ordering is
        preserved by heapify -- live events keep their sequence numbers.
        The rebuild is in place: the dispatch loops hold a reference to the
        heap list, so the list object itself must survive.
        """
        heap = self._heap
        reaped = [event for event in heap if event.cancelled]
        heap[:] = [event for event in heap if not event.cancelled]
        heapq.heapify(heap)
        for event in reaped:
            event._scheduler = None
        self._cancelled = 0
        self.compactions += 1

    def schedule_at(
        self,
        time: Timestamp,
        callback: Callable[[], Any],
        label: str = "event",
    ) -> ScheduledEvent:
        """Schedule *callback* to run at absolute simulated *time*.

        Scheduling at the current instant is allowed (the event runs on the
        next loop iteration); scheduling in the past is an error.
        """
        if time < self._clock._now:
            raise SchedulerError(
                f"cannot schedule {label!r} in the past: "
                f"now={format_timestamp(self._clock._now)}, "
                f"requested={format_timestamp(time)}"
            )
        event = ScheduledEvent(time, self._seq, callback, label, self)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(
        self,
        delay: Timestamp,
        callback: Callable[[], Any],
        label: str = "event",
    ) -> ScheduledEvent:
        """Schedule *callback* to run *delay* microseconds from now."""
        validate_duration(delay, "delay")
        return self.schedule_at(self._clock._now + delay, callback, label)

    def run_until(self, time: Timestamp) -> int:
        """Dispatch every event with ``event.time <= time``; advance clock to *time*.

        Returns the number of callbacks executed.  The clock always ends at
        exactly *time*, even if the queue drains early, so subsequent
        scheduling is relative to the requested horizon.
        """
        if self._running:
            raise SchedulerError("re-entrant scheduler run detected")
        clock = self._clock
        if time < clock._now:
            raise SchedulerError(
                f"cannot run until the past: now={format_timestamp(clock._now)}, "
                f"requested={format_timestamp(time)}"
            )
        heap = self._heap
        if not heap or heap[0].time > time:
            # Empty/none-due fast path: nothing can dispatch, so no state
            # needs protecting -- a bare clock advance suffices.  This is
            # the common case for fine-grained ``run_for`` ticks.
            clock._now = time
            return 0
        self._running = True
        dispatched = 0
        pop = heapq.heappop
        try:
            while heap and heap[0].time <= time:
                event = pop(heap)
                event._scheduler = None  # off-heap: later cancels are flag-only
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                clock._jump_to(event.time)
                event.callback()
                dispatched += 1
            clock._now = time
        finally:
            self._events_dispatched += dispatched
            self._running = False
        return dispatched

    def run_for(self, duration: Timestamp) -> int:
        """Dispatch events for the next *duration* microseconds."""
        validate_duration(duration)
        return self.run_until(self._clock._now + duration)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (or *max_events* were dispatched).

        Raises :class:`SchedulerError` if the event budget is exhausted,
        which usually indicates a runaway self-rescheduling loop.
        """
        if self._running:
            raise SchedulerError("re-entrant scheduler run detected")
        self._running = True
        dispatched = 0
        heap = self._heap
        clock = self._clock
        pop = heapq.heappop
        try:
            while heap:
                event = pop(heap)
                event._scheduler = None  # off-heap: later cancels are flag-only
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                if dispatched >= max_events:
                    raise SchedulerError(
                        f"drain exceeded event budget of {max_events}; "
                        f"likely a runaway timer loop (last label: {event.label!r})"
                    )
                clock._jump_to(event.time)
                event.callback()
                dispatched += 1
        finally:
            self._events_dispatched += dispatched
            self._running = False
        return dispatched

    def __repr__(self) -> str:
        return (
            f"EventScheduler(now={format_timestamp(self.now)}, "
            f"pending={self.pending_count})"
        )
