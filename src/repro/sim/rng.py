"""Seeded random sources for reproducible stochastic workloads.

The usability study (Section V-B) and the 21-day empirical study
(Section V-D) are stochastic: user reaction times, attention lapses, and the
malware's sampling jitter are drawn from distributions.  Everything draws
from a :class:`RandomSource` so a single seed replays an entire experiment.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence, Tuple, TypeVar, Union

from repro.sim.errors import DeterminismError
from repro.sim.time import Timestamp, from_seconds

T = TypeVar("T")

#: Keys accepted by :meth:`RandomSource.spawn`: strings, ints, or (nested)
#: tuples of either -- enough to name a shard hierarchically, e.g.
#: ``("longterm", 412)``.
SpawnKey = Union[str, int, Tuple["SpawnKey", ...]]


def _canonical_key(key: SpawnKey) -> str:
    """Flatten a spawn key into an unambiguous canonical string.

    Types are tagged (``s:``/``i:``) and tuples bracketed so distinct keys
    can never collide after flattening (``1`` vs ``"1"``, ``("a","b")`` vs
    ``("a,b",)``).
    """
    if isinstance(key, bool) or (
        not isinstance(key, (str, int, tuple))
    ):
        raise DeterminismError(f"spawn key must be str, int, or tuple, got {key!r}")
    if isinstance(key, str):
        return f"s:{key}"
    if isinstance(key, int):
        return f"i:{key}"
    return "(" + ",".join(_canonical_key(part) for part in key) + ")"


class RandomSource:
    """A named, seeded wrapper around :class:`random.Random`.

    Subsystems derive child sources (:meth:`fork`) keyed by a stable label,
    so adding a new consumer of randomness does not perturb the draws seen
    by existing consumers -- the property that keeps recorded experiment
    outputs stable across code growth.
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise DeterminismError(f"RandomSource seed must be an int, got {seed!r}")
        self._seed = seed
        self._name = name
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this source was created with."""
        return self._seed

    @property
    def name(self) -> str:
        """Human-readable label identifying the consumer of this source."""
        return self._name

    def fork(self, label: str) -> "RandomSource":
        """Derive an independent child source keyed by *label*.

        The child's seed is a *stable* hash of (parent seed, label) --
        stable across processes and Python versions, which built-in
        ``hash()`` is not (string hashing is randomised per process).
        Reproducibility across runs is a core requirement of the
        experiment harness, so this uses SHA-256.
        """
        digest = hashlib.sha256(f"{self._seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
        return RandomSource(child_seed, name=f"{self._name}/{label}")

    def spawn(self, key: SpawnKey) -> "RandomSource":
        """Derive an independent child stream keyed by *key*.

        The fleet engine's hierarchical seeding primitive: a parent seed
        plus a structured key (``("longterm", machine_index)``) always
        yields the same child stream, on any worker process, regardless of
        how shards are partitioned or scheduled.  That is the property that
        makes ``--workers 8`` byte-identical to ``--workers 1``.

        Differences from :meth:`fork`:

        - keys may be ints or tuples, not just strings, and are
          canonicalised so distinct keys cannot collide;
        - the derivation runs in a separate hash domain (``spawn|``), so
          ``spawn("x")`` and ``fork("x")`` are independent streams.
        """
        canon = _canonical_key(key)
        digest = hashlib.sha256(f"spawn|{self._seed}|{canon}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
        return RandomSource(child_seed, name=f"{self._name}/{canon}")

    # -- primitive draws ---------------------------------------------------

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._rng.randint(low, high)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Bernoulli draw: True with the given *probability*."""
        if not 0.0 <= probability <= 1.0:
            raise DeterminismError(f"probability out of range: {probability}")
        return self._rng.random() < probability

    def choice(self, options: Sequence[T]) -> T:
        """Pick one element of *options* uniformly."""
        if not options:
            raise DeterminismError("cannot choose from an empty sequence")
        return self._rng.choice(options)

    def sample(self, options: Sequence[T], count: int) -> List[T]:
        """Pick *count* distinct elements of *options* uniformly."""
        return self._rng.sample(list(options), count)

    def shuffle(self, items: List[T]) -> List[T]:
        """Return a new list with *items* in shuffled order."""
        shuffled = list(items)
        self._rng.shuffle(shuffled)
        return shuffled

    def gauss(self, mean: float, stddev: float) -> float:
        """Normal draw."""
        return self._rng.gauss(mean, stddev)

    def expovariate(self, rate: float) -> float:
        """Exponential draw with the given *rate* (events per unit)."""
        return self._rng.expovariate(rate)

    # -- simulation-flavoured draws ----------------------------------------

    def reaction_time(
        self,
        mean_seconds: float = 0.35,
        stddev_seconds: float = 0.12,
        floor_seconds: float = 0.08,
    ) -> Timestamp:
        """Draw a human reaction time as a timestamp delta.

        Defaults approximate visual reaction latency (~350 ms mean), which
        underpins the paper's observation that Overhaul's per-operation
        overhead is "overshadowed by human-reaction times" (Section V-A).
        """
        seconds = max(floor_seconds, self._rng.gauss(mean_seconds, stddev_seconds))
        return from_seconds(seconds)

    def jittered_delay(self, base_seconds: float, jitter_fraction: float = 0.1) -> Timestamp:
        """Draw *base_seconds* +/- a uniform jitter fraction, as a delta."""
        if base_seconds < 0:
            raise DeterminismError(f"base delay must be non-negative: {base_seconds}")
        jitter = base_seconds * jitter_fraction
        return from_seconds(max(0.0, self._rng.uniform(base_seconds - jitter, base_seconds + jitter)))

    def __repr__(self) -> str:
        return f"RandomSource(name={self._name!r}, seed={self._seed})"


def default_source(seed: Optional[int] = None) -> RandomSource:
    """Build the conventional root source for experiments.

    A missing seed defaults to the paper's venue year (2016) so casual runs
    are still reproducible; experiments that sweep seeds pass them
    explicitly.
    """
    return RandomSource(2016 if seed is None else seed, name="root")
