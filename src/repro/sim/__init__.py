"""Discrete-event simulation substrate for the Overhaul reproduction.

This package provides the timing and scheduling primitives that every other
subsystem (kernel, X server, applications, workloads) builds on:

- :mod:`repro.sim.time` -- an integer-microsecond virtual timebase and
  conversion helpers.
- :mod:`repro.sim.clock` -- the :class:`~repro.sim.clock.VirtualClock` that
  represents "now" inside a simulation.
- :mod:`repro.sim.scheduler` -- the
  :class:`~repro.sim.scheduler.EventScheduler`, a deterministic priority-queue
  event loop with cancellable timers.
- :mod:`repro.sim.rng` -- seeded random sources so stochastic workloads (the
  usability study, the 21-day empirical study) are reproducible.
- :mod:`repro.sim.errors` -- the simulation exception hierarchy.

Overhaul's core decision rule -- "grant access iff the operation arrived less
than delta after authentic user input" -- is purely temporal, so the entire
reproduction runs on this virtual timebase rather than wall-clock time.  That
makes every experiment in EXPERIMENTS.md deterministic and replayable.
"""

from repro.sim.clock import VirtualClock
from repro.sim.errors import (
    SchedulerError,
    SimulationError,
    TimeError,
)
from repro.sim.rng import RandomSource
from repro.sim.scheduler import EventScheduler, ScheduledEvent
from repro.sim.time import (
    MICROSECONDS_PER_MILLISECOND,
    MICROSECONDS_PER_SECOND,
    Timestamp,
    format_timestamp,
    from_millis,
    from_seconds,
    to_seconds,
)

__all__ = [
    "MICROSECONDS_PER_MILLISECOND",
    "MICROSECONDS_PER_SECOND",
    "EventScheduler",
    "RandomSource",
    "ScheduledEvent",
    "SchedulerError",
    "SimulationError",
    "TimeError",
    "Timestamp",
    "VirtualClock",
    "format_timestamp",
    "from_millis",
    "from_seconds",
    "to_seconds",
]
