"""The virtual clock that defines "now" for a simulation instance.

The clock is advanced exclusively by the :class:`~repro.sim.scheduler.EventScheduler`
(or explicitly, in unit tests).  Monotonicity is enforced: simulated time can
never move backwards, which is the property Overhaul's temporal-proximity
comparisons rely on.
"""

from __future__ import annotations

from repro.sim.errors import TimeError
from repro.sim.time import Timestamp, format_timestamp, validate_duration


class VirtualClock:
    """A monotonically non-decreasing microsecond clock.

    Parameters
    ----------
    start:
        Initial timestamp, defaulting to the simulation epoch (0).
    """

    __slots__ = ("_now",)

    def __init__(self, start: Timestamp = 0) -> None:
        if not isinstance(start, int) or isinstance(start, bool):
            raise TimeError(f"clock start must be an integer, got {start!r}")
        self._now: Timestamp = start

    @property
    def now(self) -> Timestamp:
        """The current simulated time in microseconds since epoch."""
        return self._now

    def advance_to(self, timestamp: Timestamp) -> Timestamp:
        """Move the clock forward to *timestamp*.

        Raises :class:`TimeError` if *timestamp* is in the past; advancing to
        the current time is a no-op (events at the same instant are legal).
        """
        if timestamp < self._now:
            raise TimeError(
                f"clock cannot move backwards: now={format_timestamp(self._now)}, "
                f"requested={format_timestamp(timestamp)}"
            )
        self._now = timestamp
        return self._now

    def _jump_to(self, timestamp: Timestamp) -> None:
        """Unchecked advance for the scheduler's dispatch loop.

        The heap pops events in non-decreasing time order and ``run_until``
        validates its horizon up front, so the monotonicity check of
        :meth:`advance_to` is provably redundant on that path.  Everyone
        else must go through the checked methods.
        """
        self._now = timestamp

    def advance_by(self, duration: Timestamp) -> Timestamp:
        """Move the clock forward by a non-negative *duration*."""
        validate_duration(duration)
        self._now += duration
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={format_timestamp(self._now)})"
