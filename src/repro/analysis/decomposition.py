"""Decomposition of Overhaul's per-operation overhead.

Table I reports end-to-end overhead; this harness breaks the Overhaul
addition into its components so the EXPERIMENTS.md discussion ("the added
cost per operation is a small constant") is backed by direct measurement:

- the temporal decision itself (``PermissionMonitor.decide``);
- a netlink query round trip (display manager -> kernel -> response);
- an audit-log append;
- an alert request (coalesced vs uncoalesced);
- one P2 stamp embed/adopt pair;
- one shm fault service.

Run: ``python -m repro.analysis.decomposition``
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List

from repro.apps.base import SimApp
from repro.core.config import benchmark_config
from repro.core.notifications import MSG_PERMISSION_QUERY
from repro.core.system import Machine


@dataclass
class ComponentCost:
    """Measured cost of one overhead component."""

    name: str
    microseconds_per_op: float

    def render(self) -> str:
        return f"  {self.name:<38} {self.microseconds_per_op:8.2f} us/op"


def _time_per_op(fn: Callable[[], None], ops: int = 5_000, repeats: int = 3) -> float:
    """Best-of-N mean microseconds per call of *fn*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(ops):
            fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed / ops)
    return best * 1e6


def measure_components(ops: int = 5_000) -> List[ComponentCost]:
    """Measure every component on a fresh benchmark-mode machine."""
    machine = Machine.with_overhaul(benchmark_config())
    app = SimApp(machine, "/usr/bin/component-bench", comm="cbench")
    machine.settle()
    app.click()
    monitor = machine.overhaul.monitor
    task = app.task
    now = machine.now
    results: List[ComponentCost] = []

    results.append(
        ComponentCost(
            "decision (PermissionMonitor.decide)",
            _time_per_op(lambda: monitor.decide(task, now, "bench"), ops),
        )
    )

    channel = machine.overhaul.channel
    xorg = machine.xserver_task

    def query() -> None:
        channel.send_to_kernel(
            xorg,
            MSG_PERMISSION_QUERY,
            {"pid": task.pid, "operation": "bench", "timestamp": now},
        )

    results.append(
        ComponentCost("netlink query round trip (incl. decide)", _time_per_op(query, ops))
    )

    from repro.kernel.audit import AuditCategory, AuditDecision

    audit = machine.kernel.audit
    results.append(
        ComponentCost(
            "audit-log append",
            _time_per_op(
                lambda: audit.record(
                    now, AuditCategory.DEVICE, AuditDecision.GRANTED, task.pid, "cbench", "op"
                ),
                ops,
            ),
        )
    )

    results.append(
        ComponentCost(
            "alert request (coalesced steady state)",
            _time_per_op(lambda: monitor.request_visual_alert(task, "bench-op"), ops),
        )
    )

    from repro.kernel.ipc.base import InteractionStamp

    stamp = InteractionStamp(machine.kernel.tracking)
    receiver, _ = machine.launch("/usr/bin/recv", connect_x=False)

    def stamp_pair() -> None:
        stamp.embed_from(task)
        stamp.adopt_to(receiver)

    results.append(ComponentCost("P2 stamp embed+adopt pair", _time_per_op(stamp_pair, ops)))

    from repro.core.graybox import GrayBoxRegistry, InputDescriptor, IntentProfile, Region

    registry = GrayBoxRegistry()
    registry.install_profile(
        IntentProfile("cbench").allow_region("microphone", Region(0, 0, 64, 64))
    )
    descriptor = InputDescriptor("button", 10, 10)
    results.append(
        ComponentCost(
            "gray-box intent check (profiled app)",
            _time_per_op(
                lambda: registry.check("cbench", "microphone:/dev/mic0", descriptor), ops
            ),
        )
    )

    segment = machine.kernel.shm.shmget(0xFA17, 4)
    area = machine.kernel.shm.attach(task, segment)

    def fault_service() -> None:
        area.revoke_protection()  # re-arm manually so every write faults
        machine.kernel.shm._service_fault(task, area, is_write=True)

    results.append(
        ComponentCost("shm fault service (propagate+restore+rearm)",
                      _time_per_op(fault_service, max(ops // 5, 200)))
    )

    return results


def render_report(ops: int = 5_000) -> str:
    lines = ["Overhaul per-operation overhead decomposition", ""]
    lines += [component.render() for component in measure_components(ops)]
    lines += [
        "",
        "context: the paper's real baseline operations cost ~4.5 us (device",
        "open) to ~1.2 ms (X paste round trip) of native work, so additions",
        "of this magnitude correspond to the low single-digit percentages",
        "Table I reports.",
    ]
    return "\n".join(lines)


def main() -> int:  # pragma: no cover - thin CLI
    print(render_report())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
