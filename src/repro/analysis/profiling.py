"""``python -m repro profile <scenario>``: hot-path profiling harness.

Two complementary views of where a scenario spends its effort:

1. **cProfile** (host time): the top functions by cumulative time while the
   scenario runs with the production fast paths on.  This is the view that
   drove the hot-path overhaul -- the decision path's cost is Python-call
   overhead, so the winners are datagram construction, dataclass inits, and
   attribute chases, not the comparisons themselves.
2. **Span timings** (virtual time + counts): a second, traced pass of the
   same scenario aggregated per span name.  Tracing forces the reference
   path, so this pass shows the protocol shape -- how many netlink hops,
   verdicts, and alerts one operation costs -- rather than host-time cost.
   Virtual durations are 0 for benchmark rigs (no simulated time passes
   inside an op); the per-op span *counts* are the signal there.

Scenarios: the four mediated Table I workloads, the isolated decision
path (the same rigs ``benchmarks/baseline.py`` measures), and the
quickstart walkthrough.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Callable, Dict, Tuple

from repro.analysis.benchops import (
    ClipboardRig,
    DecisionPathRig,
    DeviceAccessRig,
    ScreenCaptureRig,
    SharedMemoryRig,
)

#: scenario name -> (rig factory | None for quickstart, default op count).
_SCENARIOS: Dict[str, Tuple[Callable[[], object], int]] = {
    "decision-path": (lambda: DecisionPathRig(True), 5_000),
    "device-access": (lambda: DeviceAccessRig(True), 2_000),
    "clipboard": (lambda: ClipboardRig(True), 600),
    "screen-capture": (lambda: ScreenCaptureRig(True), 600),
    "shared-memory": (lambda: SharedMemoryRig(True), 8_000),
}


def scenario_names() -> list:
    return [*_SCENARIOS, "quickstart"]


def _run_quickstart() -> None:
    from repro.apps import AudioRecorder, Spyware
    from repro.core import Machine
    from repro.kernel.errors import OverhaulDenied
    from repro.sim.time import from_seconds

    machine = Machine.with_overhaul()
    recorder = AudioRecorder(machine)
    spy = Spyware(machine)
    machine.settle()
    spy.attempt_microphone()
    recorder.click_record()
    recorder.capture_samples(16)
    recorder.stop_recording()
    machine.run_for(from_seconds(2.5))
    try:
        recorder.start_recording()
    except OverhaulDenied:
        pass


def _traced_span_table(scenario: str, ops: int) -> str:
    """Run the scenario once with tracing on; aggregate spans by name."""
    if scenario == "quickstart":
        from repro.obs import run_traced_quickstart

        machine = run_traced_quickstart()
        tracer = machine.tracer
    else:
        factory, _ = _SCENARIOS[scenario]
        rig = factory()
        machine = rig.machine
        machine.tracer.enabled = True
        machine.tracer.clear()
        rig.run(ops)
        tracer = machine.tracer

    by_name: Dict[str, Tuple[int, int]] = {}
    for span in tracer.spans:
        count, total = by_name.get(span.name, (0, 0))
        by_name[span.name] = (count + 1, total + span.duration)
    lines = [
        f"{'span':<28s} {'count':>8s} {'virtual us':>12s}",
        "-" * 50,
    ]
    for name in sorted(by_name, key=lambda n: -by_name[n][0]):
        count, total = by_name[name]
        lines.append(f"{name:<28s} {count:>8d} {total:>12d}")
    return "\n".join(lines)


def run_profile(scenario: str, ops: int = 0, top: int = 25, spans: bool = True) -> int:
    """Profile *scenario*; print the cProfile table and the span table."""
    if scenario != "quickstart" and scenario not in _SCENARIOS:
        print(f"unknown scenario {scenario!r}; choose from: "
              f"{', '.join(scenario_names())}")
        return 2

    if scenario == "quickstart":
        target = _run_quickstart
        label = "quickstart walkthrough"
    else:
        factory, default_ops = _SCENARIOS[scenario]
        count = ops if ops > 0 else default_ops
        rig = factory()
        rig.run(count)  # warmup: caches populated before measuring
        target = lambda: rig.run(count)  # noqa: E731
        label = f"{count} mediated ops"

    print(f"profiling {scenario} ({label}), fast paths on")
    profiler = cProfile.Profile()
    profiler.enable()
    target()
    profiler.disable()
    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.sort_stats("cumulative").print_stats(top)
    print(stream.getvalue())

    if spans:
        print("per-span timings (traced second pass, reference path)")
        print(_traced_span_table(scenario, ops if ops > 0 else
                                 (_SCENARIOS[scenario][1] if scenario in _SCENARIOS else 0)))
    return 0
