"""One-shot regeneration of the full evaluation report.

Usage::

    python -m repro.analysis.report                   # quick (small scales)
    python -m repro.analysis.report --full            # paper-scale studies

Produces a Markdown report covering every evaluation artifact: Table I,
the V-B usability study, the V-C applicability sweep, the V-D long-term
comparison, and the figure scenario traces.  EXPERIMENTS.md is the curated
version of this output.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from repro.analysis.tables import measure_table_i
from repro.workloads.app_catalog import run_applicability_sweep
from repro.workloads.longterm import run_comparison
from repro.workloads.scenarios import all_figure_scenarios
from repro.workloads.usability import run_usability_study


def build_report(
    table_scale: float = 0.5,
    usability_seed: int = 66,
    longterm_days: int = 5,
    longterm_seed: int = 2016,
) -> str:
    """Run everything and render one Markdown document."""
    sections: List[str] = ["# Overhaul reproduction — regenerated evaluation\n"]

    sections.append("## Table I — performance overhead\n")
    table = measure_table_i(scale=table_scale, repeats=3)
    sections.append("```\n" + table.render() + "\n```\n")

    sections.append("## Figures 1-4, 6 — protocol scenarios\n")
    for trace in all_figure_scenarios():
        status = "GRANTED" if trace.succeeded else "DENIED"
        sections.append(f"- **{trace.figure}** ({trace.name}): {status}, "
                        f"{len(trace.steps)} protocol steps executed")
    sections.append("")

    sections.append("## Section V-B — usability study\n")
    usability = run_usability_study(seed=usability_seed)
    sections.append("```\n" + usability.render() + "\n```\n")

    sections.append("## Section V-C — applicability & false positives\n")
    sweep = run_applicability_sweep()
    sections.append("```\n" + sweep.render() + "\n```\n")

    sections.append(f"## Section V-D — long-term study ({longterm_days} days)\n")
    pair = run_comparison(seed=longterm_seed, days=longterm_days)
    for results in pair.values():
        sections.append("```\n" + results.render() + "\n```\n")

    return "\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate the evaluation report.")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale runs (21-day study, 2x table ops)")
    parser.add_argument("--seed", type=int, default=2016)
    args = parser.parse_args(argv)
    report = build_report(
        table_scale=2.0 if args.full else 0.5,
        longterm_days=21 if args.full else 5,
        longterm_seed=args.seed,
    )
    print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
