"""Regenerate Table I (performance overhead of Overhaul).

Usage::

    python -m repro.analysis.tables            # default scale
    python -m repro.analysis.tables --scale 4  # 4x more ops per row

For each row the harness builds a fresh baseline rig and a fresh Overhaul
rig (force-grant methodology, Section V-A), runs the row's operation loop
five times in each configuration, and reports mean runtimes and the
relative overhead next to the paper's number.

Absolute times are not comparable to the paper (a Python simulator vs a
patched C kernel on an i7-930); the claim under reproduction is the *shape*:
every row's overhead is small, and the Overhaul column is only marginally
above baseline.  EXPERIMENTS.md records a measured-vs-paper table produced
by exactly this harness.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.analysis.benchops import (
    ALL_RIGS,
    ClipboardRig,
    DeviceAccessRig,
    FilesystemRig,
    ScreenCaptureRig,
    SharedMemoryRig,
)
from repro.analysis.metrics import TimingResult, overhead_percent, time_callable
from repro.obs.counters import collect_counters

#: Operations per run() call for each row at scale 1.  Chosen so a full
#: table regeneration takes tens of seconds, not the paper's hours.
DEFAULT_OPS = {
    DeviceAccessRig: 2_000,
    ClipboardRig: 400,
    ScreenCaptureRig: 400,
    SharedMemoryRig: 10_000,
    FilesystemRig: 2_000,
}


@dataclass
class TableRow:
    """One measured row of Table I."""

    name: str
    operations: int
    baseline: TimingResult
    overhaul: TimingResult
    paper_overhead_percent: float
    #: Cross-layer operation counts from the Overhaul rig after its timed
    #: runs -- a faster round that silently did less work shows up here.
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def measured_overhead_percent(self) -> float:
        return overhead_percent(self.baseline.mean_seconds, self.overhaul.mean_seconds)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe row for ``python -m repro table1 --json`` consumers."""
        return {
            "name": self.name,
            "operations": self.operations,
            "baseline_mean_seconds": self.baseline.mean_seconds,
            "baseline_stdev_seconds": self.baseline.stdev_seconds,
            "overhaul_mean_seconds": self.overhaul.mean_seconds,
            "overhaul_stdev_seconds": self.overhaul.stdev_seconds,
            "measured_overhead_percent": self.measured_overhead_percent,
            "paper_overhead_percent": self.paper_overhead_percent,
            "counters": dict(sorted(self.counters.items())),
        }


@dataclass
class TableIResult:
    """The regenerated table."""

    rows: List[TableRow]

    def render(self) -> str:
        header = (
            f"{'Benchmark':<16} {'Ops':>8} {'Baseline':>12} {'Overhaul':>12} "
            f"{'Overhead':>10} {'Paper':>8}"
        )
        rule = "-" * len(header)
        lines = ["Table I: performance overhead of Overhaul (reproduced)", rule, header, rule]
        for row in self.rows:
            lines.append(
                f"{row.name:<16} {row.operations:>8} "
                f"{row.baseline.mean_seconds:>10.4f} s {row.overhaul.mean_seconds:>10.4f} s "
                f"{row.measured_overhead_percent:>9.2f}% {row.paper_overhead_percent:>7.2f}%"
            )
        lines.append(rule)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {"table": "I", "rows": [row.to_dict() for row in self.rows]}

    def render_counters(self) -> str:
        """The per-row work-count appendix (deterministic ordering)."""
        lines = ["Operation counts (Overhaul configuration)"]
        for row in self.rows:
            lines.append(f"  {row.name}:")
            for name, value in sorted(row.counters.items()):
                lines.append(f"    {name} = {value}")
        return "\n".join(lines)


def measure_row(
    rig_class: Type,
    operations: int,
    repeats: int = 5,
) -> TableRow:
    """Measure one row: fresh rigs, five timed repeats per configuration."""
    baseline_rig = rig_class(protected=False)
    overhaul_rig = rig_class(protected=True)
    baseline = time_callable(
        f"{rig_class.name}/baseline", lambda: baseline_rig.run(operations), repeats=repeats
    )
    overhaul = time_callable(
        f"{rig_class.name}/overhaul", lambda: overhaul_rig.run(operations), repeats=repeats
    )
    return TableRow(
        name=rig_class.name,
        operations=operations,
        baseline=baseline,
        overhaul=overhaul,
        paper_overhead_percent=rig_class.paper_overhead_percent,
        counters=collect_counters(overhaul_rig.machine).snapshot(),
    )


def measure_table_i(scale: float = 1.0, repeats: int = 5) -> TableIResult:
    """Regenerate the whole table."""
    rows = []
    for rig_class in ALL_RIGS:
        operations = max(1, int(DEFAULT_OPS[rig_class] * scale))
        rows.append(measure_row(rig_class, operations, repeats=repeats))
    return TableIResult(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Table I.")
    parser.add_argument("--scale", type=float, default=1.0, help="ops multiplier per row")
    parser.add_argument("--repeats", type=int, default=5, help="timed repeats per config")
    args = parser.parse_args(argv)
    result = measure_table_i(scale=args.scale, repeats=args.repeats)
    print(result.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
