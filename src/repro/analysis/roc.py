"""ROC curve assembly for the red-team parameter sweeps.

A sweep point maps a parameter value (delta or the visibility threshold)
to two operating rates: the adversary's false-grant rate (the ROC's
false-positive axis) and the benign probe's grant rate (the true-positive
axis).  Sweeping the parameter traces the security/usability trade-off
the paper argues informally; the trapezoid AUC condenses the curve to one
regression-checkable number.

Everything is exact integer arithmetic until the final division, rounded
to the aggregate precision -- the curves are byte-stable JSON.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

#: Decimal places for curve floats (matches the population aggregates).
_PRECISION = 6


def roc_points(
    operating_points: Sequence[Tuple[int, int, int, int]],
) -> List[Dict[str, Any]]:
    """(attack_successes, attack_trials, benign_grants, benign_trials)
    tuples -> JSON-safe ROC coordinates."""
    curve = []
    for attack_successes, attack_trials, benign_grants, benign_trials in operating_points:
        fpr = attack_successes / attack_trials if attack_trials else 0.0
        tpr = benign_grants / benign_trials if benign_trials else 0.0
        curve.append(
            {
                "fpr": round(fpr, _PRECISION),
                "tpr": round(tpr, _PRECISION),
            }
        )
    return curve


def auc_trapezoid(pairs: Sequence[Tuple[float, float]]) -> float:
    """Trapezoid area under (fpr, tpr) points, anchored at (0,0) and (1,1).

    Points are sorted by fpr (then tpr); duplicate fpr values contribute
    zero width, so step-shaped curves are handled without special cases.
    """
    anchored = sorted({(0.0, 0.0), (1.0, 1.0)} | set(pairs))
    area = 0.0
    for (x0, y0), (x1, y1) in zip(anchored, anchored[1:]):
        area += (x1 - x0) * (y0 + y1) / 2.0
    return round(area, _PRECISION)
